#!/usr/bin/env python3
"""The §1 attack, replayed: why sleepy protocols need message expiration.

An adversary controlling 20% of the processes waits for an asynchronous
decision round, equivocates votes on two freshly minted conflicting
blocks, and delivers to each half of the network only the votes for one
of them.  Against the original MMR protocol, every honest process
perceives a unanimous quorum and the network forks.  The identical
attack against the η-expiration protocol fails: receivers still hold
unexpired honest votes, the forged votes stay below the 2/3 quorum, and
nobody decides a conflicting log (Theorem 2).

Run:  python examples/asynchrony_attack.py
"""

from repro.analysis import check_asynchrony_resilience, check_safety, format_table
from repro.harness import run_tob
from repro.workloads import split_vote_attack_scenario


def describe(trace, ra: int, pi: int) -> dict:
    safety = check_safety(trace)
    resilience = check_asynchrony_resilience(trace, ra=ra, pi=pi)
    forks = {
        (c.first.tip, c.second.tip) for c in safety.conflicts
    }
    return {
        "safety": safety.ok,
        "resilience": resilience.ok,
        "forks": len(forks),
        "decisions": len(trace.decisions),
    }


def main() -> None:
    pi = 1
    rows = []
    for protocol, eta in (("mmr", 0), ("resilient", 2), ("resilient", 4)):
        config = split_vote_attack_scenario(protocol, eta=eta, pi=pi, n=20, target_round=10)
        trace = run_tob(config)
        outcome = describe(trace, ra=config.meta["ra"], pi=pi)
        rows.append(
            [
                f"{protocol} (η={eta})",
                outcome["safety"],
                outcome["resilience"],
                outcome["forks"],
                outcome["decisions"],
            ]
        )

    print(
        format_table(
            ["protocol", "safe", "asynchrony-resilient", "forks", "decisions"],
            rows,
            title=f"Split-vote attack in a π={pi} asynchronous window (n=20, 4 Byzantine)",
        )
    )
    print()
    print("The original protocol forks under a single adversarial round;")
    print("the same attack bounces off the expiration-equipped protocol.")


if __name__ == "__main__":
    main()
