#!/usr/bin/env python3
"""Offline trace analysis: run once, save, inspect later.

Simulation runs serialise to JSON (blocks, participation, decisions,
metadata); every checker and metric in :mod:`repro.analysis` operates
identically on the reloaded trace.  This example records an attacked
run, reloads it, and performs a small forensic investigation: when did
the fork open, who decided what, and how deep was the damage.

Run:  python examples/trace_analysis.py
"""

import tempfile
from pathlib import Path

from repro.analysis import (
    check_safety,
    format_table,
    load_trace,
    max_reorg_depth,
    reorg_events,
    save_trace,
)
from repro.harness import run_tob
from repro.workloads import split_vote_attack_scenario


def main() -> None:
    # --- Record ---------------------------------------------------------
    config = split_vote_attack_scenario("mmr", eta=0, pi=1, n=20, target_round=10)
    trace = run_tob(config)
    path = Path(tempfile.mkdtemp()) / "attacked_run.json"
    save_trace(trace, path)
    print(f"Recorded {trace.horizon} rounds, {len(trace.decisions)} decisions")
    print(f"Saved to {path} ({path.stat().st_size / 1024:.1f} KiB)")
    print()

    # --- Reload and investigate -----------------------------------------
    replay = load_trace(path)
    report = check_safety(replay)
    print(f"Safety on reload: {report.ok} ({len(report.conflicts)} conflicting pairs)")

    first = min(report.conflicts, key=lambda c: max(c.first.round, c.second.round))
    print(
        f"First conflict: process {first.first.pid} decided ...{(first.first.tip or '')[:8]} "
        f"at round {first.first.round}; process {first.second.pid} decided "
        f"...{(first.second.tip or '')[:8]} at round {first.second.round}"
    )
    print()

    events = reorg_events(replay)
    rows = [[e.pid, e.round, e.depth, (e.old_tip or "")[:8], (e.new_tip or "")[:8]] for e in events[:8]]
    print(
        format_table(
            ["pid", "round", "depth", "abandoned tip", "new tip"],
            rows,
            title=f"Reorg forensics ({len(events)} events, max depth {max_reorg_depth(replay)})",
        )
    )
    print()
    print("Same checkers, same answers — hours after the run finished.")


if __name__ == "__main__":
    main()
