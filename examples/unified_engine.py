"""One run description, two execution substrates.

The unified engine (repro.engine) runs the same RunSpec — protocol,
schedule, network conditions, transaction workload — on the
deterministic round simulator and on the real-time asyncio gossip
deployment, producing traces the same analysis code consumes.
"""

from repro.analysis import check_safety, format_table
from repro.engine.backend import run_spec
from repro.engine.deploy_backend import DeploymentBackend
from repro.engine.sim_backend import SimulationBackend
from repro.workloads import throughput_scenario


def decided_txs(trace) -> int:
    """Transactions in the deepest decided log (0 if nothing decided)."""
    deepest = max((d.tip for d in trace.decisions), key=trace.tree.depth, default=None)
    if deepest is None:
        return 0
    return sum(len(trace.tree.get(b).payload) for b in trace.tree.path(deepest))


def main() -> None:
    spec = throughput_scenario(n=5, rounds=12, rate_per_round=4, seed=3)
    rows = []
    for backend in (SimulationBackend(), DeploymentBackend(delta_s=0.02)):
        result = run_spec(spec, backend)
        trace = result.trace
        rows.append(
            [
                result.backend,
                len(trace.decisions),
                decided_txs(trace),
                check_safety(trace).ok,
                f"{result.wall_seconds:.2f}s",
            ]
        )
    print(
        format_table(
            ["backend", "decisions", "decided txs", "safe", "wall clock"],
            rows,
            title="The same client workload on both substrates",
        )
    )
    print()
    print("Same spec, same seeds, same analysis — only the substrate differs.")


if __name__ == "__main__":
    main()
