#!/usr/bin/env python3
"""Calibrating the expiration period η (paper §3, step 1).

Choosing η is the deployment's central trade-off:

* resilience — the protocol tolerates asynchronous periods up to
  π = η − 1 rounds (Theorem 2);
* churn — tolerating churn rate γ per η rounds costs failure-ratio
  headroom: β̃ = (β − γ)/(γ(β − 2) + 1) (Equation 2, Figure 1).

This example prints the Figure 1 curve and, for a target per-round
churn, the (η → π, β̃) menu an operator would pick from.

Run:  python examples/eta_tuning.py
"""

from fractions import Fraction

from repro.analysis import format_table
from repro.core.bounds import beta_tilde, figure1_curve, max_resilient_pi


def main() -> None:
    # --- Figure 1: the γ → β̃ curve for the 2/3 decision threshold -----
    rows = [
        [float(gamma), float(value), "" if value > 0 else "stall"]
        for gamma, value in figure1_curve(points=9, gamma_max=Fraction(32, 100))
    ]
    print(
        format_table(
            ["drop-off rate γ", "allowable failure ratio β̃", ""],
            rows,
            title="Figure 1: β̃ = (1 − 3γ)/(3 − 5γ) for β = 1/3",
        )
    )

    # --- The operator's menu -------------------------------------------
    # Suppose measurements say ~2% of recently-awake processes go to
    # sleep per round.  Churn per η rounds then scales with η, eating
    # into the tolerable failure ratio as η grows.
    per_round_churn = Fraction(2, 100)
    print()
    rows = []
    for eta in (1, 2, 4, 8, 12, 16):
        gamma = min(per_round_churn * eta, Fraction(32, 100))
        value = beta_tilde(Fraction(1, 3), gamma)
        rows.append(
            [
                eta,
                max_resilient_pi(eta),
                float(gamma),
                float(value),
                f"{int(value * 48)} of 48",
            ]
        )
    print(
        format_table(
            ["η", "tolerated π", "γ per η rounds", "β̃", "max Byzantine (n=48)"],
            rows,
            title="η menu at 2% per-round churn (β = 1/3)",
        )
    )
    print()
    print("Bigger η buys longer asynchrony tolerance but, under the same")
    print("per-round churn, leaves room for fewer Byzantine processes.")


if __name__ == "__main__":
    main()
