#!/usr/bin/env python3
"""Replay of the May 2023 Ethereum incident (paper §1, footnote 1).

Roughly 60% of Ethereum's consensus clients crashed at once due to a
software bug and came back ~25 minutes later; the dynamically available
chain kept growing throughout.  This example replays that shape on the
η-expiration protocol: 50 processes, 60% asleep for 20 rounds, and a
per-round participation/chain-depth timeline to watch the system sail
through.

Run:  python examples/ethereum_outage.py
"""

from repro.analysis import (
    chain_growth_rate,
    check_safety,
    decided_depth_timeline,
    format_table,
    participation_timeline,
)
from repro.harness import run_tob
from repro.workloads import ethereum_outage_scenario


def main() -> None:
    start, duration = 10, 20
    config = ethereum_outage_scenario(
        protocol="resilient", eta=4, n=50, start=start, duration=duration, rounds=50
    )
    trace = run_tob(config)
    assert check_safety(trace).ok

    participation = dict(
        (r, awake) for r, awake, _honest in participation_timeline(trace)
    )
    depth = {p.round: p.depth for p in decided_depth_timeline(trace)}

    rows = []
    for r in range(0, 50, 4):
        phase = "outage" if start <= r < start + duration else "normal"
        bar = "#" * (participation[r] // 2)
        rows.append([r, phase, participation[r], depth[r], bar])
    print(
        format_table(
            ["round", "phase", "awake", "decided depth", "participation"],
            rows,
            title="60% of 50 processes offline during rounds 10-29",
        )
    )

    during = chain_growth_rate(trace, start=start + 2, end=start + duration)
    after = chain_growth_rate(trace, start=start + duration + 2, end=49)
    print()
    print(f"Chain growth during the outage : {during:.3f} blocks/round")
    print(f"Chain growth after recovery    : {after:.3f} blocks/round")
    print("The chain never stopped: dynamic availability in action.")


if __name__ == "__main__":
    main()
