#!/usr/bin/env python3
"""A real-time deployment: rounds of Δ = 3δ over an asyncio gossip overlay.

Runs the η-expiration protocol on 8 nodes connected by a random
4-regular gossip network with seeded link latencies, then injects a
latency surge (a real asynchronous period: the network turns slow, not
lossy) and shows the protocol deciding straight through it.

Run:  python examples/gossip_deployment.py
"""

from repro.analysis import check_safety, decision_rounds, format_table
from repro.runtime import DeploymentConfig, run_deployment


def main() -> None:
    delta_s = 0.02  # 20 ms synchrony bound → 60 ms rounds
    surge = (7, 2, 25.0)  # rounds 8-9: latency × 25 (≫ δ)
    config = DeploymentConfig(
        n=8,
        rounds=20,
        delta_s=delta_s,
        protocol="resilient",
        eta=4,
        gossip_degree=4,
        surge=surge,
        seed=11,
    )
    result = run_deployment(config)
    trace = result.trace
    safety = check_safety(trace)

    print(
        format_table(
            ["metric", "value"],
            [
                ["nodes", config.n],
                ["δ (ms)", delta_s * 1000],
                ["round duration (ms)", 3 * delta_s * 1000],
                ["rounds run", config.rounds],
                ["latency surge", f"rounds {surge[0] + 1}-{surge[0] + surge[1]} ×{surge[2]:.0f}"],
                ["wall-clock (s)", result.wall_seconds],
                ["gossip messages", result.messages_sent],
                ["decisions", len(trace.decisions)],
                ["safety", safety.ok],
            ],
            title="Deployment summary",
        )
    )
    print()
    rounds = decision_rounds(trace)
    marks = ["*" if r in rounds else "." for r in range(config.rounds)]
    print("decision rounds:  " + " ".join(f"{r:>2}" for r in range(config.rounds)))
    print("                  " + "  ".join(marks))
    print()
    assert safety.ok
    print("Safe throughout the surge — on a real event loop, not a round model.")


if __name__ == "__main__":
    main()
