#!/usr/bin/env python3
"""Ebb-and-flow: an available chain plus a finality gadget (paper §3).

Ethereum-style designs pair a dynamically available chain (fast, grows
under any participation) with a finality gadget (slow, certifies a
prefix with a fixed 2/3-of-all quorum).  The paper's §3 observes that
finality alone does not protect the *user-facing* available chain from
asynchrony — and that the expiration mechanism does.

This example runs the §1 attack against both pairings and shows:

* finality never reverts in either case (the gadget's job);
* the MMR available chain reorgs under the attack anyway;
* swapping the inner protocol for the η-expiration one removes the
  reorgs entirely, which is precisely what §3 means by "even
  ebb-and-flow protocols can benefit".

Run:  python examples/finality_overlay.py
"""

from repro.analysis import check_safety, format_table, max_reorg_depth, reorg_events
from repro.crypto.signatures import KeyRegistry
from repro.finality import ebb_and_flow_factory
from repro.sleepy import FullParticipation, Simulation, SplitVoteAttack, WindowedAsynchrony


def run_pair(protocol: str, eta: int, n: int = 20):
    registry = KeyRegistry(n, run_seed=0)
    sim = Simulation(
        registry,
        FullParticipation(n),
        SplitVoteAttack(list(range(16, 20)), target_round=10),
        WindowedAsynchrony(ra=9, pi=1),
        ebb_and_flow_factory(protocol, eta=eta, n=n),
    )
    trace = sim.run(24)
    finalized = [sim.processes[pid].finalized_tip for pid in range(16)]
    return {
        "label": f"{protocol} + finality (η={eta})",
        "available_safe": check_safety(trace).ok,
        "reorgs": len(reorg_events(trace)),
        "max_depth": max_reorg_depth(trace),
        "finality_consistent": all(
            trace.tree.compatible(a, b) for a in finalized for b in finalized
        ),
        "finalized_depth": min(trace.tree.depth(t) for t in finalized),
    }


def main() -> None:
    rows = [run_pair("mmr", 0), run_pair("resilient", 3)]
    print(
        format_table(
            [
                "pairing",
                "available safe",
                "reorg events",
                "max reorg depth",
                "finality consistent",
                "finalized depth",
            ],
            [
                [
                    r["label"],
                    r["available_safe"],
                    r["reorgs"],
                    r["max_depth"],
                    r["finality_consistent"],
                    r["finalized_depth"],
                ]
                for r in rows
            ],
            title="Split-vote attack against two ebb-and-flow pairings (n=20)",
        )
    )
    print()
    print("Finality holds either way — but only the η-expiration inner chain")
    print("spares its users the reorg.")


if __name__ == "__main__":
    main()
