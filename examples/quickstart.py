#!/usr/bin/env python3
"""Quickstart: run the asynchrony-resilient protocol and inspect a run.

Twenty processes run the η-expiration TOB (the paper's modified
Algorithm 1) for 20 views under full participation, with a handful of
client transactions arriving mid-run.  We then verify safety, replay
the decided chain, and print the run's vital signs.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

import repro
from repro.analysis import (
    block_decision_latencies,
    chain_growth_rate,
    check_safety,
    check_transaction_liveness,
    format_table,
    message_totals,
)
from repro.workloads import constant_rate_stream


def main() -> None:
    eta = 3  # tolerate asynchronous periods of up to π = η − 1 = 2 rounds
    transactions = constant_rate_stream(rate_per_round=2, rounds=30, seed=42)
    config = repro.TOBRunConfig(
        n=20,
        rounds=40,
        protocol="resilient",
        eta=eta,
        beta=Fraction(1, 3),
        transactions=transactions,
        seed=7,
    )
    trace = repro.run_tob(config)

    safety = check_safety(trace)
    assert safety.ok, "a fault-free synchronous run can never fork"

    deepest = max((d.tip for d in trace.decisions), key=trace.tree.depth)
    log = trace.tree.log(deepest)
    print(f"Decided chain: {len(log)} blocks, {len(log.transactions())} transactions")
    for block in list(log)[:5]:
        print(f"  view {block.view:3d}  proposer {block.proposer:3d}  txs {len(block.payload)}")
    print("  ...")

    latencies = block_decision_latencies(trace)
    totals = message_totals(trace)
    sample_tx = transactions[0][0]
    liveness = check_transaction_liveness(trace, sample_tx.tx_id)
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["processes", config.n],
                ["rounds", config.rounds],
                ["expiration period η", eta],
                ["tolerated asynchrony π", repro.max_resilient_pi(eta)],
                ["safety", safety.ok],
                ["chain growth (blocks/round)", chain_growth_rate(trace)],
                ["block decision latency (rounds)", max(latencies)],
                ["first tx included at round", liveness.included_round],
                ["votes sent", totals["votes"]],
                ["proposals sent", totals["proposes"]],
            ],
            title="Run summary",
        )
    )


if __name__ == "__main__":
    main()
