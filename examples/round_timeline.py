#!/usr/bin/env python3
"""Watch a run, round by round: the ASCII trace timeline.

One strip chart tells the whole story of a turbulent run: participation
dips, the asynchronous window, the decision cadence stalling through it,
and the recovery.  The same renderers work on any saved trace
(`repro.analysis.load_trace`), making post-mortems one import away.

Run:  python examples/round_timeline.py
"""

from repro.analysis import check_safety, render_depth_curve, render_timeline
from repro.harness import TOBRunConfig, run_tob
from repro.sleepy.adversary import WithholdingAdversary
from repro.sleepy.network import WindowedAsynchrony
from repro.sleepy.schedule import SpikeSchedule


def main() -> None:
    n = 16
    config = TOBRunConfig(
        n=n,
        rounds=28,
        protocol="resilient",
        eta=4,
        schedule=SpikeSchedule(n, drop_fraction=0.4, start=6, duration=6),
        adversary=WithholdingAdversary(),
        network=WindowedAsynchrony(ra=15, pi=3),
    )
    trace = run_tob(config)

    print("A 40% participation dip (rounds 6-11), then a 3-round blackout (16-18):")
    print()
    print(render_timeline(trace, width=32))
    print()
    print(render_depth_curve(trace))
    print()
    assert check_safety(trace).ok
    print("Safe throughout; the chain pauses for the blackout and resumes.")


if __name__ == "__main__":
    main()
