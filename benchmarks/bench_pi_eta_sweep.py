"""E3 — Theorem 2 sweep: π-asynchrony resilience holds for all π < η.

For each expiration period η, sweep the asynchronous-period length π
across the theorem boundary, always ending the window at the attacked
decision round; the adversary starves delivery throughout the window so
honest votes age out, then split-votes the final round.

The (η, π) matrix is the named grid ``pi-eta`` from
:mod:`repro.analysis.batch`, executed through the engine's streamed
parallel sweep (:func:`repro.engine.sweep.stream_sweep`): cells fan
across a process pool, each worker reduces its run to a verdict row
in-process, and rows stream back in grid order —
``tests/engine/test_sweep_equivalence.py`` pins that the streamed grid
is cell-for-cell identical to the pre-sweep serial loop.

Expectation: every (η, π) with π < η is safe *and* Definition 5
resilient (the theorem).  One discretisation nuance is expected and
documented: the paper's expiration window ``[r − η, r]`` is inclusive
(η + 1 rounds wide), so the boundary run π = η still holds empirically
— the last pre-asynchrony votes sit exactly at the window edge — and
forks appear from π = η + 1 onward.
"""

import os

from repro.analysis.batch import grid_journal, pi_eta_grid, pi_eta_table, reduce_pi_eta
from repro.engine.sweep import sweep_rows

N = 20

#: Machine-readable run configuration (recorded in BENCH_*.json).
BENCH_CONFIG = {
    "n": N,
    "target_round": 10,
    "streamed": True,
    # A warm journal replays cells instead of computing them, so a
    # journaled run is a different experiment for the trend checker.
    "journaled": bool(os.environ.get("REPRO_SWEEP_JOURNAL_DIR")),
}


def test_pi_eta_sweep(benchmark, record):
    def experiment():
        # With $REPRO_SWEEP_JOURNAL_DIR set, finished cells are
        # checkpointed and an interrupted grid resumes where it stopped.
        return sweep_rows(
            pi_eta_grid(n=N), reduce_pi_eta, journal=grid_journal("pi-eta"), resume="auto"
        )

    cells = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record(pi_eta_table(cells, n=N))

    for cell in cells:
        if cell["guaranteed"]:
            assert cell["safe"] and cell["resilient"], cell
        if cell["pi"] == cell["eta"]:
            # Inclusive-window edge: one bonus round beyond the theorem.
            assert cell["safe"], cell
        if cell["pi"] > cell["eta"]:
            assert not cell["safe"], cell  # the attack lands past the edge
