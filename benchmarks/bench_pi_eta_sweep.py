"""E3 — Theorem 2 sweep: π-asynchrony resilience holds for all π < η.

For each expiration period η, sweep the asynchronous-period length π
across the theorem boundary, always ending the window at the attacked
decision round; the adversary starves delivery throughout the window so
honest votes age out, then split-votes the final round.

Expectation: every (η, π) with π < η is safe *and* Definition 5
resilient (the theorem).  One discretisation nuance is expected and
documented: the paper's expiration window ``[r − η, r]`` is inclusive
(η + 1 rounds wide), so the boundary run π = η still holds empirically
— the last pre-asynchrony votes sit exactly at the window edge — and
forks appear from π = η + 1 onward.
"""

from repro.analysis import check_asynchrony_resilience, check_safety, format_table
from repro.harness import run_tob
from repro.workloads import split_vote_attack_scenario


#: Machine-readable run configuration (recorded in BENCH_*.json).
BENCH_CONFIG = {"n": 20, "target_round": 10}

def run_cell(eta: int, pi: int) -> dict:
    target = 10 + pi  # keep the attacked round's pre-window identical
    config = split_vote_attack_scenario(
        "resilient", eta=eta, pi=pi, n=20, target_round=target if target % 2 == 0 else target + 1
    )
    trace = run_tob(config)
    return {
        "eta": eta,
        "pi": pi,
        "guaranteed": pi < eta,
        "safe": check_safety(trace).ok,
        "resilient": check_asynchrony_resilience(trace, ra=config.meta["ra"], pi=pi).ok,
    }


def test_pi_eta_sweep(benchmark, record):
    def experiment():
        cells = []
        for eta in (2, 4, 6):
            for pi in range(1, eta + 3):
                cells.append(run_cell(eta, pi))
        return cells

    cells = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record(
        format_table(
            ["η", "π", "π < η (guaranteed)", "safe", "Def.5 resilient"],
            [[c["eta"], c["pi"], c["guaranteed"], c["safe"], c["resilient"]] for c in cells],
            title="E3: Theorem 2 boundary sweep under the split-vote attack (n=20)",
        )
    )

    for cell in cells:
        if cell["guaranteed"]:
            assert cell["safe"] and cell["resilient"], cell
        if cell["pi"] == cell["eta"]:
            # Inclusive-window edge: one bonus round beyond the theorem.
            assert cell["safe"], cell
        if cell["pi"] > cell["eta"]:
            assert not cell["safe"], cell  # the attack lands past the edge
