"""F1 — Figure 1: allowable failure ratio β̃ versus drop-off rate γ.

Regenerates the paper's only data figure twice over:

* **Analytic**: the curve β̃ = (β − γ)/(γ(β − 2) + 1), checked against
  the closed form (1 − 3γ)/(3 − 5γ) printed on the figure, for β = 1/3
  and (ablation A3) β = 1/4.
* **Empirical**: protocol runs at churn/failure points below the curve
  must make progress and stay safe; the stall threshold γ ≥ β is
  exhibited with a steep participation decline (see bench_churn_stall
  for the full stall study).

The empirical probe is the named grid ``figure1`` from
:mod:`repro.analysis.batch`, executed through the engine's streamed
parallel sweep — one worker per churn point, each reducing its run to a
(growth, safety) row in-process; the serial-loop equivalence is pinned
by ``tests/engine/test_sweep_equivalence.py``.
"""

import os
from fractions import Fraction

from repro.analysis import format_table
from repro.analysis.batch import figure1_grid, figure1_table, grid_journal, reduce_figure1
from repro.core.bounds import beta_tilde, beta_tilde_one_third, figure1_curve
from repro.engine.sweep import sweep_rows

THIRD = Fraction(1, 3)

#: CI smoke mode: shrink the empirical probe so the bench finishes in
#: seconds while still executing the full code path.
TINY = os.environ.get("REPRO_BENCH_TINY", "0").strip() in ("1", "true", "yes")

#: Machine-readable run configuration (recorded in BENCH_*.json).
BENCH_CONFIG = {
    "tiny": TINY,
    "beta": str(THIRD),
    # A warm journal replays cells instead of computing them, so a
    # journaled run is a different experiment for the trend checker.
    "journaled": bool(os.environ.get("REPRO_SWEEP_JOURNAL_DIR")),
}


def analytic_tables() -> str:
    rows = []
    for gamma, value in figure1_curve(beta=THIRD, points=9, gamma_max=Fraction(32, 100)):
        closed_form = beta_tilde_one_third(gamma)
        assert value == closed_form  # the printed formula matches Eq. 2
        rows.append([float(gamma), float(value), float(beta_tilde(Fraction(1, 4), gamma * Fraction(25, 33)))])
    return format_table(
        ["γ", "β̃ (β=1/3)", "β̃ (β=1/4, scaled γ)"],
        rows,
        title="Figure 1 (analytic): allowable failure ratio vs drop-off rate",
    )


def empirical_probe() -> tuple[str, list[dict]]:
    """Runs below the curve: growth and safety must hold (streamed sweep)."""
    n, eta, rounds = (12, 4, 24) if TINY else (45, 4, 50)
    gammas = (0.0, 0.10) if TINY else (0.0, 0.10, 0.20, 0.28)
    outcomes = sweep_rows(
        figure1_grid(n=n, eta=eta, rounds=rounds, gammas=gammas),
        reduce_figure1,
        journal=grid_journal("figure1"),
        resume="auto",
    )
    return figure1_table(outcomes, n=n), outcomes


def test_figure1(benchmark, record):
    def experiment():
        table_a = analytic_tables()
        table_e, outcomes = empirical_probe()
        return table_a + "\n\n" + table_e, outcomes

    text, outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record(text)

    # Shape assertions (the paper's claims, not absolute numbers):
    assert beta_tilde_one_third(0) == THIRD  # β̃(0) = 1/3
    assert beta_tilde_one_third(Fraction(3, 10)) < Fraction(1, 10)  # vanishing near stall
    for outcome in outcomes:
        assert outcome["safe"], outcome
        assert outcome["growth"] > 0.25, outcome  # progress below the curve
