"""Wire throughput: frame v2 batching vs the per-frame socket path.

PR 7's multi-process substrate paid one pickle, one loop timer, and one
socket write per (payload, destination) pair — a transaction broadcast
at n = 64 cost 63 of each.  The batched send path (frame v2) coalesces
every frame due to the same worker in the same delivery slot into one
length-prefixed batch write whose payload bodies are pickled once per
fan-out and referenced by offset, and the delivery wheel arms one timer
per slot instead of one per message.

This bench drives identical sustained-submission traffic
(:class:`~repro.workloads.transactions.SubmissionRateWorkload`) through
real :class:`~repro.net.socket_transport.SocketTransport` meshes —
spawned worker processes, real sockets — in both wire modes and reports
the sustained transactions/second.  Modes are interleaved per repeat and
the best repeat per mode is compared (host CPU-frequency drift hits
both sides; a minimum-wall estimator filters it out).

Wall-clock gates run off CI only (shared runners are noisy); the
deterministic counters are pinned everywhere: one payload pickle per
fan-out, batch writes an order of magnitude rarer than frames, byte
volume collapsed, every expected frame delivered.
"""

from __future__ import annotations

import os

from repro.net.wire_bench import WireBenchConfig, run_wire_benchmark

BENCH_CONFIG = {
    "n": 64,
    "processes": 4,
    "transactions": 2048,
    "rate_per_round": 64,
    "payload_bytes": 512,
    "repeats": 3,
    "seed": 0,
}

#: Required sustained-throughput advantage of the batched wire path.
MIN_SPEEDUP = 3.0


def _config(batching: bool) -> WireBenchConfig:
    return WireBenchConfig(
        n=BENCH_CONFIG["n"],
        processes=BENCH_CONFIG["processes"],
        transactions=BENCH_CONFIG["transactions"],
        rate_per_round=BENCH_CONFIG["rate_per_round"],
        payload_bytes=BENCH_CONFIG["payload_bytes"],
        seed=BENCH_CONFIG["seed"],
        batching=batching,
    )


def test_wire_throughput_speedup(record, bench_json):
    samples: dict[bool, list[float]] = {True: [], False: []}
    best: dict[bool, dict | None] = {True: None, False: None}
    for _ in range(BENCH_CONFIG["repeats"]):
        for batching in (True, False):
            report = run_wire_benchmark(_config(batching))
            samples[batching].append(report["wall_s"])
            if best[batching] is None or report["tx_per_s"] > best[batching]["tx_per_s"]:
                best[batching] = report
    batched, unbatched = best[True], best[False]
    speedup = batched["tx_per_s"] / unbatched["tx_per_s"]

    # ------------------------------------------------------------------
    # Deterministic pins (gate everywhere, including CI)
    # ------------------------------------------------------------------
    n = BENCH_CONFIG["n"]
    transactions = BENCH_CONFIG["transactions"]
    shard_size = n // BENCH_CONFIG["processes"]
    remote_frames = transactions * (n - shard_size)
    for report in (batched, unbatched):
        totals = report["totals"]
        assert totals["submitted"] == transactions
        assert totals["received"] == transactions * (n - 1)
        assert totals["frames_sent"] == remote_frames
        assert totals["frames_received"] == remote_frames
        assert totals["misrouted"] == 0

    # The fan-out pickles each payload exactly once on the batched path
    # and once per remote destination on the legacy path.
    assert batched["totals"]["payload_encodes"] == transactions
    assert batched["totals"]["payload_reuses"] == remote_frames - transactions
    assert unbatched["totals"]["payload_encodes"] == remote_frames
    assert unbatched["totals"]["payload_reuses"] == 0

    # Batch writes are an order of magnitude rarer than the frames they
    # carry, every batch written is decoded, and the legacy path never
    # produces one.
    assert 0 < batched["totals"]["batches_sent"] <= remote_frames // 8
    assert batched["totals"]["batches_received"] == batched["totals"]["batches_sent"]
    assert unbatched["totals"]["batches_sent"] == 0

    # Interned bodies collapse the byte volume.
    assert batched["totals"]["bytes_sent"] * 4 < unbatched["totals"]["bytes_sent"]

    # Timer budget is O(slots), not O(messages): each batched worker
    # armed far fewer loop timers than the frames it scheduled.
    for worker in batched["workers"]:
        assert worker["timers_created"] is not None
        assert worker["timers_created"] * 4 < worker["sent"]

    # ------------------------------------------------------------------
    # Wall-clock gate (off CI)
    # ------------------------------------------------------------------
    if not os.environ.get("CI"):
        assert speedup >= MIN_SPEEDUP, (
            f"batched wire path {speedup:.2f}x vs the per-frame baseline; "
            f"need >= {MIN_SPEEDUP}x"
        )

    record(
        "wire throughput (sustained submission, n=%d, %d processes, %d txs)\n"
        "%-12s %10s %10s %12s %12s\n"
        "%-12s %10.0f %10.3f %12d %12d\n"
        "%-12s %10.0f %10.3f %12d %12d\n"
        "speedup %.2fx   bytes %0.1fx smaller   encodes %dx fewer"
        % (
            n,
            BENCH_CONFIG["processes"],
            transactions,
            "mode",
            "tx/s",
            "wall_s",
            "batches",
            "bytes",
            "frame v2",
            batched["tx_per_s"],
            batched["wall_s"],
            batched["totals"]["batches_sent"],
            batched["totals"]["bytes_sent"],
            "per-frame",
            unbatched["tx_per_s"],
            unbatched["wall_s"],
            unbatched["totals"]["batches_sent"],
            unbatched["totals"]["bytes_sent"],
            speedup,
            unbatched["totals"]["bytes_sent"] / batched["totals"]["bytes_sent"],
            unbatched["totals"]["payload_encodes"] // batched["totals"]["payload_encodes"],
        )
    )
    bench_json(
        samples[True],
        speedup=speedup,
        batched_tx_per_s=batched["tx_per_s"],
        unbatched_tx_per_s=unbatched["tx_per_s"],
        batched_cpu_s=batched["cpu_s"],
        unbatched_cpu_s=unbatched["cpu_s"],
        batched_bytes=batched["totals"]["bytes_sent"],
        unbatched_bytes=unbatched["totals"]["bytes_sent"],
        batches_sent=batched["totals"]["batches_sent"],
        unbatched_samples_s=samples[False],
    )
