"""E2 — the §1/§3.1 attack: one asynchronous decision round breaks MMR.

The adversary (20% of processes) equivocates votes on two conflicting
blocks during an asynchronous decision round and shows each half of the
network only one side.  Reported per protocol: safety (Definition 2),
asynchrony resilience (Definition 5), forks observed, and how many
honest processes were fooled.  The paper's claim: the original protocol
loses safety with *any* number of Byzantine processes, while the
η-expiration protocol with η > π is immune (Theorem 2).
"""

from repro.analysis import check_asynchrony_resilience, check_safety, format_table
from repro.harness import run_tob
from repro.workloads import split_vote_attack_scenario

TARGET = 10
N = 20
#: Machine-readable run configuration (recorded in BENCH_*.json).
BENCH_CONFIG = {"n": N, "target_round": TARGET}



def run_one(protocol: str, eta: int, pi: int) -> dict:
    config = split_vote_attack_scenario(protocol, eta=eta, pi=pi, n=N, target_round=TARGET)
    trace = run_tob(config)
    safety = check_safety(trace)
    resilience = check_asynchrony_resilience(trace, ra=config.meta["ra"], pi=pi)
    fooled = {
        d.pid
        for d in trace.decisions
        if d.round == TARGET + 1 and any(trace.tree.conflict(d.tip, o.tip) for o in trace.decisions if o.pid != d.pid and o.round == TARGET + 1)
    }
    return {
        "protocol": f"{protocol} (η={eta})",
        "pi": pi,
        "safe": safety.ok,
        "resilient": resilience.ok,
        "forks": len({(c.first.tip, c.second.tip) for c in safety.conflicts}),
        "fooled": len(fooled),
    }


def test_async_attack(benchmark, record):
    def experiment():
        rows = []
        for protocol, eta, pi in (
            ("mmr", 0, 1),
            ("mmr", 0, 2),
            ("resilient", 2, 1),
            ("resilient", 3, 2),
            ("resilient", 4, 3),
        ):
            rows.append(run_one(protocol, eta, pi))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record(
        format_table(
            ["protocol", "π", "safe", "Def.5 resilient", "forks", "honest fooled"],
            [[r["protocol"], r["pi"], r["safe"], r["resilient"], r["forks"], r["fooled"]] for r in rows],
            title=f"E2: split-vote attack in an asynchronous decision round (n={N}, 4 Byzantine)",
        )
    )

    mmr_rows = [r for r in rows if r["protocol"].startswith("mmr")]
    res_rows = [r for r in rows if r["protocol"].startswith("resilient")]
    assert all(not r["safe"] for r in mmr_rows), "MMR must fork under the attack"
    assert all(r["fooled"] >= N - N // 5 - 2 for r in mmr_rows), "attack must fool ~everyone"
    assert all(r["safe"] and r["resilient"] for r in res_rows), "η > π must hold the line"
    assert all(r["forks"] == 0 for r in res_rows)
