"""E1 — receive-phase delivery: flat-pool rescan vs indexed MessageBus.

The pre-engine simulator computed every receiver's deliverable set by
rescanning ``pool[cursor:]`` and filtering through a per-pid "extras"
set — a fresh list build per process, per round.  The engine's
:class:`~repro.engine.bus.MessageBus` keeps per-recipient cursors and
backlogs over one round-bucketed log, shares the synchronous tail slice
between caught-up receivers, and never rescans delivered messages.

This bench replays identical message schedules through both delivery
implementations (the legacy one is preserved verbatim below as the
baseline) and reports the speedup of the delivery layer alone:

* **synchronous**: 50 processes, 200 rounds, full participation — the
  acceptance-criteria configuration;
* **async window**: a 40-round asynchronous period with partial
  adversarial delivery — where the legacy cursor stalls and rescans
  grow with the window length.
"""

from __future__ import annotations

import os
import random
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass

from repro.analysis import format_table
from repro.engine.bus import MessageBus

#: Machine-readable run configuration (recorded in BENCH_*.json).
BENCH_CONFIG = {"n": 50, "rounds": 200, "async_window": [80, 120]}


@dataclass(frozen=True)
class Msg:
    message_id: str


class LegacyPool:
    """The pre-refactor delivery state, verbatim (the baseline)."""

    def __init__(self, n: int) -> None:
        self._pool: list[Msg] = []
        self._pool_ids: set[str] = set()
        self._cursor = {pid: 0 for pid in range(n)}
        self._extras: dict[int, set[str]] = {pid: set() for pid in range(n)}

    def begin_round(self, r: int) -> None:  # interface parity with the bus
        pass

    def publish(self, message: Msg) -> None:
        if message.message_id in self._pool_ids:
            return
        self._pool_ids.add(message.message_id)
        self._pool.append(message)

    def deliverable(self, pid: int) -> list[Msg]:
        return [
            m for m in self._pool[self._cursor[pid] :] if m.message_id not in self._extras[pid]
        ]

    def deliver_all(self, pid: int) -> list[Msg]:
        deliverable = self.deliverable(pid)
        self._cursor[pid] = len(self._pool)
        self._extras[pid].clear()
        return deliverable

    def deliver_chosen(self, pid: int, chosen: list[Msg], pending=None) -> None:
        self._extras[pid].update(m.message_id for m in chosen)


def replay(engine_cls, n: int, rounds: int, async_window=None, seed: int = 0) -> tuple[float, int]:
    """Drive one delivery engine through a fixed schedule; returns
    (seconds spent, total messages handed to receivers)."""
    engine = engine_cls(n)
    rng = random.Random(seed)
    delivered_total = 0
    started = time.perf_counter()
    for r in range(rounds):
        engine.begin_round(r)
        # Per round: one vote per process, plus a propose every other round.
        for s in range(n):
            engine.publish(Msg(f"v{r}:{s}"))
            if r % 2 == 0:
                engine.publish(Msg(f"p{r}:{s}"))
        asynchronous = async_window is not None and async_window[0] <= r < async_window[1]
        for pid in range(n):
            if asynchronous:
                pending = engine.deliverable(pid)
                chosen = [m for m in pending if rng.random() < 0.7]
                engine.deliver_chosen(pid, chosen, pending=pending)
                delivered_total += len(chosen)
            else:
                delivered_total += len(engine.deliver_all(pid))
    return time.perf_counter() - started, delivered_total


@contextmanager
def _tracing_suspended():
    """The bench conftest keeps tracemalloc running to record peaks, but
    this bench's result is a wall-clock *ratio* between two kernels with
    very different allocation profiles — the per-allocation tracing hook
    taxes the rescanning pool and the indexed bus unevenly and flattens
    the measured speedup.  The timed region runs untraced; the tracer is
    restarted afterwards so the conftest fixture stays functional."""
    was_tracing = tracemalloc.is_tracing()
    if was_tracing:
        tracemalloc.stop()
    try:
        yield
    finally:
        if was_tracing and not tracemalloc.is_tracing():
            tracemalloc.start()


def best_of(engine_cls, repeats: int = 5, **kwargs) -> tuple[float, int]:
    with _tracing_suspended():
        results = [replay(engine_cls, **kwargs) for _ in range(repeats)]
    return min(t for t, _ in results), results[0][1]


def test_engine_bus_delivery_speedup(benchmark, record):
    scenarios = {
        "synchronous 50x200": dict(n=50, rounds=200),
        "async window 50x200 (rounds 80-120)": dict(n=50, rounds=200, async_window=(80, 120)),
    }

    def experiment():
        rows = []
        speedups = {}
        for name, kwargs in scenarios.items():
            legacy_s, legacy_delivered = best_of(LegacyPool, **kwargs)
            bus_s, bus_delivered = best_of(MessageBus, **kwargs)
            assert legacy_delivered == bus_delivered  # identical delivery schedule
            speedups[name] = legacy_s / bus_s
            rows.append(
                [name, f"{legacy_s * 1e3:.1f}", f"{bus_s * 1e3:.1f}", f"{legacy_s / bus_s:.1f}x"]
            )
        table = format_table(
            ["scenario", "flat pool (ms)", "message bus (ms)", "speedup"],
            rows,
            title="Receive-phase delivery layer: flat-pool rescan vs indexed bus",
        )
        return table, speedups

    table, speedups = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record(table)

    # Wall-clock ratio assertions are enforced off CI only (shared
    # runners make them flaky — the deterministic no-rescan test below
    # is the regression gate there): the bus must never lose to the
    # rescanning pool, with a ≥2x headline on the synchronous
    # acceptance run.
    if not os.environ.get("CI"):
        for name, speedup in speedups.items():
            assert speedup > 1.0, (name, speedup)
        assert speedups["synchronous 50x200"] >= 2.0, speedups


def test_bus_does_not_rescan_under_synchrony(record):
    """Deterministic (timing-free) form of the same claim: per round the
    bus materialises one shared tail, not one list per receiver."""
    n, rounds = 50, 200
    bus = MessageBus(n)
    for r in range(rounds):
        bus.begin_round(r)
        for s in range(n):
            bus.publish(Msg(f"v{r}:{s}"))
        for pid in range(n):
            bus.deliver_all(pid)
    assert bus.stats["tail_builds"] == rounds
    assert bus.stats["tail_reuses"] == rounds * (n - 1)
    # The legacy pool materialised a fresh list per receiver per round:
    # rounds * n * per-round-messages entries; the bus touches each
    # published message once.
    assert bus.stats["messages_materialised"] == bus.total_published == rounds * n
    record(
        "synchronous 50x200: tail slices built per round = "
        f"{bus.stats['tail_builds'] / rounds:.0f} (legacy: {n}); "
        f"messages materialised = {bus.stats['messages_materialised']} "
        f"(legacy: {rounds * n * n})"
    )
