"""The large-n lane: one interned tree per run vs n private trees.

The sleepy model is most interesting when n is large and participation
is sparse and churning — exactly the regime the per-receiver
:class:`~repro.chain.tree.BlockTree` layout priced out of reach
(memory and tree maintenance scaled O(n × chain)).  This bench runs a
full n = 1000 simulation under a seeded churn schedule (~29% awake at
equilibrium) twice:

* **shared** — the default: one :class:`~repro.chain.shared.SharedChain`
  per run, every receiver holding a visibility view;
* **baseline** — ``share_chain=False``: a private tree per process, the
  historical layout.

and reports wall-clock and tracemalloc allocation peaks for both.  The
two runs must decide identically (the shared chain is a representation
change, pinned bit-for-bit by ``tests/engine/test_shared_equivalence``),
and the shared run must allocate at least ``MIN_MEM_RATIO``× less at
peak.  Wall-clock comparisons are recorded but only gated off CI
(shared runners are too noisy to gate on).

Run it directly with::

    PYTHONPATH=src python -m pytest benchmarks/bench_large_n.py -q -s
"""

from __future__ import annotations

import os
import time
import tracemalloc

from repro.crypto.signatures import KeyRegistry
from repro.engine.registry import PROTOCOLS
from repro.engine.sim_backend import SimulationBackend
from repro.engine.spec import RunSpec
from repro.sleepy.schedule import RandomChurnSchedule
from repro.sleepy.simulator import Simulation

BENCH_CONFIG = {
    "n": 1000,
    "rounds": 12,
    "protocol": "mmr",
    "churn_per_round": 0.1,
    "wake_probability": 0.04,
    "min_awake": 200,
    "initial_awake": 300,
    "seed": 0,
}

#: The acceptance floor: the shared run's allocation peak must be at
#: least this many times below the per-receiver-tree baseline's.
MIN_MEM_RATIO = 5.0


def _spec() -> RunSpec:
    c = BENCH_CONFIG
    return RunSpec(
        n=c["n"],
        rounds=c["rounds"],
        protocol=c["protocol"],
        schedule=RandomChurnSchedule(
            c["n"],
            c["churn_per_round"],
            wake_probability=c["wake_probability"],
            min_awake=c["min_awake"],
            seed=c["seed"],
            initial_awake=frozenset(range(c["initial_awake"])),
        ),
        seed=c["seed"],
    )


def _run(share_chain: bool) -> tuple[Simulation, float, int]:
    """One full run; returns (simulation, wall seconds, peak bytes).

    The bench conftest keeps tracemalloc tracing around the whole test,
    so each phase just resets the peak — never stop the tracer here.
    """
    spec = _spec()
    factory = PROTOCOLS.factory(
        spec.protocol, eta=spec.eta, beta=spec.beta, record_telemetry=False
    )
    if not tracemalloc.is_tracing():  # direct (non-pytest) invocation
        tracemalloc.start()
    tracemalloc.reset_peak()
    started = time.perf_counter()
    simulation = Simulation(
        KeyRegistry(spec.n, run_seed=spec.seed),
        spec.resolved_schedule(),
        spec.resolved_adversary(),
        spec.resolved_network(),
        factory,
        share_chain=share_chain,
    )
    SimulationBackend.drive(simulation, spec)
    wall = time.perf_counter() - started
    peak = tracemalloc.get_traced_memory()[1]
    return simulation, wall, peak


def _decisions(simulation: Simulation) -> list[tuple[int, int, int, str | None]]:
    return [(d.pid, d.round, d.view, d.tip) for d in simulation.trace.decisions]


def test_large_n_interned_tree_vs_private_trees(record, bench_json):
    shared, wall_shared, peak_shared = _run(share_chain=True)
    baseline, wall_baseline, peak_baseline = _run(share_chain=False)

    # Representation change only: identical executions, block for block.
    assert _decisions(shared) == _decisions(baseline)
    assert len(shared.chain.tree) == len(baseline.chain.tree)

    mem_ratio = peak_baseline / peak_shared
    wall_ratio = wall_baseline / wall_shared
    record(
        "large-n lane (n=%d, rounds=%d, %s, churning sleepy schedule)\n"
        "  shared:   %6.1fs  peak %7.1f MiB   (one interned tree, %d blocks)\n"
        "  baseline: %6.1fs  peak %7.1f MiB   (%d private trees)\n"
        "  peak-memory ratio %.2fx (floor %.1fx), wall-clock ratio %.2fx\n"
        "  decisions: %d (identical in both runs)"
        % (
            BENCH_CONFIG["n"],
            BENCH_CONFIG["rounds"],
            BENCH_CONFIG["protocol"],
            wall_shared,
            peak_shared / 2**20,
            len(shared.chain.tree),
            wall_baseline,
            peak_baseline / 2**20,
            BENCH_CONFIG["n"],
            mem_ratio,
            MIN_MEM_RATIO,
            wall_ratio,
            len(_decisions(shared)),
        )
    )
    bench_json(
        [wall_shared],
        mem_ratio=mem_ratio,
        wall_ratio=wall_ratio,
        peak_mem_bytes_shared=peak_shared,
        peak_mem_bytes_baseline=peak_baseline,
        wall_baseline_s=wall_baseline,
        n_blocks=len(shared.chain.tree),
    )

    # Allocation peaks are deterministic enough to gate everywhere.
    assert mem_ratio >= MIN_MEM_RATIO, (
        f"shared chain saved only {mem_ratio:.2f}x peak memory "
        f"(floor {MIN_MEM_RATIO}x) over the per-receiver-tree baseline"
    )
    if not os.environ.get("CI"):
        # Wall-clock only gates off CI: shared runners are too noisy.
        assert wall_shared < wall_baseline
