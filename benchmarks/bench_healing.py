"""E4 — Theorem 3: healing k = 1 round after asynchrony ends.

Two asynchrony shapes — a total delivery blackout and the split-vote
attack — each followed by restored synchrony.  Measured: rounds from
the healing point (``ra + π + 1``) to the next decision, and post-healing
safety (Definition 6).  The theorem promises both; the decision should
arrive within about one view.
"""

from repro.analysis import check_healing, format_table
from repro.harness import run_tob
from repro.workloads import blackout_scenario, split_vote_attack_scenario


#: Machine-readable run configuration (recorded in BENCH_*.json).
BENCH_CONFIG = {"n": 20, "ra": 9, "rounds": 32, "target_round": 10}

def test_healing(benchmark, record):
    def experiment():
        rows = []
        for pi in (1, 2, 3):
            eta = pi + 1
            config = blackout_scenario("resilient", eta=eta, pi=pi, ra=9, rounds=32)
            trace = run_tob(config)
            report = check_healing(trace, last_async_round=9 + pi, k=1)
            rows.append(["blackout", eta, pi, report.rounds_to_decision, report.safety_ok, report.ok])
        for pi in (1, 2):
            eta = pi + 2
            config = split_vote_attack_scenario("resilient", eta=eta, pi=pi, n=20, target_round=10)
            trace = run_tob(config)
            report = check_healing(trace, last_async_round=10, k=1)
            rows.append(["split-vote", eta, pi, report.rounds_to_decision, report.safety_ok, report.ok])
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record(
        format_table(
            ["asynchrony", "η", "π", "rounds to next decision", "post-healing safety", "healed"],
            rows,
            title="E4: healing after asynchrony (Theorem 3, k = 1)",
        )
    )
    for row in rows:
        assert row[5], row  # healed
        assert row[3] is not None and row[3] <= 4, row  # within ~one view
