"""E9 — the η trade-off: asynchrony tolerance vs churn/failure headroom.

§3 step 1 asks deployments to calibrate η.  This bench quantifies both
sides of the dial at a fixed 2%-per-round churn rate:

* analytic — tolerated asynchrony π = η − 1, window churn γ = η·2%, and
  the resulting failure headroom β̃(γ) (Equation 2);
* measured — chain growth and the longest decision stall of real runs
  with that churn and a β̃-sized crash adversary.

Shape: π grows linearly with η while β̃ (and with it the tolerable
adversary) shrinks to nothing around η ≈ 16 (where γ → 1/3).
"""

from fractions import Fraction

from repro.analysis import chain_growth_rate, check_safety, decision_rounds, format_table
from repro.core.bounds import beta_tilde, max_resilient_pi
from repro.harness import TOBRunConfig, run_tob
from repro.sleepy.adversary import CrashAdversary
from repro.workloads import churn_walk

N, ROUNDS = 30, 50
PER_ROUND_CHURN = Fraction(2, 100)
#: Machine-readable run configuration (recorded in BENCH_*.json).
BENCH_CONFIG = {"n": N, "rounds": ROUNDS, "churn_per_round": str(PER_ROUND_CHURN)}



def run_eta(eta: int) -> dict:
    gamma = min(PER_ROUND_CHURN * eta, Fraction(32, 100))
    allowed = beta_tilde(Fraction(1, 3), gamma)
    byz = max(0, int(allowed * N) - 1)
    trace = run_tob(
        TOBRunConfig(
            n=N,
            rounds=ROUNDS,
            protocol="resilient",
            eta=eta,
            schedule=churn_walk(N, eta=eta, gamma=float(gamma), seed=eta),
            adversary=CrashAdversary(list(range(N - byz, N))) if byz else None,
        )
    )
    rounds = decision_rounds(trace)
    gaps = [b - a for a, b in zip(rounds, rounds[1:])]
    return {
        "eta": eta,
        "pi": max_resilient_pi(eta),
        "gamma": float(gamma),
        "beta_tilde": float(allowed),
        "byz": byz,
        "growth": chain_growth_rate(trace, start=8),
        "stall": max(gaps) if gaps else ROUNDS,
        "safe": check_safety(trace).ok,
    }


def test_eta_tradeoff(benchmark, record):
    def experiment():
        return [run_eta(eta) for eta in (1, 2, 4, 8, 12, 16)]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record(
        format_table(
            ["η", "π tolerated", "γ per window", "β̃", "Byz run", "growth", "longest stall", "safe"],
            [
                [r["eta"], r["pi"], r["gamma"], r["beta_tilde"], r["byz"], r["growth"], r["stall"], r["safe"]]
                for r in rows
            ],
            title=f"E9: the η dial at {float(PER_ROUND_CHURN):.0%} per-round churn (n={N}, β=1/3)",
        )
    )

    # Monotone shape: π up, β̃ down.
    pis = [r["pi"] for r in rows]
    betas = [r["beta_tilde"] for r in rows]
    assert pis == sorted(pis)
    assert betas == sorted(betas, reverse=True)
    # Every properly-sized run is safe and makes progress.
    for r in rows:
        assert r["safe"], r
        assert r["growth"] > 0.30, r
