"""E9 — deep-chain GA tally: per-round ancestor re-walks vs the
incremental prefix-count tally.

The last named hot path from the profiling roadmap: ``tally_votes``
re-walked every vote's ancestor chain from scratch each round —
O(votes · depth) per receiver per round — even though consecutive
rounds tally nearly the same vote set.  The indexed chain core replaces
the recount with a :class:`~repro.chain.tally.PrefixTally` held across
rounds: each round pays only for the votes that actually moved (count
updates along the old-tip→new-tip path, found via the O(log d) LCA),
and grading is a scan of the counted nodes.

This bench replays identical per-round vote windows at the acceptance
configuration (n = 200 voters, chain depth ≥ 500) through both paths —
the pre-refactor walk-based tally is preserved verbatim below — and
asserts the outputs stay bit-identical while timing the difference.

Wall-clock gates run off CI only (shared runners are noisy); CI pins
output equality and uploads the measured numbers for the trend checker.
"""

from __future__ import annotations

import os
import time
from collections import Counter

from repro.chain.block import GENESIS_TIP, Block, genesis_block
from repro.chain.tally import PrefixTally
from repro.chain.tree import BlockTree

BENCH_CONFIG = {
    "n": 200,
    "depth": 520,
    "rounds": 40,
    "fork_voters": 24,
    "stagger": 48,
    "repeats": 5,
}


# ----------------------------------------------------------------------
# The pre-refactor tally, verbatim (the walk-based baseline)
# ----------------------------------------------------------------------
def legacy_tally_votes(tree, votes, beta):
    """``tally_votes`` as it stood before the indexed chain core."""
    m = len(votes)
    direct = Counter(votes.values())
    counts: Counter = Counter()
    for tip, weight in direct.items():
        node = tip
        while node is not GENESIS_TIP:
            counts[node] += weight
            node = tree.parent(node)
        counts[GENESIS_TIP] += weight

    num, den = beta.numerator, beta.denominator
    grade1, grade0 = [], []
    for tip, count in counts.items():
        if den * count > (den - num) * m:
            grade1.append(tip)
        elif den * count > num * m:
            grade0.append(tip)

    def sort_key(tip):
        return (tree.depth(tip), tip if tip is not None else "")

    from repro.chain.tally import GAOutput

    return GAOutput(
        grade1=tuple(sorted(grade1, key=sort_key)),
        grade0=tuple(sorted(grade0, key=sort_key)),
        m=m,
    )


# ----------------------------------------------------------------------
# Workload: a deep chain, a minority fork, and slowly advancing votes
# ----------------------------------------------------------------------
def build_chain(tree, parent, length, salt):
    ids = []
    for i in range(length):
        block = Block(parent=parent, proposer=i % 7, view=i + 1, salt=salt)
        tree.add(block)
        ids.append(block.block_id)
        parent = block.block_id
    return ids


def build_workload():
    """The tree plus one vote window per round.

    The majority tracks the main chain's advancing tip, staggered over
    many distinct blocks (an η-window over a churning network tallies
    the latest votes of processes at many different positions, not one
    agreed tip); a minority camps on a fork that split off near the
    tip.  Per-round deltas therefore exercise both short moves along
    the chain and LCA moves across the fork, while the walk-based
    baseline re-walks every distinct voted tip's full ancestor chain.
    """
    n, depth, rounds = BENCH_CONFIG["n"], BENCH_CONFIG["depth"], BENCH_CONFIG["rounds"]
    fork_voters, stagger = BENCH_CONFIG["fork_voters"], BENCH_CONFIG["stagger"]
    tree = BlockTree([genesis_block()])
    main = build_chain(tree, genesis_block().block_id, depth + rounds, salt=0)
    fork = build_chain(tree, main[depth - 40], rounds, salt=1)

    windows = []
    for r in range(rounds):
        votes = {}
        for pid in range(n - fork_voters):
            votes[pid] = main[depth + r - (pid % stagger)]
        for j, pid in enumerate(range(n - fork_voters, n)):
            votes[pid] = fork[min(r + (j % 12), len(fork) - 1)]
        windows.append(votes)
    return tree, windows


def replay_legacy(tree, windows, beta):
    started = time.perf_counter()
    outputs = [legacy_tally_votes(tree, votes, beta) for votes in windows]
    return time.perf_counter() - started, outputs


def replay_incremental(tree, windows, beta):
    tally = PrefixTally(tree)
    started = time.perf_counter()
    outputs = []
    for votes in windows:
        tally.set_votes(votes)
        outputs.append(tally.grade(beta))
    return time.perf_counter() - started, outputs


def test_deep_chain_tally_speedup(record, bench_json):
    from repro.chain.tally import DEFAULT_BETA

    n, depth, rounds = BENCH_CONFIG["n"], BENCH_CONFIG["depth"], BENCH_CONFIG["rounds"]
    repeats = BENCH_CONFIG["repeats"]
    tree, windows = build_workload()

    legacy_samples, incremental_samples = [], []
    for _ in range(repeats):
        legacy_s, legacy_out = replay_legacy(tree, windows, DEFAULT_BETA)
        incremental_s, incremental_out = replay_incremental(tree, windows, DEFAULT_BETA)
        legacy_samples.append(legacy_s)
        incremental_samples.append(incremental_s)
        # The refactor is semantically invisible: every round's grading
        # is bit-identical to the walk-based recount.
        assert incremental_out == legacy_out

    legacy_best, incremental_best = min(legacy_samples), min(incremental_samples)
    speedup = legacy_best / incremental_best
    per_round_us = incremental_best / rounds * 1e6
    table = "\n".join(
        [
            f"deep-chain GA tally, n={n}, depth={depth}, rounds={rounds} (best of {repeats}):",
            f"  walk-based recount : {legacy_best * 1e3:8.1f} ms",
            f"  incremental tally  : {incremental_best * 1e3:8.1f} ms",
            f"  speedup            : {speedup:8.1f}x",
            f"  per-round tally    : {per_round_us:8.1f} us (incremental)",
        ]
    )
    record(table)
    bench_json(
        incremental_samples,
        legacy_samples_s=legacy_samples,
        legacy_median_s=sorted(legacy_samples)[len(legacy_samples) // 2],
        speedup_best=speedup,
    )

    # Wall-clock gate off CI only (the acceptance criterion: ≥3x on deep chains).
    if not os.environ.get("CI"):
        assert speedup >= 3.0, f"deep-chain tally speedup regressed: {speedup:.2f}x"
