"""A1 — ablation: why Equation 2 lowers β to β̃.

§2.3: using unexpired votes of asleep processes hands the adversary
extra power, so the failure ratio must drop from β to
β̃ = (β − γ)/(γ(β − 2) + 1).  What if a deployment ignored that and kept
sizing its adversary tolerance by the original β?

Setup: a *stale-vote amplification* attack.  A set of honest processes
votes, goes to sleep, and their unexpired votes linger on an old branch
while Byzantine processes keep re-voting that same old branch forever;
fresh honest processes try to advance a new one.  Both sizings suffer
the transient ≈ η-round stall that the sleep spike itself causes (the
sleepers' votes must expire), but then they diverge: with the adversary
sized under β̃ (Equation 2) progress resumes at full cadence, while an
adversary sized between β̃ and β — legal by the original protocol's
accounting! — keeps the fresh votes pinned below the 2/3 quorum and the
chain limps at a fraction of its cadence indefinitely.

Both sizings are the named grid ``ablation-beta`` from
:mod:`repro.analysis.batch` (a :class:`StaleTipChooser` adversary per
cell), executed side by side through the engine's streamed parallel
sweep with in-worker reduction to cadence rows.
"""

import os
from fractions import Fraction

from repro.analysis.batch import (
    ablation_beta_grid,
    ablation_beta_sizings,
    ablation_beta_table,
    grid_journal,
    reduce_ablation_beta,
)
from repro.core.bounds import beta_tilde
from repro.engine.sweep import sweep_rows

N, ROUNDS, ETA = 30, 40, 6
SLEEP_AT = 14  # a third of the honest population sleeps after this round
SLEEPERS = 9
#: Machine-readable run configuration (recorded in BENCH_*.json).
BENCH_CONFIG = {
    "n": N,
    "rounds": ROUNDS,
    "eta": ETA,
    "sleep_at": SLEEP_AT,
    "streamed": True,
    # A warm journal replays cells instead of computing them, so a
    # journaled run is a different experiment for the trend checker.
    "journaled": bool(os.environ.get("REPRO_SWEEP_JOURNAL_DIR")),
}


def test_ablation_beta(benchmark, record):
    def experiment():
        grid = ablation_beta_grid(
            n=N, rounds=ROUNDS, eta=ETA, sleep_at=SLEEP_AT, sleepers=SLEEPERS
        )
        return sweep_rows(
            grid, reduce_ablation_beta, journal=grid_journal("ablation-beta"), resume="auto"
        )

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record(ablation_beta_table(rows, n=N, eta=ETA, sleepers=SLEEPERS))

    under, over, gamma = ablation_beta_sizings(N, SLEEPERS)
    assert [row["byz"] for row in rows] == [under, over]
    assert beta_tilde(Fraction(1, 3), gamma) > 0

    # Equation 2 sizing: full cadence after the transient.  β sizing:
    # liveness collapses to a fraction of it.  (Safety is never the
    # casualty here — Eq. 2 protects liveness headroom.)
    assert rows[0]["safe"] and rows[1]["safe"]
    assert rows[0]["post_decisions"] >= 3 * max(rows[1]["post_decisions"], 1), rows
