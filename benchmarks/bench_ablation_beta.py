"""A1 — ablation: why Equation 2 lowers β to β̃.

§2.3: using unexpired votes of asleep processes hands the adversary
extra power, so the failure ratio must drop from β to
β̃ = (β − γ)/(γ(β − 2) + 1).  What if a deployment ignored that and kept
sizing its adversary tolerance by the original β?

Setup: a *stale-vote amplification* attack.  A set of honest processes
votes, goes to sleep, and their unexpired votes linger on an old branch
while Byzantine processes keep re-voting that same old branch forever;
fresh honest processes try to advance a new one.  Both sizings suffer
the transient ≈ η-round stall that the sleep spike itself causes (the
sleepers' votes must expire), but then they diverge: with the adversary
sized under β̃ (Equation 2) progress resumes at full cadence, while an
adversary sized between β̃ and β — legal by the original protocol's
accounting! — keeps the fresh votes pinned below the 2/3 quorum and the
chain limps at a fraction of its cadence indefinitely.
"""

from fractions import Fraction

from repro.analysis import check_safety, decision_rounds, format_table
from repro.core.bounds import beta_tilde
from repro.harness import TOBRunConfig, run_tob
from repro.sleepy.adversary import StaticVoteAdversary
from repro.sleepy.schedule import TableSchedule

N, ROUNDS, ETA = 30, 40, 6
SLEEP_AT = 14  # a third of the honest population sleeps after this round
#: Machine-readable run configuration (recorded in BENCH_*.json).
BENCH_CONFIG = {"n": N, "rounds": ROUNDS, "eta": ETA, "sleep_at": SLEEP_AT}



def run_sized(byz_count: int) -> dict:
    byz = list(range(N - byz_count, N))
    sleepers = set(range(N - byz_count - 9, N - byz_count))

    # After SLEEP_AT, the sleepers are gone; their last votes linger for
    # η more rounds.  Byzantine processes keep voting for the deepest
    # block from before the sleep point (a stale branch).
    awake_after = set(range(N)) - sleepers - set(byz)
    schedule = TableSchedule(
        N, {r: awake_after for r in range(SLEEP_AT, ROUNDS + 1)}, default=set(range(N)) - set(byz)
    )

    stale_tip: dict = {}

    def choose_stale(r, ctx):
        if r < SLEEP_AT:
            return None  # silent while everyone is awake (vote empty log)
        if "tip" not in stale_tip:
            stale_tip["tip"] = ctx.deepest_tip()
        return stale_tip["tip"]

    trace = run_tob(
        TOBRunConfig(
            n=N,
            rounds=ROUNDS,
            protocol="resilient",
            eta=ETA,
            schedule=schedule,
            adversary=StaticVoteAdversary(byz, choose_tip=choose_stale),
        )
    )
    rounds = decision_rounds(trace)
    post = [r for r in rounds if r > SLEEP_AT]
    gaps = [b - a for a, b in zip(post, post[1:])]
    return {
        "byz": byz_count,
        "post_decisions": len(post),
        "longest_stall": max(gaps, default=ROUNDS - SLEEP_AT if not post else 0),
        "safe": check_safety(trace).ok,
    }


def test_ablation_beta(benchmark, record):
    gamma = Fraction(9, 30)  # 9 of ~30 recently-awake honest go to sleep
    tilde = beta_tilde(Fraction(1, 3), gamma)

    def experiment():
        under_tilde = max(1, int(tilde * N) - 1)
        over_tilde = int(Fraction(1, 3) * N) - 1  # legal under plain β!
        return [run_sized(under_tilde), run_sized(over_tilde)], under_tilde, over_tilde

    rows, under, over = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record(
        format_table(
            ["adversary size", "sized by", "decisions after sleep", "longest stall", "safe"],
            [
                [rows[0]["byz"], f"β̃={float(tilde):.3f} (Eq. 2)", rows[0]["post_decisions"], rows[0]["longest_stall"], rows[0]["safe"]],
                [rows[1]["byz"], "β=1/3 (unadjusted)", rows[1]["post_decisions"], rows[1]["longest_stall"], rows[1]["safe"]],
            ],
            title=f"A1: stale-vote amplification, n={N}, η={ETA}, 9 sleepers (γ={float(gamma):.2f})",
        )
    )

    # Equation 2 sizing: full cadence after the transient.  β sizing:
    # liveness collapses to a fraction of it.  (Safety is never the
    # casualty here — Eq. 2 protects liveness headroom.)
    assert rows[0]["safe"] and rows[1]["safe"]
    assert rows[0]["post_decisions"] >= 3 * max(rows[1]["post_decisions"], 1), rows
