"""Shared benchmark fixtures.

Every bench regenerates one paper table/figure/claim (see DESIGN.md §4)
and reports it three ways:

* printed to stdout (visible with ``pytest benchmarks/ --benchmark-only -s``
  or in the teed bench output),
* written to ``benchmarks/results/<bench>.txt`` so EXPERIMENTS.md can
  embed the measured tables verbatim, and
* aggregated into a machine-readable ``BENCH_<name>.json`` at the repo
  root (one file per bench module; per-test median/p95 seconds plus the
  module's ``BENCH_CONFIG``), so the perf trajectory is comparable
  across PRs and CI uploads the numbers as artifacts.

JSON emission is automatic: an autouse fixture wall-times every bench
test and records one sample.  Benches that repeat their measured kernel
(receive path, bus replay) call the ``bench_json`` fixture instead with
their real per-repeat samples and exact config.

Every entry also carries ``peak_mem_bytes``: the autouse fixture traces
the test under :mod:`tracemalloc` and merges the allocation peak into
the entry (including entries the test wrote itself via ``bench_json``).
Timings therefore include tracemalloc's tracing overhead — uniformly,
on both sides of any ``check_trend.py`` comparison, since the committed
baselines are produced by the same fixture.  Memory trends are
compared by ``check_trend.py`` as a non-fatal ``mem WARN`` lane.
"""

from __future__ import annotations

import json
import math
import statistics
import time
import tracemalloc
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).resolve().parents[1]

#: Tests that wrote their own (richer) JSON entry this session; the
#: autouse wall-clock fallback skips them.
_EXPLICIT_ENTRIES: set[str] = set()


@pytest.fixture
def record(request):
    """Returns ``record(text)``: print + persist a bench's result table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    target = RESULTS_DIR / f"{request.node.name}.txt"

    def _record(text: str) -> None:
        print()
        print(text)
        target.write_text(text + "\n")

    return _record


def _p95(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, math.ceil(0.95 * len(ordered)) - 1)]


def _bench_name(request) -> str:
    return request.node.module.__name__.rsplit(".", 1)[-1].removeprefix("bench_")


def write_bench_entry(
    bench_name: str,
    test_name: str,
    samples_s: list[float],
    config: dict,
    extra: dict | None = None,
) -> Path:
    """Merge one test's measurement into ``BENCH_<bench_name>.json``."""
    path = REPO_ROOT / f"BENCH_{bench_name}.json"
    payload = {"bench": bench_name, "results": {}}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing.get("results"), dict):
                payload = existing
        except (json.JSONDecodeError, OSError):
            pass
    payload["bench"] = bench_name
    payload["results"][test_name] = {
        "median_s": statistics.median(samples_s),
        "p95_s": _p95(samples_s),
        "samples_s": samples_s,
        "config": config,
        **(extra or {}),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def _annotate_bench_entry(bench_name: str, test_name: str, **extra) -> None:
    """Merge extra keys into an already-written ``BENCH_*.json`` entry."""
    path = REPO_ROOT / f"BENCH_{bench_name}.json"
    try:
        payload = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError):
        return
    entry = payload.get("results", {}).get(test_name)
    if not isinstance(entry, dict):
        return
    entry.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture
def bench_json(request):
    """``bench_json(samples_s, config=None, **extra)``: explicit JSON entry.

    ``samples_s`` are the per-repeat seconds of the measured kernel;
    ``config`` defaults to the module's ``BENCH_CONFIG``; ``extra``
    lands verbatim in the entry (speedups, counters, table paths).
    """

    def _write(samples_s: list[float], config: dict | None = None, **extra) -> Path:
        _EXPLICIT_ENTRIES.add(request.node.nodeid)
        if config is None:
            config = dict(getattr(request.node.module, "BENCH_CONFIG", {}))
        return write_bench_entry(
            _bench_name(request), request.node.name, list(samples_s), config, extra
        )

    return _write


@pytest.fixture(autouse=True)
def _bench_json_fallback(request):
    """Wall-time and memory-trace every bench test into ``BENCH_*.json``.

    tracemalloc runs around the whole test; the allocation peak lands
    in the entry as ``peak_mem_bytes``.  Tests that sample memory
    themselves (e.g. the large-n lane) may reset the peak mid-test but
    should leave the tracer running.  The one sanctioned exception:
    benches whose *result* is a wall-clock ratio between two kernels
    (e.g. the bus-vs-pool replay) may suspend tracing around the timed
    region — tracing taxes the two sides unevenly and distorts the
    ratio — provided they restart it before returning, so the entry
    still gets a (then partial) peak.
    """
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    started = time.perf_counter()
    yield
    elapsed = time.perf_counter() - started
    peak = tracemalloc.get_traced_memory()[1] if tracemalloc.is_tracing() else 0
    if not was_tracing and tracemalloc.is_tracing():
        tracemalloc.stop()
    if request.node.nodeid in _EXPLICIT_ENTRIES:
        # The test wrote its own entry mid-run; fold the peak in now.
        _annotate_bench_entry(
            _bench_name(request), request.node.name, peak_mem_bytes=peak
        )
        return
    config = dict(getattr(request.node.module, "BENCH_CONFIG", {}))
    write_bench_entry(
        _bench_name(request),
        request.node.name,
        [elapsed],
        config,
        extra={"peak_mem_bytes": peak},
    )
