"""Shared benchmark fixtures.

Every bench regenerates one paper table/figure/claim (see DESIGN.md §4)
and reports it two ways:

* printed to stdout (visible with ``pytest benchmarks/ --benchmark-only -s``
  or in the teed bench output), and
* written to ``benchmarks/results/<bench>.txt`` so EXPERIMENTS.md can
  embed the measured tables verbatim.

The pytest-benchmark fixture wraps the experiment body, so the timing
columns of the benchmark summary measure the full experiment.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record(request):
    """Returns ``record(text)``: print + persist a bench's result table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    target = RESULTS_DIR / f"{request.node.name}.txt"

    def _record(text: str) -> None:
        print()
        print(text)
        target.write_text(text + "\n")

    return _record
