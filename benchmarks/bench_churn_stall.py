"""E7 — the stall threshold: expiration makes churn a liveness resource.

Figure 1's caption: "At a drop-off rate of γ ≥ 1/3, the system may
stall even without failures."  §2.3 explains why: if a β fraction of the
last-η-rounds participants falls asleep, the awake cannot meet a 1 − β
quorum over all unexpired votes.

Demonstrated with a steep participation decline (60 → 15 over 5 rounds,
no Byzantine processes at all):

* the original MMR (η = 0, fully dynamic) sails through at full cadence;
* the η-expiration protocol stalls for ≈ η rounds — until the votes of
  the departed expire — and then resumes;
* a gentle decline (γ per window below the curve) causes no stall for
  either.

This is the trade-off the paper asks operators to price in (§3 step 1).
"""

from repro.analysis import check_safety, decision_rounds, format_table
from repro.harness import TOBRunConfig, run_tob
from repro.workloads import RampSchedule

N, ROUNDS = 60, 44
DROP_START = 10
#: Machine-readable run configuration (recorded in BENCH_*.json).
BENCH_CONFIG = {"n": N, "rounds": ROUNDS, "drop_start": DROP_START}



def run_decline(protocol: str, eta: int, length: int) -> dict:
    schedule = RampSchedule(N, floor_fraction=0.25, start=DROP_START, length=length)
    trace = run_tob(
        TOBRunConfig(n=N, rounds=ROUNDS, protocol=protocol, eta=eta, schedule=schedule)
    )
    rounds = decision_rounds(trace)
    gaps = [b - a for a, b in zip(rounds, rounds[1:])]
    stall = max(gaps) if gaps else ROUNDS
    return {
        "protocol": f"{protocol} (η={eta})",
        "decline": f"{length} rounds",
        "longest stall": stall,
        "decisions": len(rounds),
        "safe": check_safety(trace).ok,
    }


def test_churn_stall(benchmark, record):
    def experiment():
        rows = []
        for protocol, eta in (("mmr", 0), ("resilient", 4), ("resilient", 8)):
            rows.append(run_decline(protocol, eta, length=5))  # steep: γ ≥ 1/3 per window
        for protocol, eta in (("mmr", 0), ("resilient", 4)):
            rows.append(run_decline(protocol, eta, length=30))  # gentle: below the curve
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record(
        format_table(
            ["protocol", "decline 60→15 over", "longest stall (rounds)", "decisions", "safe"],
            [[r["protocol"], r["decline"], r["longest stall"], r["decisions"], r["safe"]] for r in rows],
            title="E7: stall at the churn threshold (no Byzantine processes)",
        )
    )

    by_key = {(r["protocol"], r["decline"]): r for r in rows}
    steep_mmr = by_key[("mmr (η=0)", "5 rounds")]
    steep_e4 = by_key[("resilient (η=4)", "5 rounds")]
    steep_e8 = by_key[("resilient (η=8)", "5 rounds")]
    # MMR never stalls; the η protocols stall ≈ η rounds, longer for larger η.
    assert steep_mmr["longest stall"] == 2
    assert steep_e4["longest stall"] >= 4
    assert steep_e8["longest stall"] > steep_e4["longest stall"]
    # Everyone safe throughout; gentle decline stalls nobody.
    assert all(r["safe"] for r in rows)
    assert by_key[("resilient (η=4)", "30 rounds")]["longest stall"] == 2
