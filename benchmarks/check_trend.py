"""Bench trend checker: fail CI on a >2x median regression.

Every bench writes a machine-readable ``BENCH_<name>.json`` at the repo
root (median/p95 seconds per test plus the run configuration, see
``benchmarks/conftest.py``), and the previous run's files are committed.
This script diffs a fresh set of those files against the committed
baseline and exits non-zero when any test's median regressed by more
than ``--factor`` (default 2x):

    # snapshot the committed numbers, rerun the benches, compare
    mkdir -p .bench-baseline && cp BENCH_*.json .bench-baseline/
    python -m pytest benchmarks/ -q
    python benchmarks/check_trend.py --baseline .bench-baseline --fresh .

Comparison rules:

* only ``(bench, test)`` entries present on *both* sides are compared —
  new benches and newly-removed tests are reported, never failed;
* entries whose recorded run ``config`` differs between the two sides
  are skipped (a bench rerun at a different scale is a different
  experiment, not a regression);
* medians below ``--min-seconds`` (default 5 ms) are skipped: at that
  scale shared-runner jitter swamps any real signal;
* improvements are reported alongside regressions, so the uploaded CI
  log doubles as the perf-trajectory summary;
* p95 is tracked too, but as a **non-fatal warning**: a >``--factor``
  p95 regression prints a ``p95 WARN`` line without failing the run —
  tail latency on shared runners is too noisy to gate on, yet a
  sustained drift is worth seeing in the log.  The median stays the
  gate.
* peak allocation (``peak_mem_bytes``, traced by the bench conftest's
  tracemalloc fixture) gets the same treatment: a >``--factor`` growth
  on a config-matched entry prints a ``mem WARN`` line, never fails.
  Peaks below ``--min-mem-bytes`` (default 1 MiB) on both sides are
  interpreter noise and stay silent.

The committed baselines encode the speed class of the machine that
wrote them.  If the CI runner fleet (or the committing machine) changes
speed class, the gate will fire without a real regression — the fix is
to refresh the committed ``BENCH_*.json`` from the CI job's own
uploaded artifacts, re-baselining the trend on CI hardware.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Sequence

DEFAULT_FACTOR = 2.0
DEFAULT_MIN_SECONDS = 0.005
DEFAULT_MIN_MEM_BYTES = 1 << 20

#: One loaded entry: (median s, p95 s | None, peak bytes | None, config).
Entry = tuple[float, "float | None", "float | None", dict]


def load_medians(directory: Path) -> dict[tuple[str, str], Entry]:
    """``(bench, test) -> (median, p95, peak bytes, config)`` over ``BENCH_*.json``."""
    medians: dict[tuple[str, str], Entry] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            continue  # a torn or foreign file is not a regression
        bench = payload.get("bench")
        results = payload.get("results")
        if not isinstance(bench, str) or not isinstance(results, dict):
            continue
        for test_name, entry in results.items():
            median = entry.get("median_s") if isinstance(entry, dict) else None
            if isinstance(median, (int, float)) and median >= 0:
                config = entry.get("config")
                p95 = entry.get("p95_s")
                mem = entry.get("peak_mem_bytes")
                medians[(bench, test_name)] = (
                    float(median),
                    float(p95) if isinstance(p95, (int, float)) and p95 >= 0 else None,
                    float(mem) if isinstance(mem, (int, float)) and mem >= 0 else None,
                    config if isinstance(config, dict) else {},
                )
    return medians


def compare(
    baseline: dict[tuple[str, str], Entry],
    fresh: dict[tuple[str, str], Entry],
    factor: float = DEFAULT_FACTOR,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    min_mem_bytes: float = DEFAULT_MIN_MEM_BYTES,
) -> dict[str, list]:
    """Classify every entry; ``regressions`` non-empty means failure.

    ``p95_warnings`` collects >``factor`` p95 regressions on
    config-matched entries — reported, never failed (the median is the
    gate; tail latency only warns).  ``mem_warnings`` does the same for
    ``peak_mem_bytes`` growth beyond ``factor`` (above the
    ``min_mem_bytes`` floor).
    """
    report: dict[str, list] = {
        "regressions": [],
        "improvements": [],
        "steady": [],
        "skipped_small": [],
        "config_changed": [],
        "p95_warnings": [],
        "mem_warnings": [],
        "baseline_only": sorted(set(baseline) - set(fresh)),
        "fresh_only": sorted(set(fresh) - set(baseline)),
    }
    for key in sorted(set(baseline) & set(fresh)):
        (old, old_p95, old_mem, old_config) = baseline[key]
        (new, new_p95, new_mem, new_config) = fresh[key]
        if old_config != new_config:
            report["config_changed"].append((key, old, new))
            continue
        # The p95 check applies its own noise floor, *before* the median
        # floor below: a sub-floor median with a large above-floor tail
        # is exactly the drift worth warning about.
        if old_p95 is not None and new_p95 is not None and max(old_p95, new_p95) >= min_seconds:
            p95_ratio = new_p95 / old_p95 if old_p95 > 0 else float("inf")
            if p95_ratio > factor:
                report["p95_warnings"].append((key, old_p95, new_p95, p95_ratio))
        # Memory has its own (byte) floor and, like p95, is independent
        # of the median floor: a fast bench that balloons still warns.
        if old_mem is not None and new_mem is not None and max(old_mem, new_mem) >= min_mem_bytes:
            mem_ratio = new_mem / old_mem if old_mem > 0 else float("inf")
            if mem_ratio > factor:
                report["mem_warnings"].append((key, old_mem, new_mem, mem_ratio))
        if max(old, new) < min_seconds:
            report["skipped_small"].append((key, old, new))
            continue
        ratio = new / old if old > 0 else float("inf")
        row = (key, old, new, ratio)
        if ratio > factor:
            report["regressions"].append(row)
        elif ratio < 1.0 / factor:
            report["improvements"].append(row)
        else:
            report["steady"].append(row)
    return report


def render(report: dict[str, list], factor: float) -> str:
    lines = []
    for label, rows in (
        ("REGRESSION", report["regressions"]),
        ("improved", report["improvements"]),
        ("steady", report["steady"]),
    ):
        for (bench, test), old, new, ratio in rows:
            lines.append(
                f"{label:>10}  {bench}::{test}  {old * 1000:.1f}ms -> {new * 1000:.1f}ms"
                f"  ({ratio:.2f}x)"
            )
    for (bench, test), old, new in report["config_changed"]:
        lines.append(f"{'config':>10}  {bench}::{test}  run configuration changed, skipped")
    for (bench, test), old, new in report["skipped_small"]:
        lines.append(f"{'tiny':>10}  {bench}::{test}  below the noise floor, skipped")
    for bench, test in report["baseline_only"]:
        lines.append(f"{'gone':>10}  {bench}::{test}  present in baseline only")
    for bench, test in report["fresh_only"]:
        lines.append(f"{'new':>10}  {bench}::{test}  present in fresh run only")
    for (bench, test), old, new, ratio in report.get("p95_warnings", []):
        lines.append(
            f"{'p95 WARN':>10}  {bench}::{test}  {old * 1000:.1f}ms -> {new * 1000:.1f}ms"
            f"  ({ratio:.2f}x, non-fatal: median is the gate)"
        )
    for (bench, test), old, new, ratio in report.get("mem_warnings", []):
        lines.append(
            f"{'mem WARN':>10}  {bench}::{test}  {old / 2**20:.1f}MiB -> {new / 2**20:.1f}MiB"
            f"  ({ratio:.2f}x, non-fatal: median is the gate)"
        )
    verdict = (
        f"FAIL: {len(report['regressions'])} median regression(s) beyond {factor:g}x"
        if report["regressions"]
        else f"OK: no median regression beyond {factor:g}x"
    )
    warnings = len(report.get("p95_warnings", ())) + len(report.get("mem_warnings", ()))
    if warnings:
        verdict += f" ({warnings} p95/mem warning(s), non-fatal)"
    lines.append(verdict)
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True, help="directory of committed BENCH_*.json")
    parser.add_argument("--fresh", type=Path, required=True, help="directory of freshly-written BENCH_*.json")
    parser.add_argument("--factor", type=float, default=DEFAULT_FACTOR, help="median ratio that fails (default 2.0)")
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="skip entries whose medians are both below this (noise floor)",
    )
    parser.add_argument(
        "--min-mem-bytes",
        type=float,
        default=DEFAULT_MIN_MEM_BYTES,
        help="skip mem warnings when both peaks are below this (noise floor)",
    )
    args = parser.parse_args(argv)
    if args.factor <= 1.0:
        parser.error("--factor must be > 1")
    report = compare(
        load_medians(args.baseline),
        load_medians(args.fresh),
        factor=args.factor,
        min_seconds=args.min_seconds,
        min_mem_bytes=args.min_mem_bytes,
    )
    print(render(report, args.factor))
    return 1 if report["regressions"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
