"""A2 — ablation: explicit churn bound (Eqs. 1+2) vs η-sleepiness (Eq. 3).

The paper bounds churn and failures separately (Equations 1 and 2) and
notes that D'Amato–Zanolini's η-sleepy model instead makes the single
assumption |H_r| > (1 − β)·|O_{r−η,r}| (Equation 3).  §3.3 shows
Eqs. 1+2 imply the extended-GA premise the proofs need — the same
inequality Eq. 3 states directly.

This bench samples random participation traces and classifies each
round by which admission checks it passes, measuring (a) that the
churn-bound model is the more restrictive one in practice (every
Eq. 1+2 round also passes Eq. 3) and (b) how many Eq. 3-admissible
rounds the explicit churn bound rejects — the price of the more
structured assumption.
"""

import random
from fractions import Fraction

from repro.analysis import (
    check_churn,
    check_eta_sleepiness,
    check_reduced_failure_ratio,
    format_table,
)
from repro.harness import TOBRunConfig, run_tob
from repro.sleepy.adversary import CrashAdversary
from repro.sleepy.schedule import RandomChurnSchedule

THIRD = Fraction(1, 3)
N, ROUNDS, ETA = 24, 30, 4
#: Machine-readable run configuration (recorded in BENCH_*.json).
BENCH_CONFIG = {"n": N, "rounds": ROUNDS, "eta": ETA}



def classify(seed: int, churn_per_round: float, byz_count: int, gamma: Fraction) -> dict:
    byz = list(range(N - byz_count, N)) if byz_count else []
    trace = run_tob(
        TOBRunConfig(
            n=N,
            rounds=ROUNDS,
            protocol="resilient",
            eta=ETA,
            schedule=RandomChurnSchedule(
                N, churn_per_round=churn_per_round, seed=seed, min_awake=N // 3
            ),
            adversary=CrashAdversary(byz) if byz else None,
        )
    )
    failures_1 = {f.round for f in check_churn(trace, ETA, gamma).failures}
    failures_2 = {f.round for f in check_reduced_failure_ratio(trace, THIRD, gamma).failures}
    failures_3 = {f.round for f in check_eta_sleepiness(trace, ETA, THIRD).failures}
    eq12_rounds = {r.round for r in trace.rounds} - failures_1 - failures_2
    eq3_rounds = {r.round for r in trace.rounds} - failures_3
    return {
        "eq12": eq12_rounds,
        "eq3": eq3_rounds,
        "total": trace.horizon,
    }


def test_ablation_sleepiness(benchmark, record):
    def experiment():
        rng = random.Random(99)
        gamma = Fraction(1, 5)
        agg = {"total": 0, "eq12": 0, "eq3": 0, "eq12_not_eq3": 0, "eq3_not_eq12": 0}
        for _ in range(12):
            seed = rng.randrange(1 << 16)
            churn = rng.choice([0.02, 0.05, 0.10, 0.15])
            byz_count = rng.choice([0, 2, 4])
            result = classify(seed, churn, byz_count, gamma)
            agg["total"] += result["total"]
            agg["eq12"] += len(result["eq12"])
            agg["eq3"] += len(result["eq3"])
            agg["eq12_not_eq3"] += len(result["eq12"] - result["eq3"])
            agg["eq3_not_eq12"] += len(result["eq3"] - result["eq12"])
        return agg

    agg = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record(
        format_table(
            ["admission check", "rounds admitted", "share"],
            [
                ["Eq. 1 + Eq. 2 (churn bound γ=1/5 + β̃)", agg["eq12"], agg["eq12"] / agg["total"]],
                ["Eq. 3 (η-sleepiness)", agg["eq3"], agg["eq3"] / agg["total"]],
                ["admitted by Eqs. 1+2 but not Eq. 3", agg["eq12_not_eq3"], agg["eq12_not_eq3"] / agg["total"]],
                ["admitted by Eq. 3 but not Eqs. 1+2", agg["eq3_not_eq12"], agg["eq3_not_eq12"] / agg["total"]],
            ],
            title=f"A2: admission-check comparison over {agg['total']} sampled rounds (n={N}, η={ETA})",
        )
    )

    # §3.3's implication, observed: no round passes the explicit
    # churn-bound model while failing η-sleepiness.
    assert agg["eq12_not_eq3"] == 0
    # And the single-inequality model is strictly more liberal.
    assert agg["eq3_not_eq12"] > 0
    assert agg["eq3"] >= agg["eq12"]
