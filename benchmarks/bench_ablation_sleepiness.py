"""A2 — ablation: explicit churn bound (Eqs. 1+2) vs η-sleepiness (Eq. 3).

The paper bounds churn and failures separately (Equations 1 and 2) and
notes that D'Amato–Zanolini's η-sleepy model instead makes the single
assumption |H_r| > (1 − β)·|O_{r−η,r}| (Equation 3).  §3.3 shows
Eqs. 1+2 imply the extended-GA premise the proofs need — the same
inequality Eq. 3 states directly.

This bench samples random participation traces and classifies each
round by which admission checks it passes, measuring (a) that the
churn-bound model is the more restrictive one in practice (every
Eq. 1+2 round also passes Eq. 3) and (b) how many Eq. 3-admissible
rounds the explicit churn bound rejects — the price of the more
structured assumption.

The 12 sampled traces are the named grid ``sleepiness`` from
:mod:`repro.analysis.batch` (seeded draws, one independent run per
cell), executed through the engine's streamed parallel sweep; each
worker ships back only the per-run admission sets, aggregated here.
"""

import os

from repro.analysis.batch import (
    aggregate_sleepiness,
    grid_journal,
    reduce_sleepiness,
    sleepiness_grid,
    sleepiness_table,
)
from repro.engine.sweep import sweep_rows

N, ROUNDS, ETA = 24, 30, 4
SAMPLES = 12
#: Machine-readable run configuration (recorded in BENCH_*.json).
BENCH_CONFIG = {
    "n": N,
    "rounds": ROUNDS,
    "eta": ETA,
    "samples": SAMPLES,
    "streamed": True,
    # A warm journal replays cells instead of computing them, so a
    # journaled run is a different experiment for the trend checker.
    "journaled": bool(os.environ.get("REPRO_SWEEP_JOURNAL_DIR")),
}


def test_ablation_sleepiness(benchmark, record):
    def experiment():
        grid = sleepiness_grid(samples=SAMPLES, n=N, rounds=ROUNDS, eta=ETA)
        return sweep_rows(
            grid, reduce_sleepiness, journal=grid_journal("sleepiness"), resume="auto"
        )

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record(sleepiness_table(rows, n=N, eta=ETA))
    agg = aggregate_sleepiness(rows)

    # §3.3's implication, observed: no round passes the explicit
    # churn-bound model while failing η-sleepiness.
    assert agg["eq12_not_eq3"] == 0
    # And the single-inequality model is strictly more liberal.
    assert agg["eq3_not_eq12"] > 0
    assert agg["eq3"] >= agg["eq12"]
