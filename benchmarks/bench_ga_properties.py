"""E8 — Lemma 1 scoreboard: extended-GA properties over sampled instances.

Samples hundreds of one-shot extended-GA instances under randomized
trees, inputs, initial sets, Byzantine voters, and (for clique validity)
fully adversarial delivery, then scores each Definition 4 property plus
clique validity.  All premised instances must satisfy all properties —
the empirical counterpart of the Lemma 1 proof.
"""

import random

from repro.analysis import check_clique_validity, check_ga_properties, format_table
from repro.chain.block import GENESIS_TIP, Block, genesis_block
from repro.chain.tree import BlockTree
from repro.core.extended_ga import ExtendedGAInstance, InitialVote

#: Machine-readable run configuration (recorded in BENCH_*.json).
BENCH_CONFIG = {"instances": "property-suite"}

PROPERTIES = (
    "graded_consistency",
    "integrity",
    "validity",
    "uniqueness",
    "bounded_divergence",
)


def random_tree(rng: random.Random) -> tuple[BlockTree, list]:
    tree = BlockTree([genesis_block()])
    nodes = [genesis_block().block_id]
    for i in range(rng.randrange(2, 10)):
        parent = rng.choice(nodes)
        block = Block(parent=parent, proposer=0, view=i + 1, salt=i)
        tree.add(block)
        nodes.append(block.block_id)
    return tree, nodes + [GENESIS_TIP]


def sample_instance(rng: random.Random) -> dict:
    """One synchronous instance satisfying |H| > 2/3·|O ∪ P0|."""
    tree, tips = random_tree(rng)
    h = rng.randrange(3, 9)
    extras = rng.randrange(0, (h - 1) // 2 + 1)
    byz = rng.randrange(0, extras + 1)
    sleepers = extras - byz
    honest = list(range(h))
    byz_ids = list(range(h, h + byz))
    sleeper_ids = list(range(h + byz, h + extras))

    inputs = {pid: rng.choice(tips) for pid in honest}
    byz_votes = {pid: rng.choice(tips) for pid in byz_ids}

    outputs = {}
    for receiver in honest:
        m0 = [
            InitialVote(sender=pid, round=0, tip=rng.choice(tips))
            for pid in byz_ids + sleeper_ids
            if rng.random() < 0.7
        ]
        instance = ExtendedGAInstance(tree, m0)
        for pid, tip in {**inputs, **byz_votes}.items():
            instance.add_round_vote(pid, tip)
        outputs[receiver] = instance.output()
    report = check_ga_properties(tree, inputs, outputs)
    return {prop: getattr(report, prop) for prop in PROPERTIES}


def sample_clique_instance(rng: random.Random) -> bool:
    """One asynchronous clique-validity instance (premises constructed)."""
    tree, tips = random_tree(rng)
    lam = rng.choice(tips)
    extensions = [tip for tip in tips if tree.is_prefix(lam, tip)]
    clique_size = rng.randrange(3, 9)
    outsiders = rng.randrange(0, (clique_size - 1) // 2 + 1)
    clique = list(range(clique_size))
    outsider_ids = list(range(clique_size, clique_size + outsiders))

    senders = [pid for pid in clique if rng.random() < 0.7]
    fresh = {pid: rng.choice(extensions) for pid in senders}
    outsider_votes = {pid: rng.choice(tips) for pid in outsider_ids}

    outputs = {}
    for receiver in clique:
        m0 = [InitialVote(sender=pid, round=0, tip=rng.choice(extensions)) for pid in clique]
        m0 += [
            InitialVote(sender=pid, round=0, tip=rng.choice(tips))
            for pid in outsider_ids
            if rng.random() < 0.5
        ]
        instance = ExtendedGAInstance(tree, m0)
        for pid, tip in fresh.items():
            if rng.random() < 0.6:  # adversarial partial delivery
                instance.add_round_vote(pid, tip)
        for pid, tip in outsider_votes.items():
            if rng.random() < 0.6:
                instance.add_round_vote(pid, tip)
        outputs[receiver] = instance.output()
    return check_clique_validity(tree, lam, frozenset(clique), outputs)


def test_ga_properties(benchmark, record):
    def experiment():
        rng = random.Random(2024)
        tallies = {prop: 0 for prop in PROPERTIES}
        samples = 300
        for _ in range(samples):
            result = sample_instance(rng)
            for prop in PROPERTIES:
                tallies[prop] += result[prop]
        clique_samples = 300
        clique_ok = sum(sample_clique_instance(rng) for _ in range(clique_samples))
        return tallies, samples, clique_ok, clique_samples

    tallies, samples, clique_ok, clique_samples = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    rows = [[prop.replace("_", " "), f"{tallies[prop]}/{samples}", "synchronous"] for prop in PROPERTIES]
    rows.append(["clique validity", f"{clique_ok}/{clique_samples}", "asynchronous"])
    record(
        format_table(
            ["property", "instances satisfied", "network"],
            rows,
            title="E8: Lemma 1 property scoreboard on sampled extended-GA instances",
        )
    )

    for prop in PROPERTIES:
        assert tallies[prop] == samples, prop
    assert clique_ok == clique_samples
