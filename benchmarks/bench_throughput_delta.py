"""E10 — the headline: pick a small δ and survive, instead of a huge δ.

§1: latency and throughput of dynamically available protocols are
proportional / inversely proportional to δ.  Without asynchrony
resilience, a deployment must choose δ conservatively — large enough
that the bound is *never* violated (δ = worst-case delay).  With the
expiration mechanism, it can pick the common-case δ and ride out
occasional slow periods of up to π rounds.

This bench runs both deployments on the real asyncio gossip substrate,
injecting a ×12 latency surge (the "occasional period"):

* resilient, δ = common-case 20 ms, η = 4 — the surge spans ~2 rounds;
* original MMR, δ = 240 ms (the conservative bound: the surge never
  exceeds it) — same wall-clock surge, zero asynchronous rounds.

Both stay safe; the resilient deployment decides blocks roughly
``δ_conservative/δ_common ≈ 12×`` faster in wall-clock terms.
"""

from repro.analysis import check_safety, format_table
from repro.runtime import DeploymentConfig, run_deployment

COMMON_DELTA = 0.02
SURGE_FACTOR = 12.0
CONSERVATIVE_DELTA = COMMON_DELTA * SURGE_FACTOR
N = 6
#: Machine-readable run configuration (recorded in BENCH_*.json).
BENCH_CONFIG = {"n": N, "delta_s": COMMON_DELTA, "surge_factor": SURGE_FACTOR}



def deploy(protocol: str, eta: int, delta_s: float, rounds: int, surge) -> dict:
    result = run_deployment(
        DeploymentConfig(
            n=N,
            rounds=rounds,
            delta_s=delta_s,
            protocol=protocol,
            eta=eta,
            surge=surge,
            seed=5,
        )
    )
    trace = result.trace
    deepest = max((trace.tree.depth(d.tip) for d in trace.decisions), default=0)
    return {
        "label": f"{protocol} (η={eta}, δ={delta_s * 1000:.0f} ms)",
        "rounds": rounds,
        "wall_s": result.wall_seconds,
        "blocks": deepest,
        "blocks_per_s": deepest / result.wall_seconds,
        "s_per_block": result.wall_seconds / max(deepest, 1),
        "safe": check_safety(trace).ok,
    }


def test_throughput_delta(benchmark, record):
    def experiment():
        # Equal wall-clock horizons: 24 small-δ rounds == 2 big-δ rounds...
        # keep both ≳ 10 views so the cadence is measurable.
        fast = deploy("resilient", eta=4, delta_s=COMMON_DELTA, rounds=24, surge=(9, 2, SURGE_FACTOR))
        slow = deploy("mmr", eta=0, delta_s=CONSERVATIVE_DELTA, rounds=24, surge=None)
        # δ-proportionality sweep: latency ∝ δ, throughput ∝ 1/δ (§1).
        sweep = [
            deploy("resilient", eta=4, delta_s=delta, rounds=16, surge=None)
            for delta in (0.01, 0.02, 0.04, 0.08)
        ]
        return fast, slow, sweep

    fast, slow, sweep = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = format_table(
        ["deployment", "rounds", "wall s", "blocks decided", "blocks/s", "s/block", "safe"],
        [
            [d["label"], d["rounds"], d["wall_s"], d["blocks"], d["blocks_per_s"], d["s_per_block"], d["safe"]]
            for d in (fast, slow)
        ],
        title=(
            "E10: small δ + η-resilience vs conservative δ = worst-case "
            f"(×{SURGE_FACTOR:.0f} latency surge during the fast run)"
        ),
    )
    table += "\n\n" + format_table(
        ["δ (ms)", "s/block", "s/block per δ-ms"],
        [[d["label"].split("δ=")[1].rstrip(" ms)"), d["s_per_block"], d["s_per_block"] / (float(d["label"].split("δ=")[1].rstrip(" ms)")))] for d in sweep],
        title="E10b: decision latency scales linearly with δ (synchronous runs)",
    )
    record(table)

    assert fast["safe"] and slow["safe"] and all(d["safe"] for d in sweep)
    # The headline shape: ~δ-ratio advantage in wall-clock block cadence,
    # earned while actually riding through a real latency surge.
    advantage = fast["blocks_per_s"] / slow["blocks_per_s"]
    assert advantage > SURGE_FACTOR * 0.6, advantage
    # Proportionality: doubling δ roughly doubles seconds-per-block.
    latencies = [d["s_per_block"] for d in sweep]
    for smaller, larger in zip(latencies, latencies[1:]):
        ratio = larger / smaller
        assert 1.5 < ratio < 2.6, latencies
