"""E11 — ebb-and-flow: what the expiration mechanism buys the pair (§3).

The paper positions its mechanism inside the ebb-and-flow design:
finality gadgets protect a *prefix*, but "network partitions or
asynchronous periods ... could lead to reorganizations of the chain
output by these dynamically available protocols", and "even
ebb-and-flow protocols can benefit, as the resulting protocol becomes
more robust during periods of asynchrony".

Measured, for the split-vote attack under a finality overlay (n = 20,
4 Byzantine, quorum 2/3 of all processes):

* the **available** chain: reorg events and max depth;
* the **finalised** prefix: cross-process compatibility (must always
  hold) and depth progress;
* plus the availability-finality dilemma itself: during a 60% outage
  finality stalls while the available chain grows.
"""

from repro.analysis import check_safety, format_table, max_reorg_depth, reorg_events
from repro.crypto.signatures import KeyRegistry
from repro.finality import ebb_and_flow_factory
from repro.sleepy import (
    FullParticipation,
    NullAdversary,
    Simulation,
    SpikeSchedule,
    SplitVoteAttack,
    SynchronousNetwork,
    WindowedAsynchrony,
)

N = 20
HONEST = 16
#: Machine-readable run configuration (recorded in BENCH_*.json).
BENCH_CONFIG = {"n": N, "honest": HONEST}



def run_attack(protocol: str, eta: int) -> dict:
    registry = KeyRegistry(N, run_seed=0)
    sim = Simulation(
        registry,
        FullParticipation(N),
        SplitVoteAttack(list(range(HONEST, N)), target_round=10),
        WindowedAsynchrony(ra=9, pi=1),
        ebb_and_flow_factory(protocol, eta=eta, n=N),
    )
    trace = sim.run(24)
    finalized = [sim.processes[pid].finalized_tip for pid in range(HONEST)]
    finality_compatible = all(
        trace.tree.compatible(a, b) for a in finalized for b in finalized
    )
    return {
        "protocol": f"{protocol} (η={eta})",
        "available_safe": check_safety(trace).ok,
        "reorgs": len(reorg_events(trace)),
        "max_reorg": max_reorg_depth(trace),
        "finality_ok": finality_compatible,
        "finalized_depth": min(trace.tree.depth(tip) for tip in finalized),
    }


def run_outage() -> dict:
    registry = KeyRegistry(N, run_seed=1)
    sim = Simulation(
        registry,
        SpikeSchedule(N, drop_fraction=0.6, start=8, duration=10),
        NullAdversary(),
        SynchronousNetwork(),
        ebb_and_flow_factory("resilient", eta=3, n=N),
    )
    trace = sim.run(26)
    process = sim.processes[0]
    finalized_during = [e for e in process.finalizations if 10 <= e.round < 18]
    decided_during = [d for d in trace.decisions if 10 <= d.round < 18]
    resumed = [e for e in process.finalizations if e.round >= 19]
    return {
        "finality_stalled": not finalized_during,
        "chain_grew": bool(decided_during),
        "finality_resumed": bool(resumed),
    }


def test_finality(benchmark, record):
    def experiment():
        rows = [run_attack("mmr", 0), run_attack("resilient", 3)]
        outage = run_outage()
        return rows, outage

    rows, outage = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = format_table(
        ["inner protocol", "available safe", "reorg events", "max reorg depth", "finality consistent", "finalized depth"],
        [
            [r["protocol"], r["available_safe"], r["reorgs"], r["max_reorg"], r["finality_ok"], r["finalized_depth"]]
            for r in rows
        ],
        title="E11: split-vote attack under an ebb-and-flow finality overlay (n=20)",
    )
    table += "\n\n" + format_table(
        ["dilemma check (60% outage)", "observed"],
        [
            ["finality stalls below quorum", outage["finality_stalled"]],
            ["available chain keeps growing", outage["chain_grew"]],
            ["finality resumes after outage", outage["finality_resumed"]],
        ],
    )
    record(table)

    mmr, res = rows
    # Finality alone never reverts — but it does not protect the
    # user-facing available chain: that is the paper's motivation.
    assert mmr["finality_ok"] and res["finality_ok"]
    assert not mmr["available_safe"] and mmr["reorgs"] > 0
    assert res["available_safe"] and res["reorgs"] == 0
    assert outage["finality_stalled"] and outage["chain_grew"] and outage["finality_resumed"]
