"""E6 — dynamic availability: the chain grows at any participation level.

The paper's opening claim: dynamically available TOB protocols handle
"participants going offline or coming back online at any time — even
99% of them."  Measured: chain growth at sustained participation levels
from 100% down to a single awake process, plus the May-2023 Ethereum
outage replay (60% offline for 20 rounds).
"""

from repro.analysis import chain_growth_rate, check_safety, format_table
from repro.harness import TOBRunConfig, run_tob
from repro.sleepy.schedule import TableSchedule
from repro.workloads import ethereum_outage_scenario

N, ROUNDS = 100, 36


#: Machine-readable run configuration (recorded in BENCH_*.json).
BENCH_CONFIG = {"n": N, "rounds": ROUNDS, "eta": 3}

def sustained_level(level: float) -> dict:
    keep = max(1, int(level * N))
    # Drop to `keep` processes from round 8 onwards.
    schedule = TableSchedule(
        N, {r: set(range(keep)) for r in range(8, ROUNDS + 1)}, default=set(range(N))
    )
    trace = run_tob(
        TOBRunConfig(n=N, rounds=ROUNDS, protocol="resilient", eta=3, schedule=schedule)
    )
    return {
        "level": level,
        "awake": keep,
        "growth": chain_growth_rate(trace, start=12, end=ROUNDS - 1),
        "safe": check_safety(trace).ok,
    }


def test_dynamic_availability(benchmark, record):
    def experiment():
        rows = [sustained_level(level) for level in (1.0, 0.5, 0.25, 0.10, 0.01)]
        outage = run_tob(ethereum_outage_scenario(n=50, start=10, duration=20, rounds=50))
        outage_growth = chain_growth_rate(outage, start=12, end=29)
        return rows, outage_growth, check_safety(outage).ok

    rows, outage_growth, outage_safe = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table_rows = [[f"{r['level']:.0%}", r["awake"], r["growth"], r["safe"]] for r in rows]
    table_rows.append(["Ethereum outage (60% off)", 20, outage_growth, outage_safe])
    record(
        format_table(
            ["participation", "awake processes", "growth blocks/round", "safe"],
            table_rows,
            title=f"E6: chain growth under sustained participation drops (n={N})",
        )
    )

    for r in rows:
        assert r["safe"], r
        # Full cadence (≈0.5 blocks/round) at every level — even one
        # process alone keeps deciding its own proposals.
        assert r["growth"] >= 0.45, r
    assert outage_safe and outage_growth >= 0.45
