"""E5 — latency: MMR's 3-round decisions and 6-round expected termination.

MMR's headline (§3.1): "expected termination in 6 rounds" — 2-round
views with a 3-round proposal→decision pipeline, where a view advances
the chain whenever the highest-VRF proposal comes from a well-behaved
process (sortition).  The paper's promise for the modification (§1):
"they match the latency and throughput of the original protocol when
the synchrony bound δ holds."

Measured over 20 seeds: per-block proposal→decision latency and
decision gaps, for MMR and η ∈ {2, 8}, under full participation and
churn+crash; plus the sortition table — productive-view share against
the honest VRF share with Byzantine proposers submitting stale
proposals, giving the expected rounds per chain extension
(2 / honest-share, ≈ 6 rounds at the paper's 1/3 adversary).
"""

import statistics

from repro.analysis import block_decision_latencies, decision_gaps, decision_rounds, format_table
from repro.harness import TOBRunConfig, run_tob
from repro.sleepy.adversary import AdversarialProposerAdversary, CrashAdversary
from repro.workloads import churn_walk

SEEDS = range(20)
N, ROUNDS = 20, 40
#: Machine-readable run configuration (recorded in BENCH_*.json).
BENCH_CONFIG = {"n": N, "rounds": ROUNDS, "seeds": len(SEEDS)}



def measure(protocol: str, eta: int, churn: bool) -> dict:
    latencies: list[int] = []
    gaps: list[int] = []
    for seed in SEEDS:
        config = TOBRunConfig(
            n=N,
            rounds=ROUNDS,
            protocol=protocol,
            eta=eta,
            schedule=churn_walk(N, eta=max(eta, 1), gamma=0.15, seed=seed) if churn else None,
            adversary=CrashAdversary([N - 2, N - 1]) if churn else None,
            seed=seed,
        )
        trace = run_tob(config)
        latencies.extend(block_decision_latencies(trace))
        gaps.extend(decision_gaps(trace))
    return {
        "latency_mean": statistics.mean(latencies),
        "latency_max": max(latencies),
        "gap_mean": statistics.mean(gaps),
        "gap_p95": sorted(gaps)[int(0.95 * len(gaps))],
    }


def measure_sortition(byz_count: int) -> dict:
    """Productive-view share under stale Byzantine proposers."""
    productive = views = 0
    for seed in range(10):
        trace = run_tob(
            TOBRunConfig(
                n=N,
                rounds=ROUNDS,
                protocol="mmr",
                seed=seed,
                adversary=AdversarialProposerAdversary(
                    list(range(N - byz_count, N)), mode="stale"
                ),
            )
        )
        views += (trace.horizon - 1) // 2
        productive += len(decision_rounds(trace))
    share = productive / views
    return {
        "byz": byz_count,
        "honest_share": (N - byz_count) / N,
        "measured_share": share,
        "expected_rounds": 2 / share,
    }


def test_latency(benchmark, record):
    def experiment():
        rows = []
        for protocol, eta in (("mmr", 0), ("resilient", 2), ("resilient", 8)):
            for churn in (False, True):
                m = measure(protocol, eta, churn)
                rows.append(
                    [
                        f"{protocol} (η={eta})",
                        "churn+crash" if churn else "stable",
                        m["latency_mean"],
                        m["latency_max"],
                        m["gap_mean"],
                        m["gap_p95"],
                    ]
                )
        sortition = [measure_sortition(byz) for byz in (0, 3, 6)]
        return rows, sortition

    rows, sortition = benchmark.pedantic(experiment, rounds=1, iterations=1)
    table = format_table(
        ["protocol", "workload", "block latency mean", "max", "decision gap mean", "gap p95"],
        rows,
        title=f"E5: decision latency in rounds (n={N}, {len(list(SEEDS))} seeds)",
    )
    table += "\n\n" + format_table(
        ["Byzantine proposers", "honest VRF share", "productive-view share", "rounds/extension"],
        [
            [s["byz"], s["honest_share"], s["measured_share"], s["expected_rounds"]]
            for s in sortition
        ],
        title="E5b: sortition under stale Byzantine proposals (expected termination)",
    )
    record(table)

    for s in sortition:
        # Productive share tracks the honest sortition share...
        assert abs(s["measured_share"] - s["honest_share"]) < 0.15, s
    # ...and at a ~1/3 adversary the expected chain-extension cadence is
    # the paper's "6 rounds in expectation" figure.
    worst = sortition[-1]
    assert 2.0 <= worst["expected_rounds"] <= 4.5 or worst["byz"] < 6
    assert sortition[-1]["expected_rounds"] > sortition[0]["expected_rounds"]

    stable_rows = [r for r in rows if r[1] == "stable"]
    # MMR headline: 3-round proposal→decision latency in the good case,
    # and the modification must not change it.
    for row in stable_rows:
        assert row[2] == 3.0 and row[3] == 3, row
        assert row[4] == 2.0, row  # a decision every view
    # Under churn, latency may degrade but stays within one extra view
    # on average, identically across η.
    churn_rows = [r for r in rows if r[1] != "stable"]
    means = {r[0]: r[2] for r in churn_rows}
    assert max(means.values()) - min(means.values()) < 0.5, means
