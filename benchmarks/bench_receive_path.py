"""E2 — receive-phase ingestion: per-message verify/record vs shared batches.

PR 1's indexed bus removed the delivery bottleneck; profiling then
pointed at :meth:`SleepyTOBProcess.receive` — per-message cached
verification (a digest lookup *per message per receiver*), per-vote
``LatestVoteStore.record`` calls, and a full per-sender scan in every
``prune``.  The batched ingest pipeline moves all shareable work to one
pass per *delivery*: verification and classification happen once per
logical message run-wide, the per-round vote table is resolved once and
adopted by each receiver as a dict copy, and the round-bucketed vote
store prunes by popping buckets.

This bench replays identical message schedules (real signatures, real
blocks) through both receive paths at the acceptance configuration
n = 200 and reports the receive-phase speedup.  The legacy path is the
pre-refactor implementation preserved verbatim below; the new path is
the actual :class:`ResilientTOBProcess` over the actual
:class:`IngestPipeline`.

Wall-clock gates run off CI only (shared runners are noisy); CI pins
the deterministic counters instead: one crypto verification per logical
message, one classified batch per round.
"""

from __future__ import annotations

import os
import time

from repro.chain.block import Block, genesis_block
from repro.chain.store import BlockBuffer
from repro.chain.tree import BlockTree
from repro.core.resilient_tob import ResilientTOBProcess
from repro.crypto.signatures import KeyRegistry
from repro.engine.ingest import IngestPipeline
from repro.sleepy.messages import (
    ProposeMessage,
    VoteMessage,
    make_propose,
    make_vote,
    verify_message,
)

BENCH_CONFIG = {
    "n": 200,
    "rounds": 30,
    "eta": 2,
    "proposers_per_round": 8,
    "repeats": 5,
    "seed": 0,
}

_MISSING = object()


# ----------------------------------------------------------------------
# The pre-refactor receive path, verbatim (the baseline)
# ----------------------------------------------------------------------
class LegacyCachedVerifier:
    """The pre-refactor run-shared verifier (memo keyed by message_id)."""

    def __init__(self, registry: KeyRegistry) -> None:
        self._registry = registry
        self._memo: dict[str, bool] = {}

    def verify(self, message) -> bool:
        key = message.message_id
        result = self._memo.get(key)
        if result is None:
            result = verify_message(self._registry, message)
            self._memo[key] = result
        return result


class LegacyLatestVoteStore:
    """The pre-refactor per-sender vote store, verbatim."""

    def __init__(self) -> None:
        self._by_sender: dict[int, dict[int, object]] = {}

    _EQUIVOCATED = object()
    _MISSING = object()

    def record(self, sender: int, round_number: int, tip) -> None:
        rounds = self._by_sender.setdefault(sender, {})
        existing = rounds.get(round_number, self._MISSING)
        if existing is self._MISSING:
            rounds[round_number] = tip
        elif existing is not self._EQUIVOCATED and existing != tip:
            rounds[round_number] = self._EQUIVOCATED

    def latest(self, window_lo: int, window_hi: int) -> dict:
        if window_lo > window_hi:
            return {}
        result: dict = {}
        for sender, rounds in self._by_sender.items():
            best_round = -1
            for r in rounds:
                if window_lo <= r <= window_hi and r > best_round:
                    best_round = r
            if best_round < 0:
                continue
            tip = rounds[best_round]
            if tip is self._EQUIVOCATED:
                continue
            result[sender] = tip
        return result

    def equivocators(self) -> frozenset[int]:
        return frozenset(
            sender
            for sender, rounds in self._by_sender.items()
            if any(tip is self._EQUIVOCATED for tip in rounds.values())
        )

    def prune(self, before_round: int) -> int:
        dropped = 0
        for sender in list(self._by_sender):
            rounds = self._by_sender[sender]
            stale = [r for r in rounds if r < before_round]
            for r in stale:
                del rounds[r]
            dropped += len(stale)
            if not rounds:
                del self._by_sender[sender]
        return dropped


class LegacyReceiver:
    """Pre-refactor ``SleepyTOBProcess`` receive phase, verbatim logic."""

    def __init__(self, pid: int, verifier: LegacyCachedVerifier, eta: int) -> None:
        self.pid = pid
        self._verifier = verifier
        self._eta = eta
        self.tree = BlockTree([genesis_block()])
        self._buffer = BlockBuffer(self.tree)
        self._votes = LegacyLatestVoteStore()
        self._proposals: dict[int, dict[int, ProposeMessage | None]] = {}

    def receive(self, round_number: int, messages) -> None:
        for message in messages:
            if not self._verifier.verify(message):
                continue
            if isinstance(message, VoteMessage):
                self._votes.record(message.sender, message.round, message.tip)
            elif isinstance(message, ProposeMessage):
                self._record_proposal(message, round_number)
        self._prune_proposals(round_number)
        self._votes.prune(round_number - self._eta)

    def _record_proposal(self, message: ProposeMessage, round_number: int) -> None:
        if message.view > round_number // 2 + 1:
            return
        self._buffer.offer(message.block)
        per_view = self._proposals.setdefault(message.view, {})
        existing = per_view.get(message.sender, _MISSING)
        if existing is _MISSING:
            per_view[message.sender] = message
        elif existing is not None and existing.tip != message.tip:
            per_view[message.sender] = None

    def _prune_proposals(self, round_number: int) -> None:
        current_view = (round_number + 1) // 2
        horizon = current_view - 2
        for view in [v for v in self._proposals if v < horizon]:
            del self._proposals[view]


# ----------------------------------------------------------------------
# Schedule generation and replay
# ----------------------------------------------------------------------
def build_schedule(registry: KeyRegistry, n: int, rounds: int, proposers_per_round: int):
    """Per-round delivery tuples: n votes plus proposals on even rounds.

    Real signatures and VRFs over a growing block chain, mirroring what
    the bus hands every caught-up receiver (one shared tuple per round).
    """
    keys = [registry.secret_key(pid) for pid in range(n)]
    batches = []
    parent = genesis_block()
    tip = parent.block_id
    for r in range(rounds):
        messages = []
        if r % 2 == 0:
            view = r // 2 + 1
            block = Block(parent=tip, proposer=r % n, view=view)
            for proposer in range(proposers_per_round):
                messages.append(make_propose(registry, keys[proposer], r, view, block))
            tip = block.block_id
        for pid in range(n):
            messages.append(make_vote(registry, keys[pid], r, tip))
        batches.append(tuple(messages))
    return batches


def replay_legacy(registry: KeyRegistry, batches, n: int, eta: int) -> tuple[float, object]:
    verifier = LegacyCachedVerifier(registry)
    receivers = [LegacyReceiver(pid, verifier, eta) for pid in range(n)]
    started = time.perf_counter()
    for r, batch in enumerate(batches):
        for receiver in receivers:
            receiver.receive(r, batch)
    return time.perf_counter() - started, receivers[0]


def replay_batched(registry: KeyRegistry, batches, n: int, eta: int):
    pipeline = IngestPipeline(registry)
    processes = [
        ResilientTOBProcess(pid, registry.secret_key(pid), pipeline, eta=eta)
        for pid in range(n)
    ]
    started = time.perf_counter()
    for r, batch in enumerate(batches):
        for process in processes:
            process.receive(r, batch)
    return time.perf_counter() - started, processes[0], pipeline


def test_receive_path_speedup(record, bench_json):
    n, rounds, eta = BENCH_CONFIG["n"], BENCH_CONFIG["rounds"], BENCH_CONFIG["eta"]
    repeats = BENCH_CONFIG["repeats"]
    registry = KeyRegistry(n, run_seed=BENCH_CONFIG["seed"])
    batches = build_schedule(registry, n, rounds, BENCH_CONFIG["proposers_per_round"])
    unique_messages = sum(len(batch) for batch in batches)

    legacy_samples, batched_samples = [], []
    for _ in range(repeats):
        legacy_s, legacy_ref = replay_legacy(registry, batches, n, eta)
        batched_s, process_ref, pipeline = replay_batched(registry, batches, n, eta)
        legacy_samples.append(legacy_s)
        batched_samples.append(batched_s)

    # Semantics did not move: both paths agree on the final vote window
    # and the accountability output for a reference receiver.
    lo, hi = rounds - 1 - eta, rounds - 1
    assert legacy_ref._votes.latest(lo, hi) == process_ref._votes.latest(lo, hi)
    assert legacy_ref._votes.equivocators() == process_ref._votes.equivocators()

    # Deterministic shape of the pipeline's sharing (the CI gate): one
    # crypto verification per logical message — not per receiver — and
    # one classified batch per delivered tuple, reused by the other
    # n − 1 receivers.
    assert pipeline.stats["crypto_verifications"] == unique_messages
    assert pipeline.stats["batches_built"] == rounds
    assert pipeline.stats["batch_memo_hits"] == rounds * (n - 1)
    assert pipeline.stats["rejected"] == 0

    legacy_best, batched_best = min(legacy_samples), min(batched_samples)
    speedup = legacy_best / batched_best
    table = "\n".join(
        [
            f"receive phase, n={n}, rounds={rounds}, eta={eta} (best of {repeats}):",
            f"  per-message path : {legacy_best * 1e3:8.1f} ms",
            f"  batched ingest   : {batched_best * 1e3:8.1f} ms",
            f"  speedup          : {speedup:8.1f}x",
            f"  crypto verifications: {pipeline.stats['crypto_verifications']}"
            f" ({unique_messages} logical messages, {n} receivers)",
        ]
    )
    record(table)
    bench_json(
        batched_samples,
        legacy_samples_s=legacy_samples,
        legacy_median_s=sorted(legacy_samples)[len(legacy_samples) // 2],
        speedup_best=speedup,
        messages=unique_messages,
    )

    # Wall-clock gate off CI only (the acceptance criterion: ≥3x at n=200).
    if not os.environ.get("CI"):
        assert speedup >= 3.0, f"receive-path speedup regressed: {speedup:.2f}x"
