"""ASCII trace timelines: see a run at a glance.

Renders a per-round strip chart of one execution: participation bars,
synchrony/asynchrony marking, Byzantine counts, decision ticks, and the
decided-depth curve.  Used by examples and handy in a REPL after
loading a saved trace.
"""

from __future__ import annotations

from repro.analysis.metrics import decided_depth_timeline
from repro.sleepy.trace import Trace

_BAR = "█"
_HALF = "▌"


def render_timeline(trace: Trace, width: int = 40, every: int = 1) -> str:
    """A round-by-round strip chart of the trace.

    Columns: round, network phase (``sync``/``ASYNC``), ``|O_r|`` with a
    participation bar scaled to ``width``, Byzantine count, a ``*`` on
    rounds where some process decided, and the deepest decided log.
    ``every`` samples one row per that many rounds.
    """
    if every < 1:
        raise ValueError("every must be positive")
    depth_at = {point.round: point.depth for point in decided_depth_timeline(trace)}
    decision_rounds = {d.round for d in trace.decisions}
    peak = max((len(rec.awake) for rec in trace.rounds), default=1)

    lines = [
        f"{'round':>5}  {'net':5}  {'|O_r|':>5}  {'byz':>3}  {'dec':>3}  {'depth':>5}  participation"
    ]
    for rec in trace.rounds:
        if rec.round % every:
            continue
        bar_cells = len(rec.awake) * width / max(peak, 1)
        bar = _BAR * int(bar_cells)
        if bar_cells - int(bar_cells) >= 0.5:
            bar += _HALF
        lines.append(
            f"{rec.round:>5}  "
            f"{'ASYNC' if rec.asynchronous else 'sync ':5}  "
            f"{len(rec.awake):>5}  "
            f"{len(rec.byzantine):>3}  "
            f"{'*' if rec.round in decision_rounds else ' ':>3}  "
            f"{depth_at.get(rec.round, 0):>5}  "
            f"{bar}"
        )
    return "\n".join(lines)


def render_depth_curve(trace: Trace, height: int = 8) -> str:
    """The decided-depth curve as a compact block-character sparkline."""
    timeline = decided_depth_timeline(trace)
    if not timeline:
        return "(empty trace)"
    peak = max(point.depth for point in timeline) or 1
    levels = "▁▂▃▄▅▆▇█"
    cells = []
    for point in timeline:
        index = round(point.depth / peak * (len(levels) - 1))
        cells.append(levels[index])
    return (
        f"decided depth 0→{peak} over rounds 0→{timeline[-1].round}\n" + "".join(cells)
    )
