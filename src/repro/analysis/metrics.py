"""Quantitative metrics over traces: latency, growth, throughput.

The paper's practical pitch (§1) is about latency and throughput being
proportional to the synchrony bound δ; these helpers extract the
round-denominated quantities that the benches then convert to seconds
for a given δ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sleepy.trace import Trace


@dataclass(frozen=True)
class GrowthPoint:
    """Deepest decided log (globally) at the end of one round."""

    round: int
    depth: int


def decided_depth_timeline(trace: Trace) -> list[GrowthPoint]:
    """Per-round maximum depth of any decided log (monotone under safety)."""
    timeline: list[GrowthPoint] = []
    best = 0
    decisions_by_round: dict[int, list[int]] = {}
    for event in trace.decisions:
        decisions_by_round.setdefault(event.round, []).append(trace.tree.depth(event.tip))
    for rec in trace.rounds:
        depths = decisions_by_round.get(rec.round, ())
        if depths:
            best = max(best, max(depths))
        timeline.append(GrowthPoint(rec.round, best))
    return timeline


def chain_growth_rate(trace: Trace, start: int = 0, end: int | None = None) -> float:
    """Blocks decided per round over ``[start, end]`` (end defaults to horizon)."""
    timeline = decided_depth_timeline(trace)
    if not timeline:
        return 0.0
    end = min(end if end is not None else trace.horizon - 1, trace.horizon - 1)
    if end <= start:
        return 0.0
    depth_at = {p.round: p.depth for p in timeline}
    return (depth_at[end] - depth_at.get(start, 0)) / (end - start)


def decision_rounds(trace: Trace) -> list[int]:
    """Rounds at which the globally deepest decided log grew."""
    rounds: list[int] = []
    best = 0
    for point in decided_depth_timeline(trace):
        if point.depth > best:
            rounds.append(point.round)
            best = point.depth
    return rounds


def decision_gaps(trace: Trace) -> list[int]:
    """Rounds between successive growth events (protocol cadence)."""
    rounds = decision_rounds(trace)
    return [b - a for a, b in zip(rounds, rounds[1:])]


def block_decision_latencies(trace: Trace) -> list[int]:
    """Per-block latency: rounds from the block's proposal to its first decision.

    A block proposed for view ``v`` is multicast in round ``2(v − 1)``
    (Algorithm 1 step 12; round 0 for the genesis proposal).  Latency is
    measured to the first decision event whose log contains the block.
    MMR's headline is 3 rounds in the good case.
    """
    # Assignments always cover whole root paths, so any block already
    # attributed has all its ancestors attributed too (at the same or
    # an earlier round): walking tip-down and stopping at the first
    # known block visits each block once over the whole trace instead
    # of re-walking every decided log from the root.
    first_decided: dict[str, int] = {}
    for event in sorted(trace.decisions, key=lambda d: d.round):
        node = event.tip
        fresh: list[str] = []
        while node is not None and node not in first_decided:
            fresh.append(node)
            node = trace.tree.parent(node)
        for block_id in reversed(fresh):  # root-first, as a path walk would
            first_decided[block_id] = event.round
    latencies: list[int] = []
    for block_id, decided_round in first_decided.items():
        view = trace.tree.get(block_id).view
        proposed_round = max(0, 2 * (view - 1))
        latencies.append(decided_round - proposed_round)
    return latencies


def transactions_decided(trace: Trace) -> int:
    """Number of distinct transactions in the deepest decided log."""
    last = max(
        (d.tip for d in trace.decisions),
        key=lambda tip: trace.tree.depth(tip),
        default=None,
    )
    if last is None:
        return 0
    return len(trace.tree.payload_ids(last))


def message_totals(trace: Trace) -> dict[str, int]:
    """Total votes/proposals sent over the run."""
    return {
        "votes": sum(rec.votes_sent for rec in trace.rounds),
        "proposes": sum(rec.proposes_sent for rec in trace.rounds),
        "other": sum(rec.other_sent for rec in trace.rounds),
    }


def participation_timeline(trace: Trace) -> list[tuple[int, int, int]]:
    """Per round: (round, |O_r|, |H_r|)."""
    return [(rec.round, len(rec.awake), len(rec.honest)) for rec in trace.rounds]


@dataclass(frozen=True)
class ReorgEvent:
    """A process switched to a log conflicting with one it had delivered.

    ``depth`` is how many blocks of the previously delivered log were
    abandoned (distance from the old tip to the common prefix) — the
    quantity blockchain operators mean by "a reorg of depth d".
    """

    pid: int
    round: int
    old_tip: str | None
    new_tip: str | None
    depth: int


def reorg_events(trace: Trace) -> list[ReorgEvent]:
    """All delivered-log reorganisations, per process, in round order.

    A safe execution has none (delivered logs grow); protocols that
    lose safety under asynchrony show up here with the depth of chain
    they rewrote — the practical damage §3 warns about for dynamically
    available chains under ebb-and-flow.
    """
    events: list[ReorgEvent] = []
    last_tip: dict[int, object] = {}
    for decision in sorted(trace.decisions, key=lambda d: (d.round, d.pid)):
        previous = last_tip.get(decision.pid, _UNSEEN)
        if previous is not _UNSEEN and trace.tree.conflict(previous, decision.tip):
            fork = trace.tree.common_prefix([previous, decision.tip])
            events.append(
                ReorgEvent(
                    pid=decision.pid,
                    round=decision.round,
                    old_tip=previous,  # type: ignore[arg-type]
                    new_tip=decision.tip,
                    depth=trace.tree.depth(previous) - trace.tree.depth(fork),
                )
            )
        last_tip[decision.pid] = decision.tip
    return events


def max_reorg_depth(trace: Trace) -> int:
    """Deepest reorganisation anywhere in the run (0 for safe runs)."""
    return max((event.depth for event in reorg_events(trace)), default=0)


_UNSEEN = object()
