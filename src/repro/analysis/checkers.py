"""Trace checkers for the paper's correctness definitions.

Each checker takes a :class:`~repro.sleepy.trace.Trace` and returns a
small report object — ``ok`` plus enough detail to debug a violation.
The checkers implement the definitions *literally*:

* :func:`check_safety` — Definition 2 safety: all logs delivered by
  well-behaved processes are pairwise compatible.
* :func:`check_asynchrony_resilience` — Definition 5: during
  ``[ra+1, ra+π+1]`` no process of ``H_ra`` decides a log conflicting
  with ``D_ra``, and after ``ra+π+1`` no well-behaved process at all
  does.
* :func:`check_healing` — Definition 6 with constant ``k``: after round
  ``r + k`` all well-behaved logs are pairwise compatible and decisions
  keep happening.
* :func:`check_transaction_liveness` — Definition 2 liveness for one
  transaction: some delivered log contains it and every process that
  keeps deciding eventually delivers a log containing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.block import BlockId
from repro.sleepy.trace import DecisionEvent, Trace


@dataclass(frozen=True)
class Conflict:
    """Two decisions on conflicting logs."""

    first: DecisionEvent
    second: DecisionEvent


@dataclass
class SafetyReport:
    """Outcome of a pairwise-compatibility check."""

    ok: bool
    conflicts: list[Conflict] = field(default_factory=list)
    decisions_checked: int = 0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def check_safety(trace: Trace, max_conflicts: int = 16) -> SafetyReport:
    """Definition 2 safety over every decision in the trace."""
    # Group by tip: pairwise compatibility only depends on distinct tips.
    by_tip: dict[BlockId | None, DecisionEvent] = {}
    for event in trace.decisions:
        by_tip.setdefault(event.tip, event)
    tips = list(by_tip)
    conflicts: list[Conflict] = []
    for i, a in enumerate(tips):
        for b in tips[i + 1:]:
            if trace.tree.conflict(a, b):
                conflicts.append(Conflict(by_tip[a], by_tip[b]))
                if len(conflicts) >= max_conflicts:
                    return SafetyReport(False, conflicts, len(trace.decisions))
    return SafetyReport(not conflicts, conflicts, len(trace.decisions))


@dataclass
class ResilienceReport:
    """Outcome of the Definition 5 check."""

    ok: bool
    ra: int
    pi: int
    pre_async_tips: frozenset[BlockId | None]
    conflicts: list[Conflict] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def check_asynchrony_resilience(trace: Trace, ra: int, pi: int) -> ResilienceReport:
    """Definition 5 against the asynchronous period ``[ra+1, ra+π]``."""
    d_ra = trace.decided_tips_up_to(ra)
    h_ra = trace.record(ra).honest if ra < trace.horizon else frozenset()
    witnesses: dict[BlockId | None, DecisionEvent] = {}
    for event in trace.decisions:
        if event.round <= ra and event.tip in d_ra:
            witnesses.setdefault(event.tip, event)

    conflicts: list[Conflict] = []
    for event in trace.decisions:
        if event.round <= ra:
            continue
        during_window = event.round <= ra + pi + 1
        if during_window and event.pid not in h_ra:
            # During the window, Definition 5 constrains only processes
            # awake at ra; newly awake processes are covered after it.
            continue
        for tip in d_ra:
            if trace.tree.conflict(event.tip, tip):
                conflicts.append(Conflict(witnesses[tip], event))
                break
    return ResilienceReport(not conflicts, ra, pi, d_ra, conflicts)


@dataclass
class HealingReport:
    """Outcome of the Definition 6 check."""

    ok: bool
    safety_ok: bool
    liveness_ok: bool
    first_decision_after: int | None
    rounds_to_decision: int | None
    conflicts: list[Conflict] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def check_healing(
    trace: Trace,
    last_async_round: int,
    k: int = 1,
    liveness_margin: int = 8,
) -> HealingReport:
    """Definition 6: safety and liveness restored after ``last_async_round + k``.

    Safety is checked over decisions at rounds ``> last_async_round + k``;
    liveness requires a *new* decision within ``liveness_margin`` rounds
    of the healing point (Theorem 3 promises ~1 view under the paper's
    assumptions; the margin accommodates proposer luck).
    """
    healed_from = last_async_round + k
    post = [d for d in trace.decisions if d.round > healed_from]

    by_tip: dict[BlockId | None, DecisionEvent] = {}
    for event in post:
        by_tip.setdefault(event.tip, event)
    tips = list(by_tip)
    conflicts: list[Conflict] = []
    for i, a in enumerate(tips):
        for b in tips[i + 1:]:
            if trace.tree.conflict(a, b):
                conflicts.append(Conflict(by_tip[a], by_tip[b]))
    safety_ok = not conflicts

    first_after = min((d.round for d in post), default=None)
    rounds_to = None if first_after is None else first_after - healed_from
    liveness_ok = rounds_to is not None and rounds_to <= liveness_margin
    return HealingReport(
        ok=safety_ok and liveness_ok,
        safety_ok=safety_ok,
        liveness_ok=liveness_ok,
        first_decision_after=first_after,
        rounds_to_decision=rounds_to,
        conflicts=conflicts,
    )


@dataclass
class LivenessReport:
    """Outcome of a per-transaction liveness check."""

    ok: bool
    included_round: int | None
    laggards: frozenset[int] = frozenset()

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def check_transaction_liveness(trace: Trace, tx_id: str) -> LivenessReport:
    """Definition 2 liveness for one transaction.

    The transaction must appear in some delivered log, and every process
    that delivers anything *after* that round must deliver a log
    containing it (processes asleep from then on are exempt — the
    definition only binds processes "awake for sufficiently long").
    """
    included_round: int | None = None
    for event in sorted(trace.decisions, key=lambda d: d.round):
        if tx_id in trace.tree.payload_ids(event.tip):
            included_round = event.round
            break
    if included_round is None:
        return LivenessReport(False, None)

    laggards: set[int] = set()
    last_by_pid: dict[int, DecisionEvent] = {}
    for event in trace.decisions:
        if event.round >= included_round:
            current = last_by_pid.get(event.pid)
            if current is None or event.round > current.round:
                last_by_pid[event.pid] = event
    for pid, event in last_by_pid.items():
        if tx_id not in trace.tree.payload_ids(event.tip):
            laggards.add(pid)
    return LivenessReport(not laggards, included_round, frozenset(laggards))
