"""Trace serialisation: save runs as JSON, reload them for analysis.

Long parameter sweeps are cheaper to analyse offline: run once, save the
trace, and run every checker/metric later (all of
:mod:`repro.analysis` operates on the reloaded object identically).
The format is self-contained — blocks, transactions, participation
records, decisions, and metadata all round-trip exactly.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path

from repro.chain.block import Block
from repro.chain.transactions import Transaction
from repro.chain.tree import BlockTree
from repro.sleepy.trace import DecisionEvent, RoundRecord, Trace

FORMAT_VERSION = 1


def trace_to_dict(trace: Trace) -> dict:
    """A JSON-safe dictionary capturing the whole trace."""
    blocks = []
    seen: set[str] = set()
    # Serialise in depth order so parents always precede children.
    pending = sorted(
        (trace.tree.depth(tip), tip) for tip in trace.tree.tips()
    )
    for _, tip in pending:
        for block_id in trace.tree.path(tip):
            if block_id in seen:
                continue
            seen.add(block_id)
            block = trace.tree.get(block_id)
            blocks.append(
                {
                    "parent": block.parent,
                    "proposer": block.proposer,
                    "view": block.view,
                    "salt": block.salt,
                    "payload": [
                        {
                            "sender": tx.sender,
                            "nonce": tx.nonce,
                            "payload": tx.payload.hex(),
                            "checksum": tx.checksum,
                        }
                        for tx in block.payload
                    ],
                }
            )
    blocks.sort(key=lambda b: _depth_key(b, blocks))
    return {
        "version": FORMAT_VERSION,
        "n": trace.n,
        "meta": {key: _encode_meta(value) for key, value in trace.meta.items()},
        "rounds": [
            {
                "round": rec.round,
                "awake": sorted(rec.awake),
                "honest": sorted(rec.honest),
                "byzantine": sorted(rec.byzantine),
                "asynchronous": rec.asynchronous,
                "votes_sent": rec.votes_sent,
                "proposes_sent": rec.proposes_sent,
                "other_sent": rec.other_sent,
            }
            for rec in trace.rounds
        ],
        "decisions": [
            {"pid": d.pid, "round": d.round, "view": d.view, "tip": d.tip}
            for d in trace.decisions
        ],
        "blocks": blocks,
    }


def _depth_key(block: dict, blocks: list[dict]) -> int:
    # Blocks were appended path-by-path, so parents already precede
    # children; a stable sort on "has no parent first" is sufficient.
    return 0 if block["parent"] is None else 1


def trace_from_dict(data: dict) -> Trace:
    """Rebuild a :class:`Trace` from :func:`trace_to_dict` output."""
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version: {data.get('version')!r}")
    tree = BlockTree()
    pending = [
        Block(
            parent=raw["parent"],
            proposer=raw["proposer"],
            view=raw["view"],
            salt=raw["salt"],
            payload=tuple(
                Transaction(
                    sender=tx["sender"],
                    nonce=tx["nonce"],
                    payload=bytes.fromhex(tx["payload"]),
                    checksum=tx["checksum"],
                )
                for tx in raw["payload"]
            ),
        )
        for raw in data["blocks"]
    ]
    # Insert respecting parent order (a bounded number of passes).
    remaining = pending
    while remaining:
        progressed = []
        deferred = []
        for block in remaining:
            if block.parent is None or block.parent in tree:
                tree.add(block)
                progressed.append(block)
            else:
                deferred.append(block)
        if not progressed:
            raise ValueError("trace blocks do not form a tree")
        remaining = deferred

    trace = Trace(
        n=data["n"],
        tree=tree,
        meta={key: _decode_meta(value) for key, value in data["meta"].items()},
    )
    for rec in data["rounds"]:
        trace.rounds.append(
            RoundRecord(
                round=rec["round"],
                awake=frozenset(rec["awake"]),
                honest=frozenset(rec["honest"]),
                byzantine=frozenset(rec["byzantine"]),
                asynchronous=rec["asynchronous"],
                votes_sent=rec["votes_sent"],
                proposes_sent=rec["proposes_sent"],
                other_sent=rec["other_sent"],
            )
        )
    for d in data["decisions"]:
        trace.decisions.append(
            DecisionEvent(pid=d["pid"], round=d["round"], view=d["view"], tip=d["tip"])
        )
    return trace


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write the trace to ``path`` as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))


def _encode_meta(value):
    if isinstance(value, Fraction):
        return {"__fraction__": [value.numerator, value.denominator]}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_meta(v) for v in value]}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return {"__repr__": repr(value)}


def _decode_meta(value):
    if isinstance(value, dict):
        if "__fraction__" in value:
            num, den = value["__fraction__"]
            return Fraction(num, den)
        if "__tuple__" in value:
            return tuple(_decode_meta(v) for v in value["__tuple__"])
        if "__repr__" in value:
            return value["__repr__"]
    return value
