"""Plain-text table formatting for benches and examples.

Every experiment prints its results as an aligned table (the repository
has no plotting dependency); EXPERIMENTS.md embeds these tables
verbatim.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render an aligned monospace table.

    Floats are shown with four significant decimals; everything else via
    ``str``.
    """
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
