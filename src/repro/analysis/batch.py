"""Batch analysis entry points: the paper's experiment grids as sweeps.

Every large experiment grid in the repository — the Theorem-2 (η, π)
boundary matrix, the Figure-1 empirical probes, and both ablations —
is defined here *once* as a :class:`~repro.engine.sweep.SweepSpec`
(a picklable cell factory expanding to seeded
:class:`~repro.engine.spec.RunSpec`\\ s) plus a per-cell **reducer**
that turns an executed run into a small measurement row inside the
worker process.  Benches, the ``repro sweep`` CLI subcommand, and tests
all drive the same grid definitions through
:func:`~repro.engine.sweep.stream_sweep`, so "the Theorem 2 sweep"
means exactly the same cells everywhere — and every grid is proven
run-for-run identical to its pre-sweep serial loop by
``tests/engine/test_sweep_equivalence.py``.

Factories and reducers are module-level functions (process pools import
them by reference), and each reducer reads everything it needs from the
executed trace plus the cell's parameter dict.
"""

from __future__ import annotations

import os
import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from fractions import Fraction
from pathlib import Path

from repro.analysis.assumptions import (
    check_churn,
    check_eta_sleepiness,
    check_reduced_failure_ratio,
)
from repro.analysis.checkers import check_asynchrony_resilience, check_safety
from repro.analysis.metrics import chain_growth_rate, decision_rounds
from repro.analysis.tables import format_table
from repro.attacks import apply_script, get_script
from repro.core.bounds import beta_tilde
from repro.engine.backend import EngineResult, ExecutionBackend
from repro.engine.spec import RunSpec
from repro.engine.sweep import SweepJournal, SweepSpec
from repro.sleepy.adversary import CrashAdversary, StaleTipChooser, StaticVoteAdversary
from repro.sleepy.schedule import RandomChurnSchedule, TableSchedule
from repro.workloads.scenarios import churn_scenario, split_vote_attack_scenario

THIRD = Fraction(1, 3)

__all__ = [
    "ATTACK_DEPLOY_SCRIPTS",
    "ATTACK_SCRIPTS",
    "GRIDS",
    "GridJob",
    "ablation_beta_grid",
    "ablation_beta_table",
    "attack_deploy_grid",
    "attack_deploy_table",
    "attack_grid",
    "attack_table",
    "deploy_smoke_grid",
    "deploy_smoke_table",
    "figure1_grid",
    "figure1_table",
    "grid_journal",
    "make_attack_deploy_backend",
    "make_deployment_backend",
    "pi_eta_grid",
    "pi_eta_table",
    "reduce_ablation_beta",
    "reduce_attack",
    "reduce_attack_deploy",
    "reduce_deploy_smoke",
    "reduce_figure1",
    "reduce_pi_eta",
    "reduce_sleepiness",
    "sleepiness_grid",
    "sleepiness_table",
]


# ----------------------------------------------------------------------
# E3 — Theorem 2 boundary sweep (bench_pi_eta_sweep)
# ----------------------------------------------------------------------
def _pi_axis(params: dict) -> range:
    """π sweeps across the theorem boundary: ``1 .. η + extra_pi``."""
    return range(1, params["eta"] + 1 + params["extra_pi"])


def pi_eta_spec(*, eta: int, pi: int, n: int, base_target: int, seed: int, **_) -> RunSpec:
    """One Theorem-2 cell: the split-vote attack at (η, π), target kept even."""
    # Keep the attacked round's pre-window identical across π by moving
    # the target with π (and keeping it a decision round).
    target = base_target + pi
    return split_vote_attack_scenario(
        "resilient",
        eta=eta,
        pi=pi,
        n=n,
        target_round=target if target % 2 == 0 else target + 1,
        seed=seed,
    )


def pi_eta_grid(
    n: int = 20,
    etas: Sequence[int] = (2, 4, 6),
    extra_pi: int = 2,
    base_target: int = 10,
    seed: int = 0,
) -> SweepSpec:
    """The Theorem-2 (η, π) matrix under the split-vote attack."""
    return SweepSpec(
        axes={"eta": tuple(etas), "pi": _pi_axis},
        base={"n": n, "extra_pi": extra_pi, "base_target": base_target, "seed": seed},
        factory=pi_eta_spec,
    )


def reduce_pi_eta(result: EngineResult, params: dict) -> dict:
    """Reduce one (η, π) run to its safety/resilience verdict row."""
    trace = result.trace
    pi = params["pi"]
    return {
        "eta": params["eta"],
        "pi": pi,
        "guaranteed": pi < params["eta"],
        "safe": check_safety(trace).ok,
        "resilient": check_asynchrony_resilience(trace, ra=trace.meta["ra"], pi=pi).ok,
    }


def pi_eta_table(rows: Sequence[dict], n: int = 20) -> str:
    """The E3 bench table over reduced (η, π) rows."""
    return format_table(
        ["η", "π", "π < η (guaranteed)", "safe", "Def.5 resilient"],
        [[c["eta"], c["pi"], c["guaranteed"], c["safe"], c["resilient"]] for c in rows],
        title=f"E3: Theorem 2 boundary sweep under the split-vote attack (n={n})",
    )


# ----------------------------------------------------------------------
# F1 — Figure 1 empirical probe (bench_figure1)
# ----------------------------------------------------------------------
def figure1_sizing(gamma_f: float, n: int, beta: Fraction) -> tuple[Fraction, Fraction, int]:
    """``(gamma, allowed, byzantine)`` for one churn point.

    The single source of the probe's adversary sizing — the cell factory
    configures the run with it and the reducer reports it, so the bench
    table can never drift from what actually executed.
    """
    gamma = Fraction(gamma_f).limit_denominator(100)
    allowed = beta_tilde(beta, gamma)
    return gamma, allowed, max(0, int(allowed * n) - 1)  # strictly below β̃·|O_r|


def figure1_spec(
    *, gamma_f: float, n: int, eta: int, rounds: int, beta: Fraction, seed: int, **_
) -> RunSpec:
    """One Figure-1 probe cell: churn at γ with the largest legal adversary."""
    gamma, _, byz = figure1_sizing(gamma_f, n, beta)
    return churn_scenario(
        "resilient", eta=eta, gamma=float(gamma), n=n, rounds=rounds, byzantine=byz, seed=seed
    )


def figure1_grid(
    n: int = 45,
    eta: int = 4,
    rounds: int = 50,
    gammas: Sequence[float] = (0.0, 0.10, 0.20, 0.28),
    beta: Fraction = THIRD,
    seed: int = 3,
) -> SweepSpec:
    """Runs below the Figure-1 curve: growth and safety must hold."""
    return SweepSpec(
        axes={"gamma_f": tuple(gammas)},
        base={"n": n, "eta": eta, "rounds": rounds, "beta": beta, "seed": seed},
        factory=figure1_spec,
    )


def reduce_figure1(result: EngineResult, params: dict) -> dict:
    """Reduce one churn run to its (β̃, Byzantine, growth, safety) row."""
    trace = result.trace
    _, allowed, byz = figure1_sizing(params["gamma_f"], params["n"], params["beta"])
    return {
        "gamma": params["gamma_f"],
        "allowed": allowed,
        "byz": byz,
        "growth": chain_growth_rate(trace, start=8),
        "safe": check_safety(trace).ok,
    }


def figure1_table(rows: Sequence[dict], n: int = 45) -> str:
    """The F1 empirical bench table over reduced churn rows."""
    return format_table(
        ["γ", "β̃ (analytic)", f"Byzantine (of {n})", "growth blocks/round", "safe"],
        [[r["gamma"], float(r["allowed"]), r["byz"], r["growth"], r["safe"]] for r in rows],
        title="Figure 1 (empirical): runs below the curve make progress",
    )


# ----------------------------------------------------------------------
# A1 — stale-vote amplification ablation (bench_ablation_beta)
# ----------------------------------------------------------------------
def ablation_beta_sizings(n: int = 30, sleepers: int = 9) -> tuple[int, int, Fraction]:
    """``(under_tilde, over_tilde, gamma)``: the two adversary sizings.

    ``under_tilde`` respects Equation 2 for the sleep spike's drop-off
    rate γ; ``over_tilde`` is legal under the unadjusted β = 1/3 only.
    """
    gamma = Fraction(sleepers, n)
    tilde = beta_tilde(THIRD, gamma)
    return max(1, int(tilde * n) - 1), int(THIRD * n) - 1, gamma


def ablation_beta_spec(
    *, byz_count: int, n: int, rounds: int, eta: int, sleep_at: int, sleepers: int, **_
) -> RunSpec:
    """One A1 cell: the stale-vote amplification run for one adversary size."""
    byz = list(range(n - byz_count, n))
    sleeper_set = set(range(n - byz_count - sleepers, n - byz_count))

    # After sleep_at, the sleepers are gone; their last votes linger for
    # η more rounds.  Byzantine processes keep voting for the deepest
    # block from before the sleep point (a stale branch).
    awake_after = set(range(n)) - sleeper_set - set(byz)
    schedule = TableSchedule(
        n, {r: awake_after for r in range(sleep_at, rounds + 1)}, default=set(range(n)) - set(byz)
    )
    return RunSpec(
        n=n,
        rounds=rounds,
        protocol="resilient",
        eta=eta,
        schedule=schedule,
        adversary=StaticVoteAdversary(byz, choose_tip=StaleTipChooser(sleep_at)),
    )


def ablation_beta_grid(
    byz_counts: Sequence[int] | None = None,
    n: int = 30,
    rounds: int = 40,
    eta: int = 6,
    sleep_at: int = 14,
    sleepers: int = 9,
) -> SweepSpec:
    """Adversary sized by β̃ (Eq. 2) vs by the unadjusted β, side by side."""
    if byz_counts is None:
        under, over, _ = ablation_beta_sizings(n, sleepers)
        byz_counts = (under, over)
    return SweepSpec(
        axes={"byz_count": tuple(byz_counts)},
        base={"n": n, "rounds": rounds, "eta": eta, "sleep_at": sleep_at, "sleepers": sleepers},
        factory=ablation_beta_spec,
    )


def reduce_ablation_beta(result: EngineResult, params: dict) -> dict:
    """Reduce one A1 run to its post-sleep cadence/stall/safety row."""
    trace = result.trace
    rounds = decision_rounds(trace)
    post = [r for r in rounds if r > params["sleep_at"]]
    gaps = [b - a for a, b in zip(post, post[1:])]
    return {
        "byz": params["byz_count"],
        "post_decisions": len(post),
        "longest_stall": max(gaps, default=params["rounds"] - params["sleep_at"] if not post else 0),
        "safe": check_safety(trace).ok,
    }


def ablation_beta_table(
    rows: Sequence[dict], n: int = 30, eta: int = 6, sleepers: int = 9
) -> str:
    """The A1 bench table (rows must be the [under-β̃, over-β̃] pair, in order)."""
    gamma = Fraction(sleepers, n)
    tilde = beta_tilde(THIRD, gamma)
    sized_by = [f"β̃={float(tilde):.3f} (Eq. 2)", "β=1/3 (unadjusted)"]
    return format_table(
        ["adversary size", "sized by", "decisions after sleep", "longest stall", "safe"],
        [
            [r["byz"], label, r["post_decisions"], r["longest_stall"], r["safe"]]
            for r, label in zip(rows, sized_by)
        ],
        title=(
            f"A1: stale-vote amplification, n={n}, η={eta}, "
            f"{sleepers} sleepers (γ={float(gamma):.2f})"
        ),
    )


# ----------------------------------------------------------------------
# A2 — admission-check comparison (bench_ablation_sleepiness)
# ----------------------------------------------------------------------
def sleepiness_draws(samples: int = 12, master_seed: int = 99) -> tuple[tuple[int, float, int], ...]:
    """The seeded ``(seed, churn, byz_count)`` sample points of A2."""
    rng = random.Random(master_seed)
    draws = []
    for _ in range(samples):
        seed = rng.randrange(1 << 16)
        churn = rng.choice([0.02, 0.05, 0.10, 0.15])
        byz_count = rng.choice([0, 2, 4])
        draws.append((seed, churn, byz_count))
    return tuple(draws)


def sleepiness_spec(*, draw: tuple[int, float, int], n: int, rounds: int, eta: int, **_) -> RunSpec:
    """One A2 cell: a seeded random-churn run with an optional crash adversary."""
    seed, churn, byz_count = draw
    byz = list(range(n - byz_count, n)) if byz_count else []
    return RunSpec(
        n=n,
        rounds=rounds,
        protocol="resilient",
        eta=eta,
        schedule=RandomChurnSchedule(n, churn_per_round=churn, seed=seed, min_awake=n // 3),
        adversary=CrashAdversary(byz) if byz else None,
    )


def sleepiness_grid(
    samples: int = 12,
    master_seed: int = 99,
    n: int = 24,
    rounds: int = 30,
    eta: int = 4,
    gamma: Fraction = Fraction(1, 5),
) -> SweepSpec:
    """Random participation traces classified by Eqs. 1+2 vs Eq. 3."""
    return SweepSpec(
        axes={"draw": sleepiness_draws(samples, master_seed)},
        base={"n": n, "rounds": rounds, "eta": eta, "gamma": gamma},
        factory=sleepiness_spec,
    )


def reduce_sleepiness(result: EngineResult, params: dict) -> dict:
    """Reduce one A2 run to its per-round Eq. 1+2 / Eq. 3 admission sets."""
    trace = result.trace
    eta, gamma = params["eta"], params["gamma"]
    failures_1 = {f.round for f in check_churn(trace, eta, gamma).failures}
    failures_2 = {f.round for f in check_reduced_failure_ratio(trace, THIRD, gamma).failures}
    failures_3 = {f.round for f in check_eta_sleepiness(trace, eta, THIRD).failures}
    all_rounds = {r.round for r in trace.rounds}
    return {
        "eq12": all_rounds - failures_1 - failures_2,
        "eq3": all_rounds - failures_3,
        "total": trace.horizon,
    }


def aggregate_sleepiness(rows: Sequence[dict]) -> dict:
    """Sum the per-run admission sets into the A2 comparison counters."""
    agg = {"total": 0, "eq12": 0, "eq3": 0, "eq12_not_eq3": 0, "eq3_not_eq12": 0}
    for row in rows:
        agg["total"] += row["total"]
        agg["eq12"] += len(row["eq12"])
        agg["eq3"] += len(row["eq3"])
        agg["eq12_not_eq3"] += len(row["eq12"] - row["eq3"])
        agg["eq3_not_eq12"] += len(row["eq3"] - row["eq12"])
    return agg


def sleepiness_table(rows: Sequence[dict], n: int = 24, eta: int = 4) -> str:
    """The A2 bench table over reduced admission rows."""
    agg = aggregate_sleepiness(rows)
    return format_table(
        ["admission check", "rounds admitted", "share"],
        [
            ["Eq. 1 + Eq. 2 (churn bound γ=1/5 + β̃)", agg["eq12"], agg["eq12"] / agg["total"]],
            ["Eq. 3 (η-sleepiness)", agg["eq3"], agg["eq3"] / agg["total"]],
            ["admitted by Eqs. 1+2 but not Eq. 3", agg["eq12_not_eq3"], agg["eq12_not_eq3"] / agg["total"]],
            ["admitted by Eq. 3 but not Eqs. 1+2", agg["eq3_not_eq12"], agg["eq3_not_eq12"] / agg["total"]],
        ],
        title=f"A2: admission-check comparison over {agg['total']} sampled rounds (n={n}, η={eta})",
    )


# ----------------------------------------------------------------------
# D0 — deployment-substrate sweep smoke
# ----------------------------------------------------------------------
def deploy_smoke_spec(*, eta: int, n: int, rounds: int, seed: int, **_) -> RunSpec:
    """One D0 cell: a clean real-time run of the resilient protocol."""
    return RunSpec(n=n, rounds=rounds, protocol="resilient", eta=eta, seed=seed)


def deploy_smoke_grid(
    n: int = 4, rounds: int = 6, etas: Sequence[int] = (2, 3), seed: int = 0
) -> SweepSpec:
    """A tiny grid for the real asyncio substrate (one cell per η).

    Deployment cells cost wall-clock time by construction (rounds are
    Δ = 3δ of real time), which is exactly why they are worth
    journaling: a resumed deployment sweep never re-pays a finished
    cell.
    """
    return SweepSpec(
        axes={"eta": tuple(etas)},
        base={"n": n, "rounds": rounds, "seed": seed},
        factory=deploy_smoke_spec,
    )


def make_deployment_backend(delta_ms: float = 10.0) -> ExecutionBackend:
    """The deployment backend D0 runs on (sweeps use the serial lane)."""
    from repro.engine.deploy_backend import DeploymentBackend

    return DeploymentBackend(delta_s=delta_ms / 1000.0)


def reduce_deploy_smoke(result: EngineResult, params: dict) -> dict:
    """Reduce one deployment run to its (η, decided, safe) row.

    Only fields that are deterministic on the real-time substrate under
    local synchrony belong here — wall-clock seconds and message counts
    vary run to run and would break resume bit-equivalence.
    """
    trace = result.trace
    return {
        "eta": params["eta"],
        "decided": bool(trace.decisions),
        "safe": check_safety(trace).ok,
    }


def deploy_smoke_table(rows: Sequence[dict], n: int = 4) -> str:
    """The D0 smoke table over reduced deployment rows."""
    return format_table(
        ["η", "decided", "safe"],
        [[r["eta"], r["decided"], r["safe"]] for r in rows],
        title=f"D0: deployment-substrate sweep smoke (n={n}, real asyncio rounds)",
    )


# ----------------------------------------------------------------------
# AT — scripted-attack matrix (attack scripts × protocols × seeds)
# ----------------------------------------------------------------------
#: Every script in the attack library, in the order the matrix runs them.
ATTACK_SCRIPTS: tuple[str, ...] = (
    "partition-heal",
    "surge-recover",
    "partition-surge",
    "lossy-links",
    "equivocation-storm",
    "sleep-storm",
)

#: The delay-only subset that is meaningful on the real deployment
#: substrate (drops/corruption/equivocation are simulator powers or
#: need in-process keys; see ``repro.attacks.library``).
ATTACK_DEPLOY_SCRIPTS: tuple[str, ...] = (
    "partition-heal",
    "surge-recover",
    "partition-surge",
)


def attack_spec(
    *, script_name: str, protocol: str, n: int, eta: int, tail: int, seed: int, **_
) -> RunSpec:
    """One AT cell: a scripted attack against one protocol.

    ``tail`` quiescent rounds after the script give the protocol room to
    recover, so liveness after healing is part of the measurement.
    """
    script = get_script(script_name, n)
    base = RunSpec(
        n=n, rounds=script.total_rounds + tail, protocol=protocol, eta=eta, seed=seed
    )
    return apply_script(base, script)


def attack_grid(
    n: int = 12,
    scripts: Sequence[str] = ATTACK_SCRIPTS,
    protocols: Sequence[str] = ("mmr", "resilient"),
    seeds: Sequence[int] = (0, 1),
    eta: int = 6,
    tail: int = 4,
) -> SweepSpec:
    """The simulator attack matrix: scripts × protocols × seeds.

    η = 6 exceeds every scripted asynchronous stretch (π ≤ 5), so
    Theorem 2 *guarantees* safety for the resilient protocol in every
    cell — the CI gate asserts exactly that, while MMR's violations
    under partition + surge are the paper's expected headline and are
    reported, not gated.
    """
    return SweepSpec(
        axes={
            "script_name": tuple(scripts),
            "protocol": tuple(protocols),
            "seed": tuple(seeds),
        },
        base={"n": n, "eta": eta, "tail": tail},
        factory=attack_spec,
    )


def reduce_attack(result: EngineResult, params: dict) -> dict:
    """Reduce one attack cell to safety/liveness/latency columns."""
    trace = result.trace
    script = get_script(params["script_name"], params["n"])
    timeline = script.timeline()
    disrupted = [
        r for r in range(script.total_rounds) if timeline.state_at(r).delivery_active
    ]
    recover_from = (disrupted[-1] + 1) if disrupted else 0
    rounds = sorted(decision_rounds(trace))
    gaps = [b - a for a, b in zip(rounds, rounds[1:])]
    post = [r for r in rounds if r >= recover_from]
    horizon = script.total_rounds + params["tail"]
    return {
        "script": params["script_name"],
        "protocol": params["protocol"],
        "seed": params["seed"],
        "safe": check_safety(trace).ok,
        "decided": bool(rounds),
        "recovered": bool(post),
        "first_decision": rounds[0] if rounds else None,
        "longest_stall": max(gaps, default=0) if rounds else horizon,
        "recovery_latency": (post[0] - recover_from) if post else None,
    }


def attack_table(rows: Sequence[dict], n: int = 12) -> str:
    """The AT matrix table over reduced attack rows."""
    return format_table(
        [
            "script",
            "protocol",
            "seed",
            "safe",
            "decided",
            "recovered",
            "first decision",
            "longest stall",
            "recovery latency",
        ],
        [
            [
                r["script"],
                r["protocol"],
                r["seed"],
                r["safe"],
                r["decided"],
                r["recovered"],
                r["first_decision"],
                r["longest_stall"],
                r["recovery_latency"],
            ]
            for r in rows
        ],
        title=f"AT: scripted-attack matrix (n={n}, simulator)",
    )


def attack_deploy_grid(
    n: int = 6,
    scripts: Sequence[str] = ATTACK_DEPLOY_SCRIPTS,
    protocols: Sequence[str] = ("mmr", "resilient"),
    seeds: Sequence[int] = (0,),
    eta: int = 6,
    tail: int = 4,
) -> SweepSpec:
    """The deployment attack matrix: delay-only scripts on real asyncio.

    Same axes semantics as :func:`attack_grid`, restricted to the
    delay-only library subset — the proxy transport realises exactly
    the partitions and surges the simulator's scripted adversary
    realises, so this grid is the substrate-equivalence smoke.
    """
    return SweepSpec(
        axes={
            "script_name": tuple(scripts),
            "protocol": tuple(protocols),
            "seed": tuple(seeds),
        },
        base={"n": n, "eta": eta, "tail": tail},
        factory=attack_spec,
    )


def make_attack_deploy_backend(delta_ms: float = 10.0) -> ExecutionBackend:
    """The deployment backend the AD grid runs on (single OS process).

    The multi-process proxy path (coordinator-broadcast phase frames)
    is exercised by the CI attack-matrix job's ``repro attack
    --processes 2`` step and by the runtime test-suite, where one cell
    is enough; paying two worker spawns per grid cell here would not
    buy more coverage.
    """
    from repro.engine.deploy_backend import DeploymentBackend

    return DeploymentBackend(delta_s=delta_ms / 1000.0)


def reduce_attack_deploy(result: EngineResult, params: dict) -> dict:
    """Reduce one deployment attack cell to its deterministic columns.

    As with D0, only fields stable across real-time runs belong here
    (resume bit-equivalence): audit counters and latency columns are
    reported by ``repro attack``, not journaled.
    """
    trace = result.trace
    return {
        "script": params["script_name"],
        "protocol": params["protocol"],
        "seed": params["seed"],
        "safe": check_safety(trace).ok,
        "decided": bool(trace.decisions),
    }


def attack_deploy_table(rows: Sequence[dict], n: int = 6) -> str:
    """The AD matrix table over reduced deployment attack rows."""
    return format_table(
        ["script", "protocol", "seed", "safe", "decided"],
        [
            [r["script"], r["protocol"], r["seed"], r["safe"], r["decided"]]
            for r in rows
        ],
        title=f"AD: scripted attacks on the deployment substrate (n={n}, real asyncio)",
    )


# ----------------------------------------------------------------------
# Journals (checkpoint/resume for long grids)
# ----------------------------------------------------------------------
def grid_journal(name: str) -> SweepJournal | None:
    """The journal for grid ``name`` under ``$REPRO_SWEEP_JOURNAL_DIR``.

    Returns ``None`` when the environment variable is unset (the common
    interactive case: no checkpointing).  The grid benches thread this
    through :func:`~repro.engine.sweep.sweep_rows` with
    ``resume="auto"``, so pointing the variable at a directory makes
    every experiment grid checkpointed and resumable — an interrupted
    multi-hour bench re-runs only its unfinished cells, and a *stale*
    journal (another grid shape, backend, or code version) restarts
    fresh instead of failing the bench.
    """
    root = os.environ.get("REPRO_SWEEP_JOURNAL_DIR")
    if not root:
        return None
    directory = Path(root)
    directory.mkdir(parents=True, exist_ok=True)
    return SweepJournal(directory / f"{name}.jsonl", grid=name)


# ----------------------------------------------------------------------
# The named-grid registry (CLI + tooling)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GridJob:
    """One named experiment grid: build it, reduce it, format it."""

    name: str
    description: str
    build: Callable[..., SweepSpec]
    reducer: Callable[[EngineResult, dict], dict]
    table: Callable[..., str]
    #: Build/table kwargs the CLI may override (``--n`` maps to ``n``).
    sizeable: bool = True
    #: Backend factory for grids that do not run on the default round
    #: simulator (``None`` → simulator).  A factory, not an instance,
    #: so building the registry never constructs a substrate.
    backend: Callable[[], ExecutionBackend] | None = None


GRIDS: dict[str, GridJob] = {
    job.name: job
    for job in (
        GridJob(
            name="pi-eta",
            description="E3: Theorem 2 (η, π) boundary matrix under the split-vote attack",
            build=pi_eta_grid,
            reducer=reduce_pi_eta,
            table=pi_eta_table,
        ),
        GridJob(
            name="figure1",
            description="F1: Figure 1 empirical probe (churn points below the β̃ curve)",
            build=figure1_grid,
            reducer=reduce_figure1,
            table=figure1_table,
        ),
        GridJob(
            name="ablation-beta",
            description="A1: stale-vote amplification — β̃ sizing vs unadjusted β",
            build=ablation_beta_grid,
            reducer=reduce_ablation_beta,
            table=ablation_beta_table,
        ),
        GridJob(
            name="sleepiness",
            description="A2: Eqs. 1+2 vs Eq. 3 admission over random participation",
            build=sleepiness_grid,
            reducer=reduce_sleepiness,
            table=sleepiness_table,
            sizeable=False,
        ),
        GridJob(
            name="deploy-smoke",
            description="D0: tiny real-time deployment grid (serial lane, journaled like any sweep)",
            build=deploy_smoke_grid,
            reducer=reduce_deploy_smoke,
            table=deploy_smoke_table,
            backend=make_deployment_backend,
        ),
        GridJob(
            name="attacks",
            description="AT: scripted-attack matrix (scripts × protocols) on the simulator",
            build=attack_grid,
            reducer=reduce_attack,
            table=attack_table,
        ),
        GridJob(
            name="attacks-deploy",
            description="AD: delay-only scripted attacks on the real asyncio deployment",
            build=attack_deploy_grid,
            reducer=reduce_attack_deploy,
            table=attack_deploy_table,
            backend=make_attack_deploy_backend,
        ),
    )
}
