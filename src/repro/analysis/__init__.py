"""Analysis: correctness checkers, assumption validators, metrics.

* :mod:`repro.analysis.checkers` — safety (Def. 2), asynchrony
  resilience (Def. 5), healing (Def. 6), per-transaction liveness.
* :mod:`repro.analysis.assumptions` — the model inequalities
  (Equations 1–5) validated on executed traces.
* :mod:`repro.analysis.ga_properties` — Definition 4 + clique validity
  checkers for single GA instances.
* :mod:`repro.analysis.metrics` — latency, chain growth, throughput.
* :mod:`repro.analysis.tables` — aligned table rendering for benches.
* :mod:`repro.analysis.batch` — the paper's experiment grids as
  :class:`~repro.engine.sweep.SweepSpec`\\ s with per-cell reducers
  (import explicitly: it pulls in the engine and workload layers).
"""

from repro.analysis.assumptions import (
    AssumptionFailure,
    AssumptionReport,
    check_all_synchrony_assumptions,
    check_asynchrony_conditions,
    check_churn,
    check_eta_sleepiness,
    check_failure_ratio,
    check_reduced_failure_ratio,
)
from repro.analysis.checkers import (
    Conflict,
    HealingReport,
    LivenessReport,
    ResilienceReport,
    SafetyReport,
    check_asynchrony_resilience,
    check_healing,
    check_safety,
    check_transaction_liveness,
)
from repro.analysis.ga_properties import (
    GAPropertyReport,
    check_clique_validity,
    check_ga_properties,
)
from repro.analysis.metrics import (
    ReorgEvent,
    block_decision_latencies,
    chain_growth_rate,
    decided_depth_timeline,
    decision_gaps,
    decision_rounds,
    max_reorg_depth,
    message_totals,
    participation_timeline,
    reorg_events,
    transactions_decided,
)
from repro.analysis.export import load_trace, save_trace, trace_from_dict, trace_to_dict
from repro.analysis.tables import format_table
from repro.analysis.viz import render_depth_curve, render_timeline

__all__ = [
    "AssumptionFailure",
    "AssumptionReport",
    "Conflict",
    "GAPropertyReport",
    "HealingReport",
    "LivenessReport",
    "ReorgEvent",
    "ResilienceReport",
    "SafetyReport",
    "block_decision_latencies",
    "chain_growth_rate",
    "check_all_synchrony_assumptions",
    "check_asynchrony_conditions",
    "check_asynchrony_resilience",
    "check_churn",
    "check_clique_validity",
    "check_eta_sleepiness",
    "check_failure_ratio",
    "check_ga_properties",
    "check_healing",
    "check_reduced_failure_ratio",
    "check_safety",
    "check_transaction_liveness",
    "decided_depth_timeline",
    "decision_gaps",
    "decision_rounds",
    "format_table",
    "load_trace",
    "max_reorg_depth",
    "message_totals",
    "participation_timeline",
    "render_depth_curve",
    "render_timeline",
    "reorg_events",
    "save_trace",
    "trace_from_dict",
    "trace_to_dict",
    "transactions_decided",
]
