"""Checkers for the graded-agreement properties (Definition 4, Lemma 1).

These operate on the result of *one* GA instance: the honest inputs and
each honest receiver's :class:`~repro.protocols.graded_agreement.GAOutput`.
They are used by the property-test suite (random instances under random
adversaries) and by the E8 bench, which samples hundreds of instances
and reports a property scoreboard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.chain.block import BlockId
from repro.chain.tally import PrefixTally
from repro.chain.tree import BlockTree
from repro.protocols.graded_agreement import GAOutput


@dataclass
class GAPropertyReport:
    """Which GA properties held for one instance."""

    graded_consistency: bool
    integrity: bool
    validity: bool
    uniqueness: bool
    bounded_divergence: bool
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.graded_consistency
            and self.integrity
            and self.validity
            and self.uniqueness
            and self.bounded_divergence
        )

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def check_ga_properties(
    tree: BlockTree,
    honest_inputs: Mapping[int, BlockId | None],
    honest_outputs: Mapping[int, GAOutput],
) -> GAPropertyReport:
    """Check the five Definition 4 properties on one GA instance.

    ``honest_inputs`` maps the well-behaved processes that *voted* to
    their input tips; ``honest_outputs`` maps the well-behaved processes
    that computed an output to it.  (Under dynamic participation the two
    sets can differ.)
    """
    failures: list[str] = []

    # Graded consistency: grade-1 anywhere ⇒ grade ≥ 0 everywhere.
    graded_consistency = True
    for pid, output in honest_outputs.items():
        for tip in output.grade1:
            for qid, other in honest_outputs.items():
                if tip not in other.grade1 and tip not in other.grade0:
                    graded_consistency = False
                    failures.append(
                        f"graded-consistency: {pid} graded {_short(tip)} 1 but {qid} did not output it"
                    )

    # Integrity: any output log is extended by some honest input.  "Some
    # input extends the output" is a prefix-count query, so one tally
    # over the honest inputs answers it in O(1) per output tip.
    integrity = True
    input_tally = PrefixTally(tree, honest_inputs)
    for pid, output in honest_outputs.items():
        for tip in output.all_output():
            if input_tally.count(tip) == 0:
                integrity = False
                failures.append(
                    f"integrity: {pid} output {_short(tip)} but no honest input extends it"
                )

    # Validity: the longest common prefix of honest inputs gets grade 1.
    validity = True
    if honest_inputs:
        lcp = tree.common_prefix(honest_inputs.values())
        for pid, output in honest_outputs.items():
            if not output.has_grade1(lcp):
                validity = False
                failures.append(f"validity: {pid} did not grade the honest LCP {_short(lcp)} 1")

    # Uniqueness: a grade-1 output forbids conflicting grade-1 outputs anywhere.
    uniqueness = True
    grade1_tips = {tip for output in honest_outputs.values() for tip in output.grade1}
    grade1_list = sorted(grade1_tips, key=lambda t: (tree.depth(t), t or ""))
    for i, a in enumerate(grade1_list):
        for b in grade1_list[i + 1:]:
            if tree.conflict(a, b):
                uniqueness = False
                failures.append(f"uniqueness: grade-1 logs {_short(a)} and {_short(b)} conflict")

    # Bounded divergence: each process outputs at most two pairwise-
    # conflicting logs.
    bounded_divergence = True
    for pid, output in honest_outputs.items():
        tips = output.all_output()
        conflicting = _max_pairwise_conflicting(tree, tips)
        if conflicting > 2:
            bounded_divergence = False
            failures.append(
                f"bounded-divergence: {pid} output {conflicting} pairwise-conflicting logs"
            )

    return GAPropertyReport(
        graded_consistency=graded_consistency,
        integrity=integrity,
        validity=validity,
        uniqueness=uniqueness,
        bounded_divergence=bounded_divergence,
        failures=failures,
    )


def check_clique_validity(
    tree: BlockTree,
    lam: BlockId | None,
    clique: frozenset[int],
    honest_outputs: Mapping[int, GAOutput],
) -> bool:
    """Lemma 1's clique validity conclusion.

    Given that the premises hold for clique ``H'`` and log ``Λ`` (the
    caller constructs instances that satisfy them), every member of the
    clique that produced an output must grade ``Λ`` 1.
    """
    return all(
        honest_outputs[pid].has_grade1(lam) for pid in clique if pid in honest_outputs
    )


def _max_pairwise_conflicting(tree: BlockTree, tips) -> int:
    """Size of the largest set of pairwise-conflicting logs among ``tips``.

    Equivalent to the maximum antichain in the prefix order restricted
    to ``tips``; because logs form a tree, the *maximal* (deepest)
    elements of distinct branches are pairwise conflicting, so it
    suffices to count branch representatives: tips with no descendant
    also in ``tips``.
    """
    unique = list(dict.fromkeys(tips))
    maximal = [
        a
        for a in unique
        if not any(a != b and tree.is_prefix(a, b) for b in unique)
    ]
    # Maximal elements of a tree order are pairwise conflicting.
    return len(maximal)


def _short(tip: BlockId | None) -> str:
    return tip[:8] if tip else "ε"
