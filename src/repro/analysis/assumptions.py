"""Validators for the paper's model assumptions (Equations 1–5).

The theorems hold *under assumptions* on participation, churn, and
corruption.  Rather than trusting that a schedule/adversary pair was
constructed correctly, every experiment validates the executed trace
against the exact inequalities:

* Equation 1 (churn):      ``|H_{r−η,r−1} \\ H_r| ≤ γ·|H_{r−η,r−1}|``
* Equation 2 (failures):   ``|B_r| < β̃·|O_r|`` with β̃ from
  :func:`repro.core.bounds.beta_tilde`
* Equation 3 (η-sleepiness, the D'Amato–Zanolini variant):
  ``|H_r| > (1 − β)·|O_{r−η,r}|``
* Equation 4 (asynchrony): ``|H_ra \\ B_r| > (1 − β)·|O_{r−η,r}|`` for
  all ``r ∈ [ra+1, ra+π+1]``
* Equation 5 (asynchrony): ``H_ra ⊆ H_{ra+1}``

All comparisons use exact rational arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.core.bounds import beta_tilde
from repro.sleepy.trace import Trace


@dataclass(frozen=True)
class AssumptionFailure:
    """One violated inequality at one round."""

    round: int
    assumption: str
    detail: str


@dataclass
class AssumptionReport:
    """Result of validating one assumption over a trace."""

    ok: bool
    name: str
    failures: list[AssumptionFailure] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def _report(name: str, failures: list[AssumptionFailure]) -> AssumptionReport:
    return AssumptionReport(ok=not failures, name=name, failures=failures)


def check_failure_ratio(trace: Trace, beta: Fraction, start: int = 0) -> AssumptionReport:
    """``|B_r| < β·|O_r|`` at every executed round (Definition 3)."""
    beta = Fraction(beta)
    failures = []
    for rec in trace.rounds[start:]:
        if len(rec.byzantine) * beta.denominator >= beta.numerator * len(rec.awake):
            failures.append(
                AssumptionFailure(
                    rec.round,
                    "failure-ratio",
                    f"|B_r|={len(rec.byzantine)} vs β·|O_r|={beta}·{len(rec.awake)}",
                )
            )
    return _report("failure-ratio", failures)


def check_reduced_failure_ratio(
    trace: Trace, beta: Fraction, gamma: Fraction, start: int = 0
) -> AssumptionReport:
    """Equation 2: ``|B_r| < β̃·|O_r|`` with β̃ = (β−γ)/(γ(β−2)+1)."""
    return check_failure_ratio(trace, beta_tilde(beta, gamma), start=start)


def check_churn(trace: Trace, eta: int, gamma: Fraction, start: int = 0) -> AssumptionReport:
    """Equation 1: at most a γ fraction of recent honest processes slept.

    For each round ``r``: ``|H_{r−η,r−1} \\ H_r| ≤ γ·|H_{r−η,r−1}|``.
    """
    gamma = Fraction(gamma)
    failures = []
    for rec in trace.rounds[start:]:
        r = rec.round
        recent = trace.honest_union(r - eta, r - 1)
        if not recent:
            continue
        slept = len(recent - rec.honest)
        if slept * gamma.denominator > gamma.numerator * len(recent):
            failures.append(
                AssumptionFailure(
                    r,
                    "churn",
                    f"|H_(r-η,r-1) \\ H_r|={slept} vs γ·|H_(r-η,r-1)|={gamma}·{len(recent)}",
                )
            )
    return _report("churn", failures)


def check_eta_sleepiness(trace: Trace, eta: int, beta: Fraction, start: int = 0) -> AssumptionReport:
    """Equation 3 (η-sleepiness): ``|H_r| > (1 − β)·|O_{r−η,r}|``.

    This single condition is what §3.3 uses to instantiate the extended
    GA assumptions inside the modified Algorithm 1; it is implied by the
    churn + reduced-failure conditions (Equations 1–2) but can also be
    checked on its own (the A2 ablation compares the two).
    """
    beta = Fraction(beta)
    one_minus = 1 - beta
    failures = []
    for rec in trace.rounds[start:]:
        r = rec.round
        window = trace.awake_union(r - eta, r)
        if len(rec.honest) * one_minus.denominator <= one_minus.numerator * len(window):
            failures.append(
                AssumptionFailure(
                    r,
                    "eta-sleepiness",
                    f"|H_r|={len(rec.honest)} vs (1-β)·|O_(r-η,r)|={one_minus}·{len(window)}",
                )
            )
    return _report("eta-sleepiness", failures)


def check_asynchrony_conditions(
    trace: Trace, ra: int, pi: int, eta: int, beta: Fraction
) -> AssumptionReport:
    """Equations 4 and 5 for the asynchronous period ``[ra+1, ra+π]``."""
    beta = Fraction(beta)
    one_minus = 1 - beta
    failures: list[AssumptionFailure] = []
    if ra >= trace.horizon:
        raise ValueError(f"ra={ra} beyond the executed horizon {trace.horizon}")
    h_ra = trace.record(ra).honest

    if ra + 1 < trace.horizon:
        h_next = trace.record(ra + 1).honest
        if not h_ra <= h_next:
            missing = sorted(h_ra - h_next)
            failures.append(
                AssumptionFailure(
                    ra + 1, "eq5", f"H_ra ⊄ H_(ra+1): missing processes {missing[:8]}"
                )
            )

    for r in range(ra + 1, min(ra + pi + 1, trace.horizon - 1) + 1):
        survivors = h_ra - trace.record(r).byzantine
        window = trace.awake_union(r - eta, r)
        if len(survivors) * one_minus.denominator <= one_minus.numerator * len(window):
            failures.append(
                AssumptionFailure(
                    r,
                    "eq4",
                    f"|H_ra \\ B_r|={len(survivors)} vs (1-β)·|O_(r-η,r)|={one_minus}·{len(window)}",
                )
            )
    return _report("asynchrony-conditions", failures)


def check_all_synchrony_assumptions(
    trace: Trace,
    eta: int,
    beta: Fraction,
    gamma: Fraction,
    start: int = 0,
) -> list[AssumptionReport]:
    """Equations 1, 2, and 3 in one call (the synchronous-operation bundle)."""
    return [
        check_churn(trace, eta, gamma, start=start),
        check_reduced_failure_ratio(trace, beta, gamma, start=start),
        check_eta_sleepiness(trace, eta, beta, start=start),
    ]
