"""The extended graded agreement with an initial vote set (paper Figure 3).

A one-shot primitive: each process starts with an initial set ``M₀`` of
vote messages from a set of processes ``P₀`` (in the modified
Algorithm 1, its latest unexpired votes from rounds ``[g − η, g)``),
multicasts its own vote in round ``g``, and at the end of the round
tallies ``M_r`` — the round-``g`` votes plus the ``M₀`` votes of
processes that did *not* vote in round ``g``:

* equivocations are discarded in either set;
* an ``M₀`` vote is discarded when its sender also voted in round ``g``
  (fresh votes take precedence);
* grading is the Figure 2 tally over ``M_r``.

Lemma 1: under ``|H_g| > 2/3·|O_g ∪ P₀|`` this satisfies all five
original GA properties *plus* **clique validity**, which holds even in
asynchronous rounds and drives the asynchrony-resilience proof
(Theorem 2).  The test suite checks all six properties directly on this
class; the protocol integration is exercised through
:class:`repro.core.resilient_tob.ResilientTOBProcess`, whose per-round
GA instances are exactly instances of this primitive (paper §3.3).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from fractions import Fraction

from repro.chain.block import BlockId
from repro.chain.shared import TreeLike
from repro.chain.tally import PrefixTally
from repro.crypto.signatures import SecretKey
from repro.protocols.graded_agreement import DEFAULT_BETA, GAOutput
from repro.sleepy.messages import CachedVerifier, Message, VoteMessage, make_vote
from repro.sleepy.process import Process

_EQUIVOCATED = object()


@dataclass(frozen=True)
class InitialVote:
    """One vote in ``M₀``: ``sender`` voted ``tip`` in some round ``< g``."""

    sender: int
    round: int
    tip: BlockId | None


class ExtendedGAInstance:
    """The receive-phase bookkeeping of Figure 3 (transport-agnostic).

    Feed it the initial set at construction and round-``g`` votes as
    they arrive; read :meth:`output` at the end of the round.
    """

    def __init__(
        self,
        tree: TreeLike,
        initial_votes: Iterable[InitialVote] = (),
        beta: Fraction = DEFAULT_BETA,
    ) -> None:
        self._tree = tree
        self._beta = beta
        self._m0: dict[int, object] = {}
        self._m0_rounds: dict[int, int] = {}
        for vote in initial_votes:
            self._record(self._m0, vote.sender, vote.tip, self._m0_rounds, vote.round)
        self._fresh: dict[int, object] = {}
        # Graded through a persistent prefix tally: repeated output()
        # calls as round votes trickle in pay only for the vote deltas.
        self._tally = PrefixTally(tree)

    @staticmethod
    def _record(
        table: dict[int, object],
        sender: int,
        tip: BlockId | None,
        rounds: dict[int, int] | None = None,
        round_number: int | None = None,
    ) -> None:
        if rounds is not None and round_number is not None:
            # Within M₀ only each sender's *latest* message matters;
            # older rounds are superseded, same-round disagreement is an
            # equivocation.
            known = rounds.get(sender)
            if known is not None and round_number < known:
                return
            if known is not None and round_number > known:
                table.pop(sender, None)
            rounds[sender] = round_number
        existing = table.get(sender, _MISSING)
        if existing is _MISSING:
            table[sender] = tip
        elif existing is not _EQUIVOCATED and existing != tip:
            table[sender] = _EQUIVOCATED

    @property
    def p0(self) -> frozenset[int]:
        """``P₀``: the processes with a message in the initial set."""
        return frozenset(self._m0)

    def add_round_vote(self, sender: int, tip: BlockId | None) -> None:
        """Record a vote received in the GA round itself."""
        self._record(self._fresh, sender, tip)

    def tallied_votes(self) -> dict[int, BlockId | None]:
        """``M_r``: one vote per process after precedence and discards."""
        merged: dict[int, BlockId | None] = {}
        for sender, tip in self._m0.items():
            if sender in self._fresh:
                continue  # fresh vote (or fresh equivocation) supersedes M₀
            if tip is _EQUIVOCATED:
                continue
            merged[sender] = tip  # type: ignore[assignment]
        for sender, tip in self._fresh.items():
            if tip is _EQUIVOCATED:
                continue
            merged[sender] = tip  # type: ignore[assignment]
        return {pid: tip for pid, tip in merged.items() if tip in self._tree}

    def output(self) -> GAOutput:
        """Grade the tallied votes (Figure 2 thresholds)."""
        self._tally.set_votes(self.tallied_votes())
        return self._tally.grade(self._beta)


class ExtendedGAProcess(Process):
    """A one-shot participant of Figure 3, driven by the round simulator.

    Awake processes vote for their input in round ``ga_round``; every
    receiver (including processes that were asleep in the send phase —
    the two-phase awakeness of §2.1) tallies what it got on top of its
    initial set.  The property-test suite runs many of these under
    random sleep schedules, adversaries, and asynchrony to check
    Lemma 1.
    """

    def __init__(
        self,
        pid: int,
        key: SecretKey,
        verifier: CachedVerifier,
        tree: TreeLike,
        input_tip: BlockId | None,
        initial_votes: Iterable[InitialVote] = (),
        ga_round: int = 0,
        beta: Fraction = DEFAULT_BETA,
    ) -> None:
        super().__init__(pid)
        self._key = key
        self._verifier = verifier
        self._tree = tree
        self._input_tip = input_tip
        self._ga_round = ga_round
        self.instance = ExtendedGAInstance(tree, initial_votes, beta)
        self.output: GAOutput | None = None

    def send(self, round_number: int) -> Sequence[Message]:
        if round_number != self._ga_round:
            return ()
        return [make_vote(self._verifier.registry, self._key, round_number, self._input_tip)]

    def receive(self, round_number: int, messages: Sequence[Message]) -> None:
        for message in messages:
            if (
                isinstance(message, VoteMessage)
                and message.round == self._ga_round
                and self._verifier.verify(message)
            ):
                self.instance.add_round_vote(message.sender, message.tip)
        self.output = self.instance.output()


_MISSING = object()
