"""Analytic bounds: the β̃ formula, Figure 1, and parameter helpers (§2.3).

The paper trades churn tolerance for asynchrony resilience: with an
expiration period of η rounds and a churn rate of γ per η rounds, the
per-round failure ratio must be lowered from the original protocol's β
to

    β̃ = (β − γ) / (γ·(β − 2) + 1)                      (Equation 2)

Figure 1 plots this for β = 1/3 (decision threshold 2/3), where it
simplifies to ``β̃_{2/3} = (1 − 3γ)/(3 − 5γ)``.  All functions here use
exact :class:`fractions.Fraction` arithmetic; benches convert to floats
only for display.
"""

from __future__ import annotations

from fractions import Fraction

Rational = Fraction | int


def beta_tilde(beta: Rational, gamma: Rational) -> Fraction:
    """The reduced failure ratio β̃ (Equation 2).

    Defined for ``0 ≤ γ < β < 1`` ("γ must be smaller than β, since
    otherwise Equation 2 requires |B_r| < 0").  At ``γ = 0`` it returns
    β unchanged — no extra assumption under static participation.
    """
    beta = Fraction(beta)
    gamma = Fraction(gamma)
    if not 0 < beta < 1:
        raise ValueError(f"β must be in (0, 1), got {beta}")
    if not 0 <= gamma < beta:
        raise ValueError(f"churn rate γ must satisfy 0 ≤ γ < β, got γ={gamma}, β={beta}")
    denominator = gamma * (beta - 2) + 1
    assert denominator > 0  # γ < β < 1 implies γ(β−2) > −2γ > −1... kept exact below
    return (beta - gamma) / denominator


def beta_tilde_one_third(gamma: Rational) -> Fraction:
    """Figure 1's closed form ``(1 − 3γ)/(3 − 5γ)`` for β = 1/3."""
    gamma = Fraction(gamma)
    if not 0 <= gamma < Fraction(1, 3):
        raise ValueError(f"γ must be in [0, 1/3) for β = 1/3, got {gamma}")
    return (1 - 3 * gamma) / (3 - 5 * gamma)


def max_churn(beta: Rational) -> Fraction:
    """The stall threshold: at ``γ ≥ β`` the system may stall with no faults.

    (Figure 1 caption: "At a drop-off rate of γ ≥ 1/3, the system may
    stall even without failures.")
    """
    beta = Fraction(beta)
    if not 0 < beta < 1:
        raise ValueError(f"β must be in (0, 1), got {beta}")
    return beta


def decision_threshold(beta: Rational) -> Fraction:
    """Grade-1 quorum ``1 − β`` of perceived participation."""
    return 1 - Fraction(beta)


def gamma_for_beta_tilde(beta: Rational, target: Rational) -> Fraction:
    """Invert Equation 2: the churn rate at which β̃ equals ``target``.

    Useful for calibration ("how much churn can I allow if I must
    tolerate a failure ratio of ``target``?").  Solving
    ``t = (β − γ)/(γ(β − 2) + 1)`` for γ gives
    ``γ = (β − t) / (1 − t·(2 − β))``.
    """
    beta = Fraction(beta)
    target = Fraction(target)
    if not 0 < target <= beta:
        raise ValueError(f"target β̃ must be in (0, β], got {target}")
    gamma = (beta - target) / (1 - target * (2 - beta))
    assert 0 <= gamma < beta
    return gamma


def figure1_curve(
    beta: Rational = Fraction(1, 3),
    points: int = 41,
    gamma_max: Rational | None = None,
) -> list[tuple[Fraction, Fraction]]:
    """The Figure 1 curve: ``points`` samples of ``(γ, β̃(β, γ))``.

    Samples γ uniformly on ``[0, gamma_max]``; the default upper end
    stops just short of the stall threshold β (where β̃ reaches 0).
    """
    if points < 2:
        raise ValueError("need at least two points")
    beta = Fraction(beta)
    hi = Fraction(gamma_max) if gamma_max is not None else max_churn(beta) - Fraction(1, 1000)
    if not 0 <= hi < beta:
        raise ValueError(f"gamma_max must be in [0, β), got {hi}")
    step = hi / (points - 1)
    return [(step * i, beta_tilde(beta, step * i)) for i in range(points)]


def eta_for_resilience(pi: int) -> int:
    """Smallest expiration period tolerating π asynchronous rounds.

    Theorem 2 gives π-asynchrony resilience for ``π < η``, so ``η = π + 1``.
    """
    if pi < 0:
        raise ValueError("π must be non-negative")
    return pi + 1


def max_resilient_pi(eta: int) -> int:
    """Longest asynchronous period an η-expiration protocol tolerates (η − 1)."""
    if eta < 0:
        raise ValueError("η must be non-negative")
    return max(0, eta - 1)
