"""The paper's primary contribution (§2.3, §3.2, §3.3).

* :mod:`repro.core.expiration` — latest-unexpired-message tracking
  (the configurable message-expiration period η).
* :mod:`repro.core.extended_ga` — the extended graded agreement with an
  initial vote set ``M₀`` and the clique-validity property (Figure 3,
  Lemma 1).
* :mod:`repro.core.resilient_tob` — Algorithm 1 modified to use latest
  unexpired messages: π-asynchrony-resilient for π < η (Theorems 1–3).
* :mod:`repro.core.bounds` — the analytic trade-off (Figure 1,
  Equations 1–5 constants): β̃ = (β − γ)/(γ(β − 2) + 1) and friends.

The protocol classes are re-exported lazily (PEP 562): the protocol
layer imports :mod:`repro.core.expiration`, and eager re-export here
would close an import cycle.
"""

from repro.core.bounds import (
    beta_tilde,
    beta_tilde_one_third,
    decision_threshold,
    eta_for_resilience,
    figure1_curve,
    gamma_for_beta_tilde,
    max_churn,
    max_resilient_pi,
)
from repro.core.expiration import LatestVoteStore

__all__ = [
    "ExtendedGAInstance",
    "ExtendedGAProcess",
    "InitialVote",
    "LatestVoteStore",
    "ResilientTOBProcess",
    "beta_tilde",
    "beta_tilde_one_third",
    "decision_threshold",
    "eta_for_resilience",
    "figure1_curve",
    "gamma_for_beta_tilde",
    "max_churn",
    "max_resilient_pi",
    "resilient_factory",
]

_LAZY = {
    "ExtendedGAInstance": "repro.core.extended_ga",
    "ExtendedGAProcess": "repro.core.extended_ga",
    "InitialVote": "repro.core.extended_ga",
    "ResilientTOBProcess": "repro.core.resilient_tob",
    "resilient_factory": "repro.core.resilient_tob",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
