"""Latest-unexpired-message tracking — the paper's expiration mechanism.

The paper's core idea (§2.1 "Message structure", §3.3): equip every vote
with an expiration period of η rounds and have the protocol's behaviour
at round ``r`` depend only on the *latest* unexpired vote of each
process — the latest among those sent in rounds ``[r − 1 − η, r − 1]``
(equivalently: a GA instance started in round ``g`` tallies the latest
votes from rounds ``[g − η, g]``).

:class:`LatestVoteStore` implements exactly this bookkeeping:

* one logical vote per (sender, round); a sender with two *different*
  votes in the same round is an equivocator for that round;
* :meth:`latest` returns, per sender, the vote from their most recent
  round inside the window — and **discards** senders whose latest
  in-window round is equivocating (the paper discards equivocating
  latest messages; we do not fall back to older rounds, so an
  equivocator contributes nothing — the conservative reading of
  Figures 2/3's "two different vote messages from the same process are
  ignored");
* votes tagged with rounds above the window (a Byzantine sender may
  post-date its tags) are simply not visible until the window reaches
  them, so post-dating grants no extra power.

With window width 0 (``lo == hi == g``) the store reproduces the
original protocol's behaviour — η = 0 *is* the unmodified MMR vote
rule, which the equivalence tests in ``tests/integration`` exploit.

**Representation.**  Since the batched-ingest refactor the store is
*round-bucketed and incremental*: votes live in per-round tables
(``round -> sender -> tip | EQUIVOCATED_VOTE``, the same shape a
:meth:`~repro.sleepy.messages.VerifiedBatch.vote_table` delivers, so a
synchronous round's votes merge as one table adoption instead of
per-vote calls), :meth:`prune` drops whole buckets in O(dropped), and
the per-window latest-vote aggregate is maintained incrementally: a GA
query for ``[g − η, g]`` *rolls* the previous query's window forward by
merging only the newly visible buckets instead of rescanning every
sender's history.  Every query path is pinned bit-identical to the
brute-force recount by ``tests/core/test_incremental_votes.py`` and the
seeded golden traces.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.chain.block import BlockId
from repro.sleepy.messages import EQUIVOCATED_VOTE


class LatestVoteStore:
    """Per-sender vote history with incremental expiration-window queries."""

    _EQUIVOCATED = EQUIVOCATED_VOTE
    _MISSING = object()

    def __init__(self) -> None:
        # Mutation counter (see :attr:`version`).
        self._version = 0
        # round -> sender -> tip of the unique vote, or EQUIVOCATED_VOTE.
        self._by_round: dict[int, dict[int, object]] = {}
        # round -> senders equivocating in that round (only rounds that
        # have any; lets prune update equivocator counts in O(evidence)).
        self._round_eq: dict[int, set[int]] = {}
        # sender -> number of unpruned rounds it equivocated in.
        self._eq_rounds: dict[int, int] = {}
        self._size = 0
        # The incremental window aggregate: the (lo, hi) of the last
        # query and, per sender, its latest in-window (round, value).
        self._win: tuple[int, int] | None = None
        self._win_latest: dict[int, tuple[int, object]] = {}
        # Smallest round referenced by the aggregate — lets prune skip
        # the aggregate entirely when it only drops older rounds (the
        # steady-state case: the protocol prunes exactly up to the
        # window's lower edge).
        self._win_min = 0

    def __len__(self) -> int:
        return self._size

    @property
    def version(self) -> int:
        """Monotone counter bumped by every potentially mutating call.

        Lets long-lived consumers (e.g. a :class:`~repro.chain.tally.
        PrefixTally` fed from this store's window queries) skip
        re-deriving their state when nothing was recorded or pruned
        since they last synced.  Conservative: a call that turns out to
        be a no-op (a duplicate redelivery) may still bump it — stale
        versions only ever cause a redundant diff, never a stale read.
        """
        return self._version

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, sender: int, round_number: int, tip: BlockId | None) -> None:
        """Record one vote.  A second, different tip marks an equivocation."""
        self._version += 1
        bucket = self._by_round.get(round_number)
        if bucket is None:
            bucket = self._by_round[round_number] = {}
        existing = bucket.get(sender, self._MISSING)
        if existing is self._MISSING:
            bucket[sender] = tip
            self._size += 1
        elif existing is EQUIVOCATED_VOTE or existing == tip:
            return
        else:
            bucket[sender] = EQUIVOCATED_VOTE
            self._mark_equivocation(sender, round_number)
        win = self._win
        if win is not None and win[0] <= round_number <= win[1]:
            # A late in-window arrival; rebuild lazily on the next query
            # rather than maintaining every transition eagerly.
            self._win = None
            self._win_latest = {}

    def record_batch(self, records: Iterable[tuple[int, int, BlockId | None]]) -> None:
        """Record many ``(sender, round, tip)`` votes (delivery order)."""
        for sender, round_number, tip in records:
            self.record(sender, round_number, tip)

    def record_table(self, table: Mapping[int, Mapping[int, object]]) -> None:
        """Merge a round-resolved vote table (see ``VerifiedBatch.vote_table``).

        ``table`` maps ``round -> sender -> tip | EQUIVOCATED_VOTE``
        with within-batch equivocations already collapsed.  When this
        store has no prior entries for a round — the steady synchronous
        case, where each round's votes arrive exactly once — the whole
        per-round table is adopted as one dict copy; otherwise entries
        merge one by one with the usual equivocation transitions.
        """
        self._version += 1
        by_round = self._by_round
        for round_number, delta in table.items():
            bucket = by_round.get(round_number)
            if bucket is None:
                adopted = dict(delta)
                by_round[round_number] = adopted
                self._size += len(adopted)
                for sender, value in adopted.items():
                    if value is EQUIVOCATED_VOTE:
                        self._mark_equivocation(sender, round_number)
            else:
                for sender, value in delta.items():
                    existing = bucket.get(sender, self._MISSING)
                    if existing is self._MISSING:
                        bucket[sender] = value
                        self._size += 1
                        if value is EQUIVOCATED_VOTE:
                            self._mark_equivocation(sender, round_number)
                    elif existing is EQUIVOCATED_VOTE or existing == value:
                        continue
                    else:
                        # Either the delta proves a fresh conflict, or it
                        # is itself an equivocation marker: void the slot.
                        bucket[sender] = EQUIVOCATED_VOTE
                        self._mark_equivocation(sender, round_number)
            win = self._win
            if win is not None and win[0] <= round_number <= win[1]:
                self._win = None
                self._win_latest = {}

    def _mark_equivocation(self, sender: int, round_number: int) -> None:
        eq = self._round_eq.get(round_number)
        if eq is None:
            eq = self._round_eq[round_number] = set()
        if sender not in eq:
            eq.add(sender)
            self._eq_rounds[sender] = self._eq_rounds.get(sender, 0) + 1

    # ------------------------------------------------------------------
    # Window queries
    # ------------------------------------------------------------------
    def latest(self, window_lo: int, window_hi: int) -> dict[int, BlockId | None]:
        """Latest unexpired vote per sender over rounds ``[window_lo, window_hi]``.

        Senders whose latest in-window vote is an equivocation are
        excluded entirely.  Consecutive queries with advancing windows
        (the protocol's access pattern: ``[g − η, g]`` then
        ``[g + 1 − η, g + 1]``) are served incrementally by rolling the
        aggregate forward; arbitrary windows fall back to a rebuild
        over the buckets in range.
        """
        if window_lo > window_hi:
            return {}
        if self._win != (window_lo, window_hi):
            self._advance_window(window_lo, window_hi)
        return {
            sender: value  # type: ignore[misc]
            for sender, (_, value) in self._win_latest.items()
            if value is not EQUIVOCATED_VOTE
        }

    def _advance_window(self, lo: int, hi: int) -> None:
        win = self._win
        if win is not None and win[0] <= lo and win[1] <= hi:
            lo0, hi0 = win
            aggregate = self._win_latest
            # Merge the newly visible buckets (ascending: latest wins).
            fresh = sorted(r for r in self._by_round if hi0 < r <= hi)
            for r in fresh:
                for sender, value in self._by_round[r].items():
                    aggregate[sender] = (r, value)
            # Re-derive senders whose cached round fell off the left
            # edge, and track the new minimum as we go.
            new_min = hi
            if lo > lo0 or self._win_min < lo:
                for sender in [s for s, (r, _) in aggregate.items() if r < lo]:
                    refreshed = self._scan_latest(sender, lo, hi)
                    if refreshed is None:
                        del aggregate[sender]
                    else:
                        aggregate[sender] = refreshed
            for _, (r, _value) in aggregate.items():
                if r < new_min:
                    new_min = r
            self._win_min = new_min
        else:
            aggregate = {}
            for r in sorted(r for r in self._by_round if lo <= r <= hi):
                for sender, value in self._by_round[r].items():
                    aggregate[sender] = (r, value)
            self._win_latest = aggregate
            self._win_min = min((r for r, _ in aggregate.values()), default=hi)
        self._win = (lo, hi)

    def _scan_latest(self, sender: int, lo: int, hi: int) -> tuple[int, object] | None:
        best = -1
        value: object = None
        for r, bucket in self._by_round.items():
            if lo <= r <= hi and r > best and sender in bucket:
                best = r
                value = bucket[sender]
        if best < 0:
            return None
        return (best, value)

    # ------------------------------------------------------------------
    # Introspection and accountability
    # ------------------------------------------------------------------
    def rounds_of(self, sender: int) -> tuple[int, ...]:
        """Rounds in which ``sender``'s votes were recorded (sorted)."""
        return tuple(sorted(r for r, bucket in self._by_round.items() if sender in bucket))

    def equivocators(self) -> frozenset[int]:
        """Senders caught equivocating in any (unpruned) round.

        Equivocation is provable misbehaviour — two validly signed,
        conflicting votes for the same round — so this set is the
        accountability output a deployment would feed into slashing.
        """
        return frozenset(self._eq_rounds)

    # ------------------------------------------------------------------
    # Expiration
    # ------------------------------------------------------------------
    def prune(self, before_round: int) -> int:
        """Drop all votes from rounds ``< before_round``; returns how many.

        Long-running processes call this with ``r − 1 − η`` so memory
        stays proportional to the expiration window.  Round-bucketed
        storage makes this O(dropped votes): whole buckets are popped,
        and the window aggregate is only touched when the cut reaches
        into rounds it still references.
        """
        dropped = 0
        stale = [r for r in self._by_round if r < before_round]
        if stale:
            self._version += 1
        for r in stale:
            bucket = self._by_round.pop(r)
            dropped += len(bucket)
            for sender in self._round_eq.pop(r, ()):
                remaining = self._eq_rounds[sender] - 1
                if remaining:
                    self._eq_rounds[sender] = remaining
                else:
                    del self._eq_rounds[sender]
        self._size -= dropped
        win = self._win
        if win is not None and before_round > self._win_min:
            if before_round > win[0]:
                # The cut reaches into the cached window: evict stale
                # aggregate entries so repeat queries of this same
                # window reflect the pruned state exactly.
                aggregate = self._win_latest
                for sender in [s for s, (r, _) in aggregate.items() if r < before_round]:
                    del aggregate[sender]
            self._win_min = min(
                (r for r, _ in self._win_latest.values()), default=win[1]
            )
        return dropped
