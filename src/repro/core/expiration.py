"""Latest-unexpired-message tracking — the paper's expiration mechanism.

The paper's core idea (§2.1 "Message structure", §3.3): equip every vote
with an expiration period of η rounds and have the protocol's behaviour
at round ``r`` depend only on the *latest* unexpired vote of each
process — the latest among those sent in rounds ``[r − 1 − η, r − 1]``
(equivalently: a GA instance started in round ``g`` tallies the latest
votes from rounds ``[g − η, g]``).

:class:`LatestVoteStore` implements exactly this bookkeeping:

* one logical vote per (sender, round); a sender with two *different*
  votes in the same round is an equivocator for that round;
* :meth:`latest` returns, per sender, the vote from their most recent
  round inside the window — and **discards** senders whose latest
  in-window round is equivocating (the paper discards equivocating
  latest messages; we do not fall back to older rounds, so an
  equivocator contributes nothing — the conservative reading of
  Figures 2/3's "two different vote messages from the same process are
  ignored");
* votes tagged with rounds above the window (a Byzantine sender may
  post-date its tags) are simply not visible until the window reaches
  them, so post-dating grants no extra power.

With window width 0 (``lo == hi == g``) the store reproduces the
original protocol's behaviour — η = 0 *is* the unmodified MMR vote
rule, which the equivalence tests in ``tests/integration`` exploit.
"""

from __future__ import annotations

from repro.chain.block import BlockId


class LatestVoteStore:
    """Per-sender vote history with expiration-window queries."""

    def __init__(self) -> None:
        # sender -> round -> tip of the unique vote, or EQUIVOCATED.
        self._by_sender: dict[int, dict[int, object]] = {}

    _EQUIVOCATED = object()

    def __len__(self) -> int:
        return sum(len(rounds) for rounds in self._by_sender.values())

    def record(self, sender: int, round_number: int, tip: BlockId | None) -> None:
        """Record one vote.  A second, different tip marks an equivocation."""
        rounds = self._by_sender.setdefault(sender, {})
        existing = rounds.get(round_number, self._MISSING)
        if existing is self._MISSING:
            rounds[round_number] = tip
        elif existing is not self._EQUIVOCATED and existing != tip:
            rounds[round_number] = self._EQUIVOCATED

    _MISSING = object()

    def latest(self, window_lo: int, window_hi: int) -> dict[int, BlockId | None]:
        """Latest unexpired vote per sender over rounds ``[window_lo, window_hi]``.

        Senders whose latest in-window vote is an equivocation are
        excluded entirely.
        """
        if window_lo > window_hi:
            return {}
        result: dict[int, BlockId | None] = {}
        for sender, rounds in self._by_sender.items():
            best_round = -1
            for r in rounds:
                if window_lo <= r <= window_hi and r > best_round:
                    best_round = r
            if best_round < 0:
                continue
            tip = rounds[best_round]
            if tip is self._EQUIVOCATED:
                continue
            result[sender] = tip  # type: ignore[assignment]
        return result

    def rounds_of(self, sender: int) -> tuple[int, ...]:
        """Rounds in which ``sender``'s votes were recorded (sorted)."""
        return tuple(sorted(self._by_sender.get(sender, ())))

    def equivocators(self) -> frozenset[int]:
        """Senders caught equivocating in any (unpruned) round.

        Equivocation is provable misbehaviour — two validly signed,
        conflicting votes for the same round — so this set is the
        accountability output a deployment would feed into slashing.
        """
        return frozenset(
            sender
            for sender, rounds in self._by_sender.items()
            if any(tip is self._EQUIVOCATED for tip in rounds.values())
        )

    def prune(self, before_round: int) -> int:
        """Drop all votes from rounds ``< before_round``; returns how many.

        Long-running processes call this with ``r − 1 − η`` so memory
        stays proportional to the expiration window.
        """
        dropped = 0
        for sender in list(self._by_sender):
            rounds = self._by_sender[sender]
            stale = [r for r in rounds if r < before_round]
            for r in stale:
                del rounds[r]
            dropped += len(stale)
            if not rounds:
                del self._by_sender[sender]
        return dropped
