"""The asynchrony-resilient TOB — modified Algorithm 1 (paper §3.3).

The single modification the paper prescribes: every GA instance tallies
the **latest unexpired** votes — for the instance started in round
``g``, the latest vote of each process among rounds ``[g − η, g]`` —
instead of only round-``g`` votes.  Everything else (views, proposals,
decision rule) is inherited unchanged from
:class:`repro.protocols.tob_base.SleepyTOBProcess`.

Guarantees (under the paper's assumptions, validated per-run by
:mod:`repro.analysis.assumptions`):

* Theorem 1 — still a Byzantine TOB (safety + liveness under synchrony);
* Theorem 2 — π-asynchrony-resilient for every π < η;
* Theorem 3 — heals one round after synchrony resumes.

``eta = 0`` reproduces the original MMR protocol exactly (window
``[g, g]``); the integration suite asserts trace-for-trace equality.
"""

from __future__ import annotations

from fractions import Fraction

from repro.chain.transactions import Mempool
from repro.crypto.signatures import SecretKey
from repro.protocols.graded_agreement import DEFAULT_BETA
from repro.protocols.tob_base import DEFAULT_BLOCK_CAPACITY, SleepyTOBProcess
from repro.sleepy.messages import CachedVerifier
from repro.sleepy.process import ProcessFactory


class ResilientTOBProcess(SleepyTOBProcess):
    """Algorithm 1 modified to use latest unexpired messages."""

    def __init__(
        self,
        pid: int,
        key: SecretKey,
        verifier: CachedVerifier,
        eta: int,
        beta: Fraction = DEFAULT_BETA,
        mempool: Mempool | None = None,
        block_capacity: int = DEFAULT_BLOCK_CAPACITY,
        record_telemetry: bool = False,
        chain=None,
    ) -> None:
        if eta < 0:
            raise ValueError("expiration period η must be non-negative")
        super().__init__(
            pid,
            key,
            verifier,
            beta=beta,
            mempool=mempool,
            block_capacity=block_capacity,
            record_telemetry=record_telemetry,
            chain=chain,
        )
        self.eta = eta

    def vote_window(self, ga_round: int) -> tuple[int, int]:
        return (max(0, ga_round - self.eta), ga_round)

    def vote_expiry_horizon(self, round_number: int) -> int:
        # Everything below the reach of any future window is expired.
        return round_number - self.eta


def resilient_factory(
    eta: int,
    beta: Fraction = DEFAULT_BETA,
    block_capacity: int = DEFAULT_BLOCK_CAPACITY,
    record_telemetry: bool = False,
) -> ProcessFactory:
    """A :data:`~repro.sleepy.process.ProcessFactory` for the modified protocol."""

    def factory(
        pid: int, key: SecretKey, verifier: CachedVerifier, chain=None
    ) -> ResilientTOBProcess:
        return ResilientTOBProcess(
            pid,
            key,
            verifier,
            eta=eta,
            beta=beta,
            mempool=Mempool(),
            block_capacity=block_capacity,
            record_telemetry=record_telemetry,
            chain=chain,
        )

    factory.supports_shared_chain = True
    return factory
