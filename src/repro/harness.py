"""One-call assembly of protocol simulations.

Examples, tests, and benches all build runs the same way: pick a
protocol (original MMR or the η-expiration modification), a sleep
schedule, an adversary, and a network model; run for some rounds; get a
:class:`~repro.sleepy.trace.Trace` back.  This module provides that
assembly so experiment code stays declarative.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from fractions import Fraction

from repro.chain.transactions import Transaction
from repro.crypto.signatures import KeyRegistry
from repro.protocols.graded_agreement import DEFAULT_BETA
from repro.protocols.mmr_tob import mmr_factory
from repro.core.resilient_tob import resilient_factory
from repro.sleepy.adversary import Adversary, NullAdversary
from repro.sleepy.network import NetworkModel, SynchronousNetwork
from repro.sleepy.schedule import FullParticipation, SleepSchedule
from repro.sleepy.simulator import Simulation
from repro.sleepy.trace import Trace


@dataclass
class TOBRunConfig:
    """Declarative description of one protocol run.

    Attributes:
        n: number of processes.
        rounds: rounds to execute.
        protocol: ``"mmr"`` (original, current-round votes) or
            ``"resilient"`` (latest unexpired votes over η rounds).
        eta: expiration period for the resilient protocol (ignored for
            ``"mmr"``).
        beta: the GA failure-ratio parameter β (quorums are ``> (1−β)m``
            and ``> β·m``).  The *assumption* to run under β̃ for a given
            churn rate is the experimenter's responsibility — that is
            the paper's Equation 2, checked by
            :mod:`repro.analysis.assumptions`.
        schedule: awake/asleep schedule (default: full participation).
        adversary: the adversary (default: none).
        network: synchrony model (default: fully synchronous).
        transactions: round → transactions that arrive at every awake
            process's mempool at the beginning of that round (models
            clients broadcasting transactions).
        record_telemetry: collect per-GA quorum-race telemetry on every
            process (:class:`~repro.protocols.tob_base.TallySample`).
        seed: run seed for key derivation.
        meta: free-form metadata copied into the trace.
    """

    n: int
    rounds: int
    protocol: str = "resilient"
    eta: int = 2
    beta: Fraction = DEFAULT_BETA
    schedule: SleepSchedule | None = None
    adversary: Adversary | None = None
    network: NetworkModel | None = None
    transactions: Mapping[int, Sequence[Transaction]] = field(default_factory=dict)
    record_telemetry: bool = False
    seed: int = 0
    meta: dict = field(default_factory=dict)


def build_simulation(config: TOBRunConfig) -> Simulation:
    """Construct the :class:`Simulation` described by ``config``."""
    if config.protocol == "mmr":
        factory = mmr_factory(beta=config.beta, record_telemetry=config.record_telemetry)
    elif config.protocol == "resilient":
        factory = resilient_factory(
            eta=config.eta, beta=config.beta, record_telemetry=config.record_telemetry
        )
    else:
        raise ValueError(f"unknown protocol {config.protocol!r} (use 'mmr' or 'resilient')")

    registry = KeyRegistry(config.n, run_seed=config.seed)
    schedule = config.schedule if config.schedule is not None else FullParticipation(config.n)
    adversary = config.adversary if config.adversary is not None else NullAdversary()
    network = config.network if config.network is not None else SynchronousNetwork()
    meta = {
        "protocol": config.protocol,
        "eta": config.eta if config.protocol == "resilient" else 0,
        "beta": config.beta,
        "seed": config.seed,
        **config.meta,
    }
    return Simulation(registry, schedule, adversary, network, factory, meta=meta)


def run_tob(config: TOBRunConfig) -> Trace:
    """Build and run the simulation; returns the trace."""
    simulation = build_simulation(config)
    return run_simulation(simulation, config)


def run_simulation(simulation: Simulation, config: TOBRunConfig) -> Trace:
    """Run an already-built simulation, feeding transactions round by round."""
    for r in range(config.rounds):
        arrivals = config.transactions.get(r, ())
        if arrivals:
            awake = simulation.schedule.awake(r)
            for pid, process in simulation.processes.items():
                if pid not in awake:
                    continue
                mempool = getattr(process, "mempool", None)
                if mempool is None:
                    continue
                for tx in arrivals:
                    mempool.add(tx)
        simulation.run(1)
    return simulation.trace
