"""One-call assembly of protocol simulations.

Examples, tests, and benches all build runs the same way: pick a
protocol (original MMR or the η-expiration modification), a sleep
schedule, an adversary, and a network model; run for some rounds; get a
:class:`~repro.sleepy.trace.Trace` back.

This module is a thin adapter over the unified execution engine
(:mod:`repro.engine`): :class:`TOBRunConfig` *is* the engine's
:class:`~repro.engine.spec.RunSpec`, and :func:`run_tob` executes it on
the deterministic round-simulator backend.  The same config runs on the
wall-clock asyncio substrate via
:class:`~repro.engine.deploy_backend.DeploymentBackend` (or the
``repro run --backend deployment`` CLI).
"""

from __future__ import annotations

from repro.engine.sim_backend import SimulationBackend
from repro.engine.spec import RunSpec
from repro.sleepy.simulator import Simulation
from repro.sleepy.trace import Trace

#: The declarative description of one protocol run (engine RunSpec).
TOBRunConfig = RunSpec


def build_simulation(config: TOBRunConfig) -> Simulation:
    """Construct the :class:`Simulation` described by ``config``."""
    return SimulationBackend().build(config)


def run_tob(config: TOBRunConfig) -> Trace:
    """Build and run the simulation; returns the trace."""
    return SimulationBackend().execute(config).trace


def run_simulation(simulation: Simulation, config: TOBRunConfig) -> Trace:
    """Run an already-built simulation, feeding transactions round by round."""
    SimulationBackend.drive(simulation, config)
    return simulation.trace
