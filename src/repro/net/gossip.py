"""Gossip dissemination over the asyncio transport.

The paper assumes "an underlying peer-to-peer dissemination protocol
(e.g., a gossip protocol)" (§2.1) with two crucial properties exercised
here: messages reach everyone even if the original sender goes to sleep
mid-dissemination, and messages survive asynchronous periods (they are
delayed, not lost).

Topology is a random k-regular overlay (complete graph for tiny n);
every node forwards each first-seen message to all its neighbours, which
floods any connected graph in ``diameter`` hops.
"""

from __future__ import annotations

import asyncio
import random
from collections.abc import Callable

import networkx as nx

from repro.net.transport import SimTransport
from repro.sleepy.messages import Message

#: Called on each node's behalf when a new message first reaches it.
DeliveryHandler = Callable[[int, Message], None]


def regular_topology(n: int, degree: int, seed: int = 0) -> dict[int, tuple[int, ...]]:
    """A connected random ``degree``-regular overlay (complete if small).

    Falls back to the complete graph when a regular graph of the
    requested degree does not exist or would be smaller than useful.
    """
    if n <= degree + 1 or (n * degree) % 2 == 1:
        return {pid: tuple(q for q in range(n) if q != pid) for pid in range(n)}
    rng = random.Random(seed)
    for attempt in range(32):
        graph = nx.random_regular_graph(degree, n, seed=rng.randrange(1 << 30))
        if nx.is_connected(graph):
            return {pid: tuple(sorted(graph.neighbors(pid))) for pid in range(n)}
    raise RuntimeError("could not sample a connected regular overlay")


class GossipNode:
    """One node's view of the gossip overlay."""

    def __init__(
        self,
        pid: int,
        transport: SimTransport,
        neighbors: tuple[int, ...],
        on_deliver: DeliveryHandler,
    ) -> None:
        self.pid = pid
        self._transport = transport
        self._neighbors = neighbors
        self._on_deliver = on_deliver
        self._seen: set[str] = set()
        self._pump_task: asyncio.Task | None = None

    def publish(self, message: Message) -> None:
        """Originate a message: deliver locally and push to neighbours."""
        self._ingest(None, message)

    def start(self) -> None:
        """Begin pumping incoming transport messages (call inside the loop)."""
        self._pump_task = asyncio.get_running_loop().create_task(self._pump())

    async def stop(self) -> None:
        """Cancel the pump task and wait for it to unwind."""
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass

    async def _pump(self) -> None:
        while True:
            src, payload = await self._transport.recv(self.pid)
            if isinstance(payload, Message):
                self._ingest(src, payload)

    def _ingest(self, src: int | None, message: Message) -> None:
        if message.message_id in self._seen:
            return
        self._seen.add(message.message_id)
        self._on_deliver(self.pid, message)
        for neighbor in self._neighbors:
            if neighbor != src:
                self._transport.send(self.pid, neighbor, message)


class GossipNetwork:
    """All gossip nodes of one deployment."""

    def __init__(
        self,
        transport: SimTransport,
        topology: dict[int, tuple[int, ...]],
        on_deliver: DeliveryHandler,
    ) -> None:
        self.nodes = {
            pid: GossipNode(pid, transport, neighbors, on_deliver)
            for pid, neighbors in topology.items()
        }

    def start(self) -> None:
        """Start every node's pump."""
        for node in self.nodes.values():
            node.start()

    async def stop(self) -> None:
        """Stop every node's pump."""
        await asyncio.gather(*(node.stop() for node in self.nodes.values()))
