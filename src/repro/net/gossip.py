"""Gossip dissemination over an asyncio transport.

The paper assumes "an underlying peer-to-peer dissemination protocol
(e.g., a gossip protocol)" (§2.1) with two crucial properties exercised
here: messages reach everyone even if the original sender goes to sleep
mid-dissemination, and messages survive asynchronous periods (they are
delayed, not lost).

Topology is a random k-regular overlay (complete graph for tiny n);
every node forwards each first-seen message to all its neighbours, which
floods any connected graph in ``diameter`` hops.

Deduplication is **digest-keyed**, exactly like the round simulator's
message bus (:mod:`repro.engine.bus`): the "seen" key is recomputed from
a message's *content* via
:func:`~repro.sleepy.messages.verification_digest` and never read from
the message's own memoised ``message_id`` — that slot is
attacker-supplied state on adversary-constructed objects.  Trusting it
would let an adversary **censor** an honest message: publish a junk
message carrying the honest message's transplanted id first, and every
node would mark the id seen and refuse to flood the honest original.
Foreign message types without signed fields (test doubles) fall back to
their ``message_id`` attribute as the key.

The seen set is also **bounded**: on a long-running service every node
would otherwise retain one digest per message forever.  Entries are
round-bucketed and evicted once their message round falls behind the
current round (read from an authoritative clock, never from message
fields, which are attacker-controlled) by more than the configured
horizon — the vote-expiry horizon plus slack, below which no protocol
consumer can still use the message.  Messages already older than that
on arrival are dropped outright (counted, never silently), which keeps
an evicted digest from re-flooding forever.
"""

from __future__ import annotations

import asyncio
import random
from collections.abc import Callable

import networkx as nx

from repro.sleepy.messages import Message, verification_digest

#: Called on each node's behalf when a new message first reaches it.
DeliveryHandler = Callable[[int, Message], None]


def regular_topology(n: int, degree: int, seed: int = 0) -> dict[int, tuple[int, ...]]:
    """A connected random ``degree``-regular overlay (complete if small).

    Falls back to the complete graph when a regular graph of the
    requested degree does not exist or would be smaller than useful.
    """
    if n <= degree + 1 or (n * degree) % 2 == 1:
        return {pid: tuple(q for q in range(n) if q != pid) for pid in range(n)}
    rng = random.Random(seed)
    for attempt in range(32):
        graph = nx.random_regular_graph(degree, n, seed=rng.randrange(1 << 30))
        if nx.is_connected(graph):
            return {pid: tuple(sorted(graph.neighbors(pid))) for pid in range(n)}
    raise RuntimeError("could not sample a connected regular overlay")


class GossipNode:
    """One node's view of the gossip overlay.

    ``transport`` may be any object with the ``send(src, dst, payload)``
    / ``await recv(pid)`` surface — the in-process
    :class:`~repro.net.transport.SimTransport` or the multi-process
    :class:`~repro.net.socket_transport.SocketTransport`.

    ``current_round`` / ``seen_horizon_rounds`` bound the seen set (see
    the module docstring); with either unset the node keeps every digest
    forever, which is only acceptable for bounded test runs.
    """

    def __init__(
        self,
        pid: int,
        transport,
        neighbors: tuple[int, ...],
        on_deliver: DeliveryHandler,
        current_round: Callable[[], int] | None = None,
        seen_horizon_rounds: int | None = None,
    ) -> None:
        if seen_horizon_rounds is not None and seen_horizon_rounds < 0:
            raise ValueError("seen horizon must be non-negative")
        self.pid = pid
        self._transport = transport
        self._neighbors = neighbors
        self._on_deliver = on_deliver
        self._current_round = current_round
        self._seen_horizon = seen_horizon_rounds
        #: dedup key -> message round (for eviction accounting).
        self._seen: dict[str, int] = {}
        #: round -> keys first seen with that message round.
        self._seen_buckets: dict[int, list[str]] = {}
        self._seen_floor = 0
        self._pump_task: asyncio.Task | None = None
        #: Dissemination accounting (consumed by metrics and tests).
        self.stats = {"delivered": 0, "duplicates": 0, "stale_dropped": 0}

    def publish(self, message: Message) -> None:
        """Originate a message: deliver locally and push to neighbours."""
        self._ingest(None, message)

    def start(self) -> None:
        """Begin pumping incoming transport messages (call inside the loop)."""
        self._pump_task = asyncio.get_running_loop().create_task(self._pump())

    async def stop(self) -> None:
        """Cancel the pump task and wait for it to unwind."""
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass

    def seen_count(self) -> int:
        """Live dedup entries (bounded when a horizon is configured)."""
        return len(self._seen)

    async def _pump(self) -> None:
        while True:
            src, payload = await self._transport.recv(self.pid)
            if isinstance(payload, Message):
                self._ingest(src, payload)

    def _ingest(self, src: int | None, message: Message) -> None:
        message_round = getattr(message, "round", 0)
        expiry_floor = self._expiry_floor()
        if expiry_floor is not None and message_round < expiry_floor:
            # Older than anything the protocol can still consume: its
            # votes are expired and its proposal views pruned.  Dropping
            # (audited, never silent) also prevents a re-flood loop once
            # the digest has been evicted below.
            self.stats["stale_dropped"] += 1
            return
        key = self._dedup_key(message)
        if key in self._seen:
            self.stats["duplicates"] += 1
            return
        bucket_round = message_round
        if expiry_floor is not None:
            # Clamp attacker-controlled future round tags so a huge tag
            # cannot park its bucket beyond every future eviction.
            now = self._current_round()
            bucket_round = min(max(bucket_round, 0), now)
        self._seen[key] = bucket_round
        self._seen_buckets.setdefault(bucket_round, []).append(key)
        if expiry_floor is not None:
            self._evict_seen(expiry_floor)
        self.stats["delivered"] += 1
        self._on_deliver(self.pid, message)
        for neighbor in self._neighbors:
            if neighbor != src:
                self._transport.send(self.pid, neighbor, message)

    def _expiry_floor(self) -> int | None:
        if self._current_round is None or self._seen_horizon is None:
            return None
        return self._current_round() - self._seen_horizon

    def _evict_seen(self, floor: int) -> None:
        while self._seen_floor < floor:
            for key in self._seen_buckets.pop(self._seen_floor, ()):
                self._seen.pop(key, None)
            self._seen_floor += 1

    @staticmethod
    def _dedup_key(message: Message) -> str:
        # Content-derived, mirroring engine/bus.py: never trust the
        # instance's memoised message_id (transplanted-id censorship).
        if isinstance(message, Message):
            return verification_digest(message)
        return message.message_id


class GossipNetwork:
    """All gossip nodes one process hosts.

    ``topology`` may cover a *shard* of the deployment: a multi-process
    worker builds nodes only for the pids it hosts, while the transport
    routes forwards addressed to remote pids over sockets.
    """

    def __init__(
        self,
        transport,
        topology: dict[int, tuple[int, ...]],
        on_deliver: DeliveryHandler,
        current_round: Callable[[], int] | None = None,
        seen_horizon_rounds: int | None = None,
    ) -> None:
        self.nodes = {
            pid: GossipNode(
                pid,
                transport,
                neighbors,
                on_deliver,
                current_round=current_round,
                seen_horizon_rounds=seen_horizon_rounds,
            )
            for pid, neighbors in topology.items()
        }

    def start(self) -> None:
        """Start every node's pump."""
        for node in self.nodes.values():
            node.start()

    async def stop(self) -> None:
        """Stop every node's pump."""
        await asyncio.gather(*(node.stop() for node in self.nodes.values()))

    def stats_totals(self) -> dict[str, int]:
        """Summed per-node dissemination counters."""
        totals = {"delivered": 0, "duplicates": 0, "stale_dropped": 0, "seen_entries": 0}
        for node in self.nodes.values():
            for key in ("delivered", "duplicates", "stale_dropped"):
                totals[key] += node.stats[key]
            totals["seen_entries"] += node.seen_count()
        return totals
