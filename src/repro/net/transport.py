"""In-memory asyncio transport with per-link latencies and delay surges.

The round simulator in :mod:`repro.sleepy` gives the adversary *logical*
control over delivery; this transport models the physical phenomenon
behind it — latency.  Each link has a seeded base latency plus jitter,
and the transport can be configured with **surge windows** during which
latencies are multiplied (a real-world asynchronous period: the network
is slow, not lossy).  Messages are never dropped, matching the paper's
assumption that gossip survives transient asynchrony.

Latency sampling is **per-link**: every ordered ``(src, dst)`` pair owns
its own seeded random stream, derived from the transport seed and the
pair alone.  A single shared stream would make each sampled latency
depend on the *global order* of ``send`` calls — i.e. on asyncio task
interleaving — so two runs of the same deployment could draw different
latencies under scheduler jitter.  With per-link streams, the k-th
message on a link always draws the same latency no matter how sends on
other links interleave with it.
"""

from __future__ import annotations

import asyncio
import collections
import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class SurgeWindow:
    """Latency multiplier ``factor`` applied during ``[start_s, end_s)``.

    Times are seconds since :meth:`SimTransport.start`.
    """

    start_s: float
    end_s: float
    factor: float


class LinkLatencyModel:
    """Seeded per-link latency streams shared by every transport flavour.

    One ordered ``(src, dst)`` pair → one :class:`random.Random` stream,
    seeded from ``(seed, src, dst)`` content (string seeding hashes via
    SHA-512, so streams are identical across processes and hash seeds —
    a sharded multi-process deployment draws exactly the latencies the
    single-process run would).
    """

    def __init__(
        self,
        base_latency_s: float,
        jitter_s: float,
        seed: int,
        surges: tuple[SurgeWindow, ...] = (),
    ) -> None:
        if base_latency_s < 0 or jitter_s < 0:
            raise ValueError("latencies must be non-negative")
        self._base = base_latency_s
        self._jitter = jitter_s
        self._seed = seed
        self._surges = surges
        self._link_rngs: dict[tuple[int, int], random.Random] = {}

    def latency(self, src: int, dst: int, at_s: float) -> float:
        """Sampled one-way latency for the ``src → dst`` link at ``at_s``."""
        if self._jitter == 0.0 and not self._surges:
            # Zero-jitter links are deterministic: every draw is the
            # base latency regardless of stream state, so skip the
            # per-link stream entirely on this hot path.
            return self._base
        rng = self._link_rngs.get((src, dst))
        if rng is None:
            rng = self._link_rngs[(src, dst)] = random.Random(
                f"link:{self._seed}:{src}:{dst}"
            )
        delay = self._base + rng.random() * self._jitter
        for surge in self._surges:
            if surge.start_s <= at_s < surge.end_s:
                delay *= surge.factor
        return delay


class FrameQueue:
    """A single-reader frame queue: one deque, at most one waiter.

    :class:`asyncio.Queue` pays for generality this fabric never uses —
    multi-consumer wakeup chains, put-side blocking, a future per
    ``get`` even when items are already waiting.  Every transport queue
    has exactly one reader (the pid's receive loop), so the fast paths
    collapse to a deque operation, which matters at tens of thousands
    of deliveries per second.  Concurrent ``get`` calls on one queue
    are a programming error and raise.
    """

    __slots__ = ("_items", "_waiter")

    def __init__(self) -> None:
        self._items: collections.deque = collections.deque()
        self._waiter: asyncio.Future | None = None

    def put_nowait(self, item) -> None:
        """Append ``item``, waking the reader if it is parked."""
        self._items.append(item)
        waiter = self._waiter
        if waiter is not None:
            self._waiter = None
            if not waiter.done():
                waiter.set_result(None)

    async def get(self):
        """Wait for and remove the next item."""
        while not self._items:
            if self._waiter is not None:
                raise RuntimeError("FrameQueue supports a single reader")
            waiter = asyncio.get_running_loop().create_future()
            self._waiter = waiter
            try:
                await waiter
            finally:
                if self._waiter is waiter:
                    self._waiter = None
        return self._items.popleft()

    def get_nowait(self):
        """Remove and return the next item, or ``None`` when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def qsize(self) -> int:
        """Items currently queued."""
        return len(self._items)


class DeliveryWheel:
    """Slot-coalesced delivery timers: one loop timer per slot, not per message.

    A vote-heavy broadcast round schedules thousands of deliveries whose
    due times all land within one latency envelope — one
    ``loop.call_later`` per delivery is a timer storm (heap churn scales
    with messages).  The wheel quantizes due times up to the next slot
    boundary (slots are ``slot_s`` wide on the event-loop clock) and
    arms **one** timer per non-empty slot; when it fires, every delivery
    parked in the slot runs in scheduling order.

    Quantization delays a delivery by strictly less than ``slot_s``.
    Deployments size slots at δ/8 — the fabric's base link latency —
    which the round structure absorbs exactly like modelled jitter
    (Δ = 3δ, the receive phase sits at 0.9 Δ).

    ``timers_created`` counts loop timers ever armed, so tests can pin
    the O(slots)-not-O(messages) contract.
    """

    def __init__(self, slot_s: float) -> None:
        if slot_s <= 0:
            raise ValueError("slot width must be positive")
        self.slot_s = slot_s
        self._slots: dict[int, list[tuple]] = {}
        self._handles: dict[int, asyncio.TimerHandle] = {}
        #: Loop timers armed over the wheel's lifetime.
        self.timers_created = 0
        #: Deliveries ever scheduled (for the O(slots) vs O(messages) ratio).
        self.scheduled_count = 0

    def slot_for(self, delay_s: float) -> int:
        """The slot index a delivery due ``delay_s`` from now lands in."""
        due = asyncio.get_running_loop().time() + delay_s
        return math.ceil(due / self.slot_s)

    def schedule(self, slot: int, callback, *args) -> None:
        """Park ``callback(*args)`` in ``slot``, arming its timer if new."""
        entries = self._slots.get(slot)
        if entries is None:
            entries = self._slots[slot] = []
            loop = asyncio.get_running_loop()
            self._handles[slot] = loop.call_at(slot * self.slot_s, self._fire, slot)
            self.timers_created += 1
        entries.append((callback, args))
        self.scheduled_count += 1

    def _fire(self, slot: int) -> None:
        self._handles.pop(slot, None)
        for callback, args in self._slots.pop(slot, ()):
            callback(*args)

    @property
    def pending(self) -> int:
        """Deliveries parked and not yet fired."""
        return sum(len(entries) for entries in self._slots.values())

    def flush(self) -> None:
        """Run every pending delivery now, earliest slot first (teardown)."""
        for handle in self._handles.values():
            handle.cancel()
        self._handles.clear()
        while self._slots:
            slot = min(self._slots)
            for callback, args in self._slots.pop(slot):
                callback(*args)

    def cancel(self) -> None:
        """Discard every pending delivery and timer."""
        for handle in self._handles.values():
            handle.cancel()
        self._handles.clear()
        self._slots.clear()


class SimTransport:
    """Point-to-point message fabric for one deployment run.

    ``slot_s`` opts the delivery path into a :class:`DeliveryWheel` of
    that slot width (one timer per slot); ``None`` keeps the historical
    one-``call_later``-per-message path.
    """

    def __init__(
        self,
        n: int,
        base_latency_s: float = 0.002,
        jitter_s: float = 0.001,
        seed: int = 0,
        surges: tuple[SurgeWindow, ...] = (),
        slot_s: float | None = None,
    ) -> None:
        if n <= 0:
            raise ValueError("need at least one node")
        self.n = n
        self._latency = LinkLatencyModel(base_latency_s, jitter_s, seed, surges)
        self._queues: dict[int, FrameQueue] = {}
        self._origin: float | None = None
        self.wheel = DeliveryWheel(slot_s) if slot_s is not None else None
        self.sent_count = 0

    def start(self) -> None:
        """Anchor the clock and create queues; call once inside the loop."""
        self._queues = {pid: FrameQueue() for pid in range(self.n)}
        self._origin = asyncio.get_running_loop().time()

    def now(self) -> float:
        """Seconds since :meth:`start`."""
        if self._origin is None:
            raise RuntimeError("transport not started")
        return asyncio.get_running_loop().time() - self._origin

    def latency(self, src: int, dst: int, at_s: float) -> float:
        """Sampled one-way latency for ``src → dst`` at ``at_s`` (per-link stream)."""
        return self._latency.latency(src, dst, at_s)

    def send(self, src: int, dst: int, payload: object) -> None:
        """Send ``payload`` to ``dst``; it arrives after the link latency."""
        if self._origin is None:
            raise RuntimeError("transport not started")
        # One clock read serves both the model time and the wheel slot
        # (this is the hottest line of a simulated broadcast round).
        loop = asyncio.get_running_loop()
        loop_time = loop.time()
        delay = self._latency.latency(src, dst, loop_time - self._origin)
        queue = self._queues[dst]
        if self.wheel is not None:
            slot = math.ceil((loop_time + delay) / self.wheel.slot_s)
            self.wheel.schedule(slot, queue.put_nowait, (src, payload))
        else:
            loop.call_later(delay, queue.put_nowait, (src, payload))
        self.sent_count += 1

    def send_many(self, src: int, dsts, payload: object) -> None:
        """Fan ``payload`` out from ``src`` to every pid in ``dsts``.

        Equivalent to calling :meth:`send` per destination (same
        per-link latencies, same counters) with the fan-out's fixed
        costs — clock read, loop lookup — paid once.  The adversarial
        proxy does not forward this method; it decomposes fan-outs into
        per-frame :meth:`send` calls.
        """
        if self._origin is None:
            raise RuntimeError("transport not started")
        loop = asyncio.get_running_loop()
        loop_time = loop.time()
        at = loop_time - self._origin
        sample = self._latency.latency
        wheel = self.wheel
        for dst in dsts:
            delay = sample(src, dst, at)
            queue = self._queues[dst]
            if wheel is not None:
                slot = math.ceil((loop_time + delay) / wheel.slot_s)
                wheel.schedule(slot, queue.put_nowait, (src, payload))
            else:
                loop.call_later(delay, queue.put_nowait, (src, payload))
            self.sent_count += 1

    def defer(self, delay_s: float, callback, *args) -> None:
        """Schedule ``callback`` after ``delay_s`` through the slot wheel.

        The :class:`~repro.net.proxy_transport.ProxyTransport` surge
        path routes its extra delays here so attack-delayed frames ride
        the same O(slots) timer budget as ordinary deliveries.  Without
        a wheel this degrades to one plain loop timer per call.
        """
        if self.wheel is not None:
            self.wheel.schedule(self.wheel.slot_for(delay_s), callback, *args)
        else:
            asyncio.get_running_loop().call_later(delay_s, callback, *args)

    async def recv(self, pid: int) -> tuple[int, object]:
        """Wait for the next ``(source, payload)`` addressed to ``pid``."""
        if self._origin is None:
            raise RuntimeError("transport not started")
        return await self._queues[pid].get()

    def recv_nowait(self, pid: int) -> tuple[int, object] | None:
        """The next already-arrived frame for ``pid``, or ``None``.

        Slot-coalesced delivery lands a whole slot's frames at once, so
        a consumer that bursts through the backlog after each ``recv``
        wakes once per slot instead of once per frame.
        """
        return self._queues[pid].get_nowait()

    def queue_depths(self) -> dict[int, int]:
        """Pending (already-arrived, not yet received) messages per node."""
        return {pid: queue.qsize() for pid, queue in self._queues.items()}
