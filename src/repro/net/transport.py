"""In-memory asyncio transport with per-link latencies and delay surges.

The round simulator in :mod:`repro.sleepy` gives the adversary *logical*
control over delivery; this transport models the physical phenomenon
behind it — latency.  Each link has a seeded base latency plus jitter,
and the transport can be configured with **surge windows** during which
latencies are multiplied (a real-world asynchronous period: the network
is slow, not lossy).  Messages are never dropped, matching the paper's
assumption that gossip survives transient asynchrony.

Latency sampling is **per-link**: every ordered ``(src, dst)`` pair owns
its own seeded random stream, derived from the transport seed and the
pair alone.  A single shared stream would make each sampled latency
depend on the *global order* of ``send`` calls — i.e. on asyncio task
interleaving — so two runs of the same deployment could draw different
latencies under scheduler jitter.  With per-link streams, the k-th
message on a link always draws the same latency no matter how sends on
other links interleave with it.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class SurgeWindow:
    """Latency multiplier ``factor`` applied during ``[start_s, end_s)``.

    Times are seconds since :meth:`SimTransport.start`.
    """

    start_s: float
    end_s: float
    factor: float


class LinkLatencyModel:
    """Seeded per-link latency streams shared by every transport flavour.

    One ordered ``(src, dst)`` pair → one :class:`random.Random` stream,
    seeded from ``(seed, src, dst)`` content (string seeding hashes via
    SHA-512, so streams are identical across processes and hash seeds —
    a sharded multi-process deployment draws exactly the latencies the
    single-process run would).
    """

    def __init__(
        self,
        base_latency_s: float,
        jitter_s: float,
        seed: int,
        surges: tuple[SurgeWindow, ...] = (),
    ) -> None:
        if base_latency_s < 0 or jitter_s < 0:
            raise ValueError("latencies must be non-negative")
        self._base = base_latency_s
        self._jitter = jitter_s
        self._seed = seed
        self._surges = surges
        self._link_rngs: dict[tuple[int, int], random.Random] = {}

    def latency(self, src: int, dst: int, at_s: float) -> float:
        """Sampled one-way latency for the ``src → dst`` link at ``at_s``."""
        rng = self._link_rngs.get((src, dst))
        if rng is None:
            rng = self._link_rngs[(src, dst)] = random.Random(
                f"link:{self._seed}:{src}:{dst}"
            )
        delay = self._base + rng.random() * self._jitter
        for surge in self._surges:
            if surge.start_s <= at_s < surge.end_s:
                delay *= surge.factor
        return delay


class SimTransport:
    """Point-to-point message fabric for one deployment run."""

    def __init__(
        self,
        n: int,
        base_latency_s: float = 0.002,
        jitter_s: float = 0.001,
        seed: int = 0,
        surges: tuple[SurgeWindow, ...] = (),
    ) -> None:
        if n <= 0:
            raise ValueError("need at least one node")
        self.n = n
        self._latency = LinkLatencyModel(base_latency_s, jitter_s, seed, surges)
        self._queues: dict[int, asyncio.Queue] = {}
        self._origin: float | None = None
        self.sent_count = 0

    def start(self) -> None:
        """Anchor the clock and create queues; call once inside the loop."""
        self._queues = {pid: asyncio.Queue() for pid in range(self.n)}
        self._origin = asyncio.get_running_loop().time()

    def now(self) -> float:
        """Seconds since :meth:`start`."""
        if self._origin is None:
            raise RuntimeError("transport not started")
        return asyncio.get_running_loop().time() - self._origin

    def latency(self, src: int, dst: int, at_s: float) -> float:
        """Sampled one-way latency for ``src → dst`` at ``at_s`` (per-link stream)."""
        return self._latency.latency(src, dst, at_s)

    def send(self, src: int, dst: int, payload: object) -> None:
        """Send ``payload`` to ``dst``; it arrives after the link latency."""
        if self._origin is None:
            raise RuntimeError("transport not started")
        delay = self.latency(src, dst, self.now())
        queue = self._queues[dst]
        loop = asyncio.get_running_loop()
        loop.call_later(delay, queue.put_nowait, (src, payload))
        self.sent_count += 1

    async def recv(self, pid: int) -> tuple[int, object]:
        """Wait for the next ``(source, payload)`` addressed to ``pid``."""
        if self._origin is None:
            raise RuntimeError("transport not started")
        return await self._queues[pid].get()

    def queue_depths(self) -> dict[int, int]:
        """Pending (already-arrived, not yet received) messages per node."""
        return {pid: queue.qsize() for pid, queue in self._queues.items()}
