"""In-memory asyncio transport with per-link latencies and delay surges.

The round simulator in :mod:`repro.sleepy` gives the adversary *logical*
control over delivery; this transport models the physical phenomenon
behind it — latency.  Each link has a seeded base latency plus jitter,
and the transport can be configured with **surge windows** during which
latencies are multiplied (a real-world asynchronous period: the network
is slow, not lossy).  Messages are never dropped, matching the paper's
assumption that gossip survives transient asynchrony.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class SurgeWindow:
    """Latency multiplier ``factor`` applied during ``[start_s, end_s)``.

    Times are seconds since :meth:`SimTransport.start`.
    """

    start_s: float
    end_s: float
    factor: float


class SimTransport:
    """Point-to-point message fabric for one deployment run."""

    def __init__(
        self,
        n: int,
        base_latency_s: float = 0.002,
        jitter_s: float = 0.001,
        seed: int = 0,
        surges: tuple[SurgeWindow, ...] = (),
    ) -> None:
        if n <= 0:
            raise ValueError("need at least one node")
        if base_latency_s < 0 or jitter_s < 0:
            raise ValueError("latencies must be non-negative")
        self.n = n
        self._base = base_latency_s
        self._jitter = jitter_s
        self._rng = random.Random(seed)
        self._surges = surges
        self._queues: dict[int, asyncio.Queue] = {}
        self._origin: float | None = None
        self.sent_count = 0

    def start(self) -> None:
        """Anchor the clock and create queues; call once inside the loop."""
        self._queues = {pid: asyncio.Queue() for pid in range(self.n)}
        self._origin = asyncio.get_running_loop().time()

    def now(self) -> float:
        """Seconds since :meth:`start`."""
        if self._origin is None:
            raise RuntimeError("transport not started")
        return asyncio.get_running_loop().time() - self._origin

    def latency(self, at_s: float) -> float:
        """Sampled one-way latency for a message sent at ``at_s``."""
        delay = self._base + self._rng.random() * self._jitter
        for surge in self._surges:
            if surge.start_s <= at_s < surge.end_s:
                delay *= surge.factor
        return delay

    def send(self, src: int, dst: int, payload: object) -> None:
        """Send ``payload`` to ``dst``; it arrives after the link latency."""
        if self._origin is None:
            raise RuntimeError("transport not started")
        delay = self.latency(self.now())
        queue = self._queues[dst]
        loop = asyncio.get_running_loop()
        loop.call_later(delay, queue.put_nowait, (src, payload))
        self.sent_count += 1

    async def recv(self, pid: int) -> tuple[int, object]:
        """Wait for the next ``(source, payload)`` addressed to ``pid``."""
        if self._origin is None:
            raise RuntimeError("transport not started")
        return await self._queues[pid].get()
