"""Multi-process wire-throughput harness for the socket fabric.

The deployment substrate's hot loop is the send path: every submitted
transaction fans out to ``n − 1`` destinations, and before frame v2 each
of those sends cost one pickle, one loop timer, and one socket write.
This module measures that path in isolation — no protocol, no gossip,
just :class:`~repro.net.socket_transport.SocketTransport` meshes moving
a :class:`~repro.workloads.transactions.SubmissionRateWorkload`'s
traffic — so the batched and unbatched wire formats can be compared on
identical, deterministic inputs.

Each worker process hosts a contiguous shard of pids (the same
:func:`~repro.runtime.worker.shard_pids` split deployments use), drives
the transactions whose origin pid lands in its shard (origin of
transaction ``t`` is ``t mod n``, so traffic is spread evenly and every
process computes the schedule independently), and counts deliveries
until every expected frame has arrived.  The coordinator sequences the
workers over the same v1 control protocol the deployment coordinator
speaks (``ready → dial → dialed → start → result → shutdown``) and
reports sustained throughput as ``transactions / max(worker wall)`` —
the slowest worker gates the service, exactly as in a real deployment.

Lives in the package (not ``benchmarks/``) because worker entrypoints
must be importable from spawned processes, and so the harness can be
unit-tested at small scale.
"""

from __future__ import annotations

import asyncio
import gc
import multiprocessing
import os
import shutil
import tempfile
import time
from dataclasses import asdict, dataclass

from repro.net.socket_transport import (
    SocketTransport,
    encode_frame,
    open_stream,
    read_frame,
    serve_stream,
    supports_unix_sockets,
)
from repro.runtime.worker import shard_pids
from repro.workloads.transactions import SubmissionRateWorkload


@dataclass(frozen=True)
class WireBenchConfig:
    """One wire-throughput measurement: a mesh, a workload, a wire mode."""

    n: int = 64
    processes: int = 4
    transactions: int = 1024
    rate_per_round: int = 64
    payload_bytes: int = 32
    seed: int = 0
    batching: bool = True
    #: Modelled link latency (δ/8 convention at δ = 4 ms).
    base_latency_s: float = 0.0005
    jitter_s: float = 0.0
    #: Delivery-wheel slot width; ``None`` uses the transport default
    #: (the base latency).  Throughput work can afford wider slots than
    #: a protocol deployment: quantization only defers a delivery by
    #: less than one slot, and with no round structure to honour the
    #: wider slot simply buys bigger batches per write.
    slot_s: float | None = None
    #: Hard per-phase budget; a worker that cannot drain its expected
    #: deliveries inside this window fails the run rather than hanging.
    budget_s: float = 120.0


def _origin(t: int, n: int) -> int:
    """Origin pid of transaction ordinal ``t`` (even round-robin spread)."""
    return t % n


def _own_transactions(config: WireBenchConfig, shard: frozenset[int]) -> int:
    """How many of the workload's transactions originate inside ``shard``."""
    return sum(1 for t in range(config.transactions) if _origin(t, config.n) in shard)


async def _run_bench_worker(
    config: WireBenchConfig,
    worker_id: int,
    addresses: dict[int, object],
    control_address: object,
) -> None:
    shards = shard_pids(config.n, config.processes)
    shard = frozenset(shards[worker_id])
    owner = {pid: wid for wid, pids in enumerate(shards) for pid in pids}
    transport = SocketTransport(
        config.n,
        local_pids=shard,
        owner=owner,
        worker_id=worker_id,
        addresses=addresses,
        base_latency_s=config.base_latency_s,
        jitter_s=config.jitter_s,
        seed=config.seed,
        batching=config.batching,
        slot_s=config.slot_s,
    )
    await transport.start()
    reader, writer = await open_stream(control_address)
    writer.write(encode_frame(("ready", worker_id)))
    await writer.drain()

    async def expect(tag: str) -> tuple:
        frame = await asyncio.wait_for(read_frame(reader), timeout=config.budget_s)
        if frame[0] != tag:
            raise RuntimeError(f"worker {worker_id}: expected {tag!r}, got {frame[0]!r}")
        return frame

    await expect("dial")
    await transport.connect()
    writer.write(encode_frame(("dialed", worker_id)))
    await writer.drain()
    await expect("start")
    transport.anchor()

    # Every transaction reaches each of its n − 1 non-origin pids once;
    # this worker must therefore see one delivery per (tx, local pid)
    # pair minus the local origins themselves.
    own = _own_transactions(config, shard)
    expected = len(shard) * config.transactions - own
    received = 0
    drained = asyncio.Event()
    if expected == 0:
        drained.set()

    async def drain(pid: int) -> None:
        # Burst through whatever already arrived after each wakeup: with
        # slot-coalesced delivery that is a whole batch per task switch,
        # without it one frame — consumption cost mirrors delivery cost.
        nonlocal received
        while True:
            await transport.recv(pid)
            count = 1
            while transport.recv_nowait(pid) is not None:
                count += 1
            received += count
            if received >= expected:
                drained.set()

    drain_tasks = [asyncio.ensure_future(drain(pid)) for pid in sorted(shard)]

    workload = SubmissionRateWorkload(
        config.rate_per_round, seed=config.seed, payload_bytes=config.payload_bytes
    )
    rounds = -(-config.transactions // config.rate_per_round)
    # A collector pause inside the measured window is scheduling noise,
    # not wire cost; both modes run collector-free and collect after.
    gc.disable()
    started = time.perf_counter()
    cpu_started = time.process_time()
    t = 0
    try:
        for round_number in range(rounds):
            for tx in workload.get(round_number):
                if t >= config.transactions:
                    break
                origin = _origin(t, config.n)
                t += 1
                if origin not in shard:
                    continue
                transport.send_many(
                    origin, (dst for dst in range(config.n) if dst != origin), tx
                )
                # Yield after each fan-out so wheel slots fire and socket
                # writers/readers make progress while we keep submitting.
                await asyncio.sleep(0)
        await asyncio.wait_for(drained.wait(), timeout=config.budget_s)
        elapsed = time.perf_counter() - started
        cpu = time.process_time() - cpu_started
    finally:
        gc.enable()

    result = {
        "worker_id": worker_id,
        "elapsed_s": elapsed,
        "cpu_s": cpu,
        "submitted": own,
        "received": received,
        "expected": expected,
        "sent": transport.sent_count,
        "frames_sent": transport.frames_sent,
        "frames_received": transport.frames_received,
        "batches_sent": transport.batches_sent,
        "batches_received": transport.batches_received,
        "bytes_sent": transport.bytes_sent,
        "bytes_received": transport.bytes_received,
        "payload_encodes": transport.payload_encodes,
        "payload_reuses": transport.payload_reuses,
        "misrouted": transport.misrouted_count,
        "timers_created": transport.wheel.timers_created if transport.wheel else None,
    }
    writer.write(encode_frame(("result", worker_id, result)))
    await writer.drain()
    await expect("shutdown")
    for task in drain_tasks:
        task.cancel()
    await transport.close()
    writer.close()


def _bench_worker_main(
    config: WireBenchConfig,
    worker_id: int,
    addresses: dict[int, object],
    control_address: object,
) -> None:
    """Spawn entrypoint: run one bench worker to completion."""
    asyncio.run(_run_bench_worker(config, worker_id, addresses, control_address))


def _free_tcp_address() -> tuple[str, int]:
    """A loopback TCP address that was free a moment ago (UDS fallback)."""
    import socket as socket_module

    probe = socket_module.socket()
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()
    probe.close()
    return ("127.0.0.1", address[1])


async def _coordinate(config: WireBenchConfig) -> dict:
    tmpdir = tempfile.mkdtemp(prefix="repro-wire-bench-")
    if supports_unix_sockets():
        addresses: dict[int, object] = {
            wid: os.path.join(tmpdir, f"w{wid}.sock") for wid in range(config.processes)
        }
        control_address: object = os.path.join(tmpdir, "control.sock")
    else:
        addresses = {wid: _free_tcp_address() for wid in range(config.processes)}
        control_address = _free_tcp_address()

    loop = asyncio.get_running_loop()
    writers: dict[int, asyncio.StreamWriter] = {}
    results: dict[int, dict] = {}
    failures: list[str] = []
    ready_evt, dialed_evt, results_evt = asyncio.Event(), asyncio.Event(), asyncio.Event()
    ready: set[int] = set()
    dialed: set[int] = set()

    def fail(reason: str) -> None:
        failures.append(reason)
        ready_evt.set()
        dialed_evt.set()
        results_evt.set()

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                tag = frame[0]
                if tag == "ready":
                    writers[frame[1]] = writer
                    ready.add(frame[1])
                    if len(ready) == config.processes:
                        ready_evt.set()
                elif tag == "dialed":
                    dialed.add(frame[1])
                    if len(dialed) == config.processes:
                        dialed_evt.set()
                elif tag == "result":
                    results[frame[1]] = frame[2]
                    if len(results) == config.processes:
                        results_evt.set()
        except (asyncio.IncompleteReadError, ConnectionResetError):
            if len(results) < config.processes:
                fail("a bench worker's control connection closed early")

    server = await serve_stream(control_address, handle)
    ctx = multiprocessing.get_context("spawn")
    procs: list = []

    async def watch_processes() -> None:
        while not results_evt.is_set():
            for wid, proc in enumerate(procs):
                if proc.exitcode not in (None, 0):
                    fail(f"bench worker {wid} exited with code {proc.exitcode}")
                    return
            await asyncio.sleep(0.2)

    async def wait(event: asyncio.Event, phase: str) -> None:
        try:
            await asyncio.wait_for(event.wait(), timeout=config.budget_s)
        except asyncio.TimeoutError:
            raise RuntimeError(f"wire bench workers timed out during {phase}") from None
        if failures:
            raise RuntimeError("; ".join(failures))

    async def broadcast(frame: object) -> None:
        blob = encode_frame(frame)
        for wid in sorted(writers):
            writers[wid].write(blob)
            await writers[wid].drain()

    watcher = loop.create_task(watch_processes())
    try:
        for wid in range(config.processes):
            proc = ctx.Process(
                target=_bench_worker_main,
                args=(config, wid, addresses, control_address),
                daemon=True,
            )
            proc.start()
            procs.append(proc)
        await wait(ready_evt, "listener setup")
        await broadcast(("dial",))
        await wait(dialed_evt, "mesh dialing")
        await broadcast(("start",))
        await wait(results_evt, "the measured run")
        await broadcast(("shutdown",))
    finally:
        watcher.cancel()
        try:
            await watcher
        except asyncio.CancelledError:
            pass
        server.close()
        await server.wait_closed()
        for proc in procs:
            await loop.run_in_executor(None, proc.join, 10)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        shutil.rmtree(tmpdir, ignore_errors=True)

    ordered = [results[wid] for wid in range(config.processes)]
    wall = max(payload["elapsed_s"] for payload in ordered)
    cpu = sum(payload["cpu_s"] for payload in ordered)
    totals = {
        key: sum(payload[key] for payload in ordered)
        for key in (
            "submitted",
            "received",
            "expected",
            "sent",
            "frames_sent",
            "frames_received",
            "batches_sent",
            "batches_received",
            "bytes_sent",
            "bytes_received",
            "payload_encodes",
            "payload_reuses",
            "misrouted",
        )
    }
    return {
        "config": asdict(config),
        "wall_s": wall,
        "cpu_s": cpu,
        "tx_per_s": config.transactions / wall if wall > 0 else float("inf"),
        "tx_per_cpu_s": config.transactions / cpu if cpu > 0 else float("inf"),
        "totals": totals,
        "workers": ordered,
    }


def run_wire_benchmark(config: WireBenchConfig) -> dict:
    """Run one wire-throughput measurement and return its report.

    The report's ``tx_per_s`` is the sustained submission rate: total
    transactions over the *slowest* worker's wall time, measured from
    the start barrier until that worker drained every expected delivery.
    """
    return asyncio.run(_coordinate(config))
