"""Real socket transport: length-prefixed frames over TCP or UDS.

The multi-process deployment fabric.  Each worker process hosts a
*shard* of the deployment's nodes and one :class:`SocketTransport`:
sends between two pids of the same shard loop back through in-process
queues (exactly like :class:`~repro.net.transport.SimTransport`), sends
to a remote pid are pickled into a length-prefixed frame and written to
the socket of the worker that owns the destination.  The surface is the
same ``send(src, dst, payload)`` / ``await recv(pid)`` pair plus the
seeded :class:`~repro.net.transport.LinkLatencyModel` surge model, so
:class:`~repro.net.gossip.GossipNetwork` runs unchanged on either
substrate — and, because latency streams are per-link and content
seeded, a sharded run draws exactly the modelled latencies the
single-process run would (real socket hops add on top; δ absorbs them).

Wire format: every write is a 4-byte big-endian length followed by a
blob.  Two blob layouts share the stream, distinguished by their first
byte:

* **v1 single frame** — a pickle of ``(src, dst, payload)`` (pickles at
  protocol ≥ 2 always start with the ``0x80`` PROTO opcode).  The
  control channel speaks only v1, and v1 data frames from an unbatched
  peer are always accepted.
* **frame v2 batch** — version byte ``0x02``, then an **intern table**
  of distinct encoded payload bodies (u16 count, each body
  length-prefixed u32), then a frame list (u32 count, each frame
  ``u32 src · u32 dst · u16 body index``).  Every frame coalesced into
  the same delivery slot for the same worker rides one batch write, and
  a payload broadcast to many destinations is pickled once and
  referenced by offset — the per-destination cost falls from one pickle
  + one timer + one write to ten bytes of header.

Workers form a full mesh — every worker dials every other worker once
and uses that connection for its outgoing frames; the accepting side
only reads.  Addresses are UNIX domain socket paths (strings) or
``(host, port)`` TCP tuples, so the same framing crosses hosts
unchanged.

Frames are never dropped: an in-order stream plus unbounded receive
queues preserve the model's "delayed, not lost" dissemination
assumption, and a frame for a pid this worker does not host (a routing
bug, not load) is counted in ``misrouted_count`` rather than silently
discarded.
"""

from __future__ import annotations

import asyncio
import math
import pickle
import socket
import struct
from collections import OrderedDict
from collections.abc import Iterable, Mapping, Sequence

from repro.net.transport import DeliveryWheel, FrameQueue, LinkLatencyModel, SurgeWindow
from repro.sleepy.messages import Message, verification_digest

#: ``str`` → UNIX domain socket path, ``(host, port)`` → TCP.
Address = str | tuple[str, int]

_HEADER = struct.Struct(">I")
#: Hard per-frame ceiling — a corrupt or hostile length prefix must not
#: trigger a multi-gigabyte allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: First blob byte of a frame v2 batch.  Unambiguous against v1: a
#: pickle at protocol ≥ 2 always begins with the PROTO opcode ``0x80``.
BATCH_VERSION = 0x02
_BATCH_MARKER = bytes([BATCH_VERSION])
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_FRAME_REF = struct.Struct(">IIH")
#: Fixed batch overhead: version byte + body count + frame count.
_BATCH_BASE = 1 + _U16.size + _U32.size


def encode_frame(payload: object) -> bytes:
    """One length-prefixed v1 pickle frame for ``payload``."""
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(blob)} bytes exceeds the {MAX_FRAME_BYTES} cap")
    return _HEADER.pack(len(blob)) + blob


async def read_frame(reader: asyncio.StreamReader) -> object:
    """Read one v1 frame; raises :class:`asyncio.IncompleteReadError` at EOF."""
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} cap")
    return pickle.loads(await reader.readexactly(length))


def encode_batch(
    frames: Sequence[tuple[int, int, object, bytes]],
    max_bytes: int = MAX_FRAME_BYTES,
) -> list[bytes]:
    """Length-prefixed frame v2 batch writes for ``frames``.

    Each frame is ``(src, dst, intern_key, body)`` where ``body`` is the
    payload's pickle and ``intern_key`` groups equal bodies (the encode
    cache supplies the payload's verification digest, or a body-identity
    fallback for foreign payloads).  Bodies are written once per batch
    and referenced by offset.  A batch that would exceed ``max_bytes``
    splits cleanly at a frame boundary (bodies are re-emitted in the
    next chunk); a single frame whose lone batch would still exceed the
    cap raises, exactly like an oversized v1 frame.
    """
    chunks: list[bytes] = []
    start = 0
    while start < len(frames):
        bodies: list[bytes] = []
        index: dict[object, int] = {}
        refs: list[tuple[int, int, int]] = []
        size = _BATCH_BASE
        i = start
        while i < len(frames):
            _src, _dst, key, body = frames[i]
            body_index = index.get(key)
            extra = _FRAME_REF.size
            if body_index is None:
                extra += _U32.size + len(body)
            if size + extra > max_bytes or (body_index is None and len(bodies) > 0xFFFF - 1):
                if not refs:
                    raise ValueError(
                        f"single frame of {len(body)} bytes exceeds the {max_bytes} batch cap"
                    )
                break
            if body_index is None:
                body_index = index[key] = len(bodies)
                bodies.append(body)
            refs.append((frames[i][0], frames[i][1], body_index))
            size += extra
            i += 1
        parts = [_BATCH_MARKER, _U16.pack(len(bodies))]
        for body in bodies:
            parts.append(_U32.pack(len(body)))
            parts.append(body)
        parts.append(_U32.pack(len(refs)))
        for ref in refs:
            parts.append(_FRAME_REF.pack(*ref))
        blob = b"".join(parts)
        chunks.append(_HEADER.pack(len(blob)) + blob)
        start = i
    return chunks


def decode_batch(blob: bytes) -> list[tuple[int, int, object]]:
    """Decode one frame v2 batch blob into ``(src, dst, payload)`` frames.

    Each distinct body is unpickled exactly once: every frame
    referencing it shares the resulting payload object, mirroring the
    in-process bus handing one canonical instance to many receivers.
    Truncated or inconsistent batches raise :class:`ValueError` — a torn
    batch is a framing error, never a silent partial delivery.
    """
    if not blob or blob[0] != BATCH_VERSION:
        raise ValueError("not a frame v2 batch blob")
    view = memoryview(blob)
    try:
        offset = 1
        (n_bodies,) = _U16.unpack_from(view, offset)
        offset += _U16.size
        payloads = []
        for _ in range(n_bodies):
            (length,) = _U32.unpack_from(view, offset)
            offset += _U32.size
            if offset + length > len(blob):
                raise ValueError("torn batch frame: truncated body")
            payloads.append(pickle.loads(view[offset : offset + length]))
            offset += length
        (n_frames,) = _U32.unpack_from(view, offset)
        offset += _U32.size
        frames = []
        for _ in range(n_frames):
            src, dst, body_index = _FRAME_REF.unpack_from(view, offset)
            offset += _FRAME_REF.size
            frames.append((src, dst, payloads[body_index]))
    except (struct.error, IndexError, pickle.UnpicklingError, EOFError) as exc:
        raise ValueError(f"torn batch frame: {exc!r}") from None
    if offset != len(blob):
        raise ValueError("torn batch frame: trailing bytes")
    return frames


class EncodedPayloadCache:
    """Digest-interned encoded payload bodies for send fan-outs.

    A broadcast hands the *same* payload object to ``send`` once per
    destination; this cache pickles it on first sight and reuses the
    bytes for every later destination, so a fan-out at n = 1000 costs
    one pickle, not ~1000.  Entries are keyed by object identity —
    unforgeable, and sound because the entry holds a strong reference
    (an ``id`` can never be recycled while its entry lives).  For
    protocol messages the entry also carries the **verification
    digest**, computed fresh from message content at first encode and
    never read from the instance's memoised slots (those are
    attacker-supplied state on adversary-constructed objects — trusting
    them would let a transplanted digest substitute cached bytes for a
    different message, the censorship shape the gossip layer already
    defends against).  The digest keys the batch intern table, so two
    distinct instances of one logical message still share a single body
    on the wire.  LRU-bounded: a flood of distinct payloads evicts, it
    never grows without bound.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self._capacity = capacity
        #: id(payload) -> (payload ref, intern key, encoded body).
        self._entries: OrderedDict[int, tuple[object, object, bytes]] = OrderedDict()

    def encode(self, payload: object) -> tuple[object, bytes, bool]:
        """``(intern_key, body, freshly_encoded)`` for ``payload``."""
        key = id(payload)
        entry = self._entries.get(key)
        if entry is not None and entry[0] is payload:
            self._entries.move_to_end(key)
            return entry[1], entry[2], False
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        intern_key: object = (
            verification_digest(payload) if isinstance(payload, Message) else ("raw", body)
        )
        self._entries[key] = (payload, intern_key, body)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
        return intern_key, body, True


async def open_stream(address) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Dial ``address`` (UDS path or ``(host, port)`` tuple)."""
    if isinstance(address, str):
        return await asyncio.open_unix_connection(address)
    host, port = address
    return await asyncio.open_connection(host, port)


async def serve_stream(address, handler) -> asyncio.AbstractServer:
    """Listen on ``address``, calling ``handler(reader, writer)`` per peer."""
    if isinstance(address, str):
        return await asyncio.start_unix_server(handler, path=address)
    host, port = address
    return await asyncio.start_server(handler, host=host, port=port)


def supports_unix_sockets() -> bool:
    """Whether this platform can bind UNIX domain sockets."""
    return hasattr(socket, "AF_UNIX")


class SocketTransport:
    """One worker's point-to-point fabric over the socket mesh.

    Args:
        n: total deployment size (for parity with ``SimTransport``).
        local_pids: the pids this worker hosts (receive queues exist
            only for these).
        owner: pid → worker id, for every pid of the deployment.
        worker_id: this worker's id.
        addresses: worker id → listen address for every worker.
        base_latency_s / jitter_s / seed / surges: the modelled latency
            layer, identical to ``SimTransport``'s.
    """

    def __init__(
        self,
        n: int,
        *,
        local_pids: Iterable[int],
        owner: Mapping[int, int],
        worker_id: int,
        addresses: Mapping[int, object],
        base_latency_s: float = 0.002,
        jitter_s: float = 0.001,
        seed: int = 0,
        surges: tuple[SurgeWindow, ...] = (),
        batching: bool = True,
        slot_s: float | None = None,
    ) -> None:
        if n <= 0:
            raise ValueError("need at least one node")
        self.n = n
        self.worker_id = worker_id
        self._local_pids = frozenset(local_pids)
        self._owner = dict(owner)
        self._addresses = dict(addresses)
        self._latency = LinkLatencyModel(base_latency_s, jitter_s, seed, surges)
        self._queues: dict[int, FrameQueue] = {}
        self._server: asyncio.AbstractServer | None = None
        self._peer_writers: dict[int, asyncio.StreamWriter] = {}
        self._reader_tasks: list[asyncio.Task] = []
        self._origin: float | None = None
        self._batching = batching
        #: Delivery slot width: δ/8 in deployments (the base link
        #: latency), so quantization hides inside the modelled jitter.
        self._slot_s = slot_s if slot_s is not None else (base_latency_s or 0.0005)
        self.wheel = DeliveryWheel(self._slot_s) if batching else None
        self._encode_cache = EncodedPayloadCache()
        #: (slot, worker id) -> frames awaiting that slot's batch write.
        self._slot_batches: dict[tuple[int, int], list[tuple[int, int, object, bytes]]] = {}
        #: Sends initiated by this worker's nodes (local + remote).
        self.sent_count = 0
        #: Logical frames written to / read from the socket mesh.
        self.frames_sent = 0
        self.frames_received = 0
        #: Batch writes issued / batch blobs decoded (frame v2 only).
        self.batches_sent = 0
        self.batches_received = 0
        #: Wire bytes written / read (headers included).
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Payload pickles actually performed vs interned-bytes reuses.
        self.payload_encodes = 0
        self.payload_reuses = 0
        #: Frames that arrived for a pid this worker does not host.
        self.misrouted_count = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind this worker's listener and create the local queues."""
        self._queues = {pid: FrameQueue() for pid in self._local_pids}
        self._server = await serve_stream(self._addresses[self.worker_id], self._accept)

    async def connect(self) -> None:
        """Dial every other worker (call after all listeners are bound)."""
        for wid, address in sorted(self._addresses.items()):
            if wid == self.worker_id:
                continue
            _, writer = await open_stream(address)
            self._peer_writers[wid] = writer

    def anchor(self, origin_loop_time: float | None = None) -> None:
        """Anchor ``now()`` (default: the current loop time).

        Workers of one deployment anchor at the *shared* round-clock
        origin so surge windows open and close simultaneously everywhere.
        """
        self._origin = (
            origin_loop_time
            if origin_loop_time is not None
            else asyncio.get_running_loop().time()
        )

    async def close(self) -> None:
        """Tear down the listener, peer connections, and reader tasks.

        Pending wheel slots are flushed first — deliveries land in local
        queues and outstanding batches are written — so teardown never
        loses a frame that a per-message timer path would have delivered.
        """
        if self.wheel is not None:
            self.wheel.flush()
        for task in self._reader_tasks:
            task.cancel()
        for task in self._reader_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._reader_tasks.clear()
        for writer in self._peer_writers.values():
            writer.close()
        self._peer_writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # The transport surface (same as SimTransport)
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since :meth:`anchor`."""
        if self._origin is None:
            raise RuntimeError("transport not anchored")
        return asyncio.get_running_loop().time() - self._origin

    def latency(self, src: int, dst: int, at_s: float) -> float:
        """Sampled one-way latency for ``src → dst`` at ``at_s`` (per-link stream)."""
        return self._latency.latency(src, dst, at_s)

    def send(self, src: int, dst: int, payload: object) -> None:
        """Send ``payload`` to ``dst`` after the modelled link latency.

        Local destinations loop back through in-process queues; remote
        ones ride the owning worker's connection once the modelled
        latency has elapsed (the real socket adds its own).  With
        batching on (the default) deliveries are bucketed into wheel
        slots — one timer per slot — and every remote frame sharing a
        ``(slot, worker)`` bucket coalesces into a single frame v2 batch
        write whose payload bodies are pickled once per fan-out and
        referenced by offset.  ``batching=False`` keeps the historical
        one-pickle-one-timer-one-write-per-frame path (the benchmark
        baseline).
        """
        if self._origin is None:
            raise RuntimeError("transport not anchored")
        # One clock read serves both the model time and the wheel slot:
        # this runs once per (payload, destination) pair, the hottest
        # line of a deployment, so the send path reads the loop clock
        # once and calls the latency model directly.
        loop = asyncio.get_running_loop()
        loop_time = loop.time()
        delay = self._latency.latency(src, dst, loop_time - self._origin)
        self.sent_count += 1
        if self.wheel is None:
            if dst in self._local_pids:
                loop.call_later(delay, self._queues[dst].put_nowait, (src, payload))
            else:
                self.payload_encodes += 1
                frame = encode_frame((src, dst, payload))
                loop.call_later(delay, self._write_frame, self._owner[dst], frame)
            return
        slot = math.ceil((loop_time + delay) / self._slot_s)
        if dst in self._local_pids:
            self.wheel.schedule(slot, self._queues[dst].put_nowait, (src, payload))
            return
        intern_key, body, fresh = self._encode_cache.encode(payload)
        if fresh:
            self.payload_encodes += 1
        else:
            self.payload_reuses += 1
        key = (slot, self._owner[dst])
        pending = self._slot_batches.get(key)
        if pending is None:
            pending = self._slot_batches[key] = []
            self.wheel.schedule(slot, self._flush_batch, key)
        pending.append((src, dst, intern_key, body))

    def send_many(self, src: int, dsts: Iterable[int], payload: object) -> None:
        """Fan ``payload`` out from ``src`` to every pid in ``dsts``.

        Semantically identical to calling :meth:`send` per destination —
        same per-link latencies, same counters — but the fan-out's fixed
        costs (clock read, encode-cache probe) are paid once instead of
        once per destination, which is where a broadcast's send-side
        time goes.  The adversarial proxy deliberately does **not**
        forward this method: it decomposes fan-outs into per-frame
        :meth:`send` calls so drop coins and partition checks stay
        per-frame.
        """
        if self._origin is None:
            raise RuntimeError("transport not anchored")
        loop = asyncio.get_running_loop()
        loop_time = loop.time()
        at = loop_time - self._origin
        sample = self._latency.latency
        if self.wheel is None:
            for dst in dsts:
                delay = sample(src, dst, at)
                self.sent_count += 1
                if dst in self._local_pids:
                    loop.call_later(delay, self._queues[dst].put_nowait, (src, payload))
                else:
                    self.payload_encodes += 1
                    frame = encode_frame((src, dst, payload))
                    loop.call_later(delay, self._write_frame, self._owner[dst], frame)
            return
        encoded: tuple[object, bytes] | None = None
        for dst in dsts:
            delay = sample(src, dst, at)
            self.sent_count += 1
            slot = math.ceil((loop_time + delay) / self._slot_s)
            if dst in self._local_pids:
                self.wheel.schedule(slot, self._queues[dst].put_nowait, (src, payload))
                continue
            if encoded is None:
                intern_key, body, fresh = self._encode_cache.encode(payload)
                encoded = (intern_key, body)
                if fresh:
                    self.payload_encodes += 1
                else:
                    self.payload_reuses += 1
            else:
                intern_key, body = encoded
                self.payload_reuses += 1
            key = (slot, self._owner[dst])
            pending = self._slot_batches.get(key)
            if pending is None:
                pending = self._slot_batches[key] = []
                self.wheel.schedule(slot, self._flush_batch, key)
            pending.append((src, dst, intern_key, body))

    def defer(self, delay_s: float, callback, *args) -> None:
        """Schedule ``callback`` after ``delay_s`` on the slot wheel.

        Used by the adversarial proxy's surge path so attack-delayed
        frames share the O(slots) timer budget; falls back to one loop
        timer per call on an unbatched transport.
        """
        if self.wheel is not None:
            self.wheel.schedule(self.wheel.slot_for(delay_s), callback, *args)
        else:
            asyncio.get_running_loop().call_later(delay_s, callback, *args)

    async def recv(self, pid: int) -> tuple[int, object]:
        """Wait for the next ``(source, payload)`` addressed to local ``pid``."""
        return await self._queues[pid].get()

    def recv_nowait(self, pid: int) -> tuple[int, object] | None:
        """The next already-arrived frame for local ``pid``, or ``None``.

        A decoded batch lands all its frames in one synchronous burst,
        so a consumer that drains the backlog after each ``recv`` wakes
        once per batch instead of once per frame.
        """
        return self._queues[pid].get_nowait()

    def queue_depths(self) -> dict[int, int]:
        """Pending (already-arrived, not yet received) messages per local pid."""
        return {pid: queue.qsize() for pid, queue in self._queues.items()}

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _write_frame(self, wid: int, frame: bytes) -> None:
        writer = self._peer_writers.get(wid)
        if writer is None or writer.is_closing():
            # Peer already gone (shutdown race): nothing to deliver to.
            self.misrouted_count += 1
            return
        writer.write(frame)
        self.frames_sent += 1
        self.bytes_sent += len(frame)

    def _flush_batch(self, key: tuple[int, int]) -> None:
        """Write every frame parked under ``(slot, worker)`` as v2 batches."""
        frames = self._slot_batches.pop(key, None)
        if not frames:
            return
        writer = self._peer_writers.get(key[1])
        if writer is None or writer.is_closing():
            # Peer already gone (shutdown race): nothing to deliver to.
            self.misrouted_count += len(frames)
            return
        for chunk in encode_batch(frames):
            writer.write(chunk)
            self.batches_sent += 1
            self.bytes_sent += len(chunk)
        self.frames_sent += len(frames)

    async def _accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader_tasks.append(asyncio.current_task())
        try:
            while True:
                header = await reader.readexactly(_HEADER.size)
                (length,) = _HEADER.unpack(header)
                if length > MAX_FRAME_BYTES:
                    raise ValueError(
                        f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} cap"
                    )
                blob = await reader.readexactly(length)
                self.bytes_received += _HEADER.size + length
                if blob[:1] == _BATCH_MARKER:
                    frames = decode_batch(blob)
                    self.batches_received += 1
                else:
                    frames = [pickle.loads(blob)]
                for src, dst, payload in frames:
                    self.frames_received += 1
                    queue = self._queues.get(dst)
                    if queue is None:
                        self.misrouted_count += 1
                        continue
                    queue.put_nowait((src, payload))
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        except asyncio.CancelledError:
            # close() cancels reader tasks; finish quietly so the
            # streams machinery does not log the cancellation.
            pass
        finally:
            writer.close()
