"""Real socket transport: length-prefixed frames over TCP or UDS.

The multi-process deployment fabric.  Each worker process hosts a
*shard* of the deployment's nodes and one :class:`SocketTransport`:
sends between two pids of the same shard loop back through in-process
queues (exactly like :class:`~repro.net.transport.SimTransport`), sends
to a remote pid are pickled into a length-prefixed frame and written to
the socket of the worker that owns the destination.  The surface is the
same ``send(src, dst, payload)`` / ``await recv(pid)`` pair plus the
seeded :class:`~repro.net.transport.LinkLatencyModel` surge model, so
:class:`~repro.net.gossip.GossipNetwork` runs unchanged on either
substrate — and, because latency streams are per-link and content
seeded, a sharded run draws exactly the modelled latencies the
single-process run would (real socket hops add on top; δ absorbs them).

Wire format: every frame is a 4-byte big-endian length followed by a
pickle of ``(src, dst, payload)``.  Workers form a full mesh — every
worker dials every other worker once and uses that connection for its
outgoing frames; the accepting side only reads.  Addresses are UNIX
domain socket paths (strings) or ``(host, port)`` TCP tuples, so the
same framing crosses hosts unchanged.

Frames are never dropped: an in-order stream plus unbounded receive
queues preserve the model's "delayed, not lost" dissemination
assumption, and a frame for a pid this worker does not host (a routing
bug, not load) is counted in ``misrouted_count`` rather than silently
discarded.
"""

from __future__ import annotations

import asyncio
import pickle
import socket
import struct
from collections.abc import Iterable, Mapping

from repro.net.transport import LinkLatencyModel, SurgeWindow

#: ``str`` → UNIX domain socket path, ``(host, port)`` → TCP.
Address = str | tuple[str, int]

_HEADER = struct.Struct(">I")
#: Hard per-frame ceiling — a corrupt or hostile length prefix must not
#: trigger a multi-gigabyte allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_frame(payload: object) -> bytes:
    """One length-prefixed pickle frame for ``payload``."""
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(blob)} bytes exceeds the {MAX_FRAME_BYTES} cap")
    return _HEADER.pack(len(blob)) + blob


async def read_frame(reader: asyncio.StreamReader) -> object:
    """Read one frame; raises :class:`asyncio.IncompleteReadError` at EOF."""
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} cap")
    return pickle.loads(await reader.readexactly(length))


async def open_stream(address) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Dial ``address`` (UDS path or ``(host, port)`` tuple)."""
    if isinstance(address, str):
        return await asyncio.open_unix_connection(address)
    host, port = address
    return await asyncio.open_connection(host, port)


async def serve_stream(address, handler) -> asyncio.AbstractServer:
    """Listen on ``address``, calling ``handler(reader, writer)`` per peer."""
    if isinstance(address, str):
        return await asyncio.start_unix_server(handler, path=address)
    host, port = address
    return await asyncio.start_server(handler, host=host, port=port)


def supports_unix_sockets() -> bool:
    """Whether this platform can bind UNIX domain sockets."""
    return hasattr(socket, "AF_UNIX")


class SocketTransport:
    """One worker's point-to-point fabric over the socket mesh.

    Args:
        n: total deployment size (for parity with ``SimTransport``).
        local_pids: the pids this worker hosts (receive queues exist
            only for these).
        owner: pid → worker id, for every pid of the deployment.
        worker_id: this worker's id.
        addresses: worker id → listen address for every worker.
        base_latency_s / jitter_s / seed / surges: the modelled latency
            layer, identical to ``SimTransport``'s.
    """

    def __init__(
        self,
        n: int,
        *,
        local_pids: Iterable[int],
        owner: Mapping[int, int],
        worker_id: int,
        addresses: Mapping[int, object],
        base_latency_s: float = 0.002,
        jitter_s: float = 0.001,
        seed: int = 0,
        surges: tuple[SurgeWindow, ...] = (),
    ) -> None:
        if n <= 0:
            raise ValueError("need at least one node")
        self.n = n
        self.worker_id = worker_id
        self._local_pids = frozenset(local_pids)
        self._owner = dict(owner)
        self._addresses = dict(addresses)
        self._latency = LinkLatencyModel(base_latency_s, jitter_s, seed, surges)
        self._queues: dict[int, asyncio.Queue] = {}
        self._server: asyncio.AbstractServer | None = None
        self._peer_writers: dict[int, asyncio.StreamWriter] = {}
        self._reader_tasks: list[asyncio.Task] = []
        self._origin: float | None = None
        #: Sends initiated by this worker's nodes (local + remote).
        self.sent_count = 0
        #: Frames written to / read from the socket mesh.
        self.frames_sent = 0
        self.frames_received = 0
        #: Frames that arrived for a pid this worker does not host.
        self.misrouted_count = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind this worker's listener and create the local queues."""
        self._queues = {pid: asyncio.Queue() for pid in self._local_pids}
        self._server = await serve_stream(self._addresses[self.worker_id], self._accept)

    async def connect(self) -> None:
        """Dial every other worker (call after all listeners are bound)."""
        for wid, address in sorted(self._addresses.items()):
            if wid == self.worker_id:
                continue
            _, writer = await open_stream(address)
            self._peer_writers[wid] = writer

    def anchor(self, origin_loop_time: float | None = None) -> None:
        """Anchor ``now()`` (default: the current loop time).

        Workers of one deployment anchor at the *shared* round-clock
        origin so surge windows open and close simultaneously everywhere.
        """
        self._origin = (
            origin_loop_time
            if origin_loop_time is not None
            else asyncio.get_running_loop().time()
        )

    async def close(self) -> None:
        """Tear down the listener, peer connections, and reader tasks."""
        for task in self._reader_tasks:
            task.cancel()
        for task in self._reader_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._reader_tasks.clear()
        for writer in self._peer_writers.values():
            writer.close()
        self._peer_writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # The transport surface (same as SimTransport)
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since :meth:`anchor`."""
        if self._origin is None:
            raise RuntimeError("transport not anchored")
        return asyncio.get_running_loop().time() - self._origin

    def latency(self, src: int, dst: int, at_s: float) -> float:
        """Sampled one-way latency for ``src → dst`` at ``at_s`` (per-link stream)."""
        return self._latency.latency(src, dst, at_s)

    def send(self, src: int, dst: int, payload: object) -> None:
        """Send ``payload`` to ``dst`` after the modelled link latency.

        Local destinations loop back through in-process queues; remote
        ones are framed onto the owning worker's connection once the
        modelled latency has elapsed (the real socket adds its own).
        """
        if self._origin is None:
            raise RuntimeError("transport not anchored")
        delay = self.latency(src, dst, self.now())
        loop = asyncio.get_running_loop()
        if dst in self._local_pids:
            loop.call_later(delay, self._queues[dst].put_nowait, (src, payload))
        else:
            frame = encode_frame((src, dst, payload))
            loop.call_later(delay, self._write_frame, self._owner[dst], frame)
        self.sent_count += 1

    async def recv(self, pid: int) -> tuple[int, object]:
        """Wait for the next ``(source, payload)`` addressed to local ``pid``."""
        return await self._queues[pid].get()

    def queue_depths(self) -> dict[int, int]:
        """Pending (already-arrived, not yet received) messages per local pid."""
        return {pid: queue.qsize() for pid, queue in self._queues.items()}

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _write_frame(self, wid: int, frame: bytes) -> None:
        writer = self._peer_writers.get(wid)
        if writer is None or writer.is_closing():
            # Peer already gone (shutdown race): nothing to deliver to.
            self.misrouted_count += 1
            return
        writer.write(frame)
        self.frames_sent += 1

    async def _accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader_tasks.append(asyncio.current_task())
        try:
            while True:
                src, dst, payload = await read_frame(reader)
                self.frames_received += 1
                queue = self._queues.get(dst)
                if queue is None:
                    self.misrouted_count += 1
                    continue
                queue.put_nowait((src, payload))
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        except asyncio.CancelledError:
            # close() cancels reader tasks; finish quietly so the
            # streams machinery does not log the cancellation.
            pass
        finally:
            writer.close()
