"""Asyncio network substrate: transport with latency surges, gossip.

The paper's footnote 2 observes that in deployed blockchain networks,
messages entering the peer-to-peer layer are disseminated to everyone
even if the sender goes offline, and survive transient asynchrony.
This package makes that substrate concrete:

* :mod:`repro.net.transport` — point-to-point links with seeded
  latencies and configurable *surge windows* (latency × factor), the
  physical realisation of an asynchronous period.
* :mod:`repro.net.gossip` — a random regular overlay flooding
  first-seen messages; delivery is at-least-once, exactly-once per
  content digest at each node.
* :mod:`repro.net.socket_transport` — the same transport surface over
  real TCP/UNIX-domain sockets, for multi-process deployments.
* :mod:`repro.net.proxy_transport` — the adversarial proxy layer that
  applies a scheduled attack script's partition/surge/drop effects in
  front of either transport, with per-phase audit counters.
"""

from repro.net.gossip import GossipNetwork, GossipNode, regular_topology
from repro.net.proxy_transport import ProxyTransport
from repro.net.socket_transport import (
    SocketTransport,
    encode_frame,
    read_frame,
    supports_unix_sockets,
)
from repro.net.transport import LinkLatencyModel, SimTransport, SurgeWindow

__all__ = [
    "GossipNetwork",
    "GossipNode",
    "LinkLatencyModel",
    "ProxyTransport",
    "SimTransport",
    "SocketTransport",
    "SurgeWindow",
    "encode_frame",
    "read_frame",
    "regular_topology",
    "supports_unix_sockets",
]
