"""Asyncio network substrate: transport with latency surges, gossip.

The paper's footnote 2 observes that in deployed blockchain networks,
messages entering the peer-to-peer layer are disseminated to everyone
even if the sender goes offline, and survive transient asynchrony.
This package makes that substrate concrete:

* :mod:`repro.net.transport` — point-to-point links with seeded
  latencies and configurable *surge windows* (latency × factor), the
  physical realisation of an asynchronous period.
* :mod:`repro.net.gossip` — a random regular overlay flooding
  first-seen messages; delivery is at-least-once, exactly-once per
  message id at each node.
"""

from repro.net.gossip import GossipNetwork, GossipNode, regular_topology
from repro.net.transport import SimTransport, SurgeWindow

__all__ = [
    "GossipNetwork",
    "GossipNode",
    "SimTransport",
    "SurgeWindow",
    "regular_topology",
]
