"""Adversarial proxy transport: attack scripts realised physically.

:class:`ProxyTransport` wraps either point-to-point fabric —
:class:`~repro.net.transport.SimTransport` on the single-process
deployment, :class:`~repro.net.socket_transport.SocketTransport` on a
sharded one — and applies the *delivery* effects of an
:class:`~repro.attacks.script.AttackScript` to every ``send``:

* **partition** — frames crossing group boundaries are held, then
  flushed in send order the moment a later phase stops blocking the
  link (delayed, not lost: the model's asynchrony);
* **surge** — frames on surged links are forwarded after an extra fixed
  delay of ``(factor − 1) × base_latency_s`` on top of the modelled
  link latency (with the default factor that is Δ: a full round late);
* **drop** — frames on matching links are discarded under seeded
  per-link coins (really lost; gossip's redundant paths are what keeps
  dissemination alive, which is exactly the claim a ``drop`` script
  stresses).

The proxy interprets the same resolved
:class:`~repro.attacks.script.ScriptTimeline` the simulator's
:class:`~repro.attacks.adversary.ScriptedAdversary` interprets, so one
script means one thing on every substrate.  Phase changes come from one
of two drivers: :meth:`schedule_phases` self-schedules them on the
event loop from the shared round clock (single process), or the
deployment coordinator broadcasts ``("attack_phase", index)`` control
frames and the worker calls :meth:`enter_phase` (multi-process) — the
transitions then land within socket latency of the same wall-clock
instant on every worker.

Every interference is audited per phase (``delayed`` / ``dropped`` /
``partitioned`` frame counts) and exported through the run's
:class:`~repro.runtime.metrics.MetricsHub`, so a run can *prove* its
attack actually bit.

The proxy sits **in front of** the fabric, so the batched wire path
underneath changes nothing about attack semantics: every logical frame
passes through :meth:`send` individually, and only the survivors reach
the inner transport to be coalesced into frame v2 batch writes.  Drop
coins are tossed per frame, partitions hold per frame, and surges delay
per frame — a batch on the wire never becomes the unit of interference.
Surge re-injections ride the inner transport's delivery wheel when it
has one (``defer``), keeping the timer budget O(slots) even while an
attack delays a whole broadcast storm.
"""

from __future__ import annotations

import asyncio
import random
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # import at runtime would cycle through repro.net
    from repro.attacks.script import ScriptTimeline

#: Audit counter names, in export order.
AUDIT_KEYS = ("partitioned", "delayed", "dropped")


class ProxyTransport:
    """Apply a script's delivery effects in front of an inner transport.

    Args:
        inner: the wrapped transport (``send``/``recv``/``latency``/…).
        timeline: the resolved script timeline to interpret.
        seed: run seed for the drop-coin streams (per-link, content
            seeded — identical across processes, independent of send
            interleaving on other links).
        round_s: round length Δ in seconds (phase boundaries are round
            numbers; the clock maps them to instants).
        base_latency_s: the fabric's base link latency; a surge of
            factor ``f`` adds ``(f − 1) × base_latency_s`` of delay.
    """

    def __init__(
        self,
        inner,
        timeline: ScriptTimeline,
        *,
        seed: int,
        round_s: float,
        base_latency_s: float,
    ) -> None:
        self.inner = inner
        self.timeline = timeline
        self.round_s = round_s
        self.base_latency_s = base_latency_s
        self._seed = seed
        self._state = timeline.states[0]
        self._held: list[tuple[int, int, object]] = []
        self._drop_rngs: dict[tuple[int, int], random.Random] = {}
        self._timers: list[asyncio.TimerHandle] = []
        #: Per-phase audit rows (one per timeline state, trailing
        #: quiescent phase included): phase index → counter dict.
        self.audit: list[dict[str, int]] = [
            {key: 0 for key in AUDIT_KEYS} for _ in timeline.states
        ]

    # ------------------------------------------------------------------
    # Phase drivers
    # ------------------------------------------------------------------
    def schedule_phases(self) -> None:
        """Self-drive transitions from the loop clock (single process).

        Call once the inner transport is started/anchored: phase ``i``
        begins ``phase_starts()[i] × Δ`` seconds after the transport
        origin, which coincides with round-clock time zero.
        """
        loop = asyncio.get_running_loop()
        now = self.inner.now()
        for index, start_round in enumerate(self.timeline.phase_starts()):
            if index == 0:
                continue
            delay = max(0.0, start_round * self.round_s - now)
            self._timers.append(loop.call_later(delay, self.enter_phase, index))

    def cancel_timers(self) -> None:
        """Cancel any pending self-scheduled transitions."""
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()

    def enter_phase(self, index: int) -> None:
        """Switch to phase ``index`` and flush frames it no longer blocks.

        Idempotent and monotone: stale or repeated transitions (a late
        control frame after a self-scheduled switch) are ignored.
        """
        if index <= self._state.index or index >= len(self.timeline.states):
            return
        self._state = self.timeline.states[index]
        still_held: list[tuple[int, int, object]] = []
        for src, dst, payload in self._held:
            if self._state.blocks(src, dst):
                still_held.append((src, dst, payload))
            else:
                self.inner.send(src, dst, payload)
        self._held = still_held

    # ------------------------------------------------------------------
    # The transport surface
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload: object) -> None:
        """Forward, hold, delay, or drop one frame per the active phase."""
        state = self._state
        counters = self.audit[state.index]
        if state.blocks(src, dst):
            self._held.append((src, dst, payload))
            counters["partitioned"] += 1
            return
        p = state.drop_probability(src, dst)
        if p > 0.0 and self._drop_rng(src, dst).random() < p:
            counters["dropped"] += 1
            return
        if state.surged(src, dst):
            extra = (state.surge_factor - 1.0) * self.base_latency_s
            defer = getattr(self.inner, "defer", None)
            if defer is not None:
                defer(extra, self.inner.send, src, dst, payload)
            else:
                loop = asyncio.get_running_loop()
                self._timers.append(loop.call_later(extra, self.inner.send, src, dst, payload))
            counters["delayed"] += 1
            return
        self.inner.send(src, dst, payload)

    def send_many(self, src: int, dsts, payload: object) -> None:
        """Decompose a fan-out into per-frame :meth:`send` calls.

        Never forwarded to the inner transport's bulk path: drop coins,
        partition checks, and surge delays are defined *per frame*, and
        they must stay that way even when the caller batches its sends.
        """
        for dst in dsts:
            self.send(src, dst, payload)

    def __getattr__(self, name: str):
        # Everything but ``send`` (recv, latency, start, anchor, close,
        # queue_depths, counters, …) is the inner transport's business.
        return getattr(self.inner, name)

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------
    def audit_totals(self) -> dict[str, int]:
        """Counters summed over all phases."""
        return {key: sum(row[key] for row in self.audit) for key in AUDIT_KEYS}

    @property
    def held_count(self) -> int:
        """Frames currently held behind a partition."""
        return len(self._held)

    def export_metrics(self, hub) -> None:
        """Publish the audit counters as gauges on a metrics hub."""
        for key, value in self.audit_totals().items():
            hub.gauge(f"attack_{key}_frames", value)
        hub.gauge("attack_held_frames", self.held_count)
        hub.gauge("attack_phase", self._state.index)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drop_rng(self, src: int, dst: int) -> random.Random:
        rng = self._drop_rngs.get((src, dst))
        if rng is None:
            rng = self._drop_rngs[(src, dst)] = random.Random(
                f"proxy-drop:{self._seed}:{src}:{dst}"
            )
        return rng
