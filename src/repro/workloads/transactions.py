"""Transaction arrival workloads."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.chain.transactions import Transaction


@dataclass(frozen=True)
class SubmissionRateWorkload:
    """A lazy constant-rate workload for unbounded (soak) runs.

    Materialised dicts (:func:`constant_rate_stream`) pre-compute every
    round's arrivals, which a wall-clock-budgeted service cannot do.
    This workload instead *generates* round ``r``'s arrivals on demand
    via the duck-typed ``.get(round, default)`` that
    :meth:`repro.engine.spec.RunSpec.arrivals` calls — so it drops into
    ``RunSpec.transactions`` unchanged.

    Arrivals are a pure function of ``(seed, round)`` (one seeded
    generator per round, nonces partitioned by round), so every worker
    process — and every re-run — generates identical traffic without
    coordination.  Deliberately unmemoised: instances stay frozen-field
    pure, which keeps their canonical digests, pickles, and cross-process
    copies all equivalent.
    """

    rate_per_round: int
    seed: int = 0
    payload_bytes: int = 8
    senders: int = 1 << 20

    def __post_init__(self) -> None:
        if self.rate_per_round < 0:
            raise ValueError("rate must be non-negative")
        if self.payload_bytes < 0 or self.senders <= 0:
            raise ValueError("payload size must be non-negative and senders positive")

    def get(self, round_number: int, default=()) -> tuple[Transaction, ...]:
        """The round's arrivals (``default`` is accepted for dict parity)."""
        if round_number < 0 or self.rate_per_round == 0:
            return default
        rng = random.Random(f"rate-{self.seed}-{round_number}")
        return tuple(
            Transaction.create(
                rng.randrange(self.senders),
                (round_number << 32) | i,
                rng.randbytes(self.payload_bytes),
            )
            for i in range(self.rate_per_round)
        )


def constant_rate_stream(
    rate_per_round: int,
    rounds: int,
    seed: int = 0,
    payload_bytes: int = 8,
) -> dict[int, list[Transaction]]:
    """``rate_per_round`` fresh transactions arriving every round.

    Returns the ``{round: [tx, ...]}`` mapping that
    :class:`~repro.harness.TOBRunConfig.transactions` expects.  Senders
    and payloads are drawn from a seeded generator so workloads are
    reproducible.
    """
    if rate_per_round < 0:
        raise ValueError("rate must be non-negative")
    rng = random.Random(seed)
    stream: dict[int, list[Transaction]] = {}
    nonce = 0
    for r in range(rounds):
        arrivals = []
        for _ in range(rate_per_round):
            sender = rng.randrange(1 << 16)
            payload = rng.randbytes(payload_bytes)
            arrivals.append(Transaction.create(sender, nonce, payload))
            nonce += 1
        if arrivals:
            stream[r] = arrivals
    return stream


def burst_stream(
    burst_round: int,
    burst_size: int,
    seed: int = 0,
) -> dict[int, list[Transaction]]:
    """A single burst of ``burst_size`` transactions at one round."""
    rng = random.Random(seed)
    return {
        burst_round: [
            Transaction.create(rng.randrange(1 << 16), i, rng.randbytes(8))
            for i in range(burst_size)
        ]
    }
