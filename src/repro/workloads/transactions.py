"""Transaction arrival workloads."""

from __future__ import annotations

import random

from repro.chain.transactions import Transaction


def constant_rate_stream(
    rate_per_round: int,
    rounds: int,
    seed: int = 0,
    payload_bytes: int = 8,
) -> dict[int, list[Transaction]]:
    """``rate_per_round`` fresh transactions arriving every round.

    Returns the ``{round: [tx, ...]}`` mapping that
    :class:`~repro.harness.TOBRunConfig.transactions` expects.  Senders
    and payloads are drawn from a seeded generator so workloads are
    reproducible.
    """
    if rate_per_round < 0:
        raise ValueError("rate must be non-negative")
    rng = random.Random(seed)
    stream: dict[int, list[Transaction]] = {}
    nonce = 0
    for r in range(rounds):
        arrivals = []
        for _ in range(rate_per_round):
            sender = rng.randrange(1 << 16)
            payload = rng.randbytes(payload_bytes)
            arrivals.append(Transaction.create(sender, nonce, payload))
            nonce += 1
        if arrivals:
            stream[r] = arrivals
    return stream


def burst_stream(
    burst_round: int,
    burst_size: int,
    seed: int = 0,
) -> dict[int, list[Transaction]]:
    """A single burst of ``burst_size`` transactions at one round."""
    rng = random.Random(seed)
    return {
        burst_round: [
            Transaction.create(rng.randrange(1 << 16), i, rng.randbytes(8))
            for i in range(burst_size)
        ]
    }
