"""Workloads: participation patterns, transaction streams, scenarios.

* :mod:`repro.workloads.participation` — schedule generators for the
  shapes the paper motivates (stable, bounded churn, correlated outage
  incl. the May-2023 Ethereum incident, diurnal, linear ramp).
* :mod:`repro.workloads.transactions` — reproducible transaction
  arrival streams.
* :mod:`repro.workloads.scenarios` — one prebuilt
  :class:`~repro.harness.TOBRunConfig` per paper claim, shared by
  benches, examples, and integration tests.
"""

from repro.workloads.participation import (
    RampSchedule,
    RotatingSchedule,
    churn_walk,
    diurnal,
    ethereum_may_2023,
    outage,
    stable,
)
from repro.workloads.scenarios import (
    blackout_scenario,
    churn_scenario,
    ethereum_outage_scenario,
    split_vote_attack_scenario,
    surge_scenario,
    throughput_scenario,
)
from repro.workloads.transactions import (
    SubmissionRateWorkload,
    burst_stream,
    constant_rate_stream,
)

__all__ = [
    "RampSchedule",
    "RotatingSchedule",
    "SubmissionRateWorkload",
    "blackout_scenario",
    "burst_stream",
    "churn_scenario",
    "churn_walk",
    "constant_rate_stream",
    "diurnal",
    "ethereum_may_2023",
    "ethereum_outage_scenario",
    "outage",
    "split_vote_attack_scenario",
    "stable",
    "surge_scenario",
    "throughput_scenario",
]
