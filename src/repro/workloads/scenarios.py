"""Prebuilt experiment scenarios (one per paper claim).

Benches, examples, and integration tests share these constructors so
that "the attack from §1" or "the Ethereum outage" means exactly the
same configuration everywhere.

Every scenario is a :class:`~repro.engine.spec.RunSpec` (the engine's
substrate-independent run description, public as
:class:`~repro.harness.TOBRunConfig`): asynchronous periods are
expressed as :class:`~repro.engine.conditions.NetworkConditions`, so
the same scenario runs on the deterministic round simulator *and* —
where its powers exist physically — on the asyncio deployment backend.
"""

from __future__ import annotations

from fractions import Fraction

from repro.engine.conditions import NetworkConditions
from repro.harness import TOBRunConfig
from repro.protocols.graded_agreement import DEFAULT_BETA
from repro.sleepy.adversary import CrashAdversary, SplitVoteAttack, WithholdingAdversary
from repro.workloads.participation import churn_walk, ethereum_may_2023
from repro.workloads.transactions import constant_rate_stream


def split_vote_attack_scenario(
    protocol: str,
    eta: int,
    pi: int = 1,
    n: int = 20,
    target_round: int = 10,
    tail_rounds: int = 14,
    beta: Fraction = DEFAULT_BETA,
    seed: int = 0,
) -> TOBRunConfig:
    """The §1 agreement attack: split-vote in an asynchronous decision round.

    The asynchronous window is ``[target_round − π + 1, target_round]``
    (i.e. ``ra = target_round − π``), so the attacked decision round is
    the window's last round.  A fifth of the processes are Byzantine —
    comfortably below β̃ for mild churn, so the attack's success against
    the original protocol is attributable to asynchrony, not to an
    oversized adversary.
    """
    byz = list(range(n - n // 5, n))
    return TOBRunConfig(
        n=n,
        rounds=target_round + tail_rounds,
        protocol=protocol,
        eta=eta,
        beta=beta,
        adversary=SplitVoteAttack(byz, target_round=target_round),
        conditions=NetworkConditions.window(ra=target_round - pi, pi=pi),
        seed=seed,
        meta={"scenario": "split-vote-attack", "pi": pi, "ra": target_round - pi},
    )


def blackout_scenario(
    protocol: str,
    eta: int,
    pi: int,
    ra: int = 9,
    n: int = 12,
    rounds: int = 30,
    seed: int = 0,
) -> TOBRunConfig:
    """A π-round delivery blackout (liveness attack, Theorem 3 healing)."""
    return TOBRunConfig(
        n=n,
        rounds=rounds,
        protocol=protocol,
        eta=eta,
        adversary=WithholdingAdversary(),
        conditions=NetworkConditions.window(ra=ra, pi=pi),
        seed=seed,
        meta={"scenario": "blackout", "pi": pi, "ra": ra},
    )


def ethereum_outage_scenario(
    protocol: str = "resilient",
    eta: int = 4,
    n: int = 50,
    start: int = 10,
    duration: int = 20,
    rounds: int = 50,
    seed: int = 0,
) -> TOBRunConfig:
    """The May-2023 Ethereum outage replay (60% offline, then return)."""
    return TOBRunConfig(
        n=n,
        rounds=rounds,
        protocol=protocol,
        eta=eta,
        schedule=ethereum_may_2023(n, start=start, duration=duration),
        seed=seed,
        meta={"scenario": "ethereum-outage", "outage": (start, duration)},
    )


def churn_scenario(
    protocol: str,
    eta: int,
    gamma: float,
    n: int = 40,
    rounds: int = 60,
    byzantine: int = 0,
    seed: int = 0,
) -> TOBRunConfig:
    """Bounded-churn random participation with an optional silent adversary.

    Used by the Figure 1 empirical companion: pick γ and a Byzantine
    count at/below/above β̃(γ)·|O_r| and observe progress or stall.
    """
    # The walk covers all pids; corrupted pids are simply carved out of
    # H_r by the simulator (and kept permanently awake, as the model
    # requires).
    adversary = CrashAdversary(list(range(n - byzantine, n))) if byzantine else None
    schedule = churn_walk(n, eta, gamma, seed=seed)
    return TOBRunConfig(
        n=n,
        rounds=rounds,
        protocol=protocol,
        eta=eta,
        schedule=schedule,
        adversary=adversary,
        seed=seed,
        meta={"scenario": "churn", "gamma": gamma, "byzantine": byzantine},
    )


def surge_scenario(
    protocol: str = "resilient",
    eta: int = 4,
    ra: int = 7,
    pi: int = 2,
    surge_factor: float = 25.0,
    n: int = 10,
    rounds: int = 20,
    seed: int = 0,
) -> TOBRunConfig:
    """An asynchronous period with no Byzantine help, on either substrate.

    On the simulator the period is adversary-controllable delivery; on
    the deployment backend it is a ``surge_factor×`` latency spike.  The
    resilient protocol must stay safe through it and decide afterwards
    (Theorem 3 healing).
    """
    return TOBRunConfig(
        n=n,
        rounds=rounds,
        protocol=protocol,
        eta=eta,
        conditions=NetworkConditions.window(ra=ra, pi=pi, surge_factor=surge_factor),
        seed=seed,
        meta={"scenario": "surge", "pi": pi, "ra": ra},
    )


def throughput_scenario(
    protocol: str = "resilient",
    eta: int = 2,
    n: int = 10,
    rounds: int = 30,
    rate_per_round: int = 8,
    seed: int = 0,
) -> TOBRunConfig:
    """A steady client transaction load, on either substrate.

    Through the unified engine the same seeded arrival stream feeds the
    simulator's mempools and a deployment's — the throughput/latency
    analysis in :mod:`repro.analysis` applies to both traces.
    """
    return TOBRunConfig(
        n=n,
        rounds=rounds,
        protocol=protocol,
        eta=eta,
        transactions=constant_rate_stream(rate_per_round, rounds, seed=seed),
        seed=seed,
        meta={"scenario": "throughput", "rate_per_round": rate_per_round},
    )
