"""Participation workloads: the shapes the paper's introduction motivates.

Each helper returns a :class:`~repro.sleepy.schedule.SleepSchedule`.
These are *generators*; whether a generated schedule satisfies the
paper's inequalities for given (η, γ, β̃) is validated per-run by
:mod:`repro.analysis.assumptions` — experiments assert the assumptions
on the executed trace rather than trusting the generator.
"""

from __future__ import annotations

import math

from repro.sleepy.schedule import (
    DiurnalSchedule,
    FullParticipation,
    RandomChurnSchedule,
    SleepSchedule,
    SpikeSchedule,
)


def stable(n: int) -> SleepSchedule:
    """Static participation: the classic synchronous-BFT population."""
    return FullParticipation(n)


def churn_walk(
    n: int,
    eta: int,
    gamma: float,
    seed: int = 0,
    wake_probability: float = 0.5,
    min_fraction: float = 0.5,
) -> SleepSchedule:
    """A random walk whose churn aims at ``γ`` per ``η`` rounds (Eq. 1).

    The per-round sleep budget is ``γ/max(η, 1)`` of the awake set, so
    over any η-round window at most ~γ of the recently-awake processes
    can have dropped out.  This is conservative, not exact — the
    experiments validate Eq. 1 on the produced trace.
    """
    if eta < 0:
        raise ValueError("η must be non-negative")
    per_round = gamma / max(eta, 1)
    return RandomChurnSchedule(
        n,
        churn_per_round=per_round,
        wake_probability=wake_probability,
        min_awake=max(1, int(math.ceil(min_fraction * n))),
        seed=seed,
    )


def outage(n: int, fraction: float, start: int, duration: int) -> SleepSchedule:
    """A sudden correlated outage: ``fraction`` of processes drop at once."""
    return SpikeSchedule(n, drop_fraction=fraction, start=start, duration=duration)


def ethereum_may_2023(n: int, start: int = 10, duration: int = 20) -> SleepSchedule:
    """The May 2023 Ethereum incident (paper §1, footnote 1).

    Roughly 60% of consensus clients crashed at once and returned about
    25 minutes later; the dynamically available chain kept growing.  The
    default ``duration`` is scaled down from the real ~125 rounds
    (Δ = 12 s) to keep simulations brisk; pass ``duration=125`` for the
    full-scale replay.
    """
    return outage(n, fraction=0.6, start=start, duration=duration)


def diurnal(n: int, period: int = 48, min_fraction: float = 0.3) -> SleepSchedule:
    """Day/night participation oscillation with gradual membership drift."""
    return DiurnalSchedule(n, period=period, min_fraction=min_fraction)


class RotatingSchedule(SleepSchedule):
    """A fixed-size awake window sliding by ``shift`` ids per round.

    Every round exactly ``shift`` processes go to sleep and ``shift``
    fresh ones wake, so the per-round drop-off rate is ``shift/size``
    and the rate per η rounds approaches ``min(1, η·shift/size)``.
    This is the cleanest instrument for locating the Figure 1 stall
    threshold (γ ≥ β): rotation is churn with no participation dip.
    """

    def __init__(self, n: int, size: int, shift: int) -> None:
        super().__init__(n)
        if not 1 <= size <= n:
            raise ValueError("size must be in [1, n]")
        if shift < 0:
            raise ValueError("shift must be non-negative")
        self._size = size
        self._shift = shift

    def awake(self, round_number: int) -> frozenset[int]:
        offset = (round_number * self._shift) % self.n
        return frozenset((offset + i) % self.n for i in range(self._size))


class RampSchedule(SleepSchedule):
    """Linear participation decline from 100% to ``floor_fraction``.

    Between ``start`` and ``start + length`` rounds the awake set shrinks
    by one process at a time (highest pids leave first) — the gentlest
    possible churn, useful for locating stall thresholds precisely.
    """

    def __init__(self, n: int, floor_fraction: float, start: int, length: int) -> None:
        super().__init__(n)
        if not 0.0 < floor_fraction <= 1.0:
            raise ValueError("floor_fraction must be in (0, 1]")
        if length <= 0:
            raise ValueError("length must be positive")
        self._floor = max(1, int(math.ceil(floor_fraction * n)))
        self._start = start
        self._length = length

    def awake(self, round_number: int) -> frozenset[int]:
        if round_number < self._start:
            keep = self.n
        else:
            progress = min(1.0, (round_number - self._start) / self._length)
            keep = round(self.n - progress * (self.n - self._floor))
        return frozenset(range(int(keep)))
