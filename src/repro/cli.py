"""Command-line interface: ``python -m repro <command>``.

Every command drives the public API and prints an aligned table, so the
library is explorable without writing a script:

* ``figure1``  — the Figure 1 curve (β̃ vs γ);
* ``run``      — one protocol run with a summary;
* ``attack``   — the §1 split-vote attack, baseline vs η-expiration;
  with ``--script`` a named scheduled-attack script from
  :mod:`repro.attacks` instead, on either backend (``--backend
  deployment --processes 2`` exercises the coordinator-broadcast
  phase path of the adversarial proxy transport);
* ``outage``   — a correlated participation outage replay;
* ``tune-eta`` — the operator's η menu for a given per-round churn;
* ``deploy``   — a real-time asyncio gossip deployment;
* ``soak``     — the deployment run as a *service*: a wall-clock
  budget instead of a round count, submission-rate client traffic with
  bounded mempools, optional churn, multi-process sharding via
  ``--processes``, and a live HTTP metrics endpoint that the command
  scrapes itself before exiting;
* ``sweep``    — a named experiment grid, streamed across a process
  pool (the paper's E3/F1/A1/A2 grids plus the D0 deployment smoke
  from :mod:`repro.analysis.batch`), checkpointable to a journal with
  ``--journal PATH`` and resumable with ``--resume``.
"""

from __future__ import annotations

import argparse
from fractions import Fraction
from typing import Sequence

from repro.analysis import (
    chain_growth_rate,
    check_asynchrony_resilience,
    check_safety,
    decided_depth_timeline,
    format_table,
    max_reorg_depth,
    message_totals,
)
from repro.core.bounds import beta_tilde, figure1_curve, max_resilient_pi
from repro.engine.registry import PROTOCOLS
from repro.harness import TOBRunConfig, run_tob
from repro.workloads import ethereum_outage_scenario, split_vote_attack_scenario

#: The named experiment grids of :data:`repro.analysis.batch.GRIDS`,
#: spelled out so the parser does not import the batch layer just to
#: build its ``choices`` (``tests/test_cli.py`` pins the two in sync).
SWEEP_GRID_NAMES = (
    "ablation-beta",
    "attacks",
    "attacks-deploy",
    "deploy-smoke",
    "figure1",
    "pi-eta",
    "sleepiness",
)

#: The named scripts of :data:`repro.attacks.ATTACKS`, spelled out for
#: the same reason (``tests/test_cli.py`` pins the two in sync).
ATTACK_SCRIPT_NAMES = (
    "equivocation-storm",
    "lossy-links",
    "partition-heal",
    "partition-surge",
    "sleep-storm",
    "surge-recover",
)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Asynchrony-resilient sleepy total-order broadcast (PODC 2024) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure1", help="print the Figure 1 curve")
    p.add_argument("--points", type=int, default=9)
    p.add_argument("--beta", type=Fraction, default=Fraction(1, 3))

    p = sub.add_parser("run", help="run one protocol execution (any backend)")
    p.add_argument("--n", type=int, default=20)
    p.add_argument("--rounds", type=int, default=40)
    p.add_argument("--protocol", choices=sorted(PROTOCOLS.names()), default="resilient")
    p.add_argument("--eta", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--backend",
        choices=["simulator", "deployment"],
        default="simulator",
        help="execution substrate: deterministic rounds or real-time asyncio gossip",
    )
    p.add_argument(
        "--delta-ms", type=float, default=20.0, help="synchrony bound δ (deployment backend)"
    )
    p.add_argument(
        "--txs-per-round",
        type=int,
        default=0,
        help="client transaction arrivals per round (runs on either backend)",
    )
    p.add_argument("--timeline", action="store_true", help="print the round-by-round strip chart")
    p.add_argument("--save", metavar="PATH", default=None, help="save the trace as JSON")

    p = sub.add_parser(
        "attack", help="replay the §1 split-vote attack or run a scheduled attack script"
    )
    p.add_argument("--n", type=int, default=20)
    p.add_argument("--pi", type=int, default=1)
    p.add_argument("--eta", type=int, default=2)
    p.add_argument(
        "--script",
        choices=ATTACK_SCRIPT_NAMES,
        default=None,
        help="run this named script from repro.attacks instead of the split-vote replay",
    )
    p.add_argument(
        "--backend",
        choices=["simulator", "deployment"],
        default="simulator",
        help="substrate for --script runs (the split-vote replay is simulator-only)",
    )
    p.add_argument(
        "--processes",
        type=int,
        default=1,
        help="worker processes for --backend deployment (1 = in-process)",
    )
    p.add_argument(
        "--delta-ms", type=float, default=20.0, help="synchrony bound δ (deployment backend)"
    )
    p.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="total rounds for --script (default: script length + 4 recovery rounds)",
    )
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("outage", help="replay a correlated participation outage")
    p.add_argument("--n", type=int, default=50)
    p.add_argument("--duration", type=int, default=20)
    p.add_argument("--eta", type=int, default=4)

    p = sub.add_parser("tune-eta", help="print the η calibration menu")
    p.add_argument("--churn-per-round", type=float, default=0.02)
    p.add_argument("--n", type=int, default=48)

    p = sub.add_parser("deploy", help="run a real-time asyncio gossip deployment")
    p.add_argument("--n", type=int, default=6)
    p.add_argument("--rounds", type=int, default=14)
    p.add_argument("--delta-ms", type=float, default=20.0)
    p.add_argument("--eta", type=int, default=3)

    p = sub.add_parser("soak", help="run the deployment as a service for a wall-clock budget")
    p.add_argument("--duration", type=float, default=30.0, help="wall-clock budget in seconds")
    p.add_argument("--n", type=int, default=8)
    p.add_argument(
        "--processes",
        type=int,
        default=1,
        help="worker processes to shard the nodes across (1 = in-process)",
    )
    p.add_argument("--delta-ms", type=float, default=50.0)
    p.add_argument("--protocol", choices=sorted(PROTOCOLS.names()), default="resilient")
    p.add_argument("--eta", type=int, default=3)
    p.add_argument(
        "--rate", type=int, default=16, help="client transaction submissions per round"
    )
    p.add_argument(
        "--mempool-capacity",
        type=int,
        default=4096,
        help="per-node mempool bound (overflow transactions are shed and counted)",
    )
    p.add_argument(
        "--churn",
        type=float,
        default=0.1,
        help="target churn γ per η-round window (0 disables the sleep schedule)",
    )
    p.add_argument(
        "--metrics-port", type=int, default=0, help="metrics endpoint port (0 = ephemeral)"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--dump", metavar="PATH", default=None, help="save summary + scraped metrics as JSON"
    )

    p = sub.add_parser("sweep", help="run a named experiment grid as a streamed parallel sweep")
    p.add_argument("grid", choices=SWEEP_GRID_NAMES, help="which experiment grid to run")
    p.add_argument("--n", type=int, default=None, help="grid size override (where applicable)")
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size (default: cores − 1; 0 forces the serial in-process path)",
    )
    p.add_argument(
        "--chunk", type=int, default=1, help="cells handed to a worker per dispatch"
    )
    p.add_argument(
        "--window",
        type=int,
        default=None,
        help="cells in flight at once — bounds sweep memory (default: 4 × workers × chunk)",
    )
    p.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="checkpoint each cell's reduced row to this JSONL journal (fsync'd per window)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already journaled under an identical content digest (needs --journal)",
    )
    p.add_argument("--save", metavar="PATH", default=None, help="save the reduced rows as JSON")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Parse ``argv`` (default: ``sys.argv``) and run the subcommand."""
    args = build_parser().parse_args(argv)
    command = args.command.replace("-", "_")
    return globals()[f"_cmd_{command}"](args)


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_figure1(args) -> int:
    rows = [
        [float(gamma), float(value)]
        for gamma, value in figure1_curve(beta=args.beta, points=args.points)
    ]
    print(
        format_table(
            ["drop-off rate γ", "allowable failure ratio β̃"],
            rows,
            title=f"Figure 1: β̃ = (β − γ)/(γ(β − 2) + 1), β = {args.beta}",
        )
    )
    return 0


def _cmd_run(args) -> int:
    from repro.engine.backend import run_spec

    transactions = {}
    if args.txs_per_round:
        from repro.workloads import constant_rate_stream

        transactions = constant_rate_stream(args.txs_per_round, args.rounds, seed=args.seed)
    spec = TOBRunConfig(
        n=args.n,
        rounds=args.rounds,
        protocol=args.protocol,
        eta=args.eta,
        seed=args.seed,
        transactions=transactions,
    )
    backend = None
    if args.backend == "deployment":
        from repro.engine.deploy_backend import DeploymentBackend

        backend = DeploymentBackend(delta_s=args.delta_ms / 1000.0)
    result = run_spec(spec, backend)
    trace = result.trace
    safety = check_safety(trace)
    totals = message_totals(trace)
    depth = decided_depth_timeline(trace)[-1].depth if trace.rounds else 0
    eta = trace.meta.get("eta", 0)
    print(
        format_table(
            ["metric", "value"],
            [
                ["backend", result.backend],
                ["protocol", f"{args.protocol} (η={eta})"],
                ["processes / rounds", f"{args.n} / {args.rounds}"],
                ["decided depth", depth],
                ["growth (blocks/round)", chain_growth_rate(trace)],
                ["safety", safety.ok],
                ["votes / proposals sent", f"{totals['votes']} / {totals['proposes']}"],
            ],
            title="Run summary",
        )
    )
    if args.timeline:
        from repro.analysis import render_timeline

        print()
        print(render_timeline(trace))
    if args.save:
        from repro.analysis import save_trace

        save_trace(trace, args.save)
        print(f"\ntrace saved to {args.save}")
    return 0 if safety.ok else 1


def _cmd_attack(args) -> int:
    if args.script is not None:
        return _cmd_attack_script(args)
    rows = []
    for protocol, eta in (("mmr", 0), ("resilient", args.eta)):
        config = split_vote_attack_scenario(protocol, eta=eta, pi=args.pi, n=args.n)
        trace = run_tob(config)
        safety = check_safety(trace)
        resilience = check_asynchrony_resilience(trace, ra=config.meta["ra"], pi=args.pi)
        rows.append(
            [f"{protocol} (η={eta})", safety.ok, resilience.ok, max_reorg_depth(trace)]
        )
    print(
        format_table(
            ["protocol", "safe", "Def.5 resilient", "max reorg depth"],
            rows,
            title=f"Split-vote attack, π={args.pi} asynchronous rounds, n={args.n}",
        )
    )
    return 0


def _cmd_attack_script(args) -> int:
    from repro.attacks import apply_script, get_script
    from repro.engine.backend import run_spec
    from repro.engine.spec import RunSpec

    script = get_script(args.script, args.n)
    rounds = args.rounds if args.rounds is not None else script.total_rounds + 4
    backend = None
    if args.backend == "deployment":
        from repro.engine.deploy_backend import DeploymentBackend

        backend = DeploymentBackend(
            delta_s=args.delta_ms / 1000.0, processes=args.processes
        )
    rows = []
    resilient_safe = True
    for protocol, eta in (("mmr", 0), ("resilient", args.eta)):
        spec = apply_script(
            RunSpec(n=args.n, rounds=rounds, protocol=protocol, eta=eta, seed=args.seed),
            script,
        )
        result = run_spec(spec, backend)
        trace = result.trace
        safety = check_safety(trace)
        audit = (result.extras.get("attack") or {}).get("totals") if backend else None
        audit_text = (
            " ".join(f"{key}={audit[key]}" for key in sorted(audit)) if audit else "—"
        )
        rows.append(
            [
                f"{protocol} (η={eta})",
                safety.ok,
                len(trace.decisions),
                max_reorg_depth(trace),
                audit_text,
            ]
        )
        if protocol == "resilient":
            resilient_safe = safety.ok
    print(
        format_table(
            ["protocol", "safe", "decisions", "max reorg depth", "proxy audit"],
            rows,
            title=(
                f"Scripted attack '{script.name}' "
                f"({script.total_rounds}+{rounds - script.total_rounds} rounds, "
                f"n={args.n}, {args.backend})"
            ),
        )
    )
    # MMR breaking is the paper's headline; the resilient protocol
    # breaking is a bug — only the latter fails the command.
    return 0 if resilient_safe else 1


def _cmd_outage(args) -> int:
    config = ethereum_outage_scenario(n=args.n, duration=args.duration, eta=args.eta)
    trace = run_tob(config)
    during = chain_growth_rate(trace, start=12, end=10 + args.duration - 1)
    print(
        format_table(
            ["metric", "value"],
            [
                ["processes", args.n],
                ["offline", "60%"],
                ["outage rounds", args.duration],
                ["growth during outage", during],
                ["safety", check_safety(trace).ok],
            ],
            title="Correlated outage replay (May-2023 shape)",
        )
    )
    return 0


def _cmd_tune_eta(args) -> int:
    per_round = Fraction(args.churn_per_round).limit_denominator(1000)
    rows = []
    for eta in (1, 2, 4, 8, 12, 16):
        gamma = min(per_round * eta, Fraction(32, 100))
        value = beta_tilde(Fraction(1, 3), gamma)
        rows.append(
            [eta, max_resilient_pi(eta), float(gamma), float(value), int(value * args.n)]
        )
    print(
        format_table(
            ["η", "tolerated π", "γ per window", "β̃", f"max Byzantine (n={args.n})"],
            rows,
            title=f"η menu at {float(per_round):.1%} per-round churn (β = 1/3)",
        )
    )
    return 0


def _json_safe(value):
    """Reduced rows may carry Fractions and round-sets; make them JSON."""
    if isinstance(value, Fraction):
        return [value.numerator, value.denominator]
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def _cmd_sweep(args) -> int:
    import json

    from repro.analysis.batch import GRIDS
    from repro.engine.sweep import SweepJournal, SweepJournalMismatch, stream_sweep

    job = GRIDS[args.grid]
    overrides = {}
    if args.n is not None:
        if not job.sizeable:
            raise SystemExit(f"grid {job.name!r} does not take --n")
        overrides["n"] = args.n
    if args.resume and args.journal is None:
        raise SystemExit("--resume needs --journal PATH (nothing to resume from)")
    journal = SweepJournal(args.journal, grid=job.name) if args.journal else None
    grid = job.build(**overrides)
    try:
        rows = [
            outcome.row
            for outcome in stream_sweep(
                grid,
                reducer=job.reducer,
                backend=job.backend() if job.backend is not None else None,
                max_workers=args.workers,
                chunksize=args.chunk,
                window=args.window,
                journal=journal,
                resume=args.resume,
            )
        ]
    except SweepJournalMismatch as exc:
        raise SystemExit(str(exc)) from None
    print(job.table(rows, **overrides))
    if args.save:
        with open(args.save, "w") as fh:
            json.dump({"grid": job.name, "rows": [_json_safe(r) for r in rows]}, fh, indent=2)
        print(f"\nrows saved to {args.save}")
    return 0


def _cmd_deploy(args) -> int:
    from repro.runtime import DeploymentConfig, run_deployment

    result = run_deployment(
        DeploymentConfig(
            n=args.n,
            rounds=args.rounds,
            delta_s=args.delta_ms / 1000.0,
            protocol="resilient",
            eta=args.eta,
        )
    )
    trace = result.trace
    print(
        format_table(
            ["metric", "value"],
            [
                ["nodes", args.n],
                ["δ (ms)", args.delta_ms],
                ["rounds", args.rounds],
                ["wall-clock (s)", result.wall_seconds],
                ["gossip messages", result.messages_sent],
                ["decisions", len(trace.decisions)],
                ["safety", check_safety(trace).ok],
            ],
            title="Deployment summary",
        )
    )
    return 0


def _cmd_soak(args) -> int:
    import asyncio
    import json
    import urllib.request

    from repro.engine.deploy_backend import DeploymentBackend
    from repro.engine.spec import RunSpec
    from repro.runtime.metrics import MetricsHub, MetricsServer, SourcedMetrics
    from repro.workloads import SubmissionRateWorkload, churn_walk

    delta_s = args.delta_ms / 1000.0
    round_s = 3 * delta_s
    rounds = max(2, int(args.duration / round_s))
    schedule = (
        churn_walk(args.n, args.eta, args.churn, seed=args.seed) if args.churn > 0 else None
    )
    spec = RunSpec(
        n=args.n,
        rounds=rounds,
        protocol=args.protocol,
        eta=args.eta,
        seed=args.seed,
        schedule=schedule,
        transactions=SubmissionRateWorkload(args.rate, seed=args.seed),
    )
    backend = DeploymentBackend(
        delta_s=delta_s,
        processes=args.processes,
        mempool_capacity=args.mempool_capacity,
        gossip_seen_horizon=args.eta + 8,
    )
    collector = SourcedMetrics()
    backend.attach_metrics(collector)

    async def run_service():
        server = MetricsServer(MetricsHub(), port=args.metrics_port, provider=collector.merged)
        await server.start()
        print(
            f"soak: n={args.n} processes={args.processes} rounds={rounds} "
            f"(~{rounds * round_s:.0f}s at delta={args.delta_ms}ms); metrics at {server.url}"
        )
        try:
            result = await backend.execute_async(spec)

            def scrape():
                with urllib.request.urlopen(server.url, timeout=10) as response:
                    return json.loads(response.read().decode("utf-8"))

            # Scraping over real HTTP (not reading the hub directly)
            # proves the endpoint a production scraper would hit works.
            scraped = await asyncio.get_running_loop().run_in_executor(None, scrape)
        finally:
            await server.stop()
        return result, scraped

    try:
        result, scraped = asyncio.run(run_service())
    except RuntimeError as exc:
        # A dead worker, a torn control channel, or a deployment
        # timeout is a failed soak, not a traceback: report and exit 1.
        print(f"soak: FAILED — {exc}")
        return 1
    trace = result.trace
    safety = check_safety(trace)
    extras = result.extras
    if "mempool" in extras:
        shed_transactions = extras["mempool"]["shed"]
        admitted = extras["mempool"]["admitted"]
    else:
        pools = [node.process.mempool for node in extras["nodes"].values()]
        shed_transactions = sum(getattr(pool, "shed_count", 0) for pool in pools)
        admitted = sum(getattr(pool, "admitted_count", 0) for pool in pools)
    transport = extras.get("transport")
    # Protocol messages are never shed by design; the only way one could
    # vanish in the socket substrate is a routing bug, which the
    # transports audit as ``misrouted``.
    shed_protocol = transport["misrouted"] if isinstance(transport, dict) else 0
    summary = {
        "n": args.n,
        "processes": args.processes,
        "rounds": rounds,
        "protocol": args.protocol,
        "eta": args.eta,
        "wall_seconds": result.wall_seconds,
        "decisions": len(trace.decisions),
        "safe": safety.ok,
        "messages_sent": result.messages_sent,
        "shed_transactions": shed_transactions,
        "admitted_transactions": admitted,
        "shed_protocol_messages": shed_protocol,
        "gossip": _json_safe(extras.get("gossip", {})),
    }
    print(
        format_table(
            ["metric", "value"],
            [[key, value] for key, value in summary.items() if key != "gossip"],
            title="Soak summary",
        )
    )
    if args.dump:
        with open(args.dump, "w") as fh:
            json.dump({"summary": summary, "metrics": _json_safe(scraped)}, fh, indent=2)
        print(f"\nsoak dump saved to {args.dump}")
    return 0 if (safety.ok and trace.decisions and shed_protocol == 0) else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
