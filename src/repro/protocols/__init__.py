"""Baseline protocols: MMR graded agreement and total-order broadcast.

* :mod:`repro.protocols.graded_agreement` — the one-round graded
  agreement of Malkhi, Momose, and Ren (paper Figure 2), including the
  vote tally with prefix counting, parametric failure ratio β, and a
  one-shot process wrapper for running GA instances standalone.
* :mod:`repro.protocols.tob_base` — the view-structured total-order
  broadcast state machine of Algorithm 1, with the vote-selection rule
  left abstract.
* :mod:`repro.protocols.mmr_tob` — the original MMR protocol: each GA
  instance tallies only votes cast in its own round (and is therefore
  *not* asynchrony resilient — see the E2 benchmark).
"""

from repro.protocols.graded_agreement import (
    GAOutput,
    GAVoteProcess,
    tally_votes,
)
from repro.protocols.mmr_tob import MMRProcess, mmr_factory
from repro.protocols.tob_base import SleepyTOBProcess

__all__ = [
    "GAOutput",
    "GAVoteProcess",
    "MMRProcess",
    "SleepyTOBProcess",
    "mmr_factory",
    "tally_votes",
]
