"""Graded agreement of Malkhi, Momose, and Ren (paper Figure 2).

One GA instance spans one round: in the send phase every awake process
multicasts ``[vote, Λ]``; in the receive phase each process tallies the
votes it received and outputs logs with grades:

* grade 1 — logs voted by more than ``(1 − β)·m`` of the ``m`` processes
  it heard from (``> 2m/3`` for the paper's β = 1/3);
* grade 0 — logs voted by more than ``β·m`` but at most ``(1 − β)·m``.

A vote for ``Λ'`` counts as a vote for every prefix ``Λ`` of ``Λ'``, and
two different vote messages from the same process are ignored
(equivocation discard).  Thresholds are evaluated with exact integer
arithmetic (``den·count > (den − num)·m``), never floats.

The tally is shared by every protocol in the repository: the original
MMR TOB, the extended GA of Figure 3, and the η-expiration TOB differ
only in *which* votes they feed it.  The counting itself lives in the
chain layer as the incremental :class:`~repro.chain.tally.PrefixTally`;
:func:`tally_votes` is the one-shot compatibility API over it, and
long-lived consumers hold a tally and feed it vote *deltas* instead of
recounting every round.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from fractions import Fraction

from repro.chain.block import BlockId
from repro.chain.tally import DEFAULT_BETA, GAOutput, PrefixTally, check_beta
from repro.chain.tree import BlockTree
from repro.crypto.signatures import SecretKey
from repro.sleepy.messages import CachedVerifier, Message, VoteMessage, make_vote
from repro.sleepy.process import Process

__all__ = [
    "DEFAULT_BETA",
    "GAOutput",
    "GAVoteProcess",
    "select_current_round_votes",
    "tally_votes",
]


def tally_votes(
    tree: BlockTree,
    votes: Mapping[int, BlockId | None],
    beta: Fraction = DEFAULT_BETA,
) -> GAOutput:
    """Tally one vote per process and grade the voted logs.

    ``votes`` maps each process to the tip it voted for — the caller is
    responsible for vote selection (one per process, equivocations
    already discarded, unknown tips already excluded).  Every tip must
    be present in ``tree``.

    One-shot: builds a fresh :class:`~repro.chain.tally.PrefixTally`
    and grades it.  Callers that re-tally a slowly changing vote set
    every round should hold a tally and :meth:`~repro.chain.tally.
    PrefixTally.set_votes` the deltas instead.
    """
    check_beta(beta)
    return PrefixTally(tree, votes).grade(beta)


def select_current_round_votes(
    tree: BlockTree,
    vote_messages: Sequence[VoteMessage],
    round_number: int,
) -> dict[int, BlockId | None]:
    """Figure 2 vote selection: round-``r`` votes, equivocators discarded.

    Votes whose tip is not in ``tree`` (the receiver never learned the
    block) are excluded — a receiver cannot count a vote for a log it
    cannot interpret.
    """
    seen: dict[int, BlockId | None] = {}
    equivocators: set[int] = set()
    for message in vote_messages:
        if message.round != round_number:
            continue
        if message.sender in equivocators:
            continue
        if message.sender in seen and seen[message.sender] != message.tip:
            equivocators.add(message.sender)
            del seen[message.sender]
            continue
        seen[message.sender] = message.tip
    return {pid: tip for pid, tip in seen.items() if tip in tree}


class GAVoteProcess(Process):
    """A one-shot graded-agreement participant (paper Figure 2).

    Used to run GA instances standalone — the property-test suite drives
    hundreds of these through the simulator to check the GA properties
    of Lemma 1 directly.  The process votes for its ``input_tip`` in
    round ``ga_round`` and exposes the tally of what it received as
    :attr:`output`.
    """

    def __init__(
        self,
        pid: int,
        key: SecretKey,
        verifier: CachedVerifier,
        tree: BlockTree,
        input_tip: BlockId | None,
        ga_round: int = 0,
        beta: Fraction = DEFAULT_BETA,
    ) -> None:
        super().__init__(pid)
        self._key = key
        self._verifier = verifier
        self._tree = tree
        self._input_tip = input_tip
        self._ga_round = ga_round
        self._beta = beta
        self._received: list[VoteMessage] = []
        self.output: GAOutput | None = None

    def send(self, round_number: int) -> Sequence[Message]:
        if round_number != self._ga_round:
            return ()
        return [make_vote(self._verifier.registry, self._key, round_number, self._input_tip)]

    def receive(self, round_number: int, messages: Sequence[Message]) -> None:
        for message in messages:
            if isinstance(message, VoteMessage) and self._verifier.verify(message):
                self._received.append(message)
        votes = select_current_round_votes(self._tree, self._received, self._ga_round)
        self.output = tally_votes(self._tree, votes, self._beta)
