"""Graded agreement of Malkhi, Momose, and Ren (paper Figure 2).

One GA instance spans one round: in the send phase every awake process
multicasts ``[vote, Λ]``; in the receive phase each process tallies the
votes it received and outputs logs with grades:

* grade 1 — logs voted by more than ``(1 − β)·m`` of the ``m`` processes
  it heard from (``> 2m/3`` for the paper's β = 1/3);
* grade 0 — logs voted by more than ``β·m`` but at most ``(1 − β)·m``.

A vote for ``Λ'`` counts as a vote for every prefix ``Λ`` of ``Λ'``, and
two different vote messages from the same process are ignored
(equivocation discard).  Thresholds are evaluated with exact integer
arithmetic (``den·count > (den − num)·m``), never floats.

The tally is shared by every protocol in the repository: the original
MMR TOB, the extended GA of Figure 3, and the η-expiration TOB differ
only in *which* votes they feed it.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from fractions import Fraction

from repro.chain.block import GENESIS_TIP, BlockId
from repro.chain.tree import BlockTree
from repro.crypto.signatures import SecretKey
from repro.sleepy.messages import CachedVerifier, Message, VoteMessage, make_vote
from repro.sleepy.process import Process

#: The paper's default failure ratio (1/3-resilient MMR).
DEFAULT_BETA = Fraction(1, 3)


@dataclass(frozen=True)
class GAOutput:
    """Result of one graded-agreement tally.

    Attributes:
        grade1: tips of logs output with grade 1, sorted by depth.
        grade0: tips of logs output with grade 0 (``> β·m`` but
            ``≤ (1 − β)·m``), sorted by depth.
        m: perceived participation — number of distinct processes whose
            vote entered the tally.
    """

    grade1: tuple[BlockId | None, ...]
    grade0: tuple[BlockId | None, ...]
    m: int

    def all_output(self) -> tuple[BlockId | None, ...]:
        """Tips output with *any* grade (``(Λ, ∗)`` in the paper)."""
        return self.grade1 + self.grade0

    def has_grade1(self, tip: BlockId | None) -> bool:
        """Whether ``tip``'s log was output with grade 1."""
        return tip in self.grade1


def tally_votes(
    tree: BlockTree,
    votes: Mapping[int, BlockId | None],
    beta: Fraction = DEFAULT_BETA,
) -> GAOutput:
    """Tally one vote per process and grade the voted logs.

    ``votes`` maps each process to the tip it voted for — the caller is
    responsible for vote selection (one per process, equivocations
    already discarded, unknown tips already excluded).  Every tip must
    be present in ``tree``.
    """
    if not Fraction(0) < beta <= Fraction(1, 2):
        # β ≤ 1/2 in every protocol this repository covers; reject junk early.
        raise ValueError(f"failure ratio β must be in (0, 1/2], got {beta}")
    m = len(votes)
    if m == 0:
        return GAOutput(grade1=(), grade0=(), m=0)

    # Accumulate prefix counts: a vote for a tip counts for every
    # ancestor of that tip (including the empty log).
    direct = Counter(votes.values())
    counts: Counter = Counter()
    for tip, weight in direct.items():
        node = tip
        while node is not GENESIS_TIP:
            counts[node] += weight
            node = tree.parent(node)
        counts[GENESIS_TIP] += weight

    num, den = beta.numerator, beta.denominator
    grade1: list[BlockId | None] = []
    grade0: list[BlockId | None] = []
    for tip, count in counts.items():
        if den * count > (den - num) * m:
            grade1.append(tip)
        elif den * count > num * m:
            grade0.append(tip)

    def sort_key(tip: BlockId | None) -> tuple[int, str]:
        return (tree.depth(tip), tip if tip is not None else "")

    return GAOutput(
        grade1=tuple(sorted(grade1, key=sort_key)),
        grade0=tuple(sorted(grade0, key=sort_key)),
        m=m,
    )


def select_current_round_votes(
    tree: BlockTree,
    vote_messages: Sequence[VoteMessage],
    round_number: int,
) -> dict[int, BlockId | None]:
    """Figure 2 vote selection: round-``r`` votes, equivocators discarded.

    Votes whose tip is not in ``tree`` (the receiver never learned the
    block) are excluded — a receiver cannot count a vote for a log it
    cannot interpret.
    """
    seen: dict[int, BlockId | None] = {}
    equivocators: set[int] = set()
    for message in vote_messages:
        if message.round != round_number:
            continue
        if message.sender in equivocators:
            continue
        if message.sender in seen and seen[message.sender] != message.tip:
            equivocators.add(message.sender)
            del seen[message.sender]
            continue
        seen[message.sender] = message.tip
    return {pid: tip for pid, tip in seen.items() if tip in tree}


class GAVoteProcess(Process):
    """A one-shot graded-agreement participant (paper Figure 2).

    Used to run GA instances standalone — the property-test suite drives
    hundreds of these through the simulator to check the GA properties
    of Lemma 1 directly.  The process votes for its ``input_tip`` in
    round ``ga_round`` and exposes the tally of what it received as
    :attr:`output`.
    """

    def __init__(
        self,
        pid: int,
        key: SecretKey,
        verifier: CachedVerifier,
        tree: BlockTree,
        input_tip: BlockId | None,
        ga_round: int = 0,
        beta: Fraction = DEFAULT_BETA,
    ) -> None:
        super().__init__(pid)
        self._key = key
        self._verifier = verifier
        self._tree = tree
        self._input_tip = input_tip
        self._ga_round = ga_round
        self._beta = beta
        self._received: list[VoteMessage] = []
        self.output: GAOutput | None = None

    def send(self, round_number: int) -> Sequence[Message]:
        if round_number != self._ga_round:
            return ()
        return [make_vote(self._verifier.registry, self._key, round_number, self._input_tip)]

    def receive(self, round_number: int, messages: Sequence[Message]) -> None:
        for message in messages:
            if isinstance(message, VoteMessage) and self._verifier.verify(message):
                self._received.append(message)
        votes = select_current_round_votes(self._tree, self._received, self._ga_round)
        self.output = tally_votes(self._tree, votes, self._beta)
