"""The view-structured TOB state machine (paper Algorithm 1).

Both the original MMR protocol and the paper's asynchrony-resilient
modification run the *same* view structure; they differ in exactly one
place — which votes a GA instance tallies.  This module implements the
shared machine and leaves that one decision to
:meth:`SleepyTOBProcess.vote_window`.

Round/view layout (Algorithm 1):

* round 0 (view 0): multicast ``[propose, [b0], VRF(1)]`` — all
  processes propose the genesis log for view 1.
* round ``2v − 1`` (round 1 of view ``v ≥ 1``):
  compute the outputs of ``GA_{v−1,2}`` (votes of round ``2v − 2``);
  **decide** every log output with grade 1; set ``L_{v−1}`` to the
  longest log output with any grade; start ``GA_{v,1}`` by voting for
  the log of the propose message with the largest valid ``VRF(v)`` that
  does not conflict with ``L_{v−1}``.
* round ``2v`` (round 2 of view ``v``):
  compute the outputs of ``GA_{v,1}`` (votes of round ``2v − 1``);
  start ``GA_{v,2}`` by voting for the longest log output with grade 1;
  set ``C_v`` to the longest log output with any grade; multicast
  ``[propose, C_v‖b, VRF(v + 1)]`` with a fresh block ``b``.

Conventions where the paper leaves freedom (all documented choices):

* ``L_0`` is the empty log — nothing conflicts with it, so every view-1
  proposal (necessarily ``[b0]``) is admissible.
* If no admissible proposal is known when ``GA_{v,1}`` starts (possible
  only outside the paper's assumptions), the process votes for
  ``L_{v−1}`` itself rather than halting.
* A GA tally with **no votes at all** (``m = 0``, impossible under the
  paper's synchrony assumptions but reachable during delivery
  blackouts) falls back to the process's own delivered log, never the
  empty log: restarting from scratch would make even the fault-free
  baseline fork after an outage, which the paper does not intend — the
  baseline's asynchrony failures should come from the adversary, not
  from an implementation artefact.
* Ties (equal depth) among "longest" outputs are broken by tip id;
  VRF ties by (value, sender).  Both keep honest processes
  deterministic and identical.
* The ``GA_{v,1}`` input is the max-VRF non-conflicting proposal *or*
  ``L_{v−1}``, whichever is longer.  Taken literally, "a log in the
  propose message with the largest valid VRF(v) not conflicting with
  ``L_{v−1}``" admits proposals that are *prefixes* of ``L_{v−1}``
  (e.g. ``[b0]``), and voting such a proposal regresses the chain and
  breaks the induction in the paper's own Lemma 3 proof — a Byzantine
  proposer winning sortition with a stale-but-compatible proposal
  could then fork the chain under full synchrony.  Lemma 3 needs every
  honest vote to extend decided logs, and ``L_{v−1}`` always does, so
  the vote never goes below it.  (The regression is kept as an xfail
  attack test: ``tests/protocols/test_adversarial_proposers.py``.)
* A process records a decision event whenever the decided log strictly
  extends — or conflicts with — the longest log it has delivered so
  far; re-deliveries of prefixes are silent.  Conflicting decisions are
  *recorded faithfully* so the safety checkers can observe violations.
"""

from __future__ import annotations

from bisect import insort
from collections.abc import Sequence
from dataclasses import dataclass
from fractions import Fraction

from repro.chain.block import GENESIS_TIP, Block, BlockId, genesis_block
from repro.chain.shared import ChainView, SharedChain
from repro.chain.store import BlockBuffer
from repro.chain.tally import PrefixTally
from repro.chain.transactions import Mempool
from repro.chain.tree import BlockTree
from repro.core.expiration import LatestVoteStore
from repro.crypto.signatures import SecretKey
from repro.protocols.graded_agreement import DEFAULT_BETA, GAOutput
from repro.sleepy.messages import (
    CachedVerifier,
    Message,
    ProposeMessage,
    VerifiedBatch,
    make_propose,
    make_vote,
)
from repro.sleepy.process import Process
from repro.sleepy.trace import DecisionEvent

#: Maximum transactions a proposer packs into one block.
DEFAULT_BLOCK_CAPACITY = 16


@dataclass(frozen=True)
class TallySample:
    """Telemetry of one GA tally: how close the quorum race was.

    ``margin`` is ``best_count − ⌊(1 − β)·m⌋`` — how many votes past
    (positive) or short of (non-positive) the grade-1 threshold the
    leading log was.  Falling margins are the early-warning signal that
    churn or stale votes are eating the quorum (the Equation 2 story).
    """

    ga_round: int
    m: int
    best_count: int
    best_depth: int
    margin: int


class SleepyTOBProcess(Process):
    """A well-behaved participant of Algorithm 1 (vote selection abstract)."""

    def __init__(
        self,
        pid: int,
        key: SecretKey,
        verifier: CachedVerifier,
        beta: Fraction = DEFAULT_BETA,
        mempool: Mempool | None = None,
        block_capacity: int = DEFAULT_BLOCK_CAPACITY,
        record_telemetry: bool = False,
        chain: SharedChain | None = None,
    ) -> None:
        super().__init__(pid)
        self._key = key
        self._verifier = verifier
        self._beta = beta
        self.mempool = mempool if mempool is not None else Mempool()
        self._block_capacity = block_capacity
        self._record_telemetry = record_telemetry
        #: Per-GA quorum-race telemetry (populated when enabled).
        self.telemetry: list[TallySample] = []

        # With a run-shared chain the process holds a visibility *view*
        # over the one interned tree (identical query semantics, O(1)
        # steady memory when caught up); without one — the deployment
        # substrate, where processes cannot share memory — it owns a
        # private tree exactly as before.
        self.tree: BlockTree | ChainView = (
            chain.view() if chain is not None else BlockTree([genesis_block()])
        )
        self._buffer = BlockBuffer(self.tree)
        self._votes = LatestVoteStore()
        # The long-lived prefix-count tally every GA instance grades
        # through: per round it absorbs the *delta* between consecutive
        # vote windows (most senders' latest votes carry over) instead
        # of re-walking every vote's ancestor chain.
        self._tally = PrefixTally(self.tree)
        # view -> sender -> propose message (or _EQUIVOCATED marker).
        self._proposals: dict[int, dict[int, ProposeMessage | None]] = {}
        # view -> (seen senders, ascending (VRF value, sender)):
        # _select_proposal takes the max-VRF admissible entry by
        # scanning from the top instead of a full per-call scan.  The
        # order is content-derived (a proposer's VRF value for a view is
        # deterministic and verified), so with a run-shared chain the
        # sorted list is interned once per run rather than once per
        # receiver; selection skips senders this receiver hasn't stored.
        self._proposal_index: dict[int, tuple[set[int], list[tuple[int, int]]]] = (
            chain.scratch("proposal_order") if chain is not None else {}
        )
        self._index_is_shared = chain is not None
        # All views below this floor have been pruned (or were never
        # consultable); _prune_proposals advances it incrementally.
        self._proposal_floor = 0

        #: Tip of the longest log this process has delivered.
        self.delivered_tip: BlockId | None = GENESIS_TIP
        self._pending_decisions: list[DecisionEvent] = []

    # ------------------------------------------------------------------
    # The one protocol-defining hook
    # ------------------------------------------------------------------
    def vote_window(self, ga_round: int) -> tuple[int, int]:
        """Rounds whose votes the GA instance of ``ga_round`` tallies.

        The original protocol returns ``(ga_round, ga_round)``; the
        asynchrony-resilient protocol returns ``(ga_round − η, ga_round)``.
        """
        raise NotImplementedError

    def vote_expiry_horizon(self, round_number: int) -> int | None:
        """Round below which no future :meth:`vote_window` can reach.

        ``receive_batch`` prunes the vote store up to this horizon after
        every delivery; ``None`` (the base default) keeps everything.
        The original protocol returns ``round − 1``; the η-expiration
        protocol returns ``round − η``.
        """
        return None

    # ------------------------------------------------------------------
    # Send phase (Algorithm 1, per round kind)
    # ------------------------------------------------------------------
    def send(self, round_number: int) -> Sequence[Message]:
        if round_number == 0:
            return self._send_view_zero(round_number)
        if round_number % 2 == 1:
            return self._send_round_one(round_number)
        return self._send_round_two(round_number)

    def _send_view_zero(self, r: int) -> Sequence[Message]:
        # Multicast [propose, [b0], VRF(1)]: propose the genesis log for view 1.
        return [make_propose(self._verifier.registry, self._key, r, view=1, block=genesis_block())]

    def _send_round_one(self, r: int) -> Sequence[Message]:
        view = (r + 1) // 2
        output_prev = self._ga_output(r - 1) if view >= 2 else None

        if output_prev is not None and output_prev.grade1:
            self._decide(self.tree.longest(output_prev.grade1), r, view - 1)
        if output_prev is not None and output_prev.all_output():
            longest_any = self.tree.longest(output_prev.all_output())
        elif view == 1:
            longest_any = GENESIS_TIP  # L_0: the empty log
        else:
            longest_any = self.delivered_tip  # m = 0 fallback (see module docs)

        input_tip = self._select_proposal(view, longest_any)
        return [make_vote(self._verifier.registry, self._key, r, input_tip)]

    def _send_round_two(self, r: int) -> Sequence[Message]:
        view = r // 2
        output = self._ga_output(r - 1)
        if output.grade1:
            input_tip = self.tree.longest(output.grade1)
        else:
            input_tip = self.delivered_tip  # m = 0 fallback (see module docs)
        if output.all_output():
            c_v = self.tree.longest(output.all_output())
        else:
            c_v = self.delivered_tip

        block = self._make_block(parent=c_v, view=view + 1)
        return [
            make_vote(self._verifier.registry, self._key, r, input_tip),
            make_propose(self._verifier.registry, self._key, r, view=view + 1, block=block),
        ]

    # ------------------------------------------------------------------
    # Receive phase
    # ------------------------------------------------------------------
    def receive(self, round_number: int, messages: Sequence[Message]) -> None:
        self.receive_batch(round_number, self._verifier.batch(messages))

    def receive_batch(self, round_number: int, batch: VerifiedBatch) -> None:
        """Ingest one pre-verified delivery (the hot half of ``receive``).

        The batch arrives classified and round-resolved from the shared
        ingest pipeline — under synchrony every caught-up receiver gets
        the *same* batch object, so verification, classification, and
        vote-table resolution ran once, not once per process.  Only the
        per-process state updates happen here.
        """
        if batch.votes:
            self._votes.record_table(batch.vote_table())
        for message in batch.proposes:
            self._record_proposal(message, round_number)
        self._prune_proposals(round_number)
        horizon = self.vote_expiry_horizon(round_number)
        if horizon is not None:
            self._votes.prune(horizon)

    def _prune_proposals(self, round_number: int) -> None:
        # A view-v proposal is only ever consulted at round 2v − 1; keep a
        # couple of views of slack for processes acting on a backlog, and
        # drop the rest so long runs stay memory-bounded.  The floor
        # tracks the lowest possibly-live view, so each delivery pays
        # for the views that actually expired since the last one (O(1)
        # amortised) instead of rebuilding a list over every live view.
        current_view = (round_number + 1) // 2
        horizon = current_view - 2
        while self._proposal_floor < horizon:
            self._proposals.pop(self._proposal_floor, None)
            if not self._index_is_shared:
                # A shared order is pruned by nobody: other receivers may
                # lag, and its footprint (one tuple per distinct proposal)
                # is the same order as the interned tree itself.
                self._proposal_index.pop(self._proposal_floor, None)
            self._proposal_floor += 1

    def _record_proposal(self, message: ProposeMessage, round_number: int) -> None:
        assert message.block is not None  # verified
        # A well-behaved view-v proposal is multicast at round 2v − 2 and
        # can therefore never be received before that round; future-view
        # proposals are Byzantine chaff and would otherwise accumulate
        # unboundedly (their view keys sit above the pruning horizon).
        if message.view > round_number // 2 + 1:
            return
        if message.view < self._proposal_floor:
            # Below the prune floor: the old full-scan prune deleted such
            # stragglers in the same delivery, before anything could
            # consult them — not storing them at all is equivalent.
            return
        # Keyed by the verified sender: a Byzantine proposer flooding
        # never-attachable blocks exhausts its own orphan quota, never
        # another sender's honestly out-of-order block.
        self._buffer.offer(message.block, source=message.sender)
        per_view = self._proposals.setdefault(message.view, {})
        existing = per_view.get(message.sender, _MISSING)
        if existing is _MISSING:
            per_view[message.sender] = message
            assert message.vrf is not None  # verified
            entry = self._proposal_index.get(message.view)
            if entry is None:
                entry = self._proposal_index.setdefault(message.view, (set(), []))
            seen, order = entry
            if message.sender not in seen:
                seen.add(message.sender)
                insort(order, (message.vrf.value_num, message.sender))
        elif existing is not None and existing.tip != message.tip:
            # Equivocating proposer: all its proposals for this view are void.
            per_view[message.sender] = None

    # ------------------------------------------------------------------
    # Algorithm steps
    # ------------------------------------------------------------------
    def _ga_output(self, ga_round: int) -> GAOutput:
        lo, hi = self.vote_window(ga_round)
        votes = self._votes.latest(lo, hi)
        known = {pid: tip for pid, tip in votes.items() if tip in self.tree}
        # Roll the persistent tally to this window's vote set: only the
        # senders whose latest vote changed (or newly entered/left the
        # window, or whose tip just became interpretable) cost tree
        # walks — the unchanged majority is free.
        self._tally.set_votes(known)
        output = self._tally.grade(self._beta)
        if self._record_telemetry:
            self._sample_tally(ga_round, output)
        return output

    def _sample_tally(self, ga_round: int, output: GAOutput) -> None:
        m = output.m
        best_tip = self.tree.longest(output.grade1) if output.grade1 else GENESIS_TIP
        best_count = self._tally.count(best_tip)
        one_minus_beta = 1 - self._beta
        threshold = (one_minus_beta.numerator * m) // one_minus_beta.denominator
        self.telemetry.append(
            TallySample(
                ga_round=ga_round,
                m=m,
                best_count=best_count,
                best_depth=self.tree.depth(best_tip),
                margin=best_count - threshold,
            )
        )

    def _select_proposal(self, view: int, longest_any: BlockId | None) -> BlockId | None:
        # Walk the view's (VRF value, sender) index from the top: the
        # first admissible proposal *is* the max-VRF admissible one, so
        # the winner usually costs one probe instead of a scan over
        # every stored proposal.
        best: ProposeMessage | None = None
        per_view = self._proposals.get(view)
        if per_view:
            stored = per_view.get
            for _value, sender in reversed(self._proposal_index[view][1]):
                # A shared index covers every receiver's proposals; one
                # this receiver never stored (get -> None, like an
                # equivocator's) is simply skipped.
                message = stored(sender)
                if message is None:  # equivocator or not received here
                    continue
                if message.tip not in self.tree:  # orphaned block: cannot interpret
                    continue
                if self.tree.conflict(message.tip, longest_any):
                    continue
                best = message
                break
        if best is None:
            return longest_any
        # Never vote below L_{v−1}: a stale (prefix) proposal with a
        # winning VRF must not regress the chain (see module docs).
        return self.tree.longest([best.tip, longest_any])

    def _make_block(self, parent: BlockId | None, view: int) -> Block:
        included = self.tree.payload_ids(parent) if parent in self.tree else frozenset()
        payload = self.mempool.take(self._block_capacity, exclude=included)
        block = Block(parent=parent, proposer=self.pid, view=view, payload=payload)
        self._buffer.offer(block)
        return block

    def _decide(self, tip: BlockId | None, round_number: int, view: int) -> None:
        if tip == self.delivered_tip:
            return
        if self.tree.is_prefix(tip, self.delivered_tip):
            return  # re-delivery of a prefix: nothing new
        self._pending_decisions.append(
            DecisionEvent(pid=self.pid, round=round_number, view=view, tip=tip)
        )
        self.delivered_tip = tip
        self.mempool.mark_included(self.tree.payload_ids(tip))

    # ------------------------------------------------------------------
    # Accountability
    # ------------------------------------------------------------------
    def detected_equivocators(self) -> frozenset[int]:
        """Processes this process caught double-signing.

        Covers both vote equivocation (two different votes in one round)
        and proposal equivocation (two different proposals for one
        view).  Both are attributable offences — the conflicting signed
        messages are the evidence a slashing mechanism would consume.
        """
        proposal_cheats = {
            sender
            for per_view in self._proposals.values()
            for sender, message in per_view.items()
            if message is None
        }
        return self._votes.equivocators() | frozenset(proposal_cheats)

    # ------------------------------------------------------------------
    # Simulator hooks
    # ------------------------------------------------------------------
    def pop_decisions(self) -> list[DecisionEvent]:
        """Decision events since the last call (drained by the simulator)."""
        events, self._pending_decisions = self._pending_decisions, []
        return events

    @property
    def delivered_log(self):
        """The longest log this process has delivered, materialised."""
        return self.tree.log(self.delivered_tip)


_MISSING = object()
