"""The original Malkhi–Momose–Ren protocol (paper §3.1, Algorithm 1).

Each GA instance tallies **only the votes cast in its own round** — the
property that makes the protocol tolerate fully dynamic participation
but lose safety in a single asynchronous decision round (the §1 attack,
reproduced by ``benchmarks/bench_async_attack.py``).
"""

from __future__ import annotations

from fractions import Fraction

from repro.chain.transactions import Mempool
from repro.protocols.graded_agreement import DEFAULT_BETA
from repro.protocols.tob_base import DEFAULT_BLOCK_CAPACITY, SleepyTOBProcess
from repro.sleepy.messages import CachedVerifier
from repro.sleepy.process import ProcessFactory


class MMRProcess(SleepyTOBProcess):
    """Algorithm 1 with the original current-round-only vote rule."""

    def vote_window(self, ga_round: int) -> tuple[int, int]:
        return (ga_round, ga_round)

    def vote_expiry_horizon(self, round_number: int) -> int:
        # Votes older than the previous round can never be tallied again.
        return round_number - 1


def mmr_factory(
    beta: Fraction = DEFAULT_BETA,
    block_capacity: int = DEFAULT_BLOCK_CAPACITY,
    record_telemetry: bool = False,
) -> ProcessFactory:
    """A :data:`~repro.sleepy.process.ProcessFactory` for MMR processes."""

    def factory(pid: int, key, verifier: CachedVerifier, chain=None) -> MMRProcess:
        return MMRProcess(
            pid,
            key,
            verifier,
            beta=beta,
            mempool=Mempool(),
            block_capacity=block_capacity,
            record_telemetry=record_telemetry,
            chain=chain,
        )

    factory.supports_shared_chain = True
    return factory
