"""Network models: synchrony and bounded asynchronous periods (paper §2.1).

A network model answers, per round, whether the round is synchronous.
In a synchronous round every process awake in the receive phase gets
*all* messages sent in rounds ``≤ r`` that it has not received yet (this
subsumes the queue-and-deliver-on-wake rule for sleepers).  In an
asynchronous round the adversary chooses an arbitrary subset per
receiver.  Messages are never dropped permanently: they "withstand the
transient asynchronous period ... and are delivered to all awake
processes once normal network conditions are restored" (§2.1), which the
simulator realises by tracking undelivered messages per receiver.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable


class NetworkModel(ABC):
    """Per-round synchrony oracle."""

    @abstractmethod
    def is_asynchronous(self, round_number: int) -> bool:
        """Whether delivery in round ``round_number``'s receive phase is adversarial."""

    def asynchronous_rounds(self, horizon: int) -> tuple[int, ...]:
        """All asynchronous rounds below ``horizon`` (for reporting)."""
        return tuple(r for r in range(horizon) if self.is_asynchronous(r))


class SynchronousNetwork(NetworkModel):
    """Every round is synchronous (the paper's common case)."""

    def is_asynchronous(self, round_number: int) -> bool:
        return False


class WindowedAsynchrony(NetworkModel):
    """A single asynchronous period ``[ra + 1, ra + π]`` (paper §2.1).

    ``ra`` is the last synchronous round before the period; ``pi`` is the
    period's length in rounds.  ``pi = 0`` degenerates to full synchrony.
    """

    def __init__(self, ra: int, pi: int) -> None:
        if ra < 0:
            raise ValueError("ra must be non-negative")
        if pi < 0:
            raise ValueError("pi must be non-negative")
        self.ra = ra
        self.pi = pi

    def is_asynchronous(self, round_number: int) -> bool:
        return self.ra + 1 <= round_number <= self.ra + self.pi

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WindowedAsynchrony(ra={self.ra}, pi={self.pi})"


class MultiWindowAsynchrony(NetworkModel):
    """Several disjoint asynchronous windows.

    The paper's model assumes a *single* asynchronous period; this class
    is an extension used by ablation benches (repeated outages with
    healing in between).  Windows are given as ``(ra, pi)`` pairs with
    the same meaning as :class:`WindowedAsynchrony`.
    """

    def __init__(self, windows: Iterable[tuple[int, int]]) -> None:
        self._windows = [WindowedAsynchrony(ra, pi) for ra, pi in windows]
        spans = sorted((w.ra + 1, w.ra + w.pi) for w in self._windows if w.pi > 0)
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            if start_b <= end_a:
                raise ValueError("asynchrony windows overlap")

    @property
    def windows(self) -> tuple[tuple[int, int], ...]:
        """The ``(ra, pi)`` pairs this model was built from."""
        return tuple((w.ra, w.pi) for w in self._windows)

    def is_asynchronous(self, round_number: int) -> bool:
        return any(w.is_asynchronous(round_number) for w in self._windows)
