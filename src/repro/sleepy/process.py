"""The process interface the round simulator drives.

A well-behaved process is a deterministic state machine consulted twice
per round, matching the paper's round structure (§2.1): once in the send
phase (beginning of the round, if the process is in ``O_r``) and once in
the receive phase (end of the round, if it is in ``O_{r+1}``).  Asleep
processes are simply not consulted — they "do not execute the protocol".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

from repro.sleepy.messages import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.crypto.signatures import SecretKey
    from repro.sleepy.messages import CachedVerifier


class Process(ABC):
    """A well-behaved protocol participant."""

    def __init__(self, pid: int) -> None:
        self.pid = pid

    @abstractmethod
    def send(self, round_number: int) -> Sequence[Message]:
        """Send phase of ``round_number``: the messages to multicast."""

    @abstractmethod
    def receive(self, round_number: int, messages: Sequence[Message]) -> None:
        """Receive phase of ``round_number``: ingest delivered messages.

        ``messages`` contains everything the network delivers in this
        phase — for a synchronous round, all messages sent in rounds
        ``≤ round_number`` not delivered to this process before.
        """


#: Builds the honest process for ``pid``.  Receives the process id, its
#: secret key, and the run-shared cached verifier — on the engine
#: substrates this is the full ingest pipeline
#: (:class:`repro.engine.ingest.IngestPipeline`), whose shared
#: ``batch`` method processes dispatch their deliveries through.
#:
#: Factories that can build processes on a run-shared
#: :class:`~repro.chain.shared.SharedChain` (one interned tree, a
#: visibility view per receiver) advertise it by setting
#: ``factory.supports_shared_chain = True`` and accepting an optional
#: ``chain=`` keyword; the round simulator then passes its chain in.
#: Substrates without shared memory (the asyncio deployment) simply
#: never pass one, and the factory builds private trees as before.
ProcessFactory = Callable[[int, "SecretKey", "CachedVerifier"], Process]
