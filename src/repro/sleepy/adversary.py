"""Adversaries: corruption, Byzantine messaging, and delivery control.

The model (paper §2.1, §2.3) grants the adversary exactly three powers,
and the simulator exposes exactly these three hooks:

1. **Corruption** — :meth:`Adversary.byzantine` names the corrupted set
   ``B_r`` each round.  Byzantine processes never sleep, and under the
   *growing* adversary ``B_r ⊆ B_{r+1}`` (the simulator enforces
   monotonicity when ``growing=True``).
2. **Arbitrary messages** — :meth:`Adversary.send` crafts the messages
   Byzantine processes multicast in round ``r``.  The adversary holds
   only corrupted processes' keys, so everything it sends is signed as
   (some) corrupted process: forging honest messages is impossible.
3. **Delivery control during asynchrony** — :meth:`Adversary.deliver`
   picks, per receiver, an arbitrary *subset* of the deliverable
   messages in asynchronous rounds (the simulator enforces the subset
   property; the adversary cannot inject through this hook).

Concrete strategies used by the experiments live here too, most notably
:class:`SplitVoteAttack` — the §1 attack that breaks the original MMR
protocol in a single asynchronous decision round.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence

from repro.chain.block import GENESIS_TIP, Block, BlockId, genesis_block
from repro.chain.tree import BlockTree
from repro.crypto.signatures import KeyRegistry, SecretKey
from repro.sleepy.messages import Message, ProposeMessage, VoteMessage, make_propose, make_vote


class AdversaryContext:
    """Everything the adversary is allowed to see and do.

    The adversary has full knowledge of the system (it schedules sleep
    and corruption, and reads every message ever sent) but can only
    *sign* as corrupted processes.
    """

    def __init__(self, registry: KeyRegistry, tree: BlockTree) -> None:
        self._registry = registry
        self._keys: dict[int, SecretKey] = {}
        #: The omniscient block tree: all blocks created so far by anyone.
        self.tree = tree
        #: Every message multicast so far, in send order.
        self.all_messages: list[Message] = []
        #: Current round number (set by the simulator each phase).
        self.round: int = 0

    @property
    def registry(self) -> KeyRegistry:
        """The public-key registry (verification only)."""
        return self._registry

    def grant_key(self, pid: int) -> None:
        """Simulator hook: hand the adversary a corrupted process's key."""
        self._keys[pid] = self._registry.secret_key(pid)

    def key_of(self, pid: int) -> SecretKey:
        """The key of a *corrupted* process (raises for honest pids)."""
        try:
            return self._keys[pid]
        except KeyError:
            raise PermissionError(f"adversary does not hold the key of process {pid}") from None

    # ------------------------------------------------------------------
    # Crafting helpers (always signed as a corrupted process)
    # ------------------------------------------------------------------
    def craft_vote(self, pid: int, round_number: int, tip: BlockId | None) -> VoteMessage:
        """A vote signed by corrupted ``pid``."""
        return make_vote(self._registry, self.key_of(pid), round_number, tip)

    def craft_block(self, pid: int, view: int, parent: BlockId | None, salt: int = 0) -> Block:
        """A new block by corrupted ``pid`` extending ``parent``.

        ``salt`` differentiates conflicting sibling blocks minted by the
        same proposer in the same view.
        """
        block = Block(parent=parent, proposer=pid, view=view, salt=salt)
        self.tree.add(block)
        return block

    def craft_propose(self, pid: int, round_number: int, view: int, block: Block) -> ProposeMessage:
        """A propose message signed by corrupted ``pid`` carrying ``block``."""
        return make_propose(self._registry, self.key_of(pid), round_number, view, block)

    def deepest_tip(self) -> BlockId | None:
        """The deepest block anyone has created so far (genesis if none)."""
        tips = self.tree.tips()
        if not tips:
            return GENESIS_TIP
        return self.tree.longest(tips)


def deepest_tip_choice(round_number: int, ctx: AdversaryContext) -> BlockId | None:
    """Default tip choice: the deepest block anyone has created so far.

    A module-level function (not a lambda) so adversaries that default
    to it stay picklable — parallel sweeps ship :class:`RunSpec`\\ s,
    adversaries included, across process boundaries.
    """
    return ctx.deepest_tip()


def parity_group(pid: int) -> int:
    """Default receiver grouping for :class:`SplitVoteAttack` (pid parity)."""
    return pid % 2


class StaleTipChooser:
    """A picklable tip chooser that pins the pre-``from_round`` deepest tip.

    Votes for the empty log (``None``) while ``round < from_round``;
    at the first call from ``from_round`` on it captures the deepest
    tip anyone has created and votes for that same stale branch forever.
    The building block of the stale-vote amplification ablation
    (:mod:`repro.analysis.batch`): honest sleepers leave, their votes
    linger, and the adversary keeps re-animating the branch they left.
    """

    def __init__(self, from_round: int) -> None:
        self.from_round = from_round
        self._tip: BlockId | None = None
        self._captured = False

    def __call__(self, round_number: int, ctx: AdversaryContext) -> BlockId | None:
        if round_number < self.from_round:
            return None
        if not self._captured:
            self._tip = ctx.deepest_tip()
            self._captured = True
        return self._tip


class Adversary(ABC):
    """Base class for adversary strategies."""

    #: Growing adversary model (paper §2.1): corruption is monotone.
    growing: bool = True

    @abstractmethod
    def byzantine(self, round_number: int) -> frozenset[int]:
        """``B_r``: the corrupted processes at round ``round_number``."""

    def send(self, round_number: int, ctx: AdversaryContext) -> Sequence[Message]:
        """Messages the Byzantine processes multicast in the send phase."""
        return ()

    def deliver(
        self,
        round_number: int,
        receiver: int,
        deliverable: Sequence[Message],
        ctx: AdversaryContext,
    ) -> Sequence[Message]:
        """Delivery choice for one receiver in an *asynchronous* round.

        Must return a subset of ``deliverable`` (the simulator enforces
        this).  The default delivers everything, i.e. an asynchronous
        round with a passive adversary behaves like a synchronous one.
        """
        return deliverable


class NullAdversary(Adversary):
    """No corruption at all."""

    def byzantine(self, round_number: int) -> frozenset[int]:
        return frozenset()


class CrashAdversary(Adversary):
    """Corrupted processes that simply stay silent (crash faults).

    With ``from_round > 0`` this models a growing adversary that crashes
    processes mid-run.
    """

    def __init__(self, pids: Sequence[int], from_round: int = 0) -> None:
        self._pids = frozenset(pids)
        self._from_round = from_round

    def byzantine(self, round_number: int) -> frozenset[int]:
        return self._pids if round_number >= self._from_round else frozenset()


class StaticVoteAdversary(Adversary):
    """Byzantine processes vote every round for an attacker-chosen tip.

    ``choose_tip`` receives ``(round, ctx)`` and returns the tip to vote
    for; returning :data:`GENESIS_TIP` votes for the empty log (a valid,
    if useless, vote).  A generic building block for stale-vote and
    vote-stuffing experiments.  Silence is modelled with
    :class:`CrashAdversary` instead.
    """

    def __init__(
        self,
        pids: Sequence[int],
        choose_tip: Callable[[int, AdversaryContext], BlockId | None] | None = None,
    ) -> None:
        self._pids = frozenset(pids)
        self._choose_tip = choose_tip or deepest_tip_choice

    def byzantine(self, round_number: int) -> frozenset[int]:
        return self._pids

    def send(self, round_number: int, ctx: AdversaryContext) -> Sequence[Message]:
        tip = self._choose_tip(round_number, ctx)
        return [ctx.craft_vote(pid, round_number, tip) for pid in sorted(self._pids)]


class EquivocatingVoteAdversary(Adversary):
    """Every Byzantine process sends two conflicting votes each round.

    Exercises the equivocation-discard rule of Figures 2 and 3: under
    synchrony all well-behaved processes see both votes and ignore the
    sender entirely.
    """

    def __init__(self, pids: Sequence[int]) -> None:
        self._pids = frozenset(pids)
        self._forks: dict[int, tuple[Block, Block]] = {}

    def byzantine(self, round_number: int) -> frozenset[int]:
        return self._pids

    def send(self, round_number: int, ctx: AdversaryContext) -> Sequence[Message]:
        if not self._pids:
            return ()
        leader = min(self._pids)
        fork = self._forks.get(round_number)
        if fork is None:
            parent = ctx.deepest_tip()
            fork = (
                ctx.craft_block(leader, view=round_number + 1, parent=parent, salt=1),
                ctx.craft_block(leader, view=round_number + 1, parent=parent, salt=2),
            )
            self._forks[round_number] = fork
        left, right = fork
        messages: list[Message] = []
        for pid in sorted(self._pids):
            messages.append(ctx.craft_propose(pid, round_number, round_number + 1, left))
            messages.append(ctx.craft_propose(pid, round_number, round_number + 1, right))
            messages.append(ctx.craft_vote(pid, round_number, left.block_id))
            messages.append(ctx.craft_vote(pid, round_number, right.block_id))
        return messages


class AdversarialProposerAdversary(Adversary):
    """Byzantine processes participate in proposer sortition maliciously.

    Each view, every corrupted process submits a proposal with its
    (honest, verifiable) VRF — but the proposed log is adversarial:

    * ``mode="conflicting"`` — a fresh root block conflicting with the
      chain the honest processes are extending (exercises Algorithm 1's
      "not conflicting with ``L_{v−1}``" filter: honest processes must
      reject it no matter how large its VRF is);
    * ``mode="stale"`` — the log ``[b0]`` (a prefix of every honest
      chain: valid, passes the filter, but advances nothing — when the
      adversary wins sortition the view decides nothing new).

    Votes are cast honestly-shaped (for the adversary's own proposal),
    so the only lever is proposer power — this isolates the sortition
    term of MMR's *expected* latency: a view advances the chain roughly
    whenever the highest VRF belongs to a well-behaved process.
    """

    def __init__(self, pids: Sequence[int], mode: str = "stale") -> None:
        if mode not in ("stale", "conflicting"):
            raise ValueError(f"unknown mode {mode!r}")
        self._pids = frozenset(pids)
        self._mode = mode

    def byzantine(self, round_number: int) -> frozenset[int]:
        return self._pids

    def send(self, round_number: int, ctx: AdversaryContext) -> Sequence[Message]:
        if round_number % 2 != 0 or not self._pids:
            return ()  # proposals travel in even rounds (round 2 of a view)
        view = round_number // 2 + 1
        messages: list[Message] = []
        for pid in sorted(self._pids):
            if self._mode == "conflicting":
                block = ctx.craft_block(pid, view=view, parent=GENESIS_TIP, salt=round_number)
            else:
                block = genesis_block()
            messages.append(ctx.craft_propose(pid, round_number, view, block))
        return messages


class WithholdingAdversary(Adversary):
    """Delivers *nothing* to anyone during asynchronous rounds.

    The simplest liveness attack the model allows: a blackout.  Safety
    must still hold throughout (nobody can be tricked into deciding by
    an empty tally — and the resilient protocol retains old votes).
    """

    def __init__(self, pids: Sequence[int] = ()) -> None:
        self._pids = frozenset(pids)

    def byzantine(self, round_number: int) -> frozenset[int]:
        return self._pids

    def deliver(
        self,
        round_number: int,
        receiver: int,
        deliverable: Sequence[Message],
        ctx: AdversaryContext,
    ) -> Sequence[Message]:
        return ()


class RandomAdversary(Adversary):
    """A seeded, fully randomized adversary for fuzzing.

    Each round every corrupted process flips coins to: stay silent,
    vote for a random known tip, equivocate on two random tips, mint
    and propose a random block (possibly forking anywhere in the tree),
    or replay a stale round tag.  During asynchronous rounds, delivery
    to each receiver is an independent random subset.

    It is not *optimal* — it is an unbiased explorer of the adversary's
    action space, which is exactly what the randomized theorem checks
    want: whenever the executed trace happens to satisfy the paper's
    assumptions, the theorems must hold, no matter what this thing did.
    """

    def __init__(self, pids: Sequence[int], seed: int = 0, drop_probability: float = 0.5) -> None:
        import random as _random

        self._pids = frozenset(pids)
        self._rng = _random.Random(seed)
        self._drop = drop_probability

    def byzantine(self, round_number: int) -> frozenset[int]:
        return self._pids

    def _random_tip(self, ctx: AdversaryContext) -> BlockId | None:
        tips = list(ctx.tree.tips())
        choices: list[BlockId | None] = [GENESIS_TIP, *tips]
        return self._rng.choice(choices)

    def send(self, round_number: int, ctx: AdversaryContext) -> Sequence[Message]:
        messages: list[Message] = []
        for pid in sorted(self._pids):
            action = self._rng.random()
            if action < 0.25:
                continue  # silent
            if action < 0.55:
                messages.append(ctx.craft_vote(pid, round_number, self._random_tip(ctx)))
            elif action < 0.75:
                messages.append(ctx.craft_vote(pid, round_number, self._random_tip(ctx)))
                messages.append(ctx.craft_vote(pid, round_number, self._random_tip(ctx)))
            elif action < 0.9:
                parent = self._random_tip(ctx)
                view = max(1, round_number // 2 + self._rng.randrange(0, 2))
                block = ctx.craft_block(pid, view=view, parent=parent, salt=self._rng.randrange(1 << 16))
                messages.append(ctx.craft_propose(pid, round_number, view, block))
            else:
                # A round-tag lie: sign a vote back-dated to an earlier
                # round.  Byzantine senders may mis-tag (the simulator
                # only polices honest tagging); receivers treat the tag
                # as the vote's round for latest/expiration purposes.
                stale_round = self._rng.randrange(0, round_number + 1)
                messages.append(
                    make_vote(ctx.registry, ctx.key_of(pid), stale_round, self._random_tip(ctx))
                )
        return messages

    def deliver(
        self,
        round_number: int,
        receiver: int,
        deliverable: Sequence[Message],
        ctx: AdversaryContext,
    ) -> Sequence[Message]:
        return [m for m in deliverable if self._rng.random() > self._drop]


class SplitVoteAttack(Adversary):
    """The §1 agreement-violation attack on the original MMR protocol.

    In the asynchronous decision round ``target_round`` (round 2 of some
    view, where ``GA_{v,2}`` votes are cast) the adversary:

    * crafts two conflicting blocks ``b`` and ``b'`` extending the
      deepest log seen so far,
    * has every Byzantine process vote for **both** (equivocation that
      synchrony would expose, but asynchrony hides), and
    * delivers to each well-behaved receiver **only** the Byzantine
      votes for one of the two blocks — group A sees unanimous votes for
      ``b``, group B unanimous votes for ``b'``.

    Against the original protocol (votes from the current round only)
    each group's perceived participation ``m`` equals the Byzantine vote
    count, so both groups decide conflicting logs — safety is violated
    with *any* number of Byzantine processes.  Against the
    η-expiration protocol the groups still hold unexpired honest votes
    from earlier rounds, the Byzantine votes stay below the 2/3 quorum,
    and no conflicting decision occurs (Theorem 2).

    ``group_of`` maps a receiver pid to 0 (sees ``b``) or 1 (sees
    ``b'``); the default splits by pid parity.  In asynchronous rounds
    *before* the attack round the adversary delivers nothing at all, so
    honest votes age out of the expiration window — this is what makes
    the attack effective exactly when the asynchronous period outlasts
    the expiration period (Theorem 2's boundary).  After the attack
    round, delivery is unrestricted.
    """

    def __init__(
        self,
        pids: Sequence[int],
        target_round: int,
        group_of: Callable[[int], int] | None = None,
    ) -> None:
        if target_round < 1 or target_round % 2 != 0:
            raise ValueError("target_round must be a decision round (round 2 of a view)")
        self._pids = frozenset(pids)
        self.target_round = target_round
        self._group_of = group_of or parity_group
        self._fork: tuple[Block, Block] | None = None
        self._parent: BlockId | None = GENESIS_TIP
        self._parent_captured = False
        self._attack_ids: dict[int, set[str]] = {}

    def byzantine(self, round_number: int) -> frozenset[int]:
        return self._pids

    def _view(self) -> int:
        return self.target_round // 2

    def send(self, round_number: int, ctx: AdversaryContext) -> Sequence[Message]:
        if round_number == self.target_round - 1:
            # Fork from the deepest block every honest process already
            # holds: blocks from rounds ≤ target − 2 were delivered under
            # synchrony, whereas blocks minted in the attack round itself
            # would be uninterpretable orphans for the victims.
            self._parent = ctx.deepest_tip()
            self._parent_captured = True
        if round_number != self.target_round or not self._pids:
            return ()
        leader = min(self._pids)
        parent = self._parent if self._parent_captured else ctx.deepest_tip()
        view = self._view()
        left = ctx.craft_block(leader, view=view, parent=parent, salt=1)
        right = ctx.craft_block(leader, view=view, parent=parent, salt=2)
        self._fork = (left, right)
        messages: list[Message] = []
        self._attack_ids = {0: set(), 1: set()}
        for pid in sorted(self._pids):
            propose_left = ctx.craft_propose(pid, round_number, view, left)
            propose_right = ctx.craft_propose(pid, round_number, view, right)
            vote_left = ctx.craft_vote(pid, round_number, left.block_id)
            vote_right = ctx.craft_vote(pid, round_number, right.block_id)
            messages += [propose_left, propose_right, vote_left, vote_right]
            self._attack_ids[0] |= {propose_left.message_id, vote_left.message_id}
            self._attack_ids[1] |= {propose_right.message_id, vote_right.message_id}
        return messages

    def deliver(
        self,
        round_number: int,
        receiver: int,
        deliverable: Sequence[Message],
        ctx: AdversaryContext,
    ) -> Sequence[Message]:
        if round_number < self.target_round:
            return ()  # starve the window: honest votes must expire
        if round_number != self.target_round or self._fork is None:
            return deliverable
        wanted = self._attack_ids[self._group_of(receiver) % 2]
        return [m for m in deliverable if m.message_id in wanted]
