"""Signed protocol messages (paper §2.1, "Message structure").

Every message is tagged with the round in which it was sent and carries
an unforgeable signature; messages without a valid signature are
discarded by well-behaved receivers.  Two kinds of messages exist in the
MMR family of protocols:

* ``[vote, Λ]`` — a graded-agreement vote for the log with tip ``tip``
  (paper Figures 2 and 3).  Votes reference logs by tip id; the blocks
  themselves travel in propose messages.
* ``[propose, Λ, VRF(v)]`` — a proposal of log ``Λ`` for view ``v``
  (paper Algorithm 1).  Proposals carry the *new block* so receivers can
  extend their local trees; ancestors are assumed to have been carried
  by earlier proposals (an orphan buffer handles out-of-order arrival).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.block import Block, BlockId
from repro.crypto.hashing import hash_fields
from repro.crypto.signatures import KeyRegistry, SecretKey, Signature
from repro.crypto.vrf import VRFOutput, evaluate_vrf, verify_vrf


@dataclass(frozen=True)
class Message:
    """Base class for signed, round-tagged messages."""

    sender: int
    round: int
    signature: Signature = field(compare=False)

    @property
    def message_id(self) -> str:
        """Unique id (hash of contents, signature included).

        Computed on first access and memoised on the (frozen) instance —
        the simulator consults ids on every delivery decision.
        """
        cached = self.__dict__.get("_message_id")
        if cached is None:
            cached = hash_fields(type(self).__name__, *self._signed_fields(), self.signature)
            object.__setattr__(self, "_message_id", cached)
        return cached

    def _signed_fields(self) -> tuple:
        raise NotImplementedError


@dataclass(frozen=True)
class VoteMessage(Message):
    """``[vote, Λ]_p`` sent in round ``round`` for the log with tip ``tip``."""

    tip: BlockId | None = None

    def _signed_fields(self) -> tuple:
        return ("vote", self.sender, self.round, self.tip)


@dataclass(frozen=True)
class AckMessage(Message):
    """``[ack, Λ]_p``: finality-layer acknowledgement of a delivered log.

    Not part of the paper's protocols — used by the ebb-and-flow
    finality overlay (:mod:`repro.finality`), which the paper's §3
    discussion motivates.  Acks are signed like every other message.
    """

    tip: BlockId | None = None

    def _signed_fields(self) -> tuple:
        return ("ack", self.sender, self.round, self.tip)


@dataclass(frozen=True)
class ProposeMessage(Message):
    """``[propose, Λ, VRF_p(view)]_p`` proposing the log ending in ``block``."""

    view: int = 0
    block: Block | None = None
    vrf: VRFOutput | None = None

    @property
    def tip(self) -> BlockId | None:
        """Tip of the proposed log."""
        return self.block.block_id if self.block is not None else None

    def _signed_fields(self) -> tuple:
        vrf_fields = (self.vrf.value_num, self.vrf.proof) if self.vrf else (0, "")
        return ("propose", self.sender, self.round, self.view, self.tip, *vrf_fields)


def make_vote(
    registry: KeyRegistry, key: SecretKey, round_number: int, tip: BlockId | None
) -> VoteMessage:
    """Create a signed vote message from ``key``'s holder."""
    unsigned = VoteMessage(sender=key.pid, round=round_number, signature="", tip=tip)
    return VoteMessage(
        sender=key.pid,
        round=round_number,
        signature=registry.sign(key, *unsigned._signed_fields()),
        tip=tip,
    )


def make_ack(
    registry: KeyRegistry, key: SecretKey, round_number: int, tip: BlockId | None
) -> AckMessage:
    """Create a signed finality acknowledgement from ``key``'s holder."""
    unsigned = AckMessage(sender=key.pid, round=round_number, signature="", tip=tip)
    return AckMessage(
        sender=key.pid,
        round=round_number,
        signature=registry.sign(key, *unsigned._signed_fields()),
        tip=tip,
    )


def make_propose(
    registry: KeyRegistry,
    key: SecretKey,
    round_number: int,
    view: int,
    block: Block,
) -> ProposeMessage:
    """Create a signed propose message carrying ``block`` for ``view``.

    The VRF is evaluated on the view number, as in Algorithm 1.
    """
    vrf = evaluate_vrf(registry, key, view)
    unsigned = ProposeMessage(
        sender=key.pid, round=round_number, signature="", view=view, block=block, vrf=vrf
    )
    return ProposeMessage(
        sender=key.pid,
        round=round_number,
        signature=registry.sign(key, *unsigned._signed_fields()),
        view=view,
        block=block,
        vrf=vrf,
    )


def verify_message(registry: KeyRegistry, message: Message) -> bool:
    """Signature (and, for proposals, VRF) verification.

    Well-behaved processes drop messages that fail this check, so a
    Byzantine process can only ever speak *as itself*.
    """
    if not registry.verify(message.sender, message.signature, *message._signed_fields()):
        return False
    if isinstance(message, ProposeMessage):
        if message.block is None or message.vrf is None:
            return False
        return verify_vrf(registry, message.sender, message.view, message.vrf)
    return True


class CachedVerifier:
    """Memoised :func:`verify_message` shared by all processes of a run.

    Verification is deterministic, and in a multicast model every
    process verifies the same messages; a shared memo keyed by
    ``message_id`` (which covers the signature) removes the redundant
    work without changing semantics.
    """

    def __init__(self, registry: KeyRegistry) -> None:
        self._registry = registry
        self._memo: dict[str, bool] = {}

    @property
    def registry(self) -> KeyRegistry:
        return self._registry

    def verify(self, message: Message) -> bool:
        """Memoised :func:`verify_message` for one message."""
        key = message.message_id
        result = self._memo.get(key)
        if result is None:
            result = verify_message(self._registry, message)
            self._memo[key] = result
        return result
