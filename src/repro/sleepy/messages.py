"""Signed protocol messages (paper §2.1, "Message structure").

Every message is tagged with the round in which it was sent and carries
an unforgeable signature; messages without a valid signature are
discarded by well-behaved receivers.  Two kinds of messages exist in the
MMR family of protocols:

* ``[vote, Λ]`` — a graded-agreement vote for the log with tip ``tip``
  (paper Figures 2 and 3).  Votes reference logs by tip id; the blocks
  themselves travel in propose messages.
* ``[propose, Λ, VRF(v)]`` — a proposal of log ``Λ`` for view ``v``
  (paper Algorithm 1).  Proposals carry the *new block* so receivers can
  extend their local trees; ancestors are assumed to have been carried
  by earlier proposals (an orphan buffer handles out-of-order arrival).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.chain.block import Block, BlockId
from repro.crypto.hashing import hash_fields
from repro.crypto.signatures import KeyRegistry, SecretKey, Signature, VerificationCache
from repro.crypto.vrf import VRFOutput, evaluate_vrf, verify_vrf

#: Marker for a (sender, round) slot voided by two different signed
#: votes — shared by :meth:`VerifiedBatch.vote_table` and the vote
#: stores that consume it, so resolved tables merge without
#: re-translation.
EQUIVOCATED_VOTE = object()


@dataclass(frozen=True)
class Message:
    """Base class for signed, round-tagged messages."""

    sender: int
    round: int
    signature: Signature = field(compare=False)

    @property
    def message_id(self) -> str:
        """Unique id (hash of contents, signature included).

        Computed on first access and memoised on the (frozen) instance —
        the simulator consults ids on every delivery decision.
        """
        cached = self.__dict__.get("_message_id")
        if cached is None:
            cached = hash_fields(type(self).__name__, *self._signed_fields(), self.signature)
            object.__setattr__(self, "_message_id", cached)
        return cached

    def _signed_fields(self) -> tuple:
        raise NotImplementedError


@dataclass(frozen=True)
class VoteMessage(Message):
    """``[vote, Λ]_p`` sent in round ``round`` for the log with tip ``tip``."""

    tip: BlockId | None = None

    def _signed_fields(self) -> tuple:
        return ("vote", self.sender, self.round, self.tip)


@dataclass(frozen=True)
class AckMessage(Message):
    """``[ack, Λ]_p``: finality-layer acknowledgement of a delivered log.

    Not part of the paper's protocols — used by the ebb-and-flow
    finality overlay (:mod:`repro.finality`), which the paper's §3
    discussion motivates.  Acks are signed like every other message.
    """

    tip: BlockId | None = None

    def _signed_fields(self) -> tuple:
        return ("ack", self.sender, self.round, self.tip)


@dataclass(frozen=True)
class ProposeMessage(Message):
    """``[propose, Λ, VRF_p(view)]_p`` proposing the log ending in ``block``."""

    view: int = 0
    block: Block | None = None
    vrf: VRFOutput | None = None

    @property
    def tip(self) -> BlockId | None:
        """Tip of the proposed log."""
        return self.block.block_id if self.block is not None else None

    def _signed_fields(self) -> tuple:
        vrf_fields = (self.vrf.value_num, self.vrf.proof) if self.vrf else (0, "")
        return ("propose", self.sender, self.round, self.view, self.tip, *vrf_fields)


def make_vote(
    registry: KeyRegistry, key: SecretKey, round_number: int, tip: BlockId | None
) -> VoteMessage:
    """Create a signed vote message from ``key``'s holder."""
    unsigned = VoteMessage(sender=key.pid, round=round_number, signature="", tip=tip)
    return VoteMessage(
        sender=key.pid,
        round=round_number,
        signature=registry.sign(key, *unsigned._signed_fields()),
        tip=tip,
    )


def make_ack(
    registry: KeyRegistry, key: SecretKey, round_number: int, tip: BlockId | None
) -> AckMessage:
    """Create a signed finality acknowledgement from ``key``'s holder."""
    unsigned = AckMessage(sender=key.pid, round=round_number, signature="", tip=tip)
    return AckMessage(
        sender=key.pid,
        round=round_number,
        signature=registry.sign(key, *unsigned._signed_fields()),
        tip=tip,
    )


def make_propose(
    registry: KeyRegistry,
    key: SecretKey,
    round_number: int,
    view: int,
    block: Block,
) -> ProposeMessage:
    """Create a signed propose message carrying ``block`` for ``view``.

    The VRF is evaluated on the view number, as in Algorithm 1.
    """
    vrf = evaluate_vrf(registry, key, view)
    unsigned = ProposeMessage(
        sender=key.pid, round=round_number, signature="", view=view, block=block, vrf=vrf
    )
    return ProposeMessage(
        sender=key.pid,
        round=round_number,
        signature=registry.sign(key, *unsigned._signed_fields()),
        view=view,
        block=block,
        vrf=vrf,
    )


def verify_message(registry: KeyRegistry, message: Message) -> bool:
    """Signature (and, for proposals, VRF) verification.

    Well-behaved processes drop messages that fail this check, so a
    Byzantine process can only ever speak *as itself*.
    """
    if not registry.verify(message.sender, message.signature, *message._signed_fields()):
        return False
    if isinstance(message, ProposeMessage):
        if message.block is None or message.vrf is None:
            return False
        return verify_vrf(registry, message.sender, message.view, message.vrf)
    return True


def verification_digest(message: Message) -> str:
    """Canonical digest a verifier keys its caches by.

    Recomputed from the message's content — kind, claimed sender, signed
    fields, signature — and **never** read from ``message.message_id``:
    the memoised ``_message_id`` slot on a message instance is
    attacker-supplied state (adversary code constructs the objects it
    multicasts), so trusting it would let a transplanted identity
    inherit another message's cached verdict.
    """
    return hash_fields(
        "verified", type(message).__name__, message.sender, *message._signed_fields(), message.signature
    )


#: Default capacity of a :class:`MessageInterner` — matches the verdict
#: cache's sizing rationale (one entry per logical message at the
#: repository's experiment scales) and, like it, bounds what a
#: Byzantine flood of distinct valid messages can pin in memory.
DEFAULT_INTERNER_CAPACITY = 1 << 17


class MessageInterner:
    """One canonical instance per logical message, keyed by digest.

    The bus already deduplicates *publishes*; the interner deduplicates
    *objects* on the verification path, so the bus, vote stores, traces,
    and every process's proposal table share a single instance per
    logical message.  Membership of the canonical set doubles as an
    O(1) "already verified" check (the table holds strong references,
    so an ``id`` can never be recycled while it is a member — eviction
    removes the id in the same step, keeping the check sound).

    LRU-bounded for the same reason the verdict cache is: corrupted
    keys can sign unlimited distinct valid messages, and on the
    long-running deployment substrate nothing else retains messages
    run-wide.  An evicted message merely falls back to the digest path
    on next sight and is re-interned.
    """

    def __init__(self, capacity: int = DEFAULT_INTERNER_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("interner capacity must be positive")
        self._capacity = capacity
        self._by_digest: OrderedDict[str, Message] = OrderedDict()
        self._canonical_ids: set[int] = set()

    def __len__(self) -> int:
        return len(self._by_digest)

    @property
    def capacity(self) -> int:
        """Maximum number of canonical instances held."""
        return self._capacity

    def is_canonical(self, message: Message) -> bool:
        """Whether ``message`` *is* (identically) an interned instance."""
        return id(message) in self._canonical_ids

    def lookup(self, digest: str) -> Message | None:
        """The canonical instance for ``digest``, if one was interned."""
        message = self._by_digest.get(digest)
        if message is not None:
            self._by_digest.move_to_end(digest)
        return message

    def intern(self, message: Message, digest: str) -> Message:
        """Make ``message`` canonical for ``digest`` (first instance wins)."""
        existing = self._by_digest.get(digest)
        if existing is not None:
            self._by_digest.move_to_end(digest)
            return existing
        self._by_digest[digest] = message
        self._canonical_ids.add(id(message))
        while len(self._by_digest) > self._capacity:
            _, evicted = self._by_digest.popitem(last=False)
            self._canonical_ids.discard(id(evicted))
        return message


class VerifiedBatch:
    """One delivery's verified messages, classified once for all consumers.

    Built by a verifier's ``batch`` (and shared between receivers by the
    engine's ingest pipeline): the messages that survived verification,
    in delivery order, pre-split by kind, with the per-vote and per-ack
    ``(sender, round, tip)`` records extracted so per-receiver loops
    touch plain tuples instead of re-reading attributes n times.
    """

    __slots__ = ("messages", "votes", "proposes", "acks", "others", "rejected", "_vote_table")

    def __init__(self, messages: Sequence[Message], rejected: int = 0) -> None:
        votes: list[VoteMessage] = []
        proposes: list[ProposeMessage] = []
        acks: list[AckMessage] = []
        others: list[Message] = []
        for message in messages:
            if type(message) is VoteMessage:
                votes.append(message)
            elif type(message) is ProposeMessage:
                proposes.append(message)
            elif type(message) is AckMessage:
                acks.append(message)
            elif isinstance(message, VoteMessage):
                votes.append(message)
            elif isinstance(message, ProposeMessage):
                proposes.append(message)
            elif isinstance(message, AckMessage):
                acks.append(message)
            else:
                others.append(message)
        #: Every verified message, in delivery order.
        self.messages: tuple[Message, ...] = tuple(messages)
        self.votes: tuple[VoteMessage, ...] = tuple(votes)
        self.proposes: tuple[ProposeMessage, ...] = tuple(proposes)
        self.acks: tuple[AckMessage, ...] = tuple(acks)
        self.others: tuple[Message, ...] = tuple(others)
        #: How many delivered messages failed verification.
        self.rejected = rejected
        self._vote_table: dict[int, dict[int, object]] | None = None

    def __len__(self) -> int:
        return len(self.messages)

    def ack_records(self) -> Iterable[tuple[int, int, BlockId | None]]:
        """``(sender, round, tip)`` per verified ack, in delivery order."""
        return ((m.sender, m.round, m.tip) for m in self.acks)

    def vote_table(self) -> dict[int, dict[int, object]]:
        """Round-resolved vote table: ``round -> {sender: tip | EQUIVOCATED_VOTE}``.

        Within-batch equivocations (two different votes by one sender
        for one round) are already collapsed to :data:`EQUIVOCATED_VOTE`,
        so a vote store can merge whole per-round tables — and, when it
        has no prior entries for a round, adopt a copy wholesale.
        Computed once and memoised; the pipeline shares one batch between
        all receivers of the same delivery.
        """
        table = self._vote_table
        if table is None:
            table = {}
            for message in self.votes:
                bucket = table.get(message.round)
                if bucket is None:
                    bucket = table[message.round] = {}
                existing = bucket.get(message.sender, _UNSEEN)
                if existing is _UNSEEN:
                    bucket[message.sender] = message.tip
                elif existing is not EQUIVOCATED_VOTE and existing != message.tip:
                    bucket[message.sender] = EQUIVOCATED_VOTE
            self._vote_table = table
        return table


_UNSEEN = object()


class CachedVerifier:
    """Memoised :func:`verify_message` shared by all processes of a run.

    Verification is deterministic, and in a multicast model every
    process verifies the same messages; a shared
    :class:`~repro.crypto.signatures.VerificationCache` keyed by
    :func:`verification_digest` removes the redundant work without
    changing semantics.  The digest is recomputed here rather than read
    from the message (see :func:`verification_digest` for why); in
    particular a message whose ``sender`` does not match the key that
    produced its signature is rejected even when the signature is a
    valid tag for some *other* registered process.

    Subclassed by the engine's ingest pipeline, which adds interning,
    an identity fast path, and shared per-delivery batches.
    """

    def __init__(self, registry: KeyRegistry, cache: VerificationCache | None = None) -> None:
        self._registry = registry
        self._cache = cache if cache is not None else VerificationCache()

    @property
    def registry(self) -> KeyRegistry:
        return self._registry

    @property
    def cache(self) -> VerificationCache:
        """The underlying digest-keyed verdict cache."""
        return self._cache

    def verify(self, message: Message) -> bool:
        """Memoised :func:`verify_message` for one message."""
        digest = verification_digest(message)
        verdict = self._cache.get(digest)
        if verdict is None:
            verdict = verify_message(self._registry, message)
            self._cache.put(digest, verdict)
        return verdict

    def batch(self, messages: Sequence[Message]) -> VerifiedBatch:
        """Verify ``messages`` and classify the survivors in one pass.

        Signature tags for cache misses go through
        :meth:`~repro.crypto.signatures.KeyRegistry.verify_batch`; VRF
        checks (proposals) stay per-message.  Order is preserved.
        """
        digests = [verification_digest(m) for m in messages]
        cache = self._cache
        verdicts: list[bool | None] = [cache.get(d) for d in digests]
        miss_indices = [i for i, v in enumerate(verdicts) if v is None]
        if miss_indices:
            resolved = self._resolve_misses(messages, digests, miss_indices)
            for i in miss_indices:
                verdicts[i] = resolved[digests[i]]
        verified = [m for m, v in zip(messages, verdicts) if v]
        return VerifiedBatch(verified, rejected=len(messages) - len(verified))

    def _resolve_misses(
        self, messages: Sequence[Message], digests: Sequence[str], indices: Sequence[int]
    ) -> dict[str, bool]:
        # The one place actual crypto happens on the batch path, shared
        # by this class and the engine's ingest pipeline: deduplicate
        # the missing digests, push the distinct signature claims
        # through the registry's batch API, apply payload checks, and
        # cache every verdict.
        distinct: list[int] = []
        seen: set[str] = set()
        for i in indices:
            digest = digests[i]
            if digest not in seen:
                seen.add(digest)
                distinct.append(i)
        items = [
            (messages[i].sender, messages[i].signature, messages[i]._signed_fields())
            for i in distinct
        ]
        self._note_crypto(len(items))
        tag_ok = self._registry.verify_batch(items)
        resolved: dict[str, bool] = {}
        cache = self._cache
        for i, ok in zip(distinct, tag_ok):
            verdict = bool(ok) and self._check_payload(messages[i])
            resolved[digests[i]] = verdict
            cache.put(digests[i], verdict)
        return resolved

    def _note_crypto(self, count: int) -> None:
        # Accounting hook; the ingest pipeline overrides it for stats.
        return None

    def _check_payload(self, message: Message) -> bool:
        # The non-signature half of verify_message: proposal VRFs.
        if isinstance(message, ProposeMessage):
            if message.block is None or message.vrf is None:
                return False
            return verify_vrf(self._registry, message.sender, message.view, message.vrf)
        return True
