"""Awake/asleep schedules (paper §2.1, "Sleepiness").

A schedule answers one question: which processes are awake at the
beginning of round ``r`` (the set ``O_r``)?  Per the paper, the
processes awake at the beginning of round ``r`` coincide with those
awake at the end of round ``r − 1``, so a single per-round set fully
describes sleepiness; the simulator derives send-phase participants from
``O_r`` and receive-phase participants from ``O_{r+1}``.

Schedules describe *honest* sleep behaviour: Byzantine processes never
sleep (§2.1), so the simulator unions the adversary's corrupted set into
``O_r`` separately.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from collections.abc import Mapping


class SleepSchedule(ABC):
    """Abstract awake-set oracle: ``awake(r)`` returns ``O_r`` (honest part)."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("need at least one process")
        self.n = n

    @abstractmethod
    def awake(self, round_number: int) -> frozenset[int]:
        """The set of (honest-candidate) processes awake at round ``round_number``."""

    def awake_union(self, start: int, end: int) -> frozenset[int]:
        """``O_{start,end}`` = processes awake at some round in [start, end].

        Rounds below 0 contribute nothing (paper: ``O_r := ∅`` if r < 0).
        """
        result: set[int] = set()
        for r in range(max(start, 0), end + 1):
            result |= self.awake(r)
        return frozenset(result)


class FullParticipation(SleepSchedule):
    """Everyone is awake in every round (the classic static model)."""

    def awake(self, round_number: int) -> frozenset[int]:
        return frozenset(range(self.n))


class TableSchedule(SleepSchedule):
    """An explicit per-round table with a default for unlisted rounds.

    Useful for hand-crafted counter-example scenarios in tests.
    """

    def __init__(
        self,
        n: int,
        table: Mapping[int, frozenset[int] | set[int]],
        default: frozenset[int] | set[int] | None = None,
    ) -> None:
        super().__init__(n)
        self._table = {r: frozenset(s) for r, s in table.items()}
        self._default = frozenset(default) if default is not None else frozenset(range(n))
        for r, awake_set in self._table.items():
            if not awake_set <= frozenset(range(n)):
                raise ValueError(f"round {r}: awake set contains unknown process ids")

    def awake(self, round_number: int) -> frozenset[int]:
        return self._table.get(round_number, self._default)


class SpikeSchedule(SleepSchedule):
    """A participation *spike*: a fraction drops offline for a window.

    Models the Ethereum May-2023 incident the paper's introduction
    recounts (≈60% of consensus clients offline for ~25 minutes): the
    processes with the highest ids sleep during ``[start, start + duration)``
    and return afterwards.
    """

    def __init__(self, n: int, drop_fraction: float, start: int, duration: int) -> None:
        super().__init__(n)
        if not 0.0 <= drop_fraction <= 1.0:
            raise ValueError("drop_fraction must be in [0, 1]")
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self._start = start
        self._end = start + duration
        keep = n - int(math.floor(drop_fraction * n))
        self._during = frozenset(range(keep))
        self._normal = frozenset(range(n))

    def awake(self, round_number: int) -> frozenset[int]:
        if self._start <= round_number < self._end:
            return self._during
        return self._normal


class DiurnalSchedule(SleepSchedule):
    """Smoothly oscillating participation (day/night usage pattern).

    Participation follows a cosine between ``min_fraction`` and
    ``max_fraction`` of ``n`` with the given ``period``.  The awake set
    is a contiguous id window that slides by ``drift`` ids per round, so
    the population churns gradually instead of the same processes always
    being awake.
    """

    def __init__(
        self,
        n: int,
        period: int,
        min_fraction: float = 0.3,
        max_fraction: float = 1.0,
        drift: int = 1,
    ) -> None:
        super().__init__(n)
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < min_fraction <= max_fraction <= 1.0:
            raise ValueError("need 0 < min_fraction <= max_fraction <= 1")
        self._period = period
        self._min = min_fraction
        self._max = max_fraction
        self._drift = drift

    def awake(self, round_number: int) -> frozenset[int]:
        phase = 2.0 * math.pi * (round_number % self._period) / self._period
        fraction = self._min + (self._max - self._min) * (1.0 + math.cos(phase)) / 2.0
        count = max(1, int(round(fraction * self.n)))
        offset = (round_number * self._drift) % self.n
        return frozenset((offset + i) % self.n for i in range(count))


class RandomChurnSchedule(SleepSchedule):
    """A seeded random walk over awake sets with bounded per-round churn.

    Each round, at most ``floor(churn_per_round × |awake|)`` awake
    processes go to sleep and an independent set of sleepers may wake
    up (each with probability ``wake_probability``), while never letting
    the awake set drop below ``min_awake`` processes.  The per-round
    sleep bound makes it easy to produce schedules that satisfy the
    paper's churn condition (Eq. 1) for a target ``γ`` over ``η`` rounds
    — which the assumption validators in :mod:`repro.analysis` check
    exactly, per run.

    The walk is generated lazily but deterministically from ``seed``.
    """

    def __init__(
        self,
        n: int,
        churn_per_round: float,
        wake_probability: float = 0.3,
        min_awake: int = 1,
        seed: int = 0,
        initial_awake: frozenset[int] | None = None,
    ) -> None:
        super().__init__(n)
        if not 0.0 <= churn_per_round <= 1.0:
            raise ValueError("churn_per_round must be in [0, 1]")
        if not 0.0 <= wake_probability <= 1.0:
            raise ValueError("wake_probability must be in [0, 1]")
        if not 1 <= min_awake <= n:
            raise ValueError("min_awake must be in [1, n]")
        self._churn = churn_per_round
        self._wake_probability = wake_probability
        self._min_awake = min_awake
        self._rng = random.Random(seed)
        first = initial_awake if initial_awake is not None else frozenset(range(n))
        if not first or not first <= frozenset(range(n)):
            raise ValueError("initial awake set must be a non-empty subset of processes")
        self._history: list[frozenset[int]] = [frozenset(first)]

    def awake(self, round_number: int) -> frozenset[int]:
        if round_number < 0:
            raise ValueError("rounds are non-negative")
        while len(self._history) <= round_number:
            self._history.append(self._step(self._history[-1]))
        return self._history[round_number]

    def _step(self, current: frozenset[int]) -> frozenset[int]:
        awake = set(current)
        sleep_budget = int(math.floor(self._churn * len(awake)))
        headroom = len(awake) - self._min_awake
        sleep_budget = max(0, min(sleep_budget, headroom))
        if sleep_budget:
            for pid in self._rng.sample(sorted(awake), sleep_budget):
                awake.discard(pid)
        for pid in range(self.n):
            if pid not in awake and self._rng.random() < self._wake_probability:
                awake.add(pid)
        return frozenset(awake)
