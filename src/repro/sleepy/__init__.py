"""The sleepy round model (paper §2.1) as an executable substrate.

This package implements the system model the paper's protocols run in:

* :mod:`repro.sleepy.messages` — signed ``vote`` and ``propose``
  messages tagged with their sending round.
* :mod:`repro.sleepy.schedule` — awake/asleep schedules (who is in
  ``O_r`` each round), including churn-bounded random walks, spikes,
  and diurnal patterns.
* :mod:`repro.sleepy.network` — synchronous delivery plus bounded
  asynchronous periods ``[ra+1, ra+π]`` with adversary-controlled
  delivery.
* :mod:`repro.sleepy.adversary` — the adversary interface (constant or
  growing corruption, arbitrary Byzantine messages, delivery control
  during asynchrony) and concrete attack strategies.
* :mod:`repro.sleepy.simulator` — the round-by-round execution engine
  (send phase / receive phase) producing a :class:`~repro.sleepy.trace.Trace`.
"""

from repro.sleepy.adversary import (
    Adversary,
    AdversaryContext,
    AdversarialProposerAdversary,
    CrashAdversary,
    EquivocatingVoteAdversary,
    NullAdversary,
    RandomAdversary,
    SplitVoteAttack,
    StaticVoteAdversary,
    WithholdingAdversary,
)
from repro.sleepy.messages import (
    CachedVerifier,
    Message,
    ProposeMessage,
    VerifiedBatch,
    VoteMessage,
    verify_message,
)
from repro.sleepy.network import (
    MultiWindowAsynchrony,
    NetworkModel,
    SynchronousNetwork,
    WindowedAsynchrony,
)
from repro.sleepy.process import Process, ProcessFactory
from repro.sleepy.schedule import (
    DiurnalSchedule,
    FullParticipation,
    RandomChurnSchedule,
    SleepSchedule,
    SpikeSchedule,
    TableSchedule,
)
from repro.sleepy.trace import DecisionEvent, RoundRecord, Trace


def __getattr__(name: str):
    # Lazy: the simulator sits on top of repro.engine (message bus,
    # shared model enforcement), which in turn imports this package's
    # leaf modules — importing it eagerly here would re-enter partially
    # initialised modules whenever a leaf is the import entry point.
    if name == "Simulation":
        from repro.sleepy.simulator import Simulation

        return Simulation
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Adversary",
    "AdversaryContext",
    "AdversarialProposerAdversary",
    "CachedVerifier",
    "CrashAdversary",
    "DecisionEvent",
    "DiurnalSchedule",
    "EquivocatingVoteAdversary",
    "FullParticipation",
    "Message",
    "MultiWindowAsynchrony",
    "NetworkModel",
    "NullAdversary",
    "Process",
    "ProcessFactory",
    "ProposeMessage",
    "RandomAdversary",
    "RandomChurnSchedule",
    "RoundRecord",
    "Simulation",
    "SleepSchedule",
    "SpikeSchedule",
    "SplitVoteAttack",
    "StaticVoteAdversary",
    "WithholdingAdversary",
    "SynchronousNetwork",
    "TableSchedule",
    "Trace",
    "VerifiedBatch",
    "VoteMessage",
    "WindowedAsynchrony",
    "verify_message",
]
