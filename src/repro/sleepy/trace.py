"""Execution traces: everything the analysis layer needs from a run.

The simulator records, per round, the participation sets (``O_r``,
``H_r``, ``B_r``), whether the round was asynchronous, message counts,
and every decision event.  The trace also carries an *omniscient* block
tree containing every block created during the run (honest or
adversarial), which the safety checkers use to test log compatibility
across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.block import BlockId
from repro.chain.tree import BlockTree


@dataclass(frozen=True)
class DecisionEvent:
    """Process ``pid`` decided (delivered) the log with tip ``tip`` at ``round``."""

    pid: int
    round: int
    view: int
    tip: BlockId | None


@dataclass(frozen=True)
class RoundRecord:
    """Participation and activity of one round."""

    round: int
    awake: frozenset[int]  # O_r
    honest: frozenset[int]  # H_r
    byzantine: frozenset[int]  # B_r
    asynchronous: bool
    votes_sent: int
    proposes_sent: int
    other_sent: int


@dataclass
class Trace:
    """Full record of one simulated execution."""

    n: int
    rounds: list[RoundRecord] = field(default_factory=list)
    decisions: list[DecisionEvent] = field(default_factory=list)
    tree: BlockTree = field(default_factory=BlockTree)
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Participation-set accessors (paper §2.3 notation)
    # ------------------------------------------------------------------
    def record(self, round_number: int) -> RoundRecord:
        """The record of a given round."""
        rec = self.rounds[round_number]
        if rec.round != round_number:
            raise ValueError("trace rounds are not contiguous")
        return rec

    @property
    def horizon(self) -> int:
        """Number of executed rounds."""
        return len(self.rounds)

    def awake_union(self, start: int, end: int) -> frozenset[int]:
        """``O_{start,end}``: awake at some round in ``[start, end]`` (∅ below 0)."""
        result: set[int] = set()
        for r in range(max(start, 0), min(end, self.horizon - 1) + 1):
            result |= self.rounds[r].awake
        return frozenset(result)

    def honest_union(self, start: int, end: int) -> frozenset[int]:
        """``H_{start,end}``: honest and awake at some round in ``[start, end]``."""
        result: set[int] = set()
        for r in range(max(start, 0), min(end, self.horizon - 1) + 1):
            result |= self.rounds[r].honest
        return frozenset(result)

    # ------------------------------------------------------------------
    # Decision accessors
    # ------------------------------------------------------------------
    def decisions_by(self, pid: int) -> list[DecisionEvent]:
        """All decision events of one process, in round order."""
        return [d for d in self.decisions if d.pid == pid]

    def decided_tips_up_to(self, round_number: int) -> frozenset[BlockId | None]:
        """``D_r``: tips of logs decided by well-behaved processes in rounds ≤ r."""
        return frozenset(d.tip for d in self.decisions if d.round <= round_number)

    def delivered_tip(self, pid: int, round_number: int) -> BlockId | None:
        """The deepest log ``pid`` has delivered by the end of ``round_number``.

        ``None`` (the empty log) if the process has not decided yet.
        """
        tips = [d.tip for d in self.decisions if d.pid == pid and d.round <= round_number]
        if not tips:
            return None
        return self.tree.longest(tips)

    def deciders(self) -> frozenset[int]:
        """Processes that decided at least once."""
        return frozenset(d.pid for d in self.decisions)

    def last_decision_round(self) -> int | None:
        """Round of the last decision in the trace, or ``None``."""
        return max((d.round for d in self.decisions), default=None)
