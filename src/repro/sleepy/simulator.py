"""The round-by-round execution engine (paper §2.1, "Round structure").

Each round ``r``:

1. **Send phase** — every well-behaved process in ``H_r`` multicasts the
   messages its protocol dictates; Byzantine processes multicast
   whatever the adversary crafts.  All messages enter the
   :class:`~repro.engine.bus.MessageBus` (the peer-to-peer dissemination
   layer, which keeps messages alive even if the sender goes to sleep).
2. **Receive phase** — every well-behaved process in ``H_{r+1}``
   receives messages: in a synchronous round, *all* messages sent in
   rounds ``≤ r`` it has not yet received (which realises queue-on-sleep
   and catch-up-on-wake); in an asynchronous round, the subset chosen by
   the adversary.

The engine enforces the model's fine print: the adversary's delivery
choice must be a subset of what is deliverable, corruption must be
monotone for a growing adversary, Byzantine processes never sleep, and
asleep processes are never consulted.

This module is the simulator half of the unified execution engine; the
shared pieces (message bus, corruption tracking, message accounting)
live in :mod:`repro.engine` and are also used by the asyncio deployment
runner.
"""

from __future__ import annotations

from repro.chain.shared import SharedChain
from repro.chain.store import BlockBuffer
from repro.crypto.signatures import KeyRegistry
from repro.engine.backend import (
    CorruptionTracker,
    check_adversary_message,
    check_honest_message,
    count_kinds,
)
from repro.engine.bus import MessageBus
from repro.engine.errors import ModelViolationError, UndeliverableMessageError
from repro.engine.ingest import IngestPipeline
from repro.sleepy.adversary import Adversary, AdversaryContext
from repro.sleepy.messages import Message, ProposeMessage
from repro.sleepy.network import NetworkModel
from repro.sleepy.process import Process, ProcessFactory
from repro.sleepy.schedule import SleepSchedule
from repro.sleepy.trace import DecisionEvent, RoundRecord, Trace

__all__ = ["ModelViolationError", "ProcessFactory", "Simulation"]


class Simulation:
    """Drives one execution of a protocol in the sleepy round model."""

    def __init__(
        self,
        registry: KeyRegistry,
        schedule: SleepSchedule,
        adversary: Adversary,
        network: NetworkModel,
        process_factory: ProcessFactory,
        meta: dict | None = None,
        share_chain: bool = True,
    ) -> None:
        if schedule.n != registry.n:
            raise ValueError("schedule and registry disagree on the number of processes")
        self.registry = registry
        self.schedule = schedule
        self.adversary = adversary
        self.network = network
        #: The run-shared ingest pipeline every process verifies through.
        self.pipeline = IngestPipeline(registry)

        #: The run's interned chain.  Its canonical tree is also the
        #: omniscient analysis tree (every block anyone creates lands in
        #: it exactly once), and chain-sharing process factories receive
        #: it so each receiver holds a visibility view instead of a
        #: private copy — one tree per run, not n + 1.
        self.chain = SharedChain()
        self._tree = self.chain.tree
        # The omniscient trace tree must be lossless (analysis depends
        # on resolving every decided tip), so its buffer never evicts.
        self._tree_buffer = BlockBuffer(self._tree, max_orphans_per_source=None)
        self._ctx = AdversaryContext(registry, self._tree)
        self._corruption = CorruptionTracker(adversary, self._ctx)

        # Factories advertise view support via ``supports_shared_chain``
        # (unmarked factories — e.g. bespoke test processes — keep
        # building private trees); ``share_chain=False`` forces the
        # per-process-tree baseline for equivalence oracles and benches.
        use_chain = share_chain and getattr(process_factory, "supports_shared_chain", False)
        self.processes: dict[int, Process] = {
            pid: (
                process_factory(pid, registry.secret_key(pid), self.pipeline, chain=self.chain)
                if use_chain
                else process_factory(pid, registry.secret_key(pid), self.pipeline)
            )
            for pid in range(registry.n)
        }

        #: The dissemination layer (indexed per-recipient delivery state).
        self.bus = MessageBus(registry.n)
        self.trace = Trace(n=registry.n, tree=self._tree, meta=dict(meta or {}))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, num_rounds: int) -> Trace:
        """Execute ``num_rounds`` rounds (continuing from where we stopped)."""
        start = self.trace.horizon
        for r in range(start, start + num_rounds):
            self._run_round(r)
        return self.trace

    def _run_round(self, r: int) -> None:
        byz = self._corruption.corrupted(r)
        honest = self.schedule.awake(r) - byz
        awake = honest | byz  # Byzantine processes never sleep (§2.1).
        self._ctx.round = r
        self.bus.begin_round(r)
        decisions: list[DecisionEvent] = []

        # --- Send phase ---------------------------------------------------
        for pid in sorted(honest):
            process = self.processes[pid]
            for message in process.send(r):
                check_honest_message(message, pid, r)
                self._publish(message)
            decisions.extend(self._drain_decisions(process))
        for message in self.adversary.send(r, self._ctx):
            check_adversary_message(message, byz)
            self._publish(message)

        votes, proposes, other = count_kinds(self.bus.round_messages(r))

        # --- Receive phase --------------------------------------------------
        asynchronous = self.network.is_asynchronous(r)
        receivers = self.schedule.awake(r + 1) - self._corruption.peek(r + 1)
        for pid in sorted(receivers):
            if asynchronous:
                deliverable = self.bus.deliverable(pid)
                delivered = list(self.adversary.deliver(r, pid, deliverable, self._ctx))
                try:
                    self.bus.deliver_chosen(pid, delivered, pending=deliverable)
                except UndeliverableMessageError:
                    raise ModelViolationError(
                        "adversary delivered a message outside the deliverable set"
                    ) from None
            else:
                delivered = self.bus.deliver_all(pid)
            if delivered:
                self.processes[pid].receive(r, delivered)

        self.trace.rounds.append(
            RoundRecord(
                round=r,
                awake=frozenset(awake),
                honest=frozenset(honest),
                byzantine=frozenset(byz),
                asynchronous=asynchronous,
                votes_sent=votes,
                proposes_sent=proposes,
                other_sent=other,
            )
        )
        self.trace.decisions.extend(decisions)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _publish(self, message: Message) -> None:
        if not self.bus.publish(message):
            return
        if isinstance(message, ProposeMessage) and message.block is not None:
            self._tree_buffer.offer(message.block)

    @staticmethod
    def _drain_decisions(process: Process) -> list[DecisionEvent]:
        pop = getattr(process, "pop_decisions", None)
        if pop is None:
            return []
        return list(pop())
