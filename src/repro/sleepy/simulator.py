"""The round-by-round execution engine (paper §2.1, "Round structure").

Each round ``r``:

1. **Send phase** — every well-behaved process in ``H_r`` multicasts the
   messages its protocol dictates; Byzantine processes multicast
   whatever the adversary crafts.  All messages enter the global pool
   (the peer-to-peer dissemination layer, which keeps messages alive
   even if the sender goes to sleep).
2. **Receive phase** — every well-behaved process in ``H_{r+1}``
   receives messages: in a synchronous round, *all* messages sent in
   rounds ``≤ r`` it has not yet received (which realises queue-on-sleep
   and catch-up-on-wake); in an asynchronous round, the subset chosen by
   the adversary.

The engine enforces the model's fine print: the adversary's delivery
choice must be a subset of what is deliverable, corruption must be
monotone for a growing adversary, Byzantine processes never sleep, and
asleep processes are never consulted.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.chain.block import genesis_block
from repro.chain.store import BlockBuffer
from repro.chain.tree import BlockTree
from repro.crypto.signatures import KeyRegistry, SecretKey
from repro.sleepy.adversary import Adversary, AdversaryContext
from repro.sleepy.messages import CachedVerifier, Message, ProposeMessage, VoteMessage
from repro.sleepy.network import NetworkModel
from repro.sleepy.process import Process
from repro.sleepy.schedule import SleepSchedule
from repro.sleepy.trace import DecisionEvent, RoundRecord, Trace

#: Builds the honest process for ``pid``.  Receives the process id, its
#: secret key, and the run-shared cached verifier.
ProcessFactory = Callable[[int, SecretKey, CachedVerifier], Process]


class ModelViolationError(RuntimeError):
    """An actor stepped outside the power the model grants it."""


class Simulation:
    """Drives one execution of a protocol in the sleepy round model."""

    def __init__(
        self,
        registry: KeyRegistry,
        schedule: SleepSchedule,
        adversary: Adversary,
        network: NetworkModel,
        process_factory: ProcessFactory,
        meta: dict | None = None,
    ) -> None:
        if schedule.n != registry.n:
            raise ValueError("schedule and registry disagree on the number of processes")
        self.registry = registry
        self.schedule = schedule
        self.adversary = adversary
        self.network = network
        self._verifier = CachedVerifier(registry)

        # Omniscient tree for analysis: all blocks anyone ever creates.
        self._tree = BlockTree([genesis_block()])
        self._tree_buffer = BlockBuffer(self._tree)
        self._ctx = AdversaryContext(registry, self._tree)

        self.processes: dict[int, Process] = {
            pid: process_factory(pid, registry.secret_key(pid), self._verifier)
            for pid in range(registry.n)
        }

        self._pool: list[Message] = []
        self._pool_ids: set[str] = set()
        self._cursor: dict[int, int] = {pid: 0 for pid in range(registry.n)}
        self._extras: dict[int, set[str]] = {pid: set() for pid in range(registry.n)}
        self._byz_prev: frozenset[int] = frozenset()
        self.trace = Trace(n=registry.n, tree=self._tree, meta=dict(meta or {}))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, num_rounds: int) -> Trace:
        """Execute ``num_rounds`` rounds (continuing from where we stopped)."""
        start = self.trace.horizon
        for r in range(start, start + num_rounds):
            self._run_round(r)
        return self.trace

    def _run_round(self, r: int) -> None:
        byz = self._corrupted(r)
        honest = self.schedule.awake(r) - byz
        awake = honest | byz  # Byzantine processes never sleep (§2.1).
        self._ctx.round = r
        pool_start = len(self._pool)
        decisions: list[DecisionEvent] = []

        # --- Send phase ---------------------------------------------------
        for pid in sorted(honest):
            process = self.processes[pid]
            for message in process.send(r):
                if message.sender != pid:
                    raise ModelViolationError(f"honest process {pid} signed as {message.sender}")
                if message.round != r:
                    raise ModelViolationError(
                        f"honest process {pid} mis-tagged round {message.round} at round {r}"
                    )
                self._publish(message)
            decisions.extend(self._drain_decisions(process))
        for message in self.adversary.send(r, self._ctx):
            if message.sender not in byz:
                raise ModelViolationError(
                    f"adversary sent as process {message.sender}, which is not corrupted"
                )
            self._publish(message)

        votes, proposes, other = self._count(self._pool[pool_start:])

        # --- Receive phase --------------------------------------------------
        asynchronous = self.network.is_asynchronous(r)
        receivers = self.schedule.awake(r + 1) - self._corrupted_peek(r + 1)
        for pid in sorted(receivers):
            deliverable = [
                m for m in self._pool[self._cursor[pid]:] if m.message_id not in self._extras[pid]
            ]
            if asynchronous:
                chosen = list(self.adversary.deliver(r, pid, deliverable, self._ctx))
                allowed = {m.message_id for m in deliverable}
                for m in chosen:
                    if m.message_id not in allowed:
                        raise ModelViolationError(
                            "adversary delivered a message outside the deliverable set"
                        )
                self._extras[pid].update(m.message_id for m in chosen)
                delivered = chosen
            else:
                delivered = deliverable
                self._cursor[pid] = len(self._pool)
                self._extras[pid].clear()
            if delivered:
                self.processes[pid].receive(r, delivered)

        self.trace.rounds.append(
            RoundRecord(
                round=r,
                awake=frozenset(awake),
                honest=frozenset(honest),
                byzantine=frozenset(byz),
                asynchronous=asynchronous,
                votes_sent=votes,
                proposes_sent=proposes,
                other_sent=other,
            )
        )
        self.trace.decisions.extend(decisions)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _corrupted(self, r: int) -> frozenset[int]:
        byz = self.adversary.byzantine(r)
        if self.adversary.growing and not byz >= self._byz_prev:
            raise ModelViolationError("growing adversary shrank its corrupted set")
        self._byz_prev = byz
        for pid in byz:
            self._ctx.grant_key(pid)
        return byz

    def _corrupted_peek(self, r: int) -> frozenset[int]:
        # Reading B_{r+1} for the receive phase must not disturb the
        # monotonicity tracking that _corrupted() performs.
        return self.adversary.byzantine(r)

    def _publish(self, message: Message) -> None:
        if message.message_id in self._pool_ids:
            return
        self._pool_ids.add(message.message_id)
        self._pool.append(message)
        if isinstance(message, ProposeMessage) and message.block is not None:
            self._tree_buffer.offer(message.block)

    @staticmethod
    def _count(messages: Iterable[Message]) -> tuple[int, int, int]:
        votes = proposes = other = 0
        for message in messages:
            if isinstance(message, VoteMessage):
                votes += 1
            elif isinstance(message, ProposeMessage):
                proposes += 1
            else:
                other += 1
        return votes, proposes, other

    @staticmethod
    def _drain_decisions(process: Process) -> list[DecisionEvent]:
        pop = getattr(process, "pop_decisions", None)
        if pop is None:
            return []
        return list(pop())
