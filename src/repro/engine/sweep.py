"""Parallel experiment sweeps: grids, streaming fan-out, per-cell reducers.

The engine opened n ≫ 100 runs; this module opens n ≫ 100 *runs at
once*, and — since PR 3 — entire experiment *grids*:

* :class:`SweepSpec` expands a parameter grid (cartesian axes, with
  later axes allowed to depend on earlier ones) into seeded
  :class:`~repro.engine.spec.RunSpec`\\ s via a picklable factory, in a
  deterministic "nested for loops" order.
* :func:`stream_sweep` executes a grid (or a plain spec sequence)
  across a process pool and **yields** :class:`SweepOutcome`\\ s in spec
  order with bounded memory: at most one *window* of results is ever
  buffered, so grids that do not fit in memory stream through.
* A per-cell **reducer** hook runs inside the worker process, so a
  sweep ships back measurement rows instead of whole traces — the
  process boundary then carries a dict per cell, not a block tree.
* :class:`ParallelSweepBackend` remains the backend-shaped seam
  (``execute_many`` is now a thin collect over :func:`stream_sweep`).
* :class:`SweepJournal` — since PR 4 — checkpoints a sweep's reduced
  rows to an append-only JSONL file, keyed by a content-derived **cell
  digest** (grid name + resolved params + seeded spec + backend
  identity).  ``stream_sweep(..., journal=..., resume=True)`` skips
  already-journaled cells and yields their cached rows *in cell order*,
  so an interrupted multi-hour grid resumes bit-identically instead of
  re-paying finished cells — and a changed grid, seed, or backend
  configuration invalidates stale rows instead of silently reusing
  them.  Every journal opens with a one-line **manifest header**
  (grid name, backend identity, code version); ``resume=`` rejects a
  mismatched manifest (:class:`SweepJournalMismatch`) instead of
  silently mixing rows written by another grid, substrate, or commit.

Design points:

* **Deterministic.**  Cells expand in axis order, results come back in
  cell order, and each run is seeded by its spec, so a sweep equals the
  serial loop run-for-run (pinned by ``tests/engine/test_sweep.py`` and
  the real-grid equivalence suite in
  ``tests/engine/test_sweep_equivalence.py``).
* **Shared nothing.**  Each worker builds its own key registry, ingest
  pipeline, and bus; the sweep parallelises embarrassingly.
* **Picklable by construction.**  Factories and reducers must be
  importable callables (module-level functions, classes, or
  ``functools.partial`` of them) — the paper's grids live in
  :mod:`repro.analysis.batch` for exactly this reason.
* **Graceful degradation.**  Sandboxes that cannot spawn processes
  (and ``max_workers=0`` explicitly) run the same cells serially,
  in-process, yielding identical outcomes lazily.
"""

from __future__ import annotations

import json
import os
from collections.abc import Callable, Iterator, Mapping, Sequence
from typing import Literal
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path

from repro.engine.backend import EngineResult, ExecutionBackend
from repro.engine.spec import RunSpec, canonical_form, stable_digest

#: A per-cell reducer: ``(result, params) -> row``.  Runs in the worker
#: process; whatever it returns crosses the process boundary *instead
#: of* the full :class:`EngineResult`.
Reducer = Callable[[EngineResult, dict], object]


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: its position, its parameters, and its run."""

    index: int
    params: dict
    spec: RunSpec


@dataclass(frozen=True)
class SweepOutcome:
    """What :func:`stream_sweep` yields for one cell, in cell order.

    Exactly one of ``result`` / ``row`` is populated: with a reducer the
    worker ships back only ``row``; without one it ships the full
    :class:`EngineResult` (extras stripped — a sweep's product is traces
    and measurements, not substrate handles).
    """

    index: int
    params: dict
    result: EngineResult | None = None
    row: object | None = None


def _default_factory(**params) -> RunSpec:
    return RunSpec(**params)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter grid over :class:`RunSpec`\\ s.

    Attributes:
        axes: ordered mapping ``name -> values``; cells enumerate the
            cartesian product with the *last* axis varying fastest
            (exactly the order of the equivalent nested ``for`` loops).
            A value may also be a callable ``partial_params -> values``,
            so an axis can depend on the axes before it (e.g. the
            Theorem-2 grid sweeps ``pi`` up to ``eta + 2`` per ``eta``).
        base: constant parameters merged under every cell's axis values.
        factory: picklable ``(**params) -> RunSpec``; defaults to
            ``RunSpec(**params)``, so a grid over plain spec fields
            needs no factory at all.
        keep: optional predicate over the merged params; cells it
            rejects are skipped (indices stay dense over kept cells).
    """

    axes: Mapping[str, object]
    base: Mapping[str, object] = field(default_factory=dict)
    factory: Callable[..., RunSpec] | None = None
    keep: Callable[[dict], bool] | None = None

    def cells(self) -> list[SweepCell]:
        """Expand the grid into cells, in deterministic axis order."""
        factory = self.factory or _default_factory
        axis_items = list(self.axes.items())
        cells: list[SweepCell] = []

        def expand(depth: int, params: dict) -> None:
            if depth == len(axis_items):
                if self.keep is not None and not self.keep(params):
                    return
                cells.append(
                    SweepCell(index=len(cells), params=dict(params), spec=factory(**params))
                )
                return
            name, values = axis_items[depth]
            for value in values(params) if callable(values) else values:
                params[name] = value
                expand(depth + 1, params)
                del params[name]

        expand(0, dict(self.base))
        return cells

    def specs(self) -> list[RunSpec]:
        """Just the expanded :class:`RunSpec`\\ s, in cell order."""
        return [cell.spec for cell in self.cells()]


def _as_cells(grid: SweepSpec | Sequence[SweepCell] | Sequence[RunSpec]) -> list[SweepCell]:
    if isinstance(grid, SweepSpec):
        return grid.cells()
    cells: list[SweepCell] = []
    for i, item in enumerate(grid):
        if isinstance(item, SweepCell):
            cells.append(item)
        else:
            cells.append(SweepCell(index=i, params={}, spec=item))
    return cells


# ----------------------------------------------------------------------
# The sweep checkpoint journal
# ----------------------------------------------------------------------
def _encode_row(value: object) -> object:
    """Encode a reduced row as tagged JSON that round-trips *exactly*.

    Resume equivalence demands bit-identical rows, so every container
    the reducers emit keeps its type across the journal: fractions,
    sets/frozensets (content-sorted — set equality is order-free),
    tuples, bytes, and dicts (insertion order preserved).  Anything
    else is a loud :class:`TypeError` — a row the journal cannot
    faithfully replay must never be silently approximated.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return {"__float__": repr(value)}
    if isinstance(value, Fraction):
        return {"__fraction__": [value.numerator, value.denominator]}
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, (set, frozenset)):
        tag = "__set__" if isinstance(value, set) else "__frozenset__"
        encoded = [_encode_row(v) for v in value]
        return {tag: sorted(encoded, key=lambda e: json.dumps(e, sort_keys=True))}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_row(v) for v in value]}
    if isinstance(value, list):
        return [_encode_row(v) for v in value]
    if isinstance(value, dict):
        return {"__dict__": [[_encode_row(k), _encode_row(v)] for k, v in value.items()]}
    raise TypeError(
        f"journaled sweep rows must be plain data (dict/list/tuple/set/"
        f"Fraction/scalars), got {type(value).__name__!r}"
    )


def _decode_row(value: object) -> object:
    """Invert :func:`_encode_row` (raises on malformed entries)."""
    if isinstance(value, list):
        return [_decode_row(v) for v in value]
    if isinstance(value, dict):
        if len(value) != 1:
            raise ValueError("malformed journal entry: untagged object")
        (tag, payload), = value.items()
        if tag == "__float__":
            return float(payload)
        if tag == "__fraction__":
            numerator, denominator = payload
            return Fraction(numerator, denominator)
        if tag == "__bytes__":
            return bytes.fromhex(payload)
        if tag == "__set__":
            return {_decode_row(v) for v in payload}
        if tag == "__frozenset__":
            return frozenset(_decode_row(v) for v in payload)
        if tag == "__tuple__":
            return tuple(_decode_row(v) for v in payload)
        if tag == "__dict__":
            return {_decode_row(k): _decode_row(v) for k, v in payload}
        raise ValueError(f"malformed journal entry: unknown tag {tag!r}")
    return value


class SweepJournalMismatch(ValueError):
    """Raised when ``resume=`` meets a journal written by a different
    grid, backend, or code version (see :meth:`SweepJournal.manifest`)."""


class SweepJournal:
    """An append-only JSONL checkpoint of a sweep's reduced rows.

    The first line is a **manifest header** ``{"manifest": {"grid":
    ..., "backend": ..., "version": ...}}`` recording the grid name,
    the executing backend's identity digest, and the code version that
    wrote the file.  ``resume=`` refuses a journal whose manifest does
    not match the resuming sweep (:class:`SweepJournalMismatch`)
    instead of silently mixing rows across grids, backends, or
    commits; an empty or missing file is always a valid (empty)
    journal.

    Then one line per executed cell: ``{"key": <digest>, "index": ...,
    "params": ..., "row": ...}``.  The ``key`` is the content-derived
    cell digest (:meth:`cell_key`) — grid name, resolved cell params,
    the seeded :class:`RunSpec` itself, and the executing backend's
    identity — so a resumed sweep reuses a row only when the cell would
    recompute it bit-identically.  ``params`` and ``index`` are
    diagnostics for humans reading the file; resolution goes by ``key``
    alone.

    Durability: appends are buffered and fsync'd once per window
    (:func:`stream_sweep` drives the cadence) plus once at close, so a
    crash loses at most the current window.  :meth:`load` tolerates a
    torn final line — and any other undecodable line — by discarding
    it: those cells simply re-run.

    Args:
        path: the JSONL file (parent directories are created lazily).
            Use one file per grid: a non-``resume`` sweep truncates the
            file, so sharing one path across grids would discard the
            other grid's checkpoints.
        grid: the grid's name, mixed into every cell key so rows
            journaled for one named grid are never reused by another.
        flush_every: fsync cadence override in fresh rows (default:
            the sweep's window; every row in the serial lane).
    """

    def __init__(
        self, path: str | os.PathLike, grid: str = "", flush_every: int | None = None
    ) -> None:
        if flush_every is not None and flush_every <= 0:
            raise ValueError("flush_every must be positive")
        self.path = Path(path)
        self.grid = grid
        self.flush_every = flush_every
        self._fh = None

    def cell_key(
        self,
        cell: SweepCell,
        backend: ExecutionBackend,
        backend_identity: object | None = None,
    ) -> str:
        """The content digest that keys ``cell``'s row in this journal.

        ``backend_identity`` lets bulk callers hoist the (sweep-invariant)
        ``backend.identity()`` computation out of their per-cell loop.
        """
        if backend_identity is None:
            backend_identity = backend.identity()
        return stable_digest(
            [
                "sweep-cell",
                self.grid,
                canonical_form(cell.params),
                canonical_form(cell.spec),
                backend_identity,
            ]
        )

    def manifest(self, backend: ExecutionBackend) -> dict[str, str]:
        """The manifest header this journal writes for ``backend``."""
        from repro import __version__

        return {
            "grid": self.grid,
            "backend": stable_digest(backend.identity()),
            "version": __version__,
        }

    def load_manifest(self) -> dict | None:
        """The manifest of the first non-blank line, if it is one.

        Reads only the head of the file — resuming a large journal must
        not pay a second full-file pass just to validate the header.
        """
        try:
            with open(self.path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        return None  # torn or foreign header
                    if isinstance(entry, dict) and isinstance(entry.get("manifest"), dict):
                        return entry["manifest"]
                    return None  # first readable line is not a manifest header
        except (FileNotFoundError, OSError):
            return None
        return None

    def _validate_resume(
        self, backend: ExecutionBackend, stored: dict | None, has_rows: bool
    ) -> None:
        """Reject resuming from a journal another context wrote.

        A manifest that *is* present must match this sweep's grid name,
        backend identity, and code version; readable rows under a
        missing/torn manifest are rows of unknown provenance and are
        rejected too.  A file with nothing reusable — missing, empty,
        or only torn/garbage lines — is a valid fresh journal: crashes
        mid-header must not strand the resume flow.  Operates on
        pre-read state (``stored`` manifest, row presence) so the
        resume path pays no extra file I/O.
        """
        if stored is not None:
            expected = self.manifest(backend)
            if stored != expected:
                changed = sorted(
                    field
                    for field in set(stored) | set(expected)
                    if stored.get(field) != expected.get(field)
                )
                raise SweepJournalMismatch(
                    f"journal {self.path} was written by a different {', '.join(changed)} "
                    f"(journal manifest {stored}, this sweep {expected}); refusing to mix "
                    "rows (re-run without resume= to start a fresh journal)"
                )
            return
        if has_rows:
            raise SweepJournalMismatch(
                f"journal {self.path} has rows but no manifest header; refusing to "
                "resume from rows of unknown provenance (re-run without resume= to "
                "start a fresh journal)"
            )

    def load(self) -> dict[str, object]:
        """``key -> decoded row`` for every readable line (last wins).

        A missing file is an empty journal; a torn or corrupt line is
        discarded (its cell re-runs), never fatal.
        """
        rows: dict[str, object] = {}
        try:
            text = self.path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return rows
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                key = entry["key"]
                row = _decode_row(entry["row"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                continue
            if isinstance(key, str):
                rows[key] = row
        return rows

    # ------------------------------------------------------------------
    # Writing (driven by stream_sweep)
    # ------------------------------------------------------------------
    def open(self, truncate: bool, manifest: Mapping[str, str] | None = None) -> None:
        """Open for appending (``truncate=True`` starts a fresh journal).

        ``manifest`` is written (and fsync'd) as the first line whenever
        the journal starts empty — truncated, missing, or zero-length —
        so even a crash before the first row leaves an attributable file.
        Appending over a file whose last line is torn (a crash between
        write and fsync leaves no trailing newline) first closes that
        line, so the fragment stays an isolated discardable line instead
        of merging with — and corrupting — the next appended row.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        starts_empty = truncate or not self.path.exists() or self.path.stat().st_size == 0
        torn_tail = False
        if not starts_empty:
            with open(self.path, "rb") as probe:
                probe.seek(-1, os.SEEK_END)
                torn_tail = probe.read(1) != b"\n"
        self._fh = open(self.path, "w" if truncate else "a", encoding="utf-8")
        if torn_tail:
            self._fh.write("\n")
        if manifest is not None and starts_empty:
            self._fh.write(json.dumps({"manifest": dict(manifest)}, separators=(",", ":")) + "\n")
            self.flush()

    def append(self, key: str, outcome: SweepOutcome) -> None:
        """Buffer one executed cell's row (flushed per window)."""
        entry = {
            "key": key,
            "index": outcome.index,
            "params": _encode_row(outcome.params),
            "row": _encode_row(outcome.row),
        }
        self._fh.write(json.dumps(entry, separators=(",", ":")) + "\n")

    def flush(self) -> None:
        """Flush buffered rows and fsync them to disk."""
        if self._fh is None:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Flush, fsync, and close (safe to call when never opened)."""
        if self._fh is None:
            return
        try:
            self.flush()
        finally:
            self._fh.close()
            self._fh = None


def _execute_cell(payload: tuple[ExecutionBackend, SweepCell, Reducer | None]) -> SweepOutcome:
    """Worker entry point: run one cell, reduce or strip, ship back."""
    backend, cell, reducer = payload
    result = backend.execute(cell.spec)
    if reducer is not None:
        return SweepOutcome(index=cell.index, params=cell.params, row=reducer(result, cell.params))
    result.extras = {}
    return SweepOutcome(index=cell.index, params=cell.params, result=result)


def default_worker_count() -> int:
    """Workers a sweep uses when unspecified (cores − 1, at least 1)."""
    return max(1, (os.cpu_count() or 2) - 1)


def _stream_cells(
    cells: Sequence[SweepCell],
    reducer: Reducer | None,
    backend: ExecutionBackend,
    workers: int,
    chunksize: int,
    window: int | None,
) -> Iterator[SweepOutcome]:
    """The execution core: run ``cells`` and yield outcomes in order."""
    payloads = [(backend, cell, reducer) for cell in cells]
    if workers <= 0 or len(cells) <= 1:
        for payload in payloads:
            yield _execute_cell(payload)
        return

    window = window if window is not None else max(1, 4 * workers * chunksize)
    try:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(cells)))
    except (OSError, PermissionError):
        pool = None
    if pool is None:
        for payload in payloads:
            yield _execute_cell(payload)
        return
    pool_ever_worked = False
    with pool:
        for start in range(0, len(payloads), window):
            chunk = payloads[start : start + window]
            produced = 0
            try:
                for outcome in pool.map(_execute_cell, chunk, chunksize=chunksize):
                    yield outcome
                    produced += 1
                    pool_ever_worked = True
            except (BrokenProcessPool, OSError, PermissionError):
                if pool_ever_worked:
                    # The pool ran fine and then a worker died mid-grid
                    # (OOM kill, segfault): re-running that cell in the
                    # parent would risk the parent too — surface it.
                    raise
                # The pool never produced anything: this sandbox cannot
                # actually spawn workers.  Runs are deterministic and
                # side-effect free, so the serial path yields the
                # identical stream.
                for payload in chunk[produced:]:
                    yield _execute_cell(payload)
                for payload in payloads[start + len(chunk) :]:
                    yield _execute_cell(payload)
                return


def stream_sweep(
    grid: SweepSpec | Sequence[SweepCell] | Sequence[RunSpec],
    reducer: Reducer | None = None,
    backend: ExecutionBackend | None = None,
    max_workers: int | None = None,
    chunksize: int = 1,
    window: int | None = None,
    journal: SweepJournal | str | os.PathLike | None = None,
    resume: bool | Literal["auto"] = False,
) -> Iterator[SweepOutcome]:
    """Execute ``grid`` and yield :class:`SweepOutcome`\\ s in cell order.

    Memory is bounded by the *window*: the pool executes ``window``
    cells at a time (default ``4 × workers × chunksize``), so at most
    one window of results — rows, with a ``reducer`` — is ever buffered
    between the pool and the consumer.  The serial path (``max_workers=0``,
    a single cell, a non-``poolable`` backend such as the asyncio
    deployment, or a sandbox that cannot spawn processes) executes
    lazily, one cell per ``next()``.

    ``reducer`` must be picklable (an importable function/class or a
    ``functools.partial`` of one); it runs inside the worker, and the
    sweep ships back its return value instead of the full result.

    ``journal`` (a :class:`SweepJournal` or a path) checkpoints every
    executed cell's reduced row, fsync'd once per window.  With
    ``resume=True``, cells whose content digest is already journaled
    are *not* re-executed: their cached rows are yielded at their
    position in cell order, interleaved with freshly executed cells, so
    an interrupted-then-resumed sweep is outcome-for-outcome identical
    to an uninterrupted one.  A journal whose manifest header names a
    different grid, backend, or code version raises
    :class:`SweepJournalMismatch`; ``resume="auto"`` instead restarts
    such a stale journal fresh (the always-resume bench lane).  Without
    ``resume``, an existing journal file is truncated and rewritten.
    Journaling requires a reducer (the journal persists rows, not full
    results); ``resume`` without a journal is ignored.
    """
    if chunksize <= 0:
        raise ValueError("chunksize must be positive")
    if window is not None and window <= 0:
        raise ValueError("window must be positive")
    if backend is None:
        from repro.engine.sim_backend import SimulationBackend

        backend = SimulationBackend()
    cells = _as_cells(grid)
    workers = default_worker_count() if max_workers is None else max_workers
    if not getattr(backend, "poolable", True):
        workers = 0  # real-time substrates run the serial lane
    if journal is None:
        yield from _stream_cells(cells, reducer, backend, workers, chunksize, window)
        return
    if reducer is None:
        raise ValueError(
            "journaled sweeps need a reducer: the journal persists reduced rows, "
            "not full EngineResults"
        )
    if not isinstance(journal, SweepJournal):
        journal = SweepJournal(journal)
    identity = backend.identity()  # sweep-invariant: compute once, not per cell
    keys = [journal.cell_key(cell, backend, backend_identity=identity) for cell in cells]
    if resume:
        stored = journal.load_manifest()  # head-only read
        cached = journal.load()  # the one full-file read of the resume path
        try:
            journal._validate_resume(backend, stored, bool(cached))
        except SweepJournalMismatch:
            if resume != "auto":
                raise
            # resume="auto": a stale journal (other grid/backend/version)
            # restarts fresh instead of failing — the always-resume bench
            # lane wants best-effort reuse, never a crash.
            stored, cached = None, {}
        # Nothing reusable (missing, empty, torn-header, or auto-reset):
        # truncate so the manifest is again the first line.
        truncate = not cached and stored is None
    else:
        cached = {}
        truncate = True
    pending = [cell for cell, key in zip(cells, keys) if key not in cached]
    # The serial lane has a one-cell window, and its cells (real-time
    # deployments especially) are the expensive ones — fsync each.
    if workers <= 0 or len(pending) <= 1:
        flush_every = journal.flush_every or 1
    else:
        flush_every = journal.flush_every or window or max(1, 4 * workers * chunksize)
    fresh = _stream_cells(pending, reducer, backend, workers, chunksize, window)
    journal.open(truncate=truncate, manifest=journal.manifest(backend))
    try:
        appended = 0
        for cell, key in zip(cells, keys):
            if key in cached:
                yield SweepOutcome(index=cell.index, params=dict(cell.params), row=cached[key])
                continue
            outcome = next(fresh)
            journal.append(key, outcome)
            appended += 1
            if appended % flush_every == 0:
                journal.flush()
            yield outcome
    finally:
        fresh.close()
        journal.close()


def sweep_rows(
    grid: SweepSpec | Sequence[SweepCell] | Sequence[RunSpec],
    reducer: Reducer,
    backend: ExecutionBackend | None = None,
    max_workers: int | None = None,
    chunksize: int = 1,
    window: int | None = None,
    journal: SweepJournal | str | os.PathLike | None = None,
    resume: bool | Literal["auto"] = False,
) -> list[object]:
    """Collect every cell's reduced row, in cell order (one-call sweep)."""
    return [
        outcome.row
        for outcome in stream_sweep(
            grid,
            reducer=reducer,
            backend=backend,
            max_workers=max_workers,
            chunksize=chunksize,
            window=window,
            journal=journal,
            resume=resume,
        )
    ]


class ParallelSweepBackend(ExecutionBackend):
    """Executes :class:`RunSpec` sweeps across a process pool.

    Args:
        inner: the single-run backend each worker executes specs on
            (default: a fresh round-simulator backend).
        max_workers: pool size; ``0`` forces the serial in-process path
            (useful under debuggers and in constrained CI sandboxes).
        chunksize: specs handed to a worker per dispatch — raise it for
            sweeps of many very short runs to amortise pickling.
    """

    name = "parallel-sweep"

    def __init__(
        self,
        inner: ExecutionBackend | None = None,
        max_workers: int | None = None,
        chunksize: int = 1,
    ) -> None:
        if inner is None:
            from repro.engine.sim_backend import SimulationBackend

            inner = SimulationBackend()
        if chunksize <= 0:
            raise ValueError("chunksize must be positive")
        self.inner = inner
        self.max_workers = default_worker_count() if max_workers is None else max_workers
        self.chunksize = chunksize

    def execute(self, spec: RunSpec) -> EngineResult:
        """Run one spec on the wrapped backend (no pool, extras intact)."""
        return self.inner.execute(spec)

    def execute_many(self, specs: Sequence[RunSpec]) -> list[EngineResult]:
        """Run every spec; results in spec order, extras stripped.

        Falls back to the serial path when the pool would not help
        (zero workers, one spec) or cannot be created (sandboxes
        without process-spawning privileges).
        """
        return [
            outcome.result
            for outcome in stream_sweep(
                list(specs),
                backend=self.inner,
                max_workers=self.max_workers,
                chunksize=self.chunksize,
            )
        ]


def run_sweep(
    specs: Sequence[RunSpec],
    backend: ExecutionBackend | None = None,
    max_workers: int | None = None,
    chunksize: int = 1,
) -> list[EngineResult]:
    """One-call parallel sweep over ``specs`` (simulator backend default)."""
    return ParallelSweepBackend(
        inner=backend, max_workers=max_workers, chunksize=chunksize
    ).execute_many(specs)
