"""Parallel experiment sweeps: grids, streaming fan-out, per-cell reducers.

The engine opened n ≫ 100 runs; this module opens n ≫ 100 *runs at
once*, and — since PR 3 — entire experiment *grids*:

* :class:`SweepSpec` expands a parameter grid (cartesian axes, with
  later axes allowed to depend on earlier ones) into seeded
  :class:`~repro.engine.spec.RunSpec`\\ s via a picklable factory, in a
  deterministic "nested for loops" order.
* :func:`stream_sweep` executes a grid (or a plain spec sequence)
  across a process pool and **yields** :class:`SweepOutcome`\\ s in spec
  order with bounded memory: at most one *window* of results is ever
  buffered, so grids that do not fit in memory stream through.
* A per-cell **reducer** hook runs inside the worker process, so a
  sweep ships back measurement rows instead of whole traces — the
  process boundary then carries a dict per cell, not a block tree.
* :class:`ParallelSweepBackend` remains the backend-shaped seam
  (``execute_many`` is now a thin collect over :func:`stream_sweep`).

Design points:

* **Deterministic.**  Cells expand in axis order, results come back in
  cell order, and each run is seeded by its spec, so a sweep equals the
  serial loop run-for-run (pinned by ``tests/engine/test_sweep.py`` and
  the real-grid equivalence suite in
  ``tests/engine/test_sweep_equivalence.py``).
* **Shared nothing.**  Each worker builds its own key registry, ingest
  pipeline, and bus; the sweep parallelises embarrassingly.
* **Picklable by construction.**  Factories and reducers must be
  importable callables (module-level functions, classes, or
  ``functools.partial`` of them) — the paper's grids live in
  :mod:`repro.analysis.batch` for exactly this reason.
* **Graceful degradation.**  Sandboxes that cannot spawn processes
  (and ``max_workers=0`` explicitly) run the same cells serially,
  in-process, yielding identical outcomes lazily.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterator, Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.engine.backend import EngineResult, ExecutionBackend
from repro.engine.spec import RunSpec

#: A per-cell reducer: ``(result, params) -> row``.  Runs in the worker
#: process; whatever it returns crosses the process boundary *instead
#: of* the full :class:`EngineResult`.
Reducer = Callable[[EngineResult, dict], object]


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: its position, its parameters, and its run."""

    index: int
    params: dict
    spec: RunSpec


@dataclass(frozen=True)
class SweepOutcome:
    """What :func:`stream_sweep` yields for one cell, in cell order.

    Exactly one of ``result`` / ``row`` is populated: with a reducer the
    worker ships back only ``row``; without one it ships the full
    :class:`EngineResult` (extras stripped — a sweep's product is traces
    and measurements, not substrate handles).
    """

    index: int
    params: dict
    result: EngineResult | None = None
    row: object | None = None


def _default_factory(**params) -> RunSpec:
    return RunSpec(**params)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter grid over :class:`RunSpec`\\ s.

    Attributes:
        axes: ordered mapping ``name -> values``; cells enumerate the
            cartesian product with the *last* axis varying fastest
            (exactly the order of the equivalent nested ``for`` loops).
            A value may also be a callable ``partial_params -> values``,
            so an axis can depend on the axes before it (e.g. the
            Theorem-2 grid sweeps ``pi`` up to ``eta + 2`` per ``eta``).
        base: constant parameters merged under every cell's axis values.
        factory: picklable ``(**params) -> RunSpec``; defaults to
            ``RunSpec(**params)``, so a grid over plain spec fields
            needs no factory at all.
        keep: optional predicate over the merged params; cells it
            rejects are skipped (indices stay dense over kept cells).
    """

    axes: Mapping[str, object]
    base: Mapping[str, object] = field(default_factory=dict)
    factory: Callable[..., RunSpec] | None = None
    keep: Callable[[dict], bool] | None = None

    def cells(self) -> list[SweepCell]:
        """Expand the grid into cells, in deterministic axis order."""
        factory = self.factory or _default_factory
        axis_items = list(self.axes.items())
        cells: list[SweepCell] = []

        def expand(depth: int, params: dict) -> None:
            if depth == len(axis_items):
                if self.keep is not None and not self.keep(params):
                    return
                cells.append(
                    SweepCell(index=len(cells), params=dict(params), spec=factory(**params))
                )
                return
            name, values = axis_items[depth]
            for value in values(params) if callable(values) else values:
                params[name] = value
                expand(depth + 1, params)
                del params[name]

        expand(0, dict(self.base))
        return cells

    def specs(self) -> list[RunSpec]:
        """Just the expanded :class:`RunSpec`\\ s, in cell order."""
        return [cell.spec for cell in self.cells()]


def _as_cells(grid: SweepSpec | Sequence[SweepCell] | Sequence[RunSpec]) -> list[SweepCell]:
    if isinstance(grid, SweepSpec):
        return grid.cells()
    cells: list[SweepCell] = []
    for i, item in enumerate(grid):
        if isinstance(item, SweepCell):
            cells.append(item)
        else:
            cells.append(SweepCell(index=i, params={}, spec=item))
    return cells


def _execute_cell(payload: tuple[ExecutionBackend, SweepCell, Reducer | None]) -> SweepOutcome:
    """Worker entry point: run one cell, reduce or strip, ship back."""
    backend, cell, reducer = payload
    result = backend.execute(cell.spec)
    if reducer is not None:
        return SweepOutcome(index=cell.index, params=cell.params, row=reducer(result, cell.params))
    result.extras = {}
    return SweepOutcome(index=cell.index, params=cell.params, result=result)


def default_worker_count() -> int:
    """Workers a sweep uses when unspecified (cores − 1, at least 1)."""
    return max(1, (os.cpu_count() or 2) - 1)


def stream_sweep(
    grid: SweepSpec | Sequence[SweepCell] | Sequence[RunSpec],
    reducer: Reducer | None = None,
    backend: ExecutionBackend | None = None,
    max_workers: int | None = None,
    chunksize: int = 1,
    window: int | None = None,
) -> Iterator[SweepOutcome]:
    """Execute ``grid`` and yield :class:`SweepOutcome`\\ s in cell order.

    Memory is bounded by the *window*: the pool executes ``window``
    cells at a time (default ``4 × workers × chunksize``), so at most
    one window of results — rows, with a ``reducer`` — is ever buffered
    between the pool and the consumer.  The serial path (``max_workers=0``,
    a single cell, or a sandbox that cannot spawn processes) executes
    lazily, one cell per ``next()``.

    ``reducer`` must be picklable (an importable function/class or a
    ``functools.partial`` of one); it runs inside the worker, and the
    sweep ships back its return value instead of the full result.
    """
    if chunksize <= 0:
        raise ValueError("chunksize must be positive")
    if window is not None and window <= 0:
        raise ValueError("window must be positive")
    if backend is None:
        from repro.engine.sim_backend import SimulationBackend

        backend = SimulationBackend()
    cells = _as_cells(grid)
    workers = default_worker_count() if max_workers is None else max_workers
    payloads = [(backend, cell, reducer) for cell in cells]
    if workers <= 0 or len(cells) <= 1:
        for payload in payloads:
            yield _execute_cell(payload)
        return

    window = window if window is not None else max(1, 4 * workers * chunksize)
    try:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(cells)))
    except (OSError, PermissionError):
        pool = None
    if pool is None:
        for payload in payloads:
            yield _execute_cell(payload)
        return
    pool_ever_worked = False
    with pool:
        for start in range(0, len(payloads), window):
            chunk = payloads[start : start + window]
            produced = 0
            try:
                for outcome in pool.map(_execute_cell, chunk, chunksize=chunksize):
                    yield outcome
                    produced += 1
                    pool_ever_worked = True
            except (BrokenProcessPool, OSError, PermissionError):
                if pool_ever_worked:
                    # The pool ran fine and then a worker died mid-grid
                    # (OOM kill, segfault): re-running that cell in the
                    # parent would risk the parent too — surface it.
                    raise
                # The pool never produced anything: this sandbox cannot
                # actually spawn workers.  Runs are deterministic and
                # side-effect free, so the serial path yields the
                # identical stream.
                for payload in chunk[produced:]:
                    yield _execute_cell(payload)
                for payload in payloads[start + len(chunk) :]:
                    yield _execute_cell(payload)
                return


def sweep_rows(
    grid: SweepSpec | Sequence[SweepCell] | Sequence[RunSpec],
    reducer: Reducer,
    backend: ExecutionBackend | None = None,
    max_workers: int | None = None,
    chunksize: int = 1,
    window: int | None = None,
) -> list[object]:
    """Collect every cell's reduced row, in cell order (one-call sweep)."""
    return [
        outcome.row
        for outcome in stream_sweep(
            grid,
            reducer=reducer,
            backend=backend,
            max_workers=max_workers,
            chunksize=chunksize,
            window=window,
        )
    ]


class ParallelSweepBackend(ExecutionBackend):
    """Executes :class:`RunSpec` sweeps across a process pool.

    Args:
        inner: the single-run backend each worker executes specs on
            (default: a fresh round-simulator backend).
        max_workers: pool size; ``0`` forces the serial in-process path
            (useful under debuggers and in constrained CI sandboxes).
        chunksize: specs handed to a worker per dispatch — raise it for
            sweeps of many very short runs to amortise pickling.
    """

    name = "parallel-sweep"

    def __init__(
        self,
        inner: ExecutionBackend | None = None,
        max_workers: int | None = None,
        chunksize: int = 1,
    ) -> None:
        if inner is None:
            from repro.engine.sim_backend import SimulationBackend

            inner = SimulationBackend()
        if chunksize <= 0:
            raise ValueError("chunksize must be positive")
        self.inner = inner
        self.max_workers = default_worker_count() if max_workers is None else max_workers
        self.chunksize = chunksize

    def execute(self, spec: RunSpec) -> EngineResult:
        """Run one spec on the wrapped backend (no pool, extras intact)."""
        return self.inner.execute(spec)

    def execute_many(self, specs: Sequence[RunSpec]) -> list[EngineResult]:
        """Run every spec; results in spec order, extras stripped.

        Falls back to the serial path when the pool would not help
        (zero workers, one spec) or cannot be created (sandboxes
        without process-spawning privileges).
        """
        return [
            outcome.result
            for outcome in stream_sweep(
                list(specs),
                backend=self.inner,
                max_workers=self.max_workers,
                chunksize=self.chunksize,
            )
        ]


def run_sweep(
    specs: Sequence[RunSpec],
    backend: ExecutionBackend | None = None,
    max_workers: int | None = None,
    chunksize: int = 1,
) -> list[EngineResult]:
    """One-call parallel sweep over ``specs`` (simulator backend default)."""
    return ParallelSweepBackend(
        inner=backend, max_workers=max_workers, chunksize=chunksize
    ).execute_many(specs)
