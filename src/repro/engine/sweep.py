"""Parallel experiment sweeps: fan independent runs across a process pool.

The engine opened n ≫ 100 runs; this module opens n ≫ 100 *runs at
once*.  A :class:`ParallelSweepBackend` wraps any single-run
:class:`~repro.engine.backend.ExecutionBackend` and executes a sequence
of independent :class:`~repro.engine.spec.RunSpec`\\ s across worker
processes — each worker builds its own key registry, ingest pipeline,
and bus, so runs share nothing and the sweep parallelises embarrassingly.

Design points:

* **Behind the backend seam.**  ``execute`` on a single spec delegates
  to the wrapped backend unchanged, so a sweep backend can be dropped
  anywhere a backend is expected; ``execute_many`` is the fan-out.
* **Deterministic.**  Results come back in spec order and each run is
  seeded by its spec, so a sweep equals the serial loop run-for-run
  (pinned by ``tests/engine/test_sweep.py``).
* **Lean results.**  Workers strip :attr:`EngineResult.extras` (live
  simulation objects, transports) before crossing the process boundary;
  a sweep's product is traces and measurements, not substrate handles.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor

from repro.engine.backend import EngineResult, ExecutionBackend
from repro.engine.spec import RunSpec


def _execute_stripped(payload: tuple[ExecutionBackend, RunSpec]) -> EngineResult:
    """Worker entry point: run one spec, drop substrate handles."""
    backend, spec = payload
    result = backend.execute(spec)
    result.extras = {}
    return result


def default_worker_count() -> int:
    """Workers a sweep uses when unspecified (cores − 1, at least 1)."""
    return max(1, (os.cpu_count() or 2) - 1)


class ParallelSweepBackend(ExecutionBackend):
    """Executes :class:`RunSpec` sweeps across a process pool.

    Args:
        inner: the single-run backend each worker executes specs on
            (default: a fresh round-simulator backend).
        max_workers: pool size; ``0`` forces the serial in-process path
            (useful under debuggers and in constrained CI sandboxes).
        chunksize: specs handed to a worker per dispatch — raise it for
            sweeps of many very short runs to amortise pickling.
    """

    name = "parallel-sweep"

    def __init__(
        self,
        inner: ExecutionBackend | None = None,
        max_workers: int | None = None,
        chunksize: int = 1,
    ) -> None:
        if inner is None:
            from repro.engine.sim_backend import SimulationBackend

            inner = SimulationBackend()
        if chunksize <= 0:
            raise ValueError("chunksize must be positive")
        self.inner = inner
        self.max_workers = default_worker_count() if max_workers is None else max_workers
        self.chunksize = chunksize

    def execute(self, spec: RunSpec) -> EngineResult:
        """Run one spec on the wrapped backend (no pool, extras intact)."""
        return self.inner.execute(spec)

    def execute_many(self, specs: Sequence[RunSpec]) -> list[EngineResult]:
        """Run every spec; results in spec order, extras stripped.

        Falls back to the serial path when the pool would not help
        (zero workers, one spec) or cannot be created (sandboxes
        without process-spawning privileges).
        """
        specs = list(specs)
        if self.max_workers <= 0 or len(specs) <= 1:
            return [_execute_stripped((self.inner, spec)) for spec in specs]
        payloads = [(self.inner, spec) for spec in specs]
        workers = min(self.max_workers, len(specs))
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(_execute_stripped, payloads, chunksize=self.chunksize))
        except (OSError, PermissionError):
            return [_execute_stripped(payload) for payload in payloads]


def run_sweep(
    specs: Sequence[RunSpec],
    backend: ExecutionBackend | None = None,
    max_workers: int | None = None,
    chunksize: int = 1,
) -> list[EngineResult]:
    """One-call parallel sweep over ``specs`` (simulator backend default)."""
    return ParallelSweepBackend(
        inner=backend, max_workers=max_workers, chunksize=chunksize
    ).execute_many(specs)
