"""The unified execution engine.

One protocol/adversary/schedule stack over both execution substrates:

* :mod:`repro.engine.registry` — named protocol constructors
  (:data:`PROTOCOLS`) shared by the simulator, the deployment runner,
  the CLI, and the scenario library.
* :mod:`repro.engine.bus` — the indexed :class:`MessageBus` behind the
  round simulator's dissemination layer (per-recipient cursors +
  backlogs over one round-bucketed log).
* :mod:`repro.engine.conditions` — substrate-independent
  :class:`NetworkConditions` (asynchronous periods that map to
  adversarial delivery in the simulator and latency surges in
  deployments).
* :mod:`repro.engine.spec` — the :class:`RunSpec` describing one run
  independently of where it executes.
* :mod:`repro.engine.backend` — the :class:`ExecutionBackend`
  interface, :class:`EngineResult`, and the model logic every backend
  shares (corruption tracking, honest/adversary message checks,
  transaction arrival, trace metadata).
* :mod:`repro.engine.ingest` — the shared message-ingestion pipeline
  (:class:`IngestPipeline`): run-wide cached verification, message
  interning, and per-delivery :class:`~repro.sleepy.messages.VerifiedBatch`
  sharing between receivers.
* :mod:`repro.engine.sim_backend` / :mod:`repro.engine.deploy_backend`
  — the two substrates.
* :mod:`repro.engine.sweep` — the sweep harness: :class:`SweepSpec`
  parameter grids, the chunked :func:`stream_sweep` generator (bounded
  memory, per-cell reducers), :class:`ParallelSweepBackend` /
  :func:`run_sweep`, fanning independent :class:`RunSpec` sweeps across
  a process pool — and :class:`SweepJournal`, the checkpoint/resume
  layer keying each cell's reduced row by a content-derived digest
  (:func:`~repro.engine.spec.stable_digest`).

Submodules that depend on the simulator or the protocol implementations
are loaded lazily (PEP 562) so that low-level modules may import the
bus and error types without cycles.
"""

from __future__ import annotations

from repro.engine.bus import MessageBus
from repro.engine.conditions import AsyncPeriod, NetworkConditions
from repro.engine.errors import ModelViolationError, UndeliverableMessageError
from repro.engine.spec import RunSpec

__all__ = [
    "AsyncPeriod",
    "CorruptionTracker",
    "DeploymentBackend",
    "EngineResult",
    "ExecutionBackend",
    "IngestPipeline",
    "MessageBus",
    "ModelViolationError",
    "NetworkConditions",
    "PROTOCOLS",
    "ParallelSweepBackend",
    "ProtocolRegistry",
    "ProtocolSpec",
    "RunSpec",
    "SimulationBackend",
    "SweepCell",
    "SweepJournal",
    "SweepOutcome",
    "SweepSpec",
    "UndeliverableMessageError",
    "canonical_form",
    "run_spec",
    "run_sweep",
    "stable_digest",
    "stream_sweep",
    "sweep_rows",
]

_LAZY = {
    "CorruptionTracker": "repro.engine.backend",
    "DeploymentBackend": "repro.engine.deploy_backend",
    "EngineResult": "repro.engine.backend",
    "ExecutionBackend": "repro.engine.backend",
    "IngestPipeline": "repro.engine.ingest",
    "PROTOCOLS": "repro.engine.registry",
    "ParallelSweepBackend": "repro.engine.sweep",
    "ProtocolRegistry": "repro.engine.registry",
    "ProtocolSpec": "repro.engine.registry",
    "SimulationBackend": "repro.engine.sim_backend",
    "SweepCell": "repro.engine.sweep",
    "SweepJournal": "repro.engine.sweep",
    "SweepOutcome": "repro.engine.sweep",
    "SweepSpec": "repro.engine.sweep",
    "canonical_form": "repro.engine.spec",
    "run_spec": "repro.engine.backend",
    "run_sweep": "repro.engine.sweep",
    "stable_digest": "repro.engine.spec",
    "stream_sweep": "repro.engine.sweep",
    "sweep_rows": "repro.engine.sweep",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(__all__)
