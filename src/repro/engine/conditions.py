"""Substrate-independent network conditions.

The paper's model has one notion of degraded networking — a bounded
asynchronous period ``[ra+1, ra+π]`` — but the two execution substrates
realise it differently: the round simulator gives the adversary
*logical* delivery control during those rounds
(:class:`~repro.sleepy.network.WindowedAsynchrony`), while the asyncio
deployment models the *physical* phenomenon, a latency surge past δ
(:class:`~repro.net.transport.SurgeWindow`).  A
:class:`NetworkConditions` value describes the periods once and maps to
either realisation, so the same scenario runs on both substrates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.transport import SurgeWindow
from repro.sleepy.network import (
    MultiWindowAsynchrony,
    NetworkModel,
    SynchronousNetwork,
    WindowedAsynchrony,
)

#: Latency multiplier that comfortably pushes one-way delays past δ
#: (base latency is δ/8 + up to δ/8 jitter in the deployment transport).
DEFAULT_SURGE_FACTOR = 25.0


@dataclass(frozen=True)
class AsyncPeriod:
    """One asynchronous period: rounds ``[ra + 1, ra + pi]``.

    ``surge_factor`` is how the period manifests physically — the
    latency multiplier a deployment applies while the period lasts.
    """

    ra: int
    pi: int
    surge_factor: float = DEFAULT_SURGE_FACTOR

    def __post_init__(self) -> None:
        if self.ra < 0:
            raise ValueError("ra must be non-negative")
        if self.pi < 0:
            raise ValueError("pi must be non-negative")
        if self.surge_factor < 1.0:
            raise ValueError("surge_factor must be >= 1 (asynchrony slows the network)")

    def covers(self, round_number: int) -> bool:
        return self.ra + 1 <= round_number <= self.ra + self.pi


@dataclass(frozen=True)
class NetworkConditions:
    """Zero or more disjoint asynchronous periods over one run."""

    periods: tuple[AsyncPeriod, ...] = ()

    def __post_init__(self) -> None:
        # Validate disjointness here so an overlapping description fails
        # identically on every backend (the simulator's MultiWindow model
        # would reject it; the surge realisation would silently accept).
        spans = sorted((p.ra + 1, p.ra + p.pi) for p in self.periods if p.pi > 0)
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            if start_b <= end_a:
                raise ValueError("asynchronous periods overlap")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def synchronous(cls) -> NetworkConditions:
        """Fully synchronous conditions (the paper's common case)."""
        return cls()

    @classmethod
    def window(
        cls, ra: int, pi: int, surge_factor: float = DEFAULT_SURGE_FACTOR
    ) -> NetworkConditions:
        """A single asynchronous period ``[ra + 1, ra + pi]``."""
        return cls(periods=(AsyncPeriod(ra, pi, surge_factor),))

    # ------------------------------------------------------------------
    # Realisations
    # ------------------------------------------------------------------
    def network_model(self) -> NetworkModel:
        """The logical realisation for the round simulator."""
        active = [p for p in self.periods if p.pi > 0]
        if not active:
            return SynchronousNetwork()
        if len(active) == 1:
            return WindowedAsynchrony(ra=active[0].ra, pi=active[0].pi)
        return MultiWindowAsynchrony([(p.ra, p.pi) for p in active])

    def surge_windows(self, round_s: float) -> tuple[SurgeWindow, ...]:
        """The physical realisation for the deployment transport."""
        return tuple(
            SurgeWindow(
                start_s=(p.ra + 1) * round_s,
                end_s=(p.ra + p.pi + 1) * round_s,
                factor=p.surge_factor,
            )
            for p in self.periods
            if p.pi > 0
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_asynchronous(self, round_number: int) -> bool:
        return any(p.covers(round_number) for p in self.periods)

    def async_rounds(self, horizon: int) -> frozenset[int]:
        """All asynchronous rounds below ``horizon``."""
        return frozenset(r for r in range(horizon) if self.is_asynchronous(r))


def conditions_from_network(network: NetworkModel) -> NetworkConditions:
    """Best-effort translation of a simulator network model.

    Lets a scenario written against the simulator's
    :class:`~repro.sleepy.network.NetworkModel` API run on the
    deployment backend.  Raises for custom models with no structural
    period description to translate.
    """
    if isinstance(network, SynchronousNetwork):
        return NetworkConditions.synchronous()
    if isinstance(network, WindowedAsynchrony):
        return NetworkConditions.window(network.ra, network.pi)
    if isinstance(network, MultiWindowAsynchrony):
        return NetworkConditions(
            periods=tuple(AsyncPeriod(ra, pi) for ra, pi in network.windows)
        )
    raise ValueError(
        f"cannot translate {type(network).__name__} into NetworkConditions; "
        "describe the scenario with NetworkConditions to run it on any backend"
    )
