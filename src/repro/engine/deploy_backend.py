"""The wall-clock asyncio deployment as an execution backend.

The same :class:`~repro.engine.spec.RunSpec` that drives the round
simulator is driven here by real rounds (Δ = 3δ) over an asyncio gossip
network with seeded latencies — protocol construction, transaction
arrival, corruption bookkeeping, and trace assembly all come from the
shared engine layer, so schedules, adversaries, and workloads written
for one substrate run on the other.

Substrate differences (inherent, not incidental):

* **Delivery control.**  The simulator grants the adversary *logical*
  per-receiver delivery choice during asynchronous rounds.  The
  deployment realises asynchrony *physically*: latencies surge past δ
  (:class:`~repro.net.transport.SurgeWindow`), so round-``r`` messages
  arrive rounds late but are never lost.  An adversary's ``deliver``
  hook is therefore not consulted here.
* **Corruption schedule.**  ``Adversary.byzantine`` is treated as a
  schedule and resolved round by round before the run starts (it may
  not depend on execution state — none of the model's adversaries do);
  the adversary's ``send`` power runs live, in round, against the
  omniscient block tree exactly as in the simulator.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field

from repro.chain.block import genesis_block
from repro.chain.store import BlockBuffer
from repro.chain.tree import BlockTree
from repro.crypto.signatures import KeyRegistry
from repro.engine.backend import (
    CorruptionTracker,
    EngineResult,
    ExecutionBackend,
    base_meta,
    check_adversary_message,
    count_kinds,
    offer_transactions,
)
from repro.engine.conditions import NetworkConditions, conditions_from_network
from repro.engine.ingest import IngestPipeline
from repro.engine.registry import PROTOCOLS, ProtocolRegistry
from repro.engine.spec import RunSpec
from repro.net.gossip import GossipNetwork, regular_topology
from repro.net.transport import SimTransport
from repro.runtime.clock import RoundClock
from repro.runtime.node import DeployedNode
from repro.sleepy.adversary import AdversaryContext
from repro.sleepy.messages import Message, ProposeMessage
from repro.sleepy.trace import RoundRecord, Trace


@dataclass
class DeploymentBackend(ExecutionBackend):
    """Executes a :class:`RunSpec` over real time, gossip, and latency."""

    delta_s: float = 0.02
    gossip_degree: int = 4
    #: Maximum absolute clock offset per node, in seconds.  The paper
    #: assumes synchronized clocks; in practice δ must absorb small
    #: skews, which this knob injects (each node's phase boundaries are
    #: shifted by a seeded offset in ``[-clock_skew_s, +clock_skew_s]``).
    clock_skew_s: float = 0.0
    receive_fraction: float = 0.9
    protocols: ProtocolRegistry = field(repr=False, default_factory=lambda: PROTOCOLS)

    name = "deployment"
    #: Real-time substrate: sweeps run it in the serial lane (one
    #: asyncio deployment at a time), never across a process pool.
    poolable = False

    def execute(self, spec: RunSpec) -> EngineResult:
        """Synchronous entry point (creates its own event loop)."""
        return asyncio.run(self.execute_async(spec))

    async def execute_async(self, spec: RunSpec) -> EngineResult:
        """Run one deployment inside a running event loop."""
        conditions = self._conditions(spec)
        registry = KeyRegistry(spec.n, run_seed=spec.seed)
        verifier = IngestPipeline(registry)
        clock = RoundClock(self.delta_s)
        factory = self.protocols.factory(
            spec.protocol,
            eta=spec.eta,
            beta=spec.beta,
            record_telemetry=spec.record_telemetry,
        )

        transport = SimTransport(
            spec.n,
            base_latency_s=self.delta_s / 8,
            jitter_s=self.delta_s / 8,
            seed=spec.seed,
            surges=conditions.surge_windows(clock.round_s),
        )
        # Each node owns a private tree: the deployment models real
        # processes, which cannot intern each other's memory, so the
        # simulator's shared-chain views are deliberately not used here
        # (the factory is called without ``chain=``).
        nodes = {
            pid: DeployedNode(
                factory(pid, registry.secret_key(pid), verifier),
                schedule=spec.schedule,
            )
            for pid in range(spec.n)
        }
        network = GossipNetwork(
            transport,
            regular_topology(spec.n, self.gossip_degree, seed=spec.seed),
            on_deliver=lambda pid, message: nodes[pid].on_gossip(message),
        )

        # Adversary substrate: omniscient tree, key hand-over, and the
        # corruption schedule, all via the shared engine bookkeeping.
        adversary = spec.resolved_adversary()
        tree = BlockTree([genesis_block()])
        # Omniscient adversary/trace tree: lossless, never evicts.
        tree_buffer = BlockBuffer(tree, max_orphans_per_source=None)
        ctx = AdversaryContext(registry, tree)
        tracker = CorruptionTracker(adversary, ctx)
        # The corruption *schedule* is resolved up front (peek: no key
        # grants, no monotonicity bookkeeping); keys are handed over and
        # monotonicity enforced round by round in drive_adversary, as in
        # the simulator.
        byz_by_round = {r: tracker.peek(r) for r in range(spec.rounds + 1)}

        sent_by_round = [[0, 0, 0] for _ in range(spec.rounds)]

        def publish(pid: int, r: int, message: Message) -> None:
            votes, proposes, other = count_kinds((message,))
            counters = sent_by_round[r]
            counters[0] += votes
            counters[1] += proposes
            counters[2] += other
            if isinstance(message, ProposeMessage) and message.block is not None:
                tree_buffer.offer(message.block)
            network.nodes[pid].publish(message)

        transport.start()
        clock.start()
        network.start()
        started = asyncio.get_running_loop().time()

        skew_rng = random.Random(spec.seed ^ 0x5CE3)
        offsets = {
            pid: skew_rng.uniform(-self.clock_skew_s, self.clock_skew_s)
            for pid in range(spec.n)
        }

        # One driver task per node keeps phase timing independent per
        # node; each node reads the shared clock through its own
        # (skewed) lens.  Corrupted nodes stop executing the honest
        # protocol (the adversary speaks for them) but keep relaying
        # gossip — dissemination is a model assumption, not a courtesy.
        async def drive(node: DeployedNode) -> None:
            offset = offsets[node.pid]
            for r in range(spec.rounds):
                await clock.sleep_until_elapsed(clock.start_of(r) + offset)
                # Transactions arrive at every awake node's mempool —
                # corrupted ones included, exactly like the simulator.
                if node.awake(r):
                    offer_transactions(node.process, spec.arrivals(r))
                # Send phase belongs to H_r, receive phase to O_{r+1} \ B_{r+1}
                # — gated independently, exactly like the simulator (a
                # non-growing adversary may corrupt for r only).
                if node.pid not in byz_by_round[r]:
                    for message in node.run_send_phase(r):
                        publish(node.pid, r, message)
                await clock.sleep_until_elapsed(
                    clock.start_of(r) + self.receive_fraction * clock.round_s + offset
                )
                if node.pid not in byz_by_round[r + 1]:
                    node.run_receive_phase(r)

        async def drive_adversary() -> None:
            for r in range(spec.rounds):
                await clock.sleep_until_elapsed(clock.start_of(r))
                ctx.round = r
                byz = tracker.corrupted(r)
                for message in adversary.send(r, ctx):
                    check_adversary_message(message, byz)
                    publish(message.sender, r, message)

        await asyncio.gather(*(drive(node) for node in nodes.values()), drive_adversary())
        await network.stop()
        wall = asyncio.get_running_loop().time() - started

        trace = self._build_trace(spec, conditions, nodes, byz_by_round, sent_by_round, tree)
        return EngineResult(
            trace=trace,
            backend=self.name,
            wall_seconds=wall,
            messages_sent=transport.sent_count,
            extras={"nodes": nodes, "transport": transport, "adversary_tree": tree},
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _conditions(spec: RunSpec) -> NetworkConditions:
        if spec.conditions is not None:
            return spec.conditions
        if spec.network is not None:
            return conditions_from_network(spec.network)
        return NetworkConditions.synchronous()

    def _build_trace(
        self,
        spec: RunSpec,
        conditions: NetworkConditions,
        nodes: dict[int, DeployedNode],
        byz_by_round: dict[int, frozenset[int]],
        sent_by_round: list[list[int]],
        adversary_tree: BlockTree,
    ) -> Trace:
        # Merge every node's local tree (plus adversary-minted blocks)
        # into one omniscient analysis tree.
        tree = BlockTree([genesis_block()])
        # Merging already-validated local trees: lossless, never evicts.
        buffer = BlockBuffer(tree, max_orphans_per_source=None)
        pending = []
        locals_ = [node.process.tree for node in nodes.values()] + [adversary_tree]
        for local in locals_:
            for tip in local.tips():
                for block_id in local.path(tip):
                    pending.append(local.get(block_id))
        for block in sorted(pending, key=lambda b: b.view):
            buffer.offer(block)

        trace = Trace(
            n=spec.n,
            tree=tree,
            meta=base_meta(
                spec,
                self.protocols,
                delta_s=self.delta_s,
                deployment=True,
                backend=self.name,
            ),
        )
        everyone = frozenset(range(spec.n))
        for r in range(spec.rounds):
            scheduled = spec.schedule.awake(r) if spec.schedule is not None else everyone
            byz = byz_by_round[r]
            awake = scheduled | byz  # Byzantine processes never sleep.
            votes, proposes, other = sent_by_round[r]
            trace.rounds.append(
                RoundRecord(
                    round=r,
                    awake=awake,
                    honest=awake - byz,
                    byzantine=byz,
                    asynchronous=conditions.is_asynchronous(r),
                    votes_sent=votes,
                    proposes_sent=proposes,
                    other_sent=other,
                )
            )
        for node in nodes.values():
            trace.decisions.extend(node.decisions)
        trace.decisions.sort(key=lambda d: (d.round, d.pid))
        return trace
