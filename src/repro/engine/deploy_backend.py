"""The wall-clock asyncio deployment as an execution backend.

The same :class:`~repro.engine.spec.RunSpec` that drives the round
simulator is driven here by real rounds (Δ = 3δ) over an asyncio gossip
network with seeded latencies — protocol construction, transaction
arrival, corruption bookkeeping, and trace assembly all come from the
shared engine layer, so schedules, adversaries, and workloads written
for one substrate run on the other.

Substrate differences (inherent, not incidental):

* **Delivery control.**  The simulator grants the adversary *logical*
  per-receiver delivery choice during asynchronous rounds.  The
  deployment realises asynchrony *physically*: latencies surge past δ
  (:class:`~repro.net.transport.SurgeWindow`), so round-``r`` messages
  arrive rounds late but are never lost.  An adversary's ``deliver``
  hook is therefore not consulted here.
* **Corruption schedule.**  ``Adversary.byzantine`` is treated as a
  schedule and resolved round by round before the run starts (it may
  not depend on execution state — none of the model's adversaries do);
  the adversary's ``send`` power runs live, in round, against the
  omniscient block tree exactly as in the simulator.

Setting ``processes > 1`` shards the deployment across real worker
processes (:mod:`repro.runtime.worker`) joined by a socket mesh
(:mod:`repro.net.socket_transport`): the backend becomes a
*coordinator* that spawns workers, sequences the
ready → dial → start → result → shutdown control protocol, anchors all
round clocks at one shared wall-clock instant, and merges the shards'
block trees, decisions, and telemetry into the same
:class:`~repro.sleepy.trace.Trace` the single-process path produces.
``processes=1`` (the default) keeps the historical in-process path
byte for byte.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import shutil
import socket
import tempfile
import time
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.attacks.adversary import ScriptedAdversary
from repro.chain.block import Block, genesis_block
from repro.chain.store import BlockBuffer
from repro.chain.tree import BlockTree
from repro.crypto.signatures import KeyRegistry
from repro.engine.backend import (
    CorruptionTracker,
    EngineResult,
    ExecutionBackend,
    base_meta,
    check_adversary_message,
    count_kinds,
)
from repro.engine.conditions import NetworkConditions, conditions_from_network
from repro.engine.ingest import IngestPipeline
from repro.engine.registry import PROTOCOLS, ProtocolRegistry
from repro.engine.spec import RunSpec
from repro.net.gossip import GossipNetwork, regular_topology
from repro.net.proxy_transport import AUDIT_KEYS, ProxyTransport
from repro.net.socket_transport import (
    encode_frame,
    read_frame,
    serve_stream,
    supports_unix_sockets,
)
from repro.net.transport import SimTransport
from repro.runtime.clock import RoundClock
from repro.runtime.metrics import MetricsHub, SourcedMetrics
from repro.runtime.node import DeployedNode
from repro.runtime.worker import (
    WorkerConfig,
    clock_skew_offsets,
    drive_node,
    shard_pids,
    worker_main,
)
from repro.sleepy.adversary import AdversaryContext
from repro.sleepy.messages import Message, ProposeMessage
from repro.sleepy.trace import DecisionEvent, RoundRecord, Trace


def _free_tcp_address() -> tuple[str, int]:
    """A loopback TCP address that was free a moment ago (UDS fallback)."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()
    probe.close()
    return ("127.0.0.1", address[1])


@dataclass
class DeploymentBackend(ExecutionBackend):
    """Executes a :class:`RunSpec` over real time, gossip, and latency."""

    delta_s: float = 0.02
    gossip_degree: int = 4
    #: Maximum absolute clock offset per node, in seconds.  The paper
    #: assumes synchronized clocks; in practice δ must absorb small
    #: skews, which this knob injects (each node's phase boundaries are
    #: shifted by a seeded offset in ``[-clock_skew_s, +clock_skew_s]``).
    clock_skew_s: float = 0.0
    receive_fraction: float = 0.9
    #: Worker processes to shard the nodes across.  ``1`` = the
    #: historical in-process path; ``> 1`` = socket-mesh workers.
    processes: int = 1
    #: Per-node mempool bound (transactions shed-and-counted past it);
    #: ``None`` = unbounded, the historical behaviour.
    mempool_capacity: int | None = None
    #: Gossip dedup-entry retention, in rounds behind the live round
    #: (see :class:`~repro.net.gossip.GossipNode`); ``None`` = retain
    #: forever, the historical behaviour for bounded experiments.
    gossip_seen_horizon: int | None = None
    #: The batched wire path (frame v2 batch writes, digest-interned
    #: payload encoding, δ/8 slot-coalesced delivery timers) on every
    #: substrate flavour; ``False`` keeps the historical per-frame
    #: pickle/timer/write path — the wire-throughput bench's baseline.
    wire_batching: bool = True
    protocols: ProtocolRegistry = field(repr=False, default_factory=lambda: PROTOCOLS)

    name = "deployment"
    #: Real-time substrate: sweeps run it in the serial lane (one
    #: asyncio deployment at a time), never across a process pool.
    poolable = False

    def attach_metrics(self, collector: SourcedMetrics) -> None:
        """Attach a live telemetry collector for the next run(s).

        Workers (or the single process) push cumulative metric
        snapshots into it while the run is in flight, so a
        :class:`~repro.runtime.metrics.MetricsServer` scraping
        ``collector.merged`` serves live state.  Stored outside the
        dataclass fields on purpose: telemetry wiring must not enter
        ``identity()`` / sweep-journal digests.
        """
        self._metrics_collector = collector

    def execute(self, spec: RunSpec) -> EngineResult:
        """Synchronous entry point (creates its own event loop)."""
        return asyncio.run(self.execute_async(spec))

    async def execute_async(self, spec: RunSpec) -> EngineResult:
        """Run one deployment inside a running event loop."""
        if self.processes < 1:
            raise ValueError("processes must be >= 1")
        if self.processes > 1:
            return await self._execute_multiprocess(spec)
        return await self._execute_single(spec)

    # ------------------------------------------------------------------
    # Single-process path (the historical substrate, unchanged semantics)
    # ------------------------------------------------------------------
    async def _execute_single(self, spec: RunSpec) -> EngineResult:
        """One event loop hosting every node (bit-identical legacy path)."""
        conditions = self._conditions(spec)
        registry = KeyRegistry(spec.n, run_seed=spec.seed)
        verifier = IngestPipeline(registry)
        clock = RoundClock(self.delta_s)
        factory = self.protocols.factory(
            spec.protocol,
            eta=spec.eta,
            beta=spec.beta,
            record_telemetry=spec.record_telemetry,
        )

        transport = SimTransport(
            spec.n,
            base_latency_s=self.delta_s / 8,
            jitter_s=self.delta_s / 8,
            seed=spec.seed,
            surges=conditions.surge_windows(clock.round_s),
            # The in-process queue path rides the same delivery wheel
            # as the socket fabric: one timer per slot, not per message.
            # Half the modelled jitter width, so quantization (< one
            # slot) hides inside jitter with real-time margin to spare
            # before the 0.9 Δ receive phase even when the host stalls.
            slot_s=self.delta_s / 16 if self.wire_batching else None,
        )
        # A scripted adversary's delivery effects (partition/surge/drop)
        # are realised physically by the proxy layer in front of the
        # fabric; its corruption and send powers flow through the normal
        # adversary seam below.
        proxy: ProxyTransport | None = None
        fabric = transport
        if isinstance(spec.adversary, ScriptedAdversary):
            proxy = ProxyTransport(
                transport,
                spec.adversary.timeline,
                seed=spec.seed,
                round_s=clock.round_s,
                base_latency_s=self.delta_s / 8,
            )
            fabric = proxy
        # Each node owns a private tree: the deployment models real
        # processes, which cannot intern each other's memory, so the
        # simulator's shared-chain views are deliberately not used here
        # (the factory is called without ``chain=``).
        nodes = {
            pid: DeployedNode(
                factory(pid, registry.secret_key(pid), verifier),
                schedule=spec.schedule,
                mempool_capacity=self.mempool_capacity,
            )
            for pid in range(spec.n)
        }
        network = GossipNetwork(
            fabric,
            regular_topology(spec.n, self.gossip_degree, seed=spec.seed),
            on_deliver=lambda pid, message: nodes[pid].on_gossip(message),
            current_round=clock.current_round if self.gossip_seen_horizon is not None else None,
            seen_horizon_rounds=self.gossip_seen_horizon,
        )

        # Adversary substrate: omniscient tree, key hand-over, and the
        # corruption schedule, all via the shared engine bookkeeping.
        adversary = spec.resolved_adversary()
        tree = BlockTree([genesis_block()])
        # Omniscient adversary/trace tree: lossless, never evicts.
        tree_buffer = BlockBuffer(tree, max_orphans_per_source=None)
        ctx = AdversaryContext(registry, tree)
        tracker = CorruptionTracker(adversary, ctx)
        # The corruption *schedule* is resolved up front (peek: no key
        # grants, no monotonicity bookkeeping); keys are handed over and
        # monotonicity enforced round by round in drive_adversary, as in
        # the simulator.
        byz_by_round = {r: tracker.peek(r) for r in range(spec.rounds + 1)}

        collector = getattr(self, "_metrics_collector", None)
        hub = MetricsHub() if collector is not None else None

        sent_by_round = [[0, 0, 0] for _ in range(spec.rounds)]

        def publish(pid: int, r: int, message: Message) -> None:
            votes, proposes, other = count_kinds((message,))
            counters = sent_by_round[r]
            counters[0] += votes
            counters[1] += proposes
            counters[2] += other
            if hub is not None:
                hub.inc("messages_published")
            if isinstance(message, ProposeMessage) and message.block is not None:
                tree_buffer.offer(message.block)
            network.nodes[pid].publish(message)

        transport.start()
        clock.start()
        network.start()
        if proxy is not None:
            proxy.schedule_phases()
        started = asyncio.get_running_loop().time()

        offsets = clock_skew_offsets(spec, self.clock_skew_s)

        async def drive_adversary() -> None:
            for r in range(spec.rounds):
                await clock.sleep_until_elapsed(clock.start_of(r))
                ctx.round = r
                byz = tracker.corrupted(r)
                for message in adversary.send(r, ctx):
                    check_adversary_message(message, byz)
                    publish(message.sender, r, message)

        async def sample_metrics() -> None:
            from repro.runtime.worker import _sample_gauges

            while True:
                await asyncio.sleep(0.25)
                _sample_gauges(hub, fabric, network, nodes)
                collector.push("worker0", hub.snapshot())

        sampler = (
            asyncio.get_running_loop().create_task(sample_metrics())
            if collector is not None
            else None
        )
        # One driver task per node keeps phase timing independent per
        # node; each node reads the shared clock through its own
        # (skewed) lens.
        await asyncio.gather(
            *(
                drive_node(
                    node,
                    clock=clock,
                    rounds=spec.rounds,
                    offset=offsets[node.pid],
                    receive_fraction=self.receive_fraction,
                    byz_by_round=byz_by_round,
                    arrivals=spec.arrivals,
                    publish=publish,
                    metrics=hub,
                )
                for node in nodes.values()
            ),
            drive_adversary(),
        )
        if sampler is not None:
            sampler.cancel()
            try:
                await sampler
            except asyncio.CancelledError:
                pass
        if proxy is not None:
            proxy.cancel_timers()
        await network.stop()
        wall = asyncio.get_running_loop().time() - started

        if collector is not None:
            from repro.runtime.worker import _sample_gauges

            _sample_gauges(hub, fabric, network, nodes)
            collector.push("worker0", hub.snapshot())

        pending: list[Block] = []
        locals_ = [node.process.tree for node in nodes.values()] + [tree]
        for local in locals_:
            for tip in local.tips():
                for block_id in local.path(tip):
                    pending.append(local.get(block_id))
        decisions = [decision for node in nodes.values() for decision in node.decisions]

        trace = self._assemble_trace(
            spec, conditions, byz_by_round, sent_by_round, decisions, pending
        )
        extras = {
            "nodes": nodes,
            "transport": transport,
            "adversary_tree": tree,
            "gossip": network.stats_totals(),
        }
        if proxy is not None:
            extras["attack"] = {
                "totals": proxy.audit_totals(),
                "per_phase": [dict(row) for row in proxy.audit],
            }
        if hub is not None:
            extras["metrics"] = hub.snapshot()
        return EngineResult(
            trace=trace,
            backend=self.name,
            wall_seconds=wall,
            messages_sent=transport.sent_count,
            extras=extras,
        )

    # ------------------------------------------------------------------
    # Multi-process path (coordinator over socket-mesh workers)
    # ------------------------------------------------------------------
    async def _execute_multiprocess(self, spec: RunSpec) -> EngineResult:
        """Shard the deployment across spawned workers and merge results."""
        scripted = isinstance(spec.adversary, ScriptedAdversary)
        if spec.adversary is not None and not scripted:
            raise ValueError(
                "multi-process deployments do not support bespoke adversaries: "
                "the adversary's send power needs the omniscient shared tree, "
                "which cannot span processes — script the attack "
                "(repro.attacks) or run with processes=1"
            )
        if scripted and spec.adversary.script.has_equivocation():
            raise ValueError(
                "equivocation needs in-process signing power, which no "
                "worker holds — run equivocating scripts with processes=1"
            )
        if self.protocols is not PROTOCOLS:
            raise ValueError(
                "multi-process deployments resolve protocols by name from "
                "the default registry inside each worker; custom registries "
                "need processes=1"
            )
        conditions = self._conditions(spec)
        shards = shard_pids(spec.n, self.processes)
        n_workers = len(shards)
        owner = {pid: wid for wid, shard in enumerate(shards) for pid in shard}

        tmpdir = tempfile.mkdtemp(prefix="repro-deploy-")
        if supports_unix_sockets():
            addresses: dict[int, object] = {
                wid: os.path.join(tmpdir, f"w{wid}.sock") for wid in range(n_workers)
            }
            control_address: object = os.path.join(tmpdir, "control.sock")
        else:
            addresses = {wid: _free_tcp_address() for wid in range(n_workers)}
            control_address = _free_tcp_address()

        loop = asyncio.get_running_loop()
        ready: set[int] = set()
        dialed: set[int] = set()
        writers: dict[int, asyncio.StreamWriter] = {}
        results: dict[int, dict] = {}
        failures: list[str] = []
        ready_evt, dialed_evt, results_evt = asyncio.Event(), asyncio.Event(), asyncio.Event()
        collector = getattr(self, "_metrics_collector", None)

        def fail(reason: str) -> None:
            failures.append(reason)
            ready_evt.set()
            dialed_evt.set()
            results_evt.set()

        async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
            try:
                while True:
                    frame = await read_frame(reader)
                    tag = frame[0]
                    if tag == "ready":
                        writers[frame[1]] = writer
                        ready.add(frame[1])
                        if len(ready) == n_workers:
                            ready_evt.set()
                    elif tag == "dialed":
                        dialed.add(frame[1])
                        if len(dialed) == n_workers:
                            dialed_evt.set()
                    elif tag == "metrics":
                        if collector is not None:
                            collector.push(f"worker{frame[1]}", frame[2])
                    elif tag == "result":
                        results[frame[1]] = frame[2]
                        if collector is not None:
                            collector.push(f"worker{frame[1]}", frame[2]["metrics"])
                        if len(results) == n_workers:
                            results_evt.set()
            except (asyncio.IncompleteReadError, ConnectionResetError):
                if len(results) < n_workers:
                    fail("a worker's control connection closed before its result")
            except Exception as exc:  # noqa: BLE001 — a dying handler must fail the run
                # A worker killed mid-write leaves a truncated pickle
                # frame: letting the handler task die silently would
                # hang the run until the budget timeout instead of
                # failing it promptly.
                if len(results) < n_workers:
                    fail(f"control channel failure: {exc!r}")

        server = await serve_stream(control_address, handle)
        ctx = multiprocessing.get_context("spawn")
        procs: list = []

        async def watch_processes() -> None:
            while not results_evt.is_set():
                for wid, proc in enumerate(procs):
                    if proc.exitcode not in (None, 0):
                        fail(f"worker {wid} exited with code {proc.exitcode}")
                        return
                await asyncio.sleep(0.2)

        round_s = RoundClock(self.delta_s).round_s
        budget = 60.0 + 2.0 * spec.rounds * round_s + 5.0 * n_workers

        async def wait(event: asyncio.Event, phase: str) -> None:
            try:
                await asyncio.wait_for(event.wait(), timeout=budget)
            except asyncio.TimeoutError:
                raise RuntimeError(f"deployment workers timed out during {phase}") from None
            if failures:
                raise RuntimeError("; ".join(failures))

        async def broadcast(frame: object) -> None:
            blob = encode_frame(frame)
            for wid in sorted(writers):
                writers[wid].write(blob)
                await writers[wid].drain()

        async def drive_attack_phases(start_wall: float) -> None:
            # The coordinator owns the script's phase schedule: each
            # transition is broadcast over the control channel at its
            # wall-clock instant, and every worker's proxy flips within
            # socket latency of the same moment (all round clocks are
            # anchored to the same origin, so "round k" is one instant).
            for index, start_round in enumerate(spec.adversary.timeline.phase_starts()):
                if index == 0:
                    continue
                await asyncio.sleep(max(0.0, start_wall + start_round * round_s - time.time()))
                await broadcast(("attack_phase", index))

        watcher = loop.create_task(watch_processes())
        phase_driver: asyncio.Task | None = None
        started = loop.time()
        try:
            for wid, shard in enumerate(shards):
                config = WorkerConfig(
                    worker_id=wid,
                    n_workers=n_workers,
                    shard=shard,
                    owner=owner,
                    addresses=addresses,
                    control_address=control_address,
                    spec=spec,
                    delta_s=self.delta_s,
                    gossip_degree=self.gossip_degree,
                    receive_fraction=self.receive_fraction,
                    clock_skew_s=self.clock_skew_s,
                    seen_horizon_rounds=self.gossip_seen_horizon,
                    mempool_capacity=self.mempool_capacity,
                    wire_batching=self.wire_batching,
                )
                proc = ctx.Process(target=worker_main, args=(config,), daemon=True)
                proc.start()
                procs.append(proc)

            await wait(ready_evt, "listener setup")
            await broadcast(("dial",))
            await wait(dialed_evt, "mesh dialing")
            start_wall = time.time() + 0.5
            await broadcast(("start", start_wall))
            if scripted:
                phase_driver = loop.create_task(drive_attack_phases(start_wall))
            await wait(results_evt, "the run")
            await broadcast(("shutdown",))
        finally:
            for task in (watcher, phase_driver):
                if task is None:
                    continue
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            server.close()
            await server.wait_closed()
            for proc in procs:
                await loop.run_in_executor(None, proc.join, 10)
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            shutil.rmtree(tmpdir, ignore_errors=True)
        wall = loop.time() - started

        ordered = [results[wid] for wid in range(n_workers)]
        sent_by_round = [[0, 0, 0] for _ in range(spec.rounds)]
        for payload in ordered:
            for r, counters in enumerate(payload["sent_by_round"]):
                for k in range(3):
                    sent_by_round[r][k] += counters[k]
        decisions = [decision for payload in ordered for decision in payload["decisions"]]
        pending = [block for payload in ordered for block in payload["blocks"]]
        if scripted:
            timeline = spec.adversary.timeline
            byz_by_round = {r: timeline.corrupted_at(r) for r in range(spec.rounds + 1)}
        else:
            byz_by_round = {r: frozenset() for r in range(spec.rounds + 1)}
        trace = self._assemble_trace(
            spec, conditions, byz_by_round, sent_by_round, decisions, pending
        )

        def summed(section: str, key: str) -> int:
            return sum(payload[section][key] for payload in ordered)

        extras = {
            "processes": n_workers,
            "shards": shards,
            "transport": {
                key: summed("transport", key)
                for key in (
                    "sent",
                    "frames_sent",
                    "frames_received",
                    "misrouted",
                    "batches_sent",
                    "batches_received",
                    "bytes_sent",
                    "bytes_received",
                    "payload_encodes",
                    "payload_reuses",
                )
            },
            "gossip": {
                key: summed("gossip", key)
                for key in ("delivered", "duplicates", "stale_dropped", "seen_entries")
            },
            "mempool": {key: summed("mempool", key) for key in ("shed", "admitted", "occupancy")},
        }
        if scripted:
            extras["attack"] = {
                "totals": {
                    key: sum((payload.get("attack") or {}).get(key, 0) for payload in ordered)
                    for key in AUDIT_KEYS
                }
            }
        merged = SourcedMetrics()
        for payload in ordered:
            merged.push(f"worker{payload['worker_id']}", payload["metrics"])
        extras["metrics"] = merged.merged()
        return EngineResult(
            trace=trace,
            backend=self.name,
            wall_seconds=wall,
            messages_sent=extras["transport"]["sent"],
            extras=extras,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _conditions(spec: RunSpec) -> NetworkConditions:
        if spec.conditions is not None:
            return spec.conditions
        if spec.network is not None:
            return conditions_from_network(spec.network)
        return NetworkConditions.synchronous()

    def _assemble_trace(
        self,
        spec: RunSpec,
        conditions: NetworkConditions,
        byz_by_round: dict[int, frozenset[int]],
        sent_by_round: list[list[int]],
        decisions: Iterable[DecisionEvent],
        pending_blocks: Iterable[Block],
    ) -> Trace:
        # Merge every shard's block views (plus adversary-minted blocks
        # on the single-process path) into one omniscient analysis tree.
        tree = BlockTree([genesis_block()])
        # Merging already-validated local trees: lossless, never evicts.
        buffer = BlockBuffer(tree, max_orphans_per_source=None)
        for block in sorted(pending_blocks, key=lambda b: b.view):
            buffer.offer(block)

        trace = Trace(
            n=spec.n,
            tree=tree,
            meta=base_meta(
                spec,
                self.protocols,
                delta_s=self.delta_s,
                deployment=True,
                backend=self.name,
            ),
        )
        everyone = frozenset(range(spec.n))
        for r in range(spec.rounds):
            scheduled = spec.schedule.awake(r) if spec.schedule is not None else everyone
            byz = byz_by_round[r]
            awake = scheduled | byz  # Byzantine processes never sleep.
            votes, proposes, other = sent_by_round[r]
            trace.rounds.append(
                RoundRecord(
                    round=r,
                    awake=awake,
                    honest=awake - byz,
                    byzantine=byz,
                    asynchronous=conditions.is_asynchronous(r),
                    votes_sent=votes,
                    proposes_sent=proposes,
                    other_sent=other,
                )
            )
        trace.decisions.extend(decisions)
        trace.decisions.sort(key=lambda d: (d.round, d.pid))
        return trace
