"""The deterministic round simulator as an execution backend."""

from __future__ import annotations

import time

from repro.crypto.signatures import KeyRegistry
from repro.engine.backend import (
    EngineResult,
    ExecutionBackend,
    base_meta,
    offer_transactions,
)
from repro.engine.registry import PROTOCOLS, ProtocolRegistry
from repro.engine.spec import RunSpec
from repro.sleepy.simulator import Simulation


class SimulationBackend(ExecutionBackend):
    """Executes a :class:`RunSpec` in the sleepy round model."""

    name = "simulator"

    def __init__(self, protocols: ProtocolRegistry = PROTOCOLS) -> None:
        self._protocols = protocols

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, spec: RunSpec) -> Simulation:
        """Construct the :class:`Simulation` described by ``spec``.

        The simulation interns one :class:`~repro.chain.shared.
        SharedChain` per run and hands it to chain-capable process
        factories, so every receiver holds a visibility view over one
        canonical tree (the n≥1000 lane) instead of a private copy;
        pass ``share_chain=False`` to :class:`Simulation` directly for
        the per-process-tree baseline.
        """
        factory = self._protocols.factory(
            spec.protocol,
            eta=spec.eta,
            beta=spec.beta,
            record_telemetry=spec.record_telemetry,
        )
        registry = KeyRegistry(spec.n, run_seed=spec.seed)
        return Simulation(
            registry,
            spec.resolved_schedule(),
            spec.resolved_adversary(),
            spec.resolved_network(),
            factory,
            meta=base_meta(spec, self._protocols, backend=self.name),
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, spec: RunSpec) -> EngineResult:
        simulation = self.build(spec)
        started = time.perf_counter()
        self.drive(simulation, spec)
        return EngineResult(
            trace=simulation.trace,
            backend=self.name,
            wall_seconds=time.perf_counter() - started,
            messages_sent=simulation.bus.total_published,
            extras={"simulation": simulation},
        )

    @staticmethod
    def drive(simulation: Simulation, spec: RunSpec) -> None:
        """Run ``spec.rounds`` rounds, feeding the transaction workload.

        Also the engine behind :func:`repro.harness.run_simulation`, so
        pre-built simulations (tests poking at internals, benches
        running round by round) share the same arrival logic.
        """
        for r in range(spec.rounds):
            arrivals = spec.arrivals(r)
            if arrivals:
                awake = simulation.schedule.awake(r)
                for pid in sorted(awake):
                    offer_transactions(simulation.processes[pid], arrivals)
            simulation.run(1)
