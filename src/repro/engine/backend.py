"""The execution-backend interface plus the model logic both share.

An :class:`ExecutionBackend` takes a :class:`~repro.engine.spec.RunSpec`
and produces an :class:`EngineResult` — a standard
:class:`~repro.sleepy.trace.Trace` plus substrate-level measurements.
Two implementations exist: the deterministic round simulator
(:mod:`repro.engine.sim_backend`) and the wall-clock asyncio deployment
(:mod:`repro.engine.deploy_backend`).  Everything a backend must agree
on — protocol construction, transaction arrival, corruption
bookkeeping, trace metadata, message-kind accounting — lives here or in
the registry, written once.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.chain.transactions import Transaction
from repro.engine.errors import ModelViolationError
from repro.engine.registry import PROTOCOLS, ProtocolRegistry
from repro.engine.spec import RunSpec
from repro.sleepy.adversary import Adversary, AdversaryContext
from repro.sleepy.messages import Message, ProposeMessage, VoteMessage
from repro.sleepy.trace import Trace


@dataclass
class EngineResult:
    """What an execution backend hands back."""

    trace: Trace
    backend: str
    wall_seconds: float = 0.0
    messages_sent: int = 0
    #: Substrate-specific extras (e.g. the deployment's node objects).
    extras: dict = field(repr=False, default_factory=dict)


class ExecutionBackend(ABC):
    """One substrate that can execute a :class:`RunSpec`."""

    #: Human-readable substrate name (recorded in trace metadata).
    name: str = "abstract"

    #: Whether sweeps may ship this backend to process-pool workers.
    #: Real-time substrates (the asyncio deployment) set this False and
    #: run in :func:`~repro.engine.sweep.stream_sweep`'s serial lane —
    #: still streamed, still journaled, just not pooled.
    poolable: bool = True

    @abstractmethod
    def execute(self, spec: RunSpec) -> EngineResult:
        """Run ``spec`` to completion and assemble the result."""

    def identity(self) -> object:
        """Content identity of this backend for sweep-journal cell keys.

        Covers the backend's class and configuration, so rows journaled
        by one substrate (or one configuration of it) are never reused
        by another.  Wrappers that only instrument an inner backend
        (counters, tracers) should override this to delegate to
        ``inner.identity()`` — instrumentation does not change what a
        cell computes.
        """
        from repro.engine.spec import canonical_form

        return canonical_form(self)


def run_spec(spec: RunSpec, backend: ExecutionBackend | None = None) -> EngineResult:
    """Execute ``spec`` on ``backend`` (default: the round simulator)."""
    if backend is None:
        from repro.engine.sim_backend import SimulationBackend

        backend = SimulationBackend()
    return backend.execute(spec)


# ----------------------------------------------------------------------
# Shared model logic
# ----------------------------------------------------------------------
def base_meta(spec: RunSpec, registry: ProtocolRegistry = PROTOCOLS, **extra) -> dict:
    """The trace metadata every backend records for a run."""
    return {
        "protocol": spec.protocol,
        "eta": registry.effective_eta(spec.protocol, spec.eta),
        "beta": spec.beta,
        "seed": spec.seed,
        **extra,
        **spec.meta,
    }


def offer_transactions(process, arrivals: Sequence[Transaction]) -> None:
    """Deliver ``arrivals`` into one awake process's mempool (if it has one)."""
    mempool = getattr(process, "mempool", None)
    if mempool is None:
        return
    for tx in arrivals:
        mempool.add(tx)


def count_kinds(messages: Iterable[Message]) -> tuple[int, int, int]:
    """``(votes, proposes, other)`` over ``messages``."""
    votes = proposes = other = 0
    for message in messages:
        if isinstance(message, VoteMessage):
            votes += 1
        elif isinstance(message, ProposeMessage):
            proposes += 1
        else:
            other += 1
    return votes, proposes, other


class CorruptionTracker:
    """Adversary corruption bookkeeping, identical on every substrate.

    Enforces monotonicity for a growing adversary and hands the
    adversary the keys of newly corrupted processes.
    """

    def __init__(self, adversary: Adversary, ctx: AdversaryContext) -> None:
        self._adversary = adversary
        self._ctx = ctx
        self._prev: frozenset[int] = frozenset()

    def corrupted(self, round_number: int) -> frozenset[int]:
        """``B_r``, with model enforcement and key hand-over."""
        byz = self._adversary.byzantine(round_number)
        if self._adversary.growing and not byz >= self._prev:
            raise ModelViolationError("growing adversary shrank its corrupted set")
        self._prev = byz
        for pid in byz:
            self._ctx.grant_key(pid)
        return byz

    def peek(self, round_number: int) -> frozenset[int]:
        """Read ``B_r`` without disturbing monotonicity tracking."""
        return self._adversary.byzantine(round_number)


def check_honest_message(message: Message, pid: int, round_number: int) -> None:
    """Enforce honest-sender invariants (correct signer, correct round tag)."""
    if message.sender != pid:
        raise ModelViolationError(f"honest process {pid} signed as {message.sender}")
    if message.round != round_number:
        raise ModelViolationError(
            f"honest process {pid} mis-tagged round {message.round} at round {round_number}"
        )


def check_adversary_message(message: Message, byz: frozenset[int]) -> None:
    """Enforce that the adversary only signs as corrupted processes."""
    if message.sender not in byz:
        raise ModelViolationError(
            f"adversary sent as process {message.sender}, which is not corrupted"
        )
