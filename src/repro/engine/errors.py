"""Errors shared by every execution substrate."""

from __future__ import annotations


class ModelViolationError(RuntimeError):
    """An actor stepped outside the power the model grants it.

    Raised by whichever backend is enforcing the sleepy-model fine
    print: honest processes must sign as themselves and tag the current
    round, the adversary may only sign as corrupted processes, a growing
    adversary never un-corrupts, and adversarial delivery must stay
    within the deliverable set.
    """


class UndeliverableMessageError(ValueError):
    """A delivery request named a message outside the deliverable set."""
