"""The shared message-ingestion pipeline: crypto → interning → batches.

Every execution backend feeds delivered messages through one
:class:`IngestPipeline` per run, and every protocol consumes the
resulting :class:`~repro.sleepy.messages.VerifiedBatch`.  The pipeline
stacks three layers, each shared run-wide:

1. **Cached verification** — the digest-keyed LRU verdict cache of
   :class:`~repro.sleepy.messages.CachedVerifier` (backed by
   :class:`~repro.crypto.signatures.VerificationCache` and the
   registry's ``verify_batch``), so a message multicast to n recipients
   is verified **once**, not n times.
2. **Interning** — the first verified instance of a logical message
   becomes canonical (:class:`~repro.sleepy.messages.MessageInterner`);
   the bus, vote stores, proposal tables, and traces then share one
   object per logical message, and re-verification of a canonical
   instance is an O(1) identity check with no hashing at all.
3. **Batch sharing** — the round simulator's bus hands the *same* tail
   tuple to every caught-up receiver; the pipeline memoises the
   classified :class:`~repro.sleepy.messages.VerifiedBatch` per
   delivered tuple (by identity, holding the tuple alive so the key can
   never be recycled), so verification, classification, and per-vote
   record extraction run once per delivery instead of once per
   receiver.

Protocol code never imports this module at runtime: processes receive
the pipeline through the :data:`~repro.sleepy.process.ProcessFactory`
third argument (typed as the base ``CachedVerifier``) and call its
``batch``/``verify`` methods duck-typed, which keeps the engine ↔
protocol import graph acyclic.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence

from repro.crypto.signatures import KeyRegistry, VerificationCache
from repro.sleepy.messages import (
    CachedVerifier,
    Message,
    MessageInterner,
    VerifiedBatch,
    verification_digest,
)

#: How many distinct delivered tuples keep their classified batch alive.
#: Per round there are only a handful of distinct cursor positions
#: (caught-up receivers share one), so a small window suffices.
DEFAULT_BATCH_MEMO_CAPACITY = 32


class IngestPipeline(CachedVerifier):
    """Run-shared verification pipeline every backend feeds.

    A drop-in :class:`~repro.sleepy.messages.CachedVerifier` (processes
    are constructed against that interface) that adds interning, an
    identity fast path, and per-delivery batch memoisation.
    """

    def __init__(
        self,
        registry: KeyRegistry,
        cache: VerificationCache | None = None,
        batch_memo_capacity: int = DEFAULT_BATCH_MEMO_CAPACITY,
    ) -> None:
        super().__init__(registry, cache=cache)
        if batch_memo_capacity <= 0:
            raise ValueError("batch memo capacity must be positive")
        self._interner = MessageInterner()
        self._batch_memo_capacity = batch_memo_capacity
        # id(tuple) -> (tuple, batch).  The stored tuple is compared by
        # identity on lookup and held strongly, so a recycled id can
        # never alias a dead key.
        self._batch_memo: OrderedDict[int, tuple[tuple, VerifiedBatch]] = OrderedDict()
        #: Pipeline accounting (consumed by benches and tests):
        #: ``crypto_verifications`` counts actual signature/VRF checks,
        #: which the bench gate pins to one per logical message.
        self.stats = {
            "batches_built": 0,
            "batch_memo_hits": 0,
            "messages_ingested": 0,
            "crypto_verifications": 0,
            "identity_hits": 0,
            "rejected": 0,
        }

    @property
    def interner(self) -> MessageInterner:
        """The run's canonical-instance table."""
        return self._interner

    # ------------------------------------------------------------------
    # Single-message path
    # ------------------------------------------------------------------
    def verify(self, message: Message) -> bool:
        """Memoised verification with interning and an identity fast path."""
        interner = self._interner
        if interner.is_canonical(message):
            self.stats["identity_hits"] += 1
            return True
        digest = verification_digest(message)
        if interner.lookup(digest) is not None:
            return True
        verdict = self._cache.get(digest)
        if verdict is None:
            verdict = self._resolve_misses((message,), (digest,), (0,))[digest]
        if verdict:
            interner.intern(message, digest)
        return verdict

    def _note_crypto(self, count: int) -> None:
        self.stats["crypto_verifications"] += count

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------
    def batch(self, messages: Sequence[Message]) -> VerifiedBatch:
        """The shared :class:`VerifiedBatch` for one delivery.

        Tuple deliveries (the bus's shared synchronous tails) are
        memoised by identity; list deliveries (per-receiver backlog
        catch-ups, deployment inboxes) are classified per call but still
        hit the interner's identity path per message.
        """
        if type(messages) is tuple:
            key = id(messages)
            hit = self._batch_memo.get(key)
            if hit is not None and hit[0] is messages:
                self._batch_memo.move_to_end(key)
                self.stats["batch_memo_hits"] += 1
                return hit[1]
            built = self._build_batch(messages)
            memo = self._batch_memo
            memo[key] = (messages, built)
            while len(memo) > self._batch_memo_capacity:
                memo.popitem(last=False)
            return built
        return self._build_batch(messages)

    def _build_batch(self, messages: Sequence[Message]) -> VerifiedBatch:
        # Resolve each message to its canonical instance (or None if
        # rejected); actual crypto for the residue of cache misses goes
        # through the base class's shared dedup + registry-batch helper.
        interner = self._interner
        cache = self._cache
        resolved_messages: list[Message | None] = [None] * len(messages)
        digests: list[str | None] = [None] * len(messages)
        pending: list[int] = []
        rejected = 0
        for i, message in enumerate(messages):
            if interner.is_canonical(message):
                self.stats["identity_hits"] += 1
                resolved_messages[i] = message
                continue
            digest = verification_digest(message)
            canonical = interner.lookup(digest)
            if canonical is not None:
                resolved_messages[i] = canonical
                continue
            digests[i] = digest
            verdict = cache.get(digest)
            if verdict is None:
                pending.append(i)
            elif verdict:
                resolved_messages[i] = interner.intern(message, digest)
            else:
                rejected += 1
        if pending:
            verdicts = self._resolve_misses(messages, digests, pending)  # type: ignore[arg-type]
            for i in pending:
                if verdicts[digests[i]]:
                    resolved_messages[i] = interner.intern(messages[i], digests[i])
                else:
                    rejected += 1
        verified = [m for m in resolved_messages if m is not None]
        self.stats["batches_built"] += 1
        self.stats["messages_ingested"] += len(messages)
        self.stats["rejected"] += rejected
        return VerifiedBatch(verified, rejected=rejected)
