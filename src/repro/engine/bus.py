"""The indexed message bus: the dissemination layer of the round model.

Replaces the simulator's original flat message pool.  The old design
kept one global ``list`` plus, per process, a cursor into it and a set
of "extra" message ids delivered ahead of the cursor during
asynchronous rounds; computing a receiver's deliverable set rescanned
``pool[cursor:]`` and filtered it through the extras set — per process,
per round.  The bus indexes the same state the other way around:

* a global append-only **log** in publish order with **round buckets**
  (which span of the log was published in which round), and
* per recipient, a **cursor** (everything below it has been either
  delivered or parked in the backlog) plus an ordered **backlog** of
  the messages below the cursor that are still undelivered.

Synchronous delivery is then ``backlog + log[cursor:]`` — O(new
messages), with the tail slice shared between all caught-up receivers
instead of being rebuilt per process — and adversarial delivery removes
the chosen subset from an indexed deliverable view, so messages that
were already delivered are never rescanned again.

Semantics are identical to the flat pool (the equivalence suite pins
seeded traces across the refactor): publish order is delivery order,
duplicate publishes are suppressed, and a process that slept through
rounds catches up on its entire gap at its next awake receive phase.

Deduplication is **digest-keyed**: like the verification layer
(:func:`~repro.sleepy.messages.verification_digest`), the bus computes
its dedup key from a message's *content* and never reads the message's
own memoised ``message_id`` — that slot is attacker-supplied state on
adversary-constructed objects, so trusting it would let a transplanted
id either suppress a distinct message at publish or, worse, void an
honest message's delivery through :meth:`MessageBus.deliver_chosen`.
Foreign message types without signed fields (test doubles, custom
transports) fall back to their ``message_id`` attribute as the key.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.engine.errors import UndeliverableMessageError
from repro.sleepy.messages import Message, verification_digest


class MessageBus:
    """Per-recipient indexed delivery state over one append-only log."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("need at least one recipient")
        self.n = n
        self._log: list[Message] = []
        #: Content-derived dedup keys of every published message.
        self._keys: set[str] = set()
        #: id(message) -> dedup key for log-resident messages (the bus
        #: holds a strong reference to everything it memoises, so the
        #: ``id`` cannot be recycled while the entry exists).
        self._key_memo: dict[int, str] = {}
        #: round -> (start, end) span of ``_log``; the current round's
        #: end is resolved lazily (it is still growing).
        self._buckets: dict[int, tuple[int, int]] = {}
        self._open_round: int | None = None
        self._open_start: int = 0
        self._cursor: list[int] = [0] * n
        self._backlog: list[list[Message]] = [[] for _ in range(n)]
        # One tail slice per distinct cursor position per send phase —
        # all caught-up receivers share the same tuple.  Immutable on
        # purpose: a third-party Process.receive that mutated its batch
        # would otherwise corrupt every other receiver's delivery.
        self._tail_memo: dict[int, tuple[Message, ...]] = {}
        #: Delivery-layer accounting (consumed by benches and tests).
        #: ``messages_materialised`` counts list entries written when
        #: building delivery views — a backlog catch-up concat
        #: deliberately re-counts the tail it copies.
        self.stats = {
            "published": 0,
            "duplicates": 0,
            "tail_builds": 0,
            "tail_reuses": 0,
            "messages_materialised": 0,
        }

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def begin_round(self, round_number: int) -> None:
        """Open the bucket for ``round_number``'s send phase."""
        if self._open_round is not None:
            self._buckets[self._open_round] = (self._open_start, len(self._log))
        self._open_round = round_number
        self._open_start = len(self._log)

    def publish(self, message: Message) -> bool:
        """Add ``message`` to the log; ``False`` if its content was already seen.

        The dedup key is recomputed from the message's content (see the
        module docstring) — a poisoned ``message_id`` can neither
        suppress a distinct message nor republish an already-seen one.
        """
        key = self._dedup_key(message)
        if key in self._keys:
            self.stats["duplicates"] += 1
            return False
        self._keys.add(key)
        self._log.append(message)
        self._key_memo[id(message)] = key
        self.stats["published"] += 1
        if self._tail_memo:
            self._tail_memo.clear()
        return True

    def round_messages(self, round_number: int) -> Sequence[Message]:
        """Messages published during ``round_number``'s send phase."""
        if round_number == self._open_round:
            return self._log[self._open_start :]
        span = self._buckets.get(round_number)
        if span is None:
            return ()
        start, end = span
        return self._log[start:end]

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def deliverable(self, pid: int) -> list[Message]:
        """Every message not yet delivered to ``pid``, in publish order.

        Always a fresh list — safe to hand to an adversary.
        """
        return self._backlog[pid] + self._log[self._cursor[pid] :]

    def deliver_all(self, pid: int) -> Sequence[Message]:
        """Synchronous delivery: hand over everything pending, mark it done.

        Returns the backlog-plus-tail batch.  When the backlog is empty
        (the common case under synchrony) the returned batch is an
        immutable tuple shared between all receivers at the same cursor.
        """
        tail = self._tail(self._cursor[pid])
        backlog = self._backlog[pid]
        if backlog:
            batch: Sequence[Message] = backlog + list(tail)
            self._backlog[pid] = []
            self.stats["messages_materialised"] += len(batch)
        else:
            batch = tail
        self._cursor[pid] = len(self._log)
        return batch

    def deliver_chosen(
        self, pid: int, chosen: Sequence[Message], pending: list[Message] | None = None
    ) -> None:
        """Adversarial delivery: ``chosen`` must be a subset of the
        deliverable set; everything else is parked in the backlog.

        ``pending`` lets a caller that already computed
        :meth:`deliverable` (to show the adversary) pass it back in
        rather than have it rebuilt.

        Raises :class:`UndeliverableMessageError` if the choice strays
        outside the deliverable view (injection through the delivery
        hook is impossible by construction).  Matching is by the same
        content-derived key as publish dedup, so a Byzantine message
        carrying a transplanted ``message_id`` cannot impersonate an
        honest pending message and void its delivery.
        """
        if pending is None:
            pending = self.deliverable(pid)
        if not chosen:
            self._backlog[pid] = list(pending)
            self._cursor[pid] = len(self._log)
            return
        allowed = {self._dedup_key(m) for m in pending}
        chosen_keys: set[str] = set()
        for message in chosen:
            key = self._dedup_key(message)
            if key not in allowed:
                raise UndeliverableMessageError(
                    f"message {message.message_id} is not deliverable to process {pid}"
                )
            chosen_keys.add(key)
        self._backlog[pid] = [m for m in pending if self._dedup_key(m) not in chosen_keys]
        self._cursor[pid] = len(self._log)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._log)

    def __contains__(self, key: str) -> bool:
        """Whether a dedup key (content digest; ``message_id`` for
        foreign message types) has been published."""
        return key in self._keys

    @property
    def total_published(self) -> int:
        return len(self._log)

    def backlog_size(self, pid: int) -> int:
        """Undelivered messages parked below ``pid``'s cursor."""
        return len(self._backlog[pid])

    def pending_count(self, pid: int) -> int:
        """Total undelivered messages for ``pid``."""
        return len(self._backlog[pid]) + len(self._log) - self._cursor[pid]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _dedup_key(self, message: Message) -> str:
        """Content-derived dedup key (memoised for log-resident messages).

        Real protocol messages are keyed by their verification digest —
        recomputed from kind, claimed sender, signed fields, and
        signature, never read from the instance.  Foreign message types
        (test doubles) are keyed by their ``message_id`` attribute.
        """
        memo = self._key_memo.get(id(message))
        if memo is not None:
            return memo
        if isinstance(message, Message):
            return verification_digest(message)
        return message.message_id

    def _tail(self, cursor: int) -> tuple[Message, ...]:
        if cursor >= len(self._log):
            return ()
        cached = self._tail_memo.get(cursor)
        if cached is None:
            cached = tuple(self._log[cursor:])
            self._tail_memo[cursor] = cached
            self.stats["tail_builds"] += 1
            self.stats["messages_materialised"] += len(cached)
        else:
            self.stats["tail_reuses"] += 1
        return cached
