"""The substrate-independent description of one protocol run.

A :class:`RunSpec` says *what* to execute — protocol, participation
schedule, adversary, network conditions, transaction workload — without
saying *where*.  Backends (:mod:`repro.engine.backend`) say where:
the deterministic round simulator or the wall-clock asyncio deployment.

:class:`RunSpec` is also the public :class:`~repro.harness.TOBRunConfig`
(the harness re-exports it under that name), so every existing
scenario, bench, and example config runs on either substrate unchanged.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from fractions import Fraction

from repro.chain.transactions import Transaction
from repro.engine.conditions import NetworkConditions
from repro.protocols.graded_agreement import DEFAULT_BETA
from repro.sleepy.adversary import Adversary, NullAdversary
from repro.sleepy.network import NetworkModel, SynchronousNetwork
from repro.sleepy.schedule import FullParticipation, SleepSchedule


@dataclass
class RunSpec:
    """Declarative description of one protocol run.

    Attributes:
        n: number of processes.
        rounds: rounds to execute.
        protocol: a name registered in the protocol registry
            (``"mmr"`` — original, current-round votes — or
            ``"resilient"`` — latest unexpired votes over η rounds — by
            default; extensions may register more).
        eta: expiration period for protocols that use one (ignored by
            ``"mmr"``).
        beta: the GA failure-ratio parameter β (quorums are ``> (1−β)m``
            and ``> β·m``).  The *assumption* to run under β̃ for a given
            churn rate is the experimenter's responsibility — that is
            the paper's Equation 2, checked by
            :mod:`repro.analysis.assumptions`.
        schedule: awake/asleep schedule (default: full participation).
        adversary: the adversary (default: none).  The simulator grants
            all three adversary powers; the deployment substrate grants
            corruption and Byzantine messaging, while delivery control
            is realised physically as latency surges (see
            :mod:`repro.engine.conditions`).
        network: simulator-only synchrony model override.  Prefer
            ``conditions``, which runs on every backend; ``network``
            remains for custom :class:`~repro.sleepy.network.NetworkModel`
            subclasses.  At most one of the two may be set.
        conditions: substrate-independent network conditions
            (asynchronous periods that map to adversarial delivery in
            the simulator and latency surges in deployments).
        transactions: round → transactions that arrive at every awake
            process's mempool at the beginning of that round (models
            clients broadcasting transactions).
        record_telemetry: collect per-GA quorum-race telemetry on every
            process (:class:`~repro.protocols.tob_base.TallySample`).
        seed: run seed for key derivation.
        meta: free-form metadata copied into the trace.
    """

    n: int
    rounds: int
    protocol: str = "resilient"
    eta: int = 2
    beta: Fraction = DEFAULT_BETA
    schedule: SleepSchedule | None = None
    adversary: Adversary | None = None
    network: NetworkModel | None = None
    transactions: Mapping[int, Sequence[Transaction]] = field(default_factory=dict)
    record_telemetry: bool = False
    seed: int = 0
    meta: dict = field(default_factory=dict)
    conditions: NetworkConditions | None = None

    def __post_init__(self) -> None:
        if self.network is not None and self.conditions is not None:
            raise ValueError("set either network (simulator-only) or conditions, not both")

    # ------------------------------------------------------------------
    # Resolution (defaults applied once, identically on every backend)
    # ------------------------------------------------------------------
    def resolved_schedule(self) -> SleepSchedule:
        return self.schedule if self.schedule is not None else FullParticipation(self.n)

    def resolved_adversary(self) -> Adversary:
        return self.adversary if self.adversary is not None else NullAdversary()

    def resolved_network(self) -> NetworkModel:
        """The logical synchrony model (for the round simulator)."""
        if self.network is not None:
            return self.network
        if self.conditions is not None:
            return self.conditions.network_model()
        return SynchronousNetwork()

    def arrivals(self, round_number: int) -> Sequence[Transaction]:
        """Transactions arriving at the beginning of ``round_number``."""
        return self.transactions.get(round_number, ())
