"""The substrate-independent description of one protocol run.

A :class:`RunSpec` says *what* to execute — protocol, participation
schedule, adversary, network conditions, transaction workload — without
saying *where*.  Backends (:mod:`repro.engine.backend`) say where:
the deterministic round simulator or the wall-clock asyncio deployment.

:class:`RunSpec` is also the public :class:`~repro.harness.TOBRunConfig`
(the harness re-exports it under that name), so every existing
scenario, bench, and example config runs on either substrate unchanged.

This module also defines the **stable content digest** of a run:
:func:`canonical_form` normalises an arbitrary model object (specs,
schedules, adversaries, fractions, seeded RNGs, …) into a
JSON-serialisable structure that depends only on *content* — never on
memory addresses, hash seeds, or iteration order — and
:func:`stable_digest` hashes that form.  The sweep checkpoint journal
(:mod:`repro.engine.sweep`) keys each grid cell by this digest, so a
changed parameter, seed, or backend configuration invalidates stale
journal rows instead of silently reusing them.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import inspect
import json
import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from fractions import Fraction

from repro.chain.transactions import Transaction
from repro.engine.conditions import NetworkConditions
from repro.protocols.graded_agreement import DEFAULT_BETA
from repro.sleepy.adversary import Adversary, NullAdversary
from repro.sleepy.network import NetworkModel, SynchronousNetwork
from repro.sleepy.schedule import FullParticipation, SleepSchedule


@dataclass
class RunSpec:
    """Declarative description of one protocol run.

    Attributes:
        n: number of processes.
        rounds: rounds to execute.
        protocol: a name registered in the protocol registry
            (``"mmr"`` — original, current-round votes — or
            ``"resilient"`` — latest unexpired votes over η rounds — by
            default; extensions may register more).
        eta: expiration period for protocols that use one (ignored by
            ``"mmr"``).
        beta: the GA failure-ratio parameter β (quorums are ``> (1−β)m``
            and ``> β·m``).  The *assumption* to run under β̃ for a given
            churn rate is the experimenter's responsibility — that is
            the paper's Equation 2, checked by
            :mod:`repro.analysis.assumptions`.
        schedule: awake/asleep schedule (default: full participation).
        adversary: the adversary (default: none).  The simulator grants
            all three adversary powers; the deployment substrate grants
            corruption and Byzantine messaging, while delivery control
            is realised physically as latency surges (see
            :mod:`repro.engine.conditions`).
        network: simulator-only synchrony model override.  Prefer
            ``conditions``, which runs on every backend; ``network``
            remains for custom :class:`~repro.sleepy.network.NetworkModel`
            subclasses.  At most one of the two may be set.
        conditions: substrate-independent network conditions
            (asynchronous periods that map to adversarial delivery in
            the simulator and latency surges in deployments).
        transactions: round → transactions that arrive at every awake
            process's mempool at the beginning of that round (models
            clients broadcasting transactions).
        record_telemetry: collect per-GA quorum-race telemetry on every
            process (:class:`~repro.protocols.tob_base.TallySample`).
        seed: run seed for key derivation.
        meta: free-form metadata copied into the trace.
    """

    n: int
    rounds: int
    protocol: str = "resilient"
    eta: int = 2
    beta: Fraction = DEFAULT_BETA
    schedule: SleepSchedule | None = None
    adversary: Adversary | None = None
    network: NetworkModel | None = None
    transactions: Mapping[int, Sequence[Transaction]] = field(default_factory=dict)
    record_telemetry: bool = False
    seed: int = 0
    meta: dict = field(default_factory=dict)
    conditions: NetworkConditions | None = None

    def __post_init__(self) -> None:
        if self.network is not None and self.conditions is not None:
            raise ValueError("set either network (simulator-only) or conditions, not both")

    # ------------------------------------------------------------------
    # Resolution (defaults applied once, identically on every backend)
    # ------------------------------------------------------------------
    def resolved_schedule(self) -> SleepSchedule:
        return self.schedule if self.schedule is not None else FullParticipation(self.n)

    def resolved_adversary(self) -> Adversary:
        return self.adversary if self.adversary is not None else NullAdversary()

    def resolved_network(self) -> NetworkModel:
        """The logical synchrony model (for the round simulator)."""
        if self.network is not None:
            return self.network
        if self.conditions is not None:
            return self.conditions.network_model()
        return SynchronousNetwork()

    def arrivals(self, round_number: int) -> Sequence[Transaction]:
        """Transactions arriving at the beginning of ``round_number``."""
        return self.transactions.get(round_number, ())

    def digest(self) -> str:
        """A stable, content-derived digest of this spec.

        Two specs digest equal iff they describe the same run —
        protocol, parameters, schedule, adversary, workload, and seed —
        regardless of object identity or the process that computed it.
        Compute digests on *freshly built* specs (grid expansion does):
        stateful strategy objects (e.g. an adversary's captured tip)
        mutate during execution, and a mid-run digest would reflect
        that transient state.
        """
        return stable_digest(self)


# ----------------------------------------------------------------------
# Stable content digests
# ----------------------------------------------------------------------
def _qualified_name(obj: object) -> str:
    module = getattr(obj, "__module__", type(obj).__module__)
    qualname = getattr(obj, "__qualname__", type(obj).__qualname__)
    return f"{module}:{qualname}"


def _sort_key(form: object) -> str:
    return json.dumps(form, sort_keys=True, separators=(",", ":"))


def canonical_form(value: object) -> object:
    """A JSON-serialisable normal form of ``value``, content-derived.

    The form is stable across processes and Python hash seeds: sets and
    mappings are sorted by their elements' canonical encoding, floats
    are spelled via ``repr`` (exact shortest round-trip), callables are
    named by module-qualified name, seeded RNGs by their state, and
    arbitrary model objects (schedules, adversaries, backends) by class
    name plus instance ``vars``.  Raises :class:`TypeError` for objects
    whose content cannot be derived (no fields, default ``repr``) —
    better a loud failure than a digest that silently depends on a
    memory address.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return ["float", repr(value)]
    if isinstance(value, Fraction):
        return ["fraction", value.numerator, value.denominator]
    if isinstance(value, bytes):
        return ["bytes", value.hex()]
    if isinstance(value, range):
        return ["range", value.start, value.stop, value.step]
    if isinstance(value, (set, frozenset)):
        return ["set", sorted((canonical_form(v) for v in value), key=_sort_key)]
    if isinstance(value, Mapping):
        items = [[canonical_form(k), canonical_form(v)] for k, v in value.items()]
        return ["map", sorted(items, key=lambda kv: _sort_key(kv[0]))]
    if isinstance(value, (list, tuple)):
        return ["seq", [canonical_form(v) for v in value]]
    if isinstance(value, functools.partial):
        return [
            "partial",
            canonical_form(value.func),
            canonical_form(value.args),
            canonical_form(value.keywords),
        ]
    if isinstance(value, random.Random):
        return ["rng", canonical_form(value.getstate())]
    if isinstance(value, type) or inspect.isroutine(value):
        return ["callable", _qualified_name(value)]
    if dataclasses.is_dataclass(value):
        fields = {f.name: getattr(value, f.name) for f in dataclasses.fields(value)}
        return ["obj", _qualified_name(type(value)), canonical_form(fields)]
    state = getattr(value, "__dict__", None)
    if state is not None:
        return ["obj", _qualified_name(type(value)), canonical_form(state)]
    raise TypeError(
        f"cannot derive a stable digest for {type(value).__name__!r}: "
        "no dataclass fields, no instance __dict__, and no canonical rule"
    )


def stable_digest(value: object) -> str:
    """SHA-256 hex digest of :func:`canonical_form`\\ ``(value)``."""
    blob = json.dumps(canonical_form(value), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
