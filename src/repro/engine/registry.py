"""The protocol registry: one place that knows how to build processes.

Protocol dispatch used to be duplicated three times — the harness's
``build_simulation``, the deployment runner's ``_make_process``, and the
CLI's hard-coded ``choices=[...]`` — each with its own ``if protocol ==
...`` ladder.  The registry replaces all three: a protocol is a named
:class:`ProtocolSpec` whose builder turns run parameters into a
:data:`~repro.sleepy.process.ProcessFactory`, and every backend asks
the same registry.

Registering a new protocol makes it available to the simulator, the
deployment runner, the CLI, and every scenario constructor at once::

    from repro.engine.registry import PROTOCOLS, ProtocolSpec

    PROTOCOLS.register(ProtocolSpec(
        name="my-variant",
        build=my_factory_builder,   # (eta=..., beta=..., ...) -> ProcessFactory
        uses_eta=True,
        description="my experimental vote rule",
    ))
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from fractions import Fraction

from repro.core.resilient_tob import resilient_factory
from repro.protocols.graded_agreement import DEFAULT_BETA
from repro.protocols.mmr_tob import mmr_factory
from repro.protocols.tob_base import DEFAULT_BLOCK_CAPACITY
from repro.sleepy.process import ProcessFactory


@dataclass(frozen=True)
class ProtocolSpec:
    """One registered protocol.

    ``build`` receives keyword arguments ``beta``, ``block_capacity``
    and ``record_telemetry`` — plus ``eta`` when ``uses_eta`` is set —
    and returns the process factory for one run.
    """

    name: str
    build: Callable[..., ProcessFactory]
    uses_eta: bool = False
    description: str = ""


class ProtocolRegistry:
    """Named protocol constructors shared by every execution backend."""

    def __init__(self) -> None:
        self._specs: dict[str, ProtocolSpec] = {}

    def register(self, spec: ProtocolSpec, replace: bool = False) -> ProtocolSpec:
        """Add ``spec``; refuses silent redefinition unless ``replace``."""
        if not replace and spec.name in self._specs:
            raise ValueError(f"protocol {spec.name!r} is already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ProtocolSpec:
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(repr(n) for n in self.names())
            raise ValueError(f"unknown protocol {name!r} (use one of {known})") from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def names(self) -> tuple[str, ...]:
        """Registered protocol names, in registration order."""
        return tuple(self._specs)

    def factory(
        self,
        name: str,
        eta: int = 0,
        beta: Fraction = DEFAULT_BETA,
        block_capacity: int = DEFAULT_BLOCK_CAPACITY,
        record_telemetry: bool = False,
    ) -> ProcessFactory:
        """The process factory for protocol ``name`` with these parameters."""
        spec = self.get(name)
        kwargs: dict = {
            "beta": beta,
            "block_capacity": block_capacity,
            "record_telemetry": record_telemetry,
        }
        if spec.uses_eta:
            kwargs["eta"] = eta
        return spec.build(**kwargs)

    def effective_eta(self, name: str, eta: int) -> int:
        """``eta`` if the protocol uses one, else 0 (for trace metadata)."""
        return eta if self.get(name).uses_eta else 0


#: The default registry every backend and the CLI consult.
PROTOCOLS = ProtocolRegistry()

PROTOCOLS.register(
    ProtocolSpec(
        name="mmr",
        build=mmr_factory,
        uses_eta=False,
        description="original Malkhi–Momose–Ren TOB (current-round votes only)",
    )
)
PROTOCOLS.register(
    ProtocolSpec(
        name="resilient",
        build=resilient_factory,
        uses_eta=True,
        description="η-expiration asynchrony-resilient variant (latest unexpired votes)",
    )
)
