"""Asynchrony-resilient sleepy total-order broadcast — full reproduction.

Reproduces D'Amato, Losa & Zanolini, *Asynchrony-Resilient Sleepy
Total-Order Broadcast Protocols* (PODC 2024, arXiv:2309.05347): the
Malkhi–Momose–Ren dynamically available TOB, the paper's message
expiration mechanism (η), the extended graded agreement, the sleepy
round model with bounded asynchronous periods, and the analytic bounds
of Figure 1 — plus the simulation, analysis, and deployment substrates
needed to evaluate them.

Quick start::

    from fractions import Fraction
    import repro

    trace = repro.run_tob(repro.TOBRunConfig(n=20, rounds=40, protocol="resilient", eta=3))
    report = repro.check_safety(trace)
    assert report.ok

See README.md for the tour and DESIGN.md for the architecture.
"""

from repro.chain import Block, BlockTree, Log, Mempool, PrefixTally, Transaction
from repro.core.bounds import (
    beta_tilde,
    beta_tilde_one_third,
    eta_for_resilience,
    figure1_curve,
    gamma_for_beta_tilde,
    max_churn,
    max_resilient_pi,
)
from repro.core.expiration import LatestVoteStore
from repro.core.extended_ga import ExtendedGAInstance, ExtendedGAProcess, InitialVote
from repro.core.resilient_tob import ResilientTOBProcess, resilient_factory
from repro.engine.backend import EngineResult, run_spec
from repro.engine.bus import MessageBus
from repro.engine.conditions import AsyncPeriod, NetworkConditions
from repro.engine.registry import PROTOCOLS, ProtocolRegistry, ProtocolSpec
from repro.engine.spec import RunSpec
from repro.harness import TOBRunConfig, build_simulation, run_simulation, run_tob
from repro.protocols.graded_agreement import GAOutput, tally_votes
from repro.protocols.mmr_tob import MMRProcess, mmr_factory
from repro.sleepy import (
    Adversary,
    AdversarialProposerAdversary,
    CrashAdversary,
    DiurnalSchedule,
    EquivocatingVoteAdversary,
    FullParticipation,
    MultiWindowAsynchrony,
    NullAdversary,
    RandomChurnSchedule,
    Simulation,
    SpikeSchedule,
    SplitVoteAttack,
    SynchronousNetwork,
    TableSchedule,
    Trace,
    WindowedAsynchrony,
    WithholdingAdversary,
)
from repro.analysis import (
    check_asynchrony_resilience,
    check_churn,
    check_eta_sleepiness,
    check_failure_ratio,
    check_healing,
    check_safety,
)

__version__ = "1.0.0"

__all__ = [
    "Adversary",
    "AdversarialProposerAdversary",
    "AsyncPeriod",
    "Block",
    "BlockTree",
    "CrashAdversary",
    "DiurnalSchedule",
    "EngineResult",
    "EquivocatingVoteAdversary",
    "ExtendedGAInstance",
    "ExtendedGAProcess",
    "FullParticipation",
    "GAOutput",
    "InitialVote",
    "LatestVoteStore",
    "Log",
    "MMRProcess",
    "Mempool",
    "PrefixTally",
    "MessageBus",
    "MultiWindowAsynchrony",
    "NetworkConditions",
    "NullAdversary",
    "PROTOCOLS",
    "ProtocolRegistry",
    "ProtocolSpec",
    "RunSpec",
    "RandomChurnSchedule",
    "ResilientTOBProcess",
    "Simulation",
    "SpikeSchedule",
    "SplitVoteAttack",
    "SynchronousNetwork",
    "TOBRunConfig",
    "TableSchedule",
    "Trace",
    "Transaction",
    "WindowedAsynchrony",
    "WithholdingAdversary",
    "beta_tilde",
    "beta_tilde_one_third",
    "build_simulation",
    "check_asynchrony_resilience",
    "check_churn",
    "check_eta_sleepiness",
    "check_failure_ratio",
    "check_healing",
    "check_safety",
    "eta_for_resilience",
    "figure1_curve",
    "gamma_for_beta_tilde",
    "max_churn",
    "max_resilient_pi",
    "mmr_factory",
    "resilient_factory",
    "run_simulation",
    "run_spec",
    "run_tob",
    "tally_votes",
]
