"""The ebb-and-flow process: available chain + finality overlay in one.

Wraps any :class:`~repro.protocols.tob_base.SleepyTOBProcess` (original
MMR or the η-expiration modification).  The wrapper is transparent to
the round simulator: it forwards the inner protocol's messages and
decisions, adds one signed acknowledgement of the inner delivered log
per round, routes incoming acks into its :class:`FinalityGadget`, and
advances the finalised prefix at every receive phase.

Exposed state: ``delivered_tip`` (the available chain — may move fast
and, for an unprotected inner protocol under attack, may reorg) and
``finalized_tip`` (the certified prefix — may lag, never reverts).
"""

from __future__ import annotations

from collections.abc import Sequence
from fractions import Fraction

from repro.chain.block import BlockId
from repro.finality.gadget import DEFAULT_FINALITY_QUORUM, FinalityGadget, FinalizationEvent
from repro.protocols.tob_base import SleepyTOBProcess
from repro.sleepy.messages import Message, VerifiedBatch, make_ack
from repro.sleepy.process import Process
from repro.sleepy.trace import DecisionEvent


class EbbAndFlowProcess(Process):
    """A TOB process paired with the finality overlay."""

    def __init__(
        self,
        inner: SleepyTOBProcess,
        key,
        verifier,
        n: int,
        quorum: Fraction = DEFAULT_FINALITY_QUORUM,
    ) -> None:
        super().__init__(inner.pid)
        self.inner = inner
        self._key = key
        self._verifier = verifier
        self.gadget = FinalityGadget(n, inner.tree, quorum=quorum)

    # ------------------------------------------------------------------
    # Views over the two chains
    # ------------------------------------------------------------------
    @property
    def delivered_tip(self) -> BlockId | None:
        """Tip of the available chain (the inner protocol's deliveries)."""
        return self.inner.delivered_tip

    @property
    def finalized_tip(self) -> BlockId | None:
        """Tip of the finalised prefix (never reverts)."""
        return self.gadget.finalized_tip

    @property
    def finalizations(self) -> list[FinalizationEvent]:
        """All finalisation advances, in round order."""
        return self.gadget.events

    # ------------------------------------------------------------------
    # Process interface
    # ------------------------------------------------------------------
    def send(self, round_number: int) -> Sequence[Message]:
        messages = list(self.inner.send(round_number))
        messages.append(
            make_ack(
                self._verifier.registry, self._key, round_number, self.inner.delivered_tip
            )
        )
        return messages

    def receive(self, round_number: int, messages: Sequence[Message]) -> None:
        self.receive_batch(round_number, self._verifier.batch(messages))

    def receive_batch(self, round_number: int, batch: VerifiedBatch) -> None:
        """Route one pre-verified delivery: acks here, the rest inward.

        The shared batch is handed to the inner protocol as-is — its
        ``receive_batch`` only consumes votes and proposals, so the acks
        recorded here are invisible to it, exactly as when they were
        filtered out by hand.
        """
        for sender, ack_round, tip in batch.ack_records():
            self.gadget.record_ack(sender, ack_round, tip)
        self.inner.receive_batch(round_number, batch)
        self.gadget.advance(round_number)

    def pop_decisions(self) -> list[DecisionEvent]:
        """Forward the inner protocol's decisions to the simulator."""
        return self.inner.pop_decisions()


def ebb_and_flow_factory(
    protocol: str,
    eta: int,
    n: int,
    beta: Fraction | None = None,
    quorum: Fraction = DEFAULT_FINALITY_QUORUM,
):
    """A :data:`~repro.sleepy.process.ProcessFactory` for wrapped processes."""
    from repro.chain.transactions import Mempool
    from repro.protocols.graded_agreement import DEFAULT_BETA
    from repro.protocols.mmr_tob import MMRProcess
    from repro.core.resilient_tob import ResilientTOBProcess

    beta = beta if beta is not None else DEFAULT_BETA

    def factory(pid, key, verifier, chain=None):
        if protocol == "mmr":
            inner = MMRProcess(pid, key, verifier, beta=beta, mempool=Mempool(), chain=chain)
        elif protocol == "resilient":
            inner = ResilientTOBProcess(
                pid, key, verifier, eta=eta, beta=beta, mempool=Mempool(), chain=chain
            )
        else:
            raise ValueError(f"unknown protocol {protocol!r}")
        return EbbAndFlowProcess(inner, key, verifier, n=n, quorum=quorum)

    factory.supports_shared_chain = True
    return factory
