"""The finality gadget: a partially-synchronous overlay on the TOB.

The paper situates its contribution inside the ebb-and-flow design
(§3, citing Neu–Tas–Tse [16] and D'Amato–Zanolini [5]): a dynamically
available chain paired with a partially synchronous *finality* layer.
The available chain always grows; the finality layer certifies a prefix
once a fixed quorum of **all** ``n`` processes — not just the awake
ones — acknowledges it.  Finality therefore stalls when participation
drops below the quorum, but what it certifies can never be reverted as
long as fewer than ``n/3`` processes are Byzantine, regardless of
asynchrony.

This module implements the accounting half of that design:

* every process periodically multicasts a signed acknowledgement of its
  currently delivered log;
* :class:`FinalityGadget` tracks the latest acknowledgement of each
  process and finalises the deepest log that more than 2/3 of all
  processes acknowledge (by extension), monotonically.

The paper's §3 point — reproduced by ``benchmarks/bench_finality.py`` —
is that the *available* component's behaviour under asynchrony is what
the expiration mechanism improves: with an MMR inner protocol the
available chain visibly reorgs during an attack (finality holds but the
user-facing chain rewrites history); with the η-expiration inner
protocol neither layer moves an inch.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.chain.block import GENESIS_TIP, BlockId
from repro.chain.tree import BlockTree
from repro.core.expiration import LatestVoteStore

#: Classic BFT finality quorum: strictly more than 2/3 of all processes.
DEFAULT_FINALITY_QUORUM = Fraction(2, 3)


@dataclass(frozen=True)
class FinalizationEvent:
    """The finalised prefix advanced to ``tip`` at ``round``."""

    round: int
    tip: BlockId | None
    depth: int
    acks: int


class FinalityGadget:
    """Quorum accounting over the latest acknowledgement per process.

    The gadget is deliberately *static-quorum*: the denominator is the
    total number of processes ``n``, because finality must not be
    reachable by a lonely awake minority (that is the whole
    availability/finality dilemma).  Acknowledgements never expire —
    the finality layer is the partially-synchronous half of the pair.
    """

    def __init__(
        self,
        n: int,
        tree: BlockTree,
        quorum: Fraction = DEFAULT_FINALITY_QUORUM,
    ) -> None:
        if n <= 0:
            raise ValueError("need at least one process")
        if not Fraction(1, 2) <= quorum < 1:
            raise ValueError("finality quorum must be in [1/2, 1)")
        self.n = n
        self._tree = tree
        self._quorum = quorum
        self._acks = LatestVoteStore()
        self.finalized_tip: BlockId | None = GENESIS_TIP
        self.events: list[FinalizationEvent] = []

    def record_ack(self, sender: int, round_number: int, tip: BlockId | None) -> None:
        """Ingest one acknowledgement (equivocations are discarded)."""
        self._acks.record(sender, round_number, tip)

    def ack_count_for(self, tip: BlockId | None, up_to_round: int) -> int:
        """Processes whose latest ack (≤ ``up_to_round``) extends ``tip``."""
        latest = self._acks.latest(0, up_to_round)
        return sum(
            1
            for acked in latest.values()
            if acked in self._tree and self._tree.is_prefix(tip, acked)
        )

    def advance(self, round_number: int) -> FinalizationEvent | None:
        """Finalise the deepest quorum-acknowledged extension, if any.

        Returns the finalisation event when the finalised prefix grew.
        Candidates are restricted to logs extending the current
        finalised tip: with an honest-majority quorum two conflicting
        logs can never both gather it, and monotonicity makes the
        restriction sound rather than merely convenient.
        """
        latest = self._acks.latest(0, round_number)
        acked = [tip for tip in latest.values() if tip in self._tree]
        num, den = self._quorum.numerator, self._quorum.denominator
        best: BlockId | None = None
        best_depth = self._tree.depth(self.finalized_tip)
        for candidate in set(acked):
            # Ack-extension counts only grow walking toward the root, so
            # the first quorum hit from the tip downward is the deepest
            # finalisable prefix along this path.
            node: BlockId | None = candidate
            while node is not GENESIS_TIP:
                depth = self._tree.depth(node)
                if depth <= best_depth:
                    break  # cannot improve along this path
                if self._tree.is_prefix(self.finalized_tip, node):
                    count = sum(1 for tip in acked if self._tree.is_prefix(node, tip))
                    if count * den > num * self.n:
                        best, best_depth = node, depth
                        break
                assert node is not None
                node = self._tree.parent(node)
        if best is None:
            return None
        event = FinalizationEvent(
            round=round_number,
            tip=best,
            depth=self._tree.depth(best),
            acks=self.ack_count_for(best, round_number),
        )
        self.finalized_tip = best
        self.events.append(event)
        return event
