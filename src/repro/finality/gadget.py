"""The finality gadget: a partially-synchronous overlay on the TOB.

The paper situates its contribution inside the ebb-and-flow design
(§3, citing Neu–Tas–Tse [16] and D'Amato–Zanolini [5]): a dynamically
available chain paired with a partially synchronous *finality* layer.
The available chain always grows; the finality layer certifies a prefix
once a fixed quorum of **all** ``n`` processes — not just the awake
ones — acknowledges it.  Finality therefore stalls when participation
drops below the quorum, but what it certifies can never be reverted as
long as fewer than ``n/3`` processes are Byzantine, regardless of
asynchrony.

This module implements the accounting half of that design:

* every process periodically multicasts a signed acknowledgement of its
  currently delivered log;
* :class:`FinalityGadget` tracks the latest acknowledgement of each
  process and finalises the deepest log that more than 2/3 of all
  processes acknowledge (by extension), monotonically.

The paper's §3 point — reproduced by ``benchmarks/bench_finality.py`` —
is that the *available* component's behaviour under asynchrony is what
the expiration mechanism improves: with an MMR inner protocol the
available chain visibly reorgs during an attack (finality holds but the
user-facing chain rewrites history); with the η-expiration inner
protocol neither layer moves an inch.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.chain.block import GENESIS_TIP, BlockId
from repro.chain.shared import TreeLike
from repro.chain.tally import PrefixTally
from repro.core.expiration import LatestVoteStore

#: Classic BFT finality quorum: strictly more than 2/3 of all processes.
DEFAULT_FINALITY_QUORUM = Fraction(2, 3)


@dataclass(frozen=True)
class FinalizationEvent:
    """The finalised prefix advanced to ``tip`` at ``round``."""

    round: int
    tip: BlockId | None
    depth: int
    acks: int


class FinalityGadget:
    """Quorum accounting over the latest acknowledgement per process.

    The gadget is deliberately *static-quorum*: the denominator is the
    total number of processes ``n``, because finality must not be
    reachable by a lonely awake minority (that is the whole
    availability/finality dilemma).  Acknowledgements never expire —
    the finality layer is the partially-synchronous half of the pair.
    """

    def __init__(
        self,
        n: int,
        tree: TreeLike,
        quorum: Fraction = DEFAULT_FINALITY_QUORUM,
    ) -> None:
        if n <= 0:
            raise ValueError("need at least one process")
        if not Fraction(1, 2) <= quorum < 1:
            raise ValueError("finality quorum must be in [1/2, 1)")
        self.n = n
        self._tree = tree
        self._quorum = quorum
        self._acks = LatestVoteStore()
        # The latest interpretable ack per process, as an incremental
        # prefix-count tally: "acks extending Λ" is the same subtree
        # count the GA tally queries, so quorum checks are O(1) lookups
        # instead of per-candidate scans over every process's ack.
        self._tally = PrefixTally(tree)
        self._synced: tuple[int, int, int] | None = None
        self.finalized_tip: BlockId | None = GENESIS_TIP
        self.events: list[FinalizationEvent] = []

    def record_ack(self, sender: int, round_number: int, tip: BlockId | None) -> None:
        """Ingest one acknowledgement (equivocations are discarded)."""
        self._acks.record(sender, round_number, tip)

    def _sync(self, up_to_round: int) -> None:
        """Roll the ack tally to the latest acks as of ``up_to_round``.

        Keyed on (round, ack-store version, tree size): repeat queries
        in a quiet round are free, and otherwise only the processes
        whose latest ack changed — or whose acked block was just
        learned — cost count updates.
        """
        key = (up_to_round, self._acks.version, len(self._tree))
        if key == self._synced:
            return
        latest = self._acks.latest(0, up_to_round)
        self._tally.set_votes(
            {pid: tip for pid, tip in latest.items() if tip in self._tree}
        )
        self._synced = key

    def ack_count_for(self, tip: BlockId | None, up_to_round: int) -> int:
        """Processes whose latest ack (≤ ``up_to_round``) extends ``tip``."""
        self._sync(up_to_round)
        return self._tally.count(tip)

    def advance(self, round_number: int) -> FinalizationEvent | None:
        """Finalise the deepest quorum-acknowledged extension, if any.

        Returns the finalisation event when the finalised prefix grew.
        Candidates are restricted to logs extending the current
        finalised tip: with an honest-majority quorum two conflicting
        logs can never both gather it, and monotonicity makes the
        restriction sound rather than merely convenient.
        """
        self._sync(round_number)
        num, den = self._quorum.numerator, self._quorum.denominator
        best: BlockId | None = None
        best_depth = self._tree.depth(self.finalized_tip)
        for candidate in set(self._tally.votes.values()):
            # Ack-extension counts only grow walking toward the root, so
            # the first quorum hit from the tip downward is the deepest
            # finalisable prefix along this path.
            node: BlockId | None = candidate
            while node is not GENESIS_TIP:
                depth = self._tree.depth(node)
                if depth <= best_depth:
                    break  # cannot improve along this path
                if self._tree.is_prefix(self.finalized_tip, node):
                    if self._tally.count(node) * den > num * self.n:
                        best, best_depth = node, depth
                        break
                assert node is not None
                node = self._tree.parent(node)
        if best is None:
            return None
        event = FinalizationEvent(
            round=round_number,
            tip=best,
            depth=self._tree.depth(best),
            acks=self.ack_count_for(best, round_number),
        )
        self.finalized_tip = best
        self.events.append(event)
        return event
