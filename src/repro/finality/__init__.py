"""Ebb-and-flow finality overlay (the paper's §3 deployment context).

The paper's mechanism hardens the *dynamically available* half of an
ebb-and-flow pair [16]; this package supplies the other half so the
full design can be studied:

* :mod:`repro.finality.gadget` — static-quorum finality accounting
  over signed acknowledgements (finalised prefixes never revert with
  < n/3 Byzantine processes, under any asynchrony);
* :mod:`repro.finality.process` — a wrapper that runs any TOB process
  and the gadget side by side, exposing the available tip and the
  finalised tip.

``benchmarks/bench_finality.py`` measures the §3 claim: with the
η-expiration inner protocol, the user-facing available chain stops
reorging under asynchrony — finality alone never protected it.
"""

from repro.finality.gadget import (
    DEFAULT_FINALITY_QUORUM,
    FinalityGadget,
    FinalizationEvent,
)
from repro.finality.process import EbbAndFlowProcess, ebb_and_flow_factory

__all__ = [
    "DEFAULT_FINALITY_QUORUM",
    "EbbAndFlowProcess",
    "FinalityGadget",
    "FinalizationEvent",
    "ebb_and_flow_factory",
]
