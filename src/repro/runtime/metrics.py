"""Live deployment telemetry: counters, gauges, histograms, HTTP scrape.

A :class:`MetricsHub` is the one mutable metrics surface of a running
deployment — workers increment counters, set gauges (queue depths,
mempool occupancy), and observe latency samples into fixed-bucket
histograms.  Snapshots are plain JSON-safe dicts, and — crucially for
the multi-process substrate — snapshots **merge**: each worker pushes
its local snapshot to the coordinator over the control socket, and the
coordinator folds them into one service-wide view.  Histograms use a
fixed geometric bucket ladder so merging is exact (bucket counts add),
unlike quantile sketches.

:class:`MetricsServer` exposes the hub over HTTP as JSON (a minimal
``GET``-only endpoint on asyncio streams — no framework, no thread):
point any scraper at ``http://host:port/metrics`` while the service
runs.  The ``repro soak`` CLI lane starts one next to the coordinator
and scrapes it itself at the end of the run, so a passing soak proves
the endpoint was reachable.

Snapshot schema (all keys optional until first touched)::

    {
      "counters":   {name: number},          # monotonic, merge = sum
      "gauges":     {name: number},          # last write wins per source
      "histograms": {name: {"count": int, "sum": float,
                            "min": float, "max": float,
                            "buckets": {upper_bound_repr: count}}},
    }
"""

from __future__ import annotations

import asyncio
import json
from collections.abc import Mapping


#: Cumulative wire-path counters a transport may expose; exported as
#: gauges (workers push *cumulative* snapshots which the coordinator
#: replaces per source, so gauges — last write wins — are the correct
#: kind; hub-owned counters would double-count on every re-push).
WIRE_COUNTER_ATTRS = (
    "frames_sent",
    "frames_received",
    "batches_sent",
    "batches_received",
    "bytes_sent",
    "bytes_received",
    "payload_encodes",
    "payload_reuses",
)


def export_wire_gauges(hub: "MetricsHub", transport) -> None:
    """Publish ``transport``'s wire counters on ``hub`` as ``wire_*`` gauges.

    Tolerant of fabrics without the batched wire path (``SimTransport``
    exposes none of the batch counters): missing attributes are skipped,
    so every substrate exports exactly what it measures.
    """
    for attr in WIRE_COUNTER_ATTRS:
        value = getattr(transport, attr, None)
        if value is not None:
            hub.gauge(f"wire_{attr}", value)


def _bucket_ladder() -> tuple[float, ...]:
    # 0.1 ms .. ~1677 s in exact powers of two: merge-stable and wide
    # enough for decision latencies at any δ this repository runs.
    return tuple(0.0001 * (2**k) for k in range(24))


_BOUNDS = _bucket_ladder()


class Histogram:
    """Fixed-bucket histogram: exact merges, quantile estimates."""

    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        #: upper bound -> samples ≤ bound (non-cumulative, one bucket each).
        self.buckets: dict[float, int] = {}

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for bound in _BOUNDS:
            if value <= bound:
                self.buckets[bound] = self.buckets.get(bound, 0) + 1
                return
        self.buckets[float("inf")] = self.buckets.get(float("inf"), 0) + 1

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile (upper bucket bound), ``None`` if empty."""
        if self.count == 0:
            return None
        target = q * self.count
        seen = 0
        for bound in sorted(self.buckets):
            seen += self.buckets[bound]
            if seen >= target:
                return bound
        return self.max

    def summary(self) -> dict:
        """JSON-safe snapshot of this histogram."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "buckets": {repr(bound): count for bound, count in sorted(self.buckets.items())},
        }

    def merge_summary(self, summary: Mapping) -> None:
        """Fold another histogram's :meth:`summary` into this one."""
        self.count += int(summary.get("count", 0))
        self.sum += float(summary.get("sum", 0.0))
        for other, mine in (("min", "min"), ("max", "max")):
            value = summary.get(other)
            if value is None:
                continue
            current = getattr(self, mine)
            if current is None:
                setattr(self, mine, value)
            else:
                setattr(self, mine, min(current, value) if other == "min" else max(current, value))
        for bound_repr, count in summary.get("buckets", {}).items():
            bound = float(bound_repr)
            self.buckets[bound] = self.buckets.get(bound, 0) + int(count)


class MetricsHub:
    """The mutable metrics surface of one deployment (or one worker)."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the monotonic counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the histogram ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(value)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe snapshot of every metric."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {name: h.summary() for name, h in self._histograms.items()},
        }

    def merge_snapshot(self, snapshot: Mapping, source: str | None = None) -> None:
        """Fold a worker's :meth:`snapshot` into this hub.

        Counters add; gauges are namespaced per ``source`` (two workers'
        queue depths are different facts, not one) and also summed into
        the un-namespaced name; histogram buckets add exactly.

        Merging the *same* worker's snapshot twice would double-count —
        push deltas or replace per-source state upstream.  The
        deployment coordinator replaces: each worker pushes cumulative
        snapshots and the coordinator keeps only the latest per worker
        (:class:`SourcedMetrics` handles that bookkeeping).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            if source is not None:
                self._gauges[f"{source}.{name}"] = value
            self._gauges[name] = self._gauges.get(name, 0) + value if source else value
        for name, summary in snapshot.get("histograms", {}).items():
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.merge_summary(summary)


class SourcedMetrics:
    """Latest-snapshot-per-source aggregation for the coordinator.

    Workers push *cumulative* snapshots; this keeps the latest per
    worker and materialises the merged service-wide view on demand, so
    re-pushes replace rather than double-count.
    """

    def __init__(self) -> None:
        self._by_source: dict[str, Mapping] = {}

    def push(self, source: str, snapshot: Mapping) -> None:
        """Replace ``source``'s latest cumulative snapshot."""
        self._by_source[source] = snapshot

    def merged(self, base: Mapping | None = None) -> dict:
        """One service-wide snapshot over all sources (plus ``base``)."""
        hub = MetricsHub()
        if base is not None:
            hub.merge_snapshot(base)
        for source, snapshot in sorted(self._by_source.items()):
            hub.merge_snapshot(snapshot, source=source)
        return hub.snapshot()


class MetricsServer:
    """A minimal asyncio HTTP endpoint serving one hub as JSON.

    ``GET /metrics`` (or ``/``) returns the hub's current snapshot; any
    other path is a 404.  ``provider`` overrides what gets served (the
    coordinator passes a :meth:`SourcedMetrics.merged` thunk).
    """

    def __init__(
        self,
        hub: MetricsHub,
        host: str = "127.0.0.1",
        port: int = 0,
        provider=None,
    ) -> None:
        self._hub = hub
        self._host = host
        self._requested_port = port
        self._provider = provider if provider is not None else hub.snapshot
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    @property
    def url(self) -> str:
        """The scrape URL (valid after :meth:`start`)."""
        if self.port is None:
            raise RuntimeError("metrics server not started")
        return f"http://{self._host}:{self.port}/metrics"

    async def start(self) -> None:
        """Bind and start serving (port 0 → ephemeral, read ``.port``)."""
        self._server = await asyncio.start_server(
            self._handle, host=self._host, port=self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop serving and release the port."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await reader.readline()
            while True:  # drain headers
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            if parts and parts[0] != "GET":
                body, status = b'{"error": "method not allowed"}', "405 Method Not Allowed"
            elif path.split("?")[0] in ("/", "/metrics"):
                body = json.dumps(self._provider(), default=str).encode("utf-8")
                status = "200 OK"
            else:
                body, status = b'{"error": "not found"}', "404 Not Found"
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
