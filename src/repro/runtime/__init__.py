"""Real-time deployment runtime (rounds of Δ = 3δ over gossip).

* :mod:`repro.runtime.clock` — the round clock.
* :mod:`repro.runtime.node` — a protocol process bridged onto gossip.
* :mod:`repro.runtime.runner` — whole-deployment orchestration
  producing a standard :class:`~repro.sleepy.trace.Trace`.
* :mod:`repro.runtime.worker` — the multi-process worker entrypoint
  (one shard of nodes per process, joined over sockets).
* :mod:`repro.runtime.metrics` — live service telemetry (counters,
  histograms, an HTTP JSON scrape endpoint).
"""

from repro.runtime.clock import ROUND_FACTOR, RoundClock
from repro.runtime.metrics import Histogram, MetricsHub, MetricsServer, SourcedMetrics
from repro.runtime.node import DeployedNode
from repro.runtime.runner import (
    DeploymentConfig,
    DeploymentResult,
    run_deployment,
    run_deployment_async,
)
from repro.runtime.worker import WorkerConfig, drive_node, shard_pids, worker_main

__all__ = [
    "ROUND_FACTOR",
    "RoundClock",
    "DeployedNode",
    "DeploymentConfig",
    "DeploymentResult",
    "Histogram",
    "MetricsHub",
    "MetricsServer",
    "SourcedMetrics",
    "WorkerConfig",
    "drive_node",
    "run_deployment",
    "run_deployment_async",
    "shard_pids",
    "worker_main",
]
