"""Real-time deployment runtime (rounds of Δ = 3δ over gossip).

* :mod:`repro.runtime.clock` — the round clock.
* :mod:`repro.runtime.node` — a protocol process bridged onto gossip.
* :mod:`repro.runtime.runner` — whole-deployment orchestration
  producing a standard :class:`~repro.sleepy.trace.Trace`.
"""

from repro.runtime.clock import ROUND_FACTOR, RoundClock
from repro.runtime.node import DeployedNode
from repro.runtime.runner import (
    DeploymentConfig,
    DeploymentResult,
    run_deployment,
    run_deployment_async,
)

__all__ = [
    "ROUND_FACTOR",
    "RoundClock",
    "DeployedNode",
    "DeploymentConfig",
    "DeploymentResult",
    "run_deployment",
    "run_deployment_async",
]
