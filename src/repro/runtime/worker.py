"""Worker process for multi-process deployments.

One worker hosts a *shard* of a deployment's nodes inside its own
process and event loop: it builds the same protocol processes, round
clock, and gossip overlay the single-process
:class:`~repro.engine.deploy_backend.DeploymentBackend` would, but over
a :class:`~repro.net.socket_transport.SocketTransport` whose remote
sends cross real sockets to the workers owning the other shards.

Coordination happens over one control connection per worker (framed
exactly like data, via :func:`~repro.net.socket_transport.encode_frame`):

1. worker → ``("ready", wid)`` once its listener is bound;
2. coordinator → ``("dial",)`` once *every* listener is bound;
3. worker → ``("dialed", wid)`` once its full mesh is connected;
4. coordinator → ``("start", wall_time)``: a wall-clock instant a
   little in the future.  Each worker translates it into its own loop
   time and anchors its round clock and transport there, so round
   boundaries — the model's synchronized clocks — agree across
   processes to wall-clock precision;
5. worker → ``("metrics", wid, snapshot)`` periodically while driving;
6. worker → ``("result", wid, payload)`` when its shard finishes;
7. coordinator → ``("shutdown",)``; the worker tears down and exits.

Everything a worker needs is a pure function of the picklable
:class:`WorkerConfig` (protocol factories are resolved by name from the
default registry; latency streams, overlay topology, and clock-skew
offsets are seeded from the spec), so any two workers — and the
single-process path — agree on all shared randomness without
communicating.

:func:`drive_node` is the one node-driving loop, shared verbatim by the
single-process backend and the workers: the multi-process substrate
changes *where* nodes run, never *how*.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.attacks.adversary import ScriptedAdversary
from repro.chain.transactions import Transaction
from repro.crypto.signatures import KeyRegistry
from repro.engine.backend import count_kinds, offer_transactions
from repro.engine.conditions import NetworkConditions, conditions_from_network
from repro.engine.ingest import IngestPipeline
from repro.engine.registry import PROTOCOLS
from repro.engine.spec import RunSpec
from repro.net.gossip import GossipNetwork, regular_topology
from repro.net.proxy_transport import ProxyTransport
from repro.net.socket_transport import SocketTransport, encode_frame, open_stream, read_frame
from repro.runtime.clock import RoundClock
from repro.runtime.metrics import MetricsHub, export_wire_gauges
from repro.runtime.node import DeployedNode
from repro.sleepy.messages import Message


def shard_pids(n: int, processes: int) -> tuple[tuple[int, ...], ...]:
    """Contiguous near-even split of pids ``0..n-1`` into ``processes`` shards."""
    if processes <= 0:
        raise ValueError("need at least one process")
    if processes > n:
        raise ValueError("more processes than nodes")
    base, extra = divmod(n, processes)
    shards = []
    start = 0
    for worker in range(processes):
        size = base + (1 if worker < extra else 0)
        shards.append(tuple(range(start, start + size)))
        start += size
    return tuple(shards)


def resolve_conditions(spec: RunSpec) -> NetworkConditions:
    """The spec's network conditions (same resolution on every substrate)."""
    if spec.conditions is not None:
        return spec.conditions
    if spec.network is not None:
        return conditions_from_network(spec.network)
    return NetworkConditions.synchronous()


def clock_skew_offsets(spec: RunSpec, clock_skew_s: float) -> dict[int, float]:
    """Seeded per-node phase offsets, identical on every substrate."""
    skew_rng = random.Random(spec.seed ^ 0x5CE3)
    return {pid: skew_rng.uniform(-clock_skew_s, clock_skew_s) for pid in range(spec.n)}


async def drive_node(
    node: DeployedNode,
    *,
    clock: RoundClock,
    rounds: int,
    offset: float,
    receive_fraction: float,
    byz_by_round: Mapping[int, frozenset[int]],
    arrivals: Callable[[int], Sequence[Transaction]],
    publish: Callable[[int, int, Message], None],
    metrics: MetricsHub | None = None,
) -> None:
    """Drive one node through every round (the substrate-shared loop).

    Transactions arrive at every awake node's mempool; the send phase
    belongs to ``H_r`` and the receive phase to ``O_{r+1} \\ B_{r+1}``,
    gated independently exactly like the simulator.  Corrupted nodes
    stop executing the honest protocol (the adversary speaks for them)
    but keep relaying gossip — dissemination is a model assumption, not
    a courtesy.  ``metrics``, when given, observes per-decision latency
    (decision time minus the decided view's round start) and round/
    decision counters; it never alters protocol behaviour.
    """
    for r in range(rounds):
        await clock.sleep_until_elapsed(clock.start_of(r) + offset)
        if node.awake(r):
            offer_transactions(node.process, arrivals(r))
        if node.pid not in byz_by_round[r]:
            decisions_before = len(node.decisions)
            for message in node.run_send_phase(r):
                publish(node.pid, r, message)
            if metrics is not None:
                for decision in node.decisions[decisions_before:]:
                    metrics.inc("decisions")
                    latency = clock.elapsed() - clock.start_of(max(decision.view, 0))
                    metrics.observe("decision_latency_s", max(latency, 0.0))
        await clock.sleep_until_elapsed(
            clock.start_of(r) + receive_fraction * clock.round_s + offset
        )
        if node.pid not in byz_by_round[r + 1]:
            node.run_receive_phase(r)
    if metrics is not None:
        metrics.inc("nodes_finished")


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker process needs, picklable for ``spawn``.

    ``owner`` and ``addresses`` cover the whole deployment so sends to
    any pid route to the right worker; ``shard`` is the slice this
    worker hosts.
    """

    worker_id: int
    n_workers: int
    shard: tuple[int, ...]
    owner: Mapping[int, int]
    addresses: Mapping[int, object]
    control_address: object
    spec: RunSpec
    delta_s: float
    gossip_degree: int = 4
    receive_fraction: float = 0.9
    clock_skew_s: float = 0.0
    seen_horizon_rounds: int | None = None
    mempool_capacity: int | None = None
    metrics_interval_s: float = 0.25
    #: Frame v2 batch writes + slot-coalesced delivery timers (the
    #: default wire path); ``False`` keeps the per-frame legacy path.
    wire_batching: bool = True
    meta: dict = field(default_factory=dict)


def worker_main(config: WorkerConfig) -> None:
    """Process entrypoint: run one worker to completion (spawn target)."""
    asyncio.run(_run_worker(config))


def _sample_gauges(hub, transport, network, nodes) -> None:
    """Refresh the point-in-time gauges (queue depths, occupancy)."""
    hub.gauge("transport_queue_depth", sum(transport.queue_depths().values()))
    export_wire_gauges(hub, transport)
    export_attack = getattr(transport, "export_metrics", None)
    if export_attack is not None:
        export_attack(hub)
    totals = network.stats_totals()
    hub.gauge("gossip_seen_entries", totals["seen_entries"])
    hub.gauge(
        "mempool_occupancy",
        sum(
            len(node.process.mempool)
            for node in nodes.values()
            if node.process.mempool is not None
        ),
    )


async def _run_worker(config: WorkerConfig) -> None:
    """The worker's async body: handshake, drive the shard, report."""
    spec = config.spec
    conditions = resolve_conditions(spec)
    registry = KeyRegistry(spec.n, run_seed=spec.seed)
    verifier = IngestPipeline(registry)
    clock = RoundClock(config.delta_s)
    factory = PROTOCOLS.factory(
        spec.protocol,
        eta=spec.eta,
        beta=spec.beta,
        record_telemetry=spec.record_telemetry,
    )
    topology = regular_topology(spec.n, config.gossip_degree, seed=spec.seed)
    transport = SocketTransport(
        spec.n,
        local_pids=config.shard,
        owner=config.owner,
        worker_id=config.worker_id,
        addresses=config.addresses,
        base_latency_s=config.delta_s / 8,
        jitter_s=config.delta_s / 8,
        seed=spec.seed,
        surges=conditions.surge_windows(clock.round_s),
        batching=config.wire_batching,
        slot_s=config.delta_s / 8,
    )
    # A scripted adversary's delivery effects apply physically, through
    # the proxy layer in front of the socket fabric; its corruption
    # schedule is a pure function of the (picklable) script, so every
    # worker resolves the same ``B_r`` without communicating.  Phase
    # transitions themselves arrive as coordinator control frames.
    proxy: ProxyTransport | None = None
    fabric = transport
    if isinstance(spec.adversary, ScriptedAdversary):
        timeline = spec.adversary.timeline
        proxy = ProxyTransport(
            transport,
            timeline,
            seed=spec.seed,
            round_s=clock.round_s,
            base_latency_s=config.delta_s / 8,
        )
        fabric = proxy
        byz_by_round = {r: timeline.corrupted_at(r) for r in range(spec.rounds + 1)}
    else:
        byz_by_round = {r: frozenset() for r in range(spec.rounds + 1)}

    nodes = {
        pid: DeployedNode(
            factory(pid, registry.secret_key(pid), verifier),
            schedule=spec.schedule,
            mempool_capacity=config.mempool_capacity,
        )
        for pid in config.shard
    }
    hub = MetricsHub()
    network = GossipNetwork(
        fabric,
        {pid: topology[pid] for pid in config.shard},
        on_deliver=lambda pid, message: nodes[pid].on_gossip(message),
        current_round=clock.current_round if config.seen_horizon_rounds is not None else None,
        seen_horizon_rounds=config.seen_horizon_rounds,
    )

    sent_by_round = [[0, 0, 0] for _ in range(spec.rounds)]

    def publish(pid: int, r: int, message: Message) -> None:
        votes, proposes, other = count_kinds((message,))
        counters = sent_by_round[r]
        counters[0] += votes
        counters[1] += proposes
        counters[2] += other
        hub.inc("messages_published")
        network.nodes[pid].publish(message)

    control_reader, control_writer = await open_stream(config.control_address)
    write_lock = asyncio.Lock()

    async def send_control(frame: object) -> None:
        async with write_lock:
            control_writer.write(encode_frame(frame))
            await control_writer.drain()

    async def push_metrics_forever() -> None:
        while True:
            await asyncio.sleep(config.metrics_interval_s)
            _sample_gauges(hub, fabric, network, nodes)
            await send_control(("metrics", config.worker_id, hub.snapshot()))

    control_done = asyncio.Event()

    async def pump_control() -> None:
        # Runs from the moment the run starts: unlike the strictly
        # sequential handshake frames before it, mid-run frames (attack
        # phase transitions, shutdown) arrive while the shard is busy
        # driving nodes, so they need their own reader.
        try:
            while True:
                frame = await read_frame(control_reader)
                if frame[0] == "attack_phase":
                    if proxy is not None:
                        proxy.enter_phase(frame[1])
                elif frame[0] == "shutdown":
                    return
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        finally:
            control_done.set()

    pusher: asyncio.Task | None = None
    pump: asyncio.Task | None = None
    try:
        await transport.start()
        await send_control(("ready", config.worker_id))
        frame = await read_frame(control_reader)
        assert frame[0] == "dial", frame
        await transport.connect()
        await send_control(("dialed", config.worker_id))
        frame = await read_frame(control_reader)
        assert frame[0] == "start", frame
        start_wall = frame[1]
        loop = asyncio.get_running_loop()
        origin = loop.time() + (start_wall - time.time())
        clock.start_at(origin)
        transport.anchor(origin)
        network.start()

        offsets = clock_skew_offsets(spec, config.clock_skew_s)
        pump = loop.create_task(pump_control())
        pusher = loop.create_task(push_metrics_forever())
        await asyncio.gather(
            *(
                drive_node(
                    node,
                    clock=clock,
                    rounds=spec.rounds,
                    offset=offsets[node.pid],
                    receive_fraction=config.receive_fraction,
                    byz_by_round=byz_by_round,
                    arrivals=spec.arrivals,
                    publish=publish,
                    metrics=hub,
                )
                for node in nodes.values()
            )
        )
        pusher.cancel()
        try:
            await pusher
        except asyncio.CancelledError:
            pass
        pusher = None
        # Linger one δ so in-flight frames from other shards drain into
        # local queues/trees before the final snapshot is taken.
        await asyncio.sleep(config.delta_s)
        await network.stop()
        _sample_gauges(hub, fabric, network, nodes)
        payload = _result_payload(config, nodes, sent_by_round, transport, network, hub, proxy)
        await send_control(("result", config.worker_id, payload))
        await control_done.wait()
    finally:
        if pusher is not None:
            pusher.cancel()
        if pump is not None:
            pump.cancel()
        if proxy is not None:
            proxy.cancel_timers()
        await transport.close()
        control_writer.close()


def _result_payload(config, nodes, sent_by_round, transport, network, hub, proxy=None) -> dict:
    """This shard's contribution to the merged deployment result."""
    blocks = {}
    for node in nodes.values():
        tree = node.process.tree
        for tip in tree.tips():
            for block_id in tree.path(tip):
                if block_id not in blocks:
                    blocks[block_id] = tree.get(block_id)
    decisions = [decision for node in nodes.values() for decision in node.decisions]
    mempools = [
        node.process.mempool for node in nodes.values() if node.process.mempool is not None
    ]
    return {
        "worker_id": config.worker_id,
        "shard": config.shard,
        "blocks": tuple(blocks.values()),
        "decisions": decisions,
        "sent_by_round": sent_by_round,
        "transport": {
            "sent": transport.sent_count,
            "frames_sent": transport.frames_sent,
            "frames_received": transport.frames_received,
            "misrouted": transport.misrouted_count,
            "batches_sent": transport.batches_sent,
            "batches_received": transport.batches_received,
            "bytes_sent": transport.bytes_sent,
            "bytes_received": transport.bytes_received,
            "payload_encodes": transport.payload_encodes,
            "payload_reuses": transport.payload_reuses,
        },
        "gossip": network.stats_totals(),
        "mempool": {
            "shed": sum(getattr(pool, "shed_count", 0) for pool in mempools),
            "admitted": sum(getattr(pool, "admitted_count", 0) for pool in mempools),
            "occupancy": sum(len(pool) for pool in mempools),
        },
        "attack": proxy.audit_totals() if proxy is not None else None,
        "metrics": hub.snapshot(),
    }
