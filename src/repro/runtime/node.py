"""A deployed node: a TOB process driven by the round clock over gossip.

Bridges the round-by-round protocol abstraction and the real-time
substrate: at the beginning of each round the node runs the protocol's
send phase and publishes the messages into the gossip overlay; late in
the round (the receive phase) it hands everything that arrived since the
last receive phase to the protocol.  Messages that arrive while the node
is asleep stay buffered and are delivered at its next awake receive
phase, exactly like the queue-on-sleep rule of §2.1.
"""

from __future__ import annotations

from repro.chain.transactions import Mempool
from repro.protocols.tob_base import SleepyTOBProcess
from repro.sleepy.messages import Message
from repro.sleepy.schedule import SleepSchedule
from repro.sleepy.trace import DecisionEvent


class DeployedNode:
    """One process plus its gossip-facing buffers."""

    def __init__(
        self,
        process: SleepyTOBProcess,
        schedule: SleepSchedule | None = None,
        mempool_capacity: int | None = None,
    ) -> None:
        self.process = process
        if mempool_capacity is not None and getattr(process, "mempool", None) is not None:
            # Service runs bound the pool (see Mempool): swap in a
            # capacity-limited pool before any transaction is offered.
            process.mempool = Mempool(capacity=mempool_capacity)
        self._schedule = schedule
        self._inbox: list[Message] = []
        self.decisions: list[DecisionEvent] = []
        self.rounds_participated: list[int] = []

    @property
    def pid(self) -> int:
        return self.process.pid

    def awake(self, round_number: int) -> bool:
        """Whether this node participates in ``round_number`` (``O_r``)."""
        if self._schedule is None:
            return True
        return self.pid in self._schedule.awake(round_number)

    def on_gossip(self, message: Message) -> None:
        """Gossip delivery: buffer until the next awake receive phase."""
        self._inbox.append(message)

    def run_send_phase(self, round_number: int) -> list[Message]:
        """Protocol send phase; returns the messages to publish."""
        if not self.awake(round_number):
            return []
        self.rounds_participated.append(round_number)
        messages = list(self.process.send(round_number))
        self.decisions.extend(self.process.pop_decisions())
        return messages

    def run_receive_phase(self, round_number: int) -> int:
        """Protocol receive phase; returns how many messages were ingested.

        Receive phases belong to processes awake at the *end* of the
        round (``O_{r+1}``).
        """
        if not self.awake(round_number + 1):
            return 0
        batch, self._inbox = self._inbox, []
        if batch:
            self.process.receive(round_number, batch)
        return len(batch)
