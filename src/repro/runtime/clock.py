"""The round clock: Δ = 3δ (paper §2.1, "Time and Network").

Given the synchrony bound δ, rounds of duration Δ = 3δ let every message
sent at the beginning of a round arrive before the round ends (send +
propagate + tally), which is how the round-by-round abstraction is
simulated on a real network.  Nodes share synchronized clocks (a model
assumption the paper keeps even under asynchrony), realised here by all
nodes reading the same event-loop clock.
"""

from __future__ import annotations

import asyncio

#: The paper's rounds-per-δ factor (Δ = 3δ, after [17] §2.1).
ROUND_FACTOR = 3


class RoundClock:
    """Maps event-loop time to protocol rounds for one deployment."""

    def __init__(self, delta_s: float) -> None:
        if delta_s <= 0:
            raise ValueError("δ must be positive")
        self.delta_s = delta_s
        self.round_s = ROUND_FACTOR * delta_s
        self._origin: float | None = None

    def start(self) -> None:
        """Anchor round 0 at the current loop time."""
        self._origin = asyncio.get_running_loop().time()

    def start_at(self, origin_loop_time: float) -> None:
        """Anchor round 0 at an explicit loop time.

        Multi-process workers anchor at a *shared* origin (a wall-clock
        instant translated into each worker's loop time) so every
        process agrees on round boundaries — the synchronized-clocks
        model assumption, realised across processes.
        """
        self._origin = origin_loop_time

    @property
    def started(self) -> bool:
        return self._origin is not None

    def elapsed(self) -> float:
        """Seconds since round 0 began."""
        if self._origin is None:
            raise RuntimeError("clock not started")
        return asyncio.get_running_loop().time() - self._origin

    def _elapsed(self) -> float:
        return self.elapsed()

    def current_round(self) -> int:
        """The round the wall clock is currently in."""
        return int(self._elapsed() / self.round_s)

    def start_of(self, round_number: int) -> float:
        """Elapsed-seconds timestamp of the beginning of a round."""
        return round_number * self.round_s

    async def sleep_until_elapsed(self, elapsed_target: float) -> None:
        """Sleep until ``elapsed_target`` seconds after round 0."""
        remaining = elapsed_target - self._elapsed()
        if remaining > 0:
            await asyncio.sleep(remaining)

    async def sleep_until_round(self, round_number: int) -> None:
        """Sleep until the beginning of ``round_number``."""
        await self.sleep_until_elapsed(self.start_of(round_number))

    async def sleep_until_receive_phase(self, round_number: int, fraction: float = 0.9) -> None:
        """Sleep until late in ``round_number`` (the receive phase).

        ``fraction`` of the round leaves one δ of slack for the tally
        while guaranteeing (under the bound) that all the round's
        messages have arrived.
        """
        await self.sleep_until_elapsed(self.start_of(round_number) + fraction * self.round_s)
