"""Deployment runner: n nodes, a gossip overlay, a shared round clock.

This is the "real" execution substrate (DESIGN.md S19): the same
protocol classes that run in the deterministic round simulator are
driven here by wall-clock rounds (Δ = 3δ) over an asyncio gossip
network with seeded latencies.  A :class:`~repro.net.transport.SurgeWindow`
models an asynchronous period — latency spikes past δ, so round-``r``
messages arrive rounds late (but are never lost).

The runner produces an ordinary :class:`~repro.sleepy.trace.Trace`, so
every checker and metric in :mod:`repro.analysis` applies unchanged.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from fractions import Fraction

from repro.chain.block import genesis_block
from repro.chain.store import BlockBuffer
from repro.chain.tree import BlockTree
from repro.crypto.signatures import KeyRegistry
from repro.net.gossip import GossipNetwork, regular_topology
from repro.net.transport import SimTransport, SurgeWindow
from repro.protocols.graded_agreement import DEFAULT_BETA
from repro.protocols.mmr_tob import MMRProcess
from repro.core.resilient_tob import ResilientTOBProcess
from repro.runtime.clock import RoundClock
from repro.runtime.node import DeployedNode
from repro.sleepy.messages import CachedVerifier, ProposeMessage
from repro.sleepy.schedule import SleepSchedule
from repro.sleepy.trace import RoundRecord, Trace


@dataclass
class DeploymentConfig:
    """Declarative description of one real-time deployment run."""

    n: int
    rounds: int
    delta_s: float = 0.02
    protocol: str = "resilient"
    eta: int = 2
    beta: Fraction = DEFAULT_BETA
    gossip_degree: int = 4
    schedule: SleepSchedule | None = None
    #: Asynchronous period as rounds ``(ra, pi, factor)``: latencies are
    #: multiplied by ``factor`` during rounds ``[ra+1, ra+pi]``.
    surge: tuple[int, int, float] | None = None
    #: Maximum absolute clock offset per node, in seconds.  The paper
    #: assumes synchronized clocks; in practice δ must absorb small
    #: skews, which this knob injects (each node's phase boundaries are
    #: shifted by a seeded offset in ``[-clock_skew_s, +clock_skew_s]``).
    clock_skew_s: float = 0.0
    seed: int = 0
    receive_fraction: float = 0.9


@dataclass
class DeploymentResult:
    """Trace plus deployment-level measurements."""

    trace: Trace
    wall_seconds: float
    messages_sent: int
    nodes: dict[int, DeployedNode] = field(repr=False, default_factory=dict)


def _make_process(config: DeploymentConfig, pid: int, key, verifier) -> MMRProcess | ResilientTOBProcess:
    if config.protocol == "mmr":
        return MMRProcess(pid, key, verifier, beta=config.beta)
    if config.protocol == "resilient":
        return ResilientTOBProcess(pid, key, verifier, eta=config.eta, beta=config.beta)
    raise ValueError(f"unknown protocol {config.protocol!r}")


async def run_deployment_async(config: DeploymentConfig) -> DeploymentResult:
    """Run one deployment inside a running event loop."""
    registry = KeyRegistry(config.n, run_seed=config.seed)
    verifier = CachedVerifier(registry)
    clock = RoundClock(config.delta_s)

    surges: tuple[SurgeWindow, ...] = ()
    async_rounds: set[int] = set()
    if config.surge is not None:
        ra, pi, factor = config.surge
        async_rounds = set(range(ra + 1, ra + pi + 1))
        surges = (
            SurgeWindow(
                start_s=clock.start_of(ra + 1),
                end_s=clock.start_of(ra + pi + 1),
                factor=factor,
            ),
        )

    transport = SimTransport(
        config.n,
        base_latency_s=config.delta_s / 8,
        jitter_s=config.delta_s / 8,
        seed=config.seed,
        surges=surges,
    )

    nodes = {
        pid: DeployedNode(
            _make_process(config, pid, registry.secret_key(pid), verifier),
            schedule=config.schedule,
        )
        for pid in range(config.n)
    }
    network = GossipNetwork(
        transport,
        regular_topology(config.n, config.gossip_degree, seed=config.seed),
        on_deliver=lambda pid, message: nodes[pid].on_gossip(message),
    )

    transport.start()
    clock.start()
    network.start()
    started = asyncio.get_running_loop().time()

    skew_rng = random.Random(config.seed ^ 0x5CE3)
    offsets = {
        pid: skew_rng.uniform(-config.clock_skew_s, config.clock_skew_s)
        for pid in range(config.n)
    }

    # One driver task per node keeps phase timing independent per node;
    # each node reads the shared clock through its own (skewed) lens.
    async def drive(node: DeployedNode) -> None:
        offset = offsets[node.pid]
        for r in range(config.rounds):
            await clock.sleep_until_elapsed(clock.start_of(r) + offset)
            for message in node.run_send_phase(r):
                network.nodes[node.pid].publish(message)
            await clock.sleep_until_elapsed(
                clock.start_of(r) + config.receive_fraction * clock.round_s + offset
            )
            node.run_receive_phase(r)

    await asyncio.gather(*(drive(node) for node in nodes.values()))
    await network.stop()
    wall = asyncio.get_running_loop().time() - started

    return DeploymentResult(
        trace=_build_trace(config, nodes, async_rounds),
        wall_seconds=wall,
        messages_sent=transport.sent_count,
        nodes=nodes,
    )


def run_deployment(config: DeploymentConfig) -> DeploymentResult:
    """Synchronous entry point (creates its own event loop)."""
    return asyncio.run(run_deployment_async(config))


def _build_trace(
    config: DeploymentConfig,
    nodes: dict[int, DeployedNode],
    async_rounds: set[int],
) -> Trace:
    # Merge every node's local tree into one omniscient analysis tree.
    tree = BlockTree([genesis_block()])
    buffer = BlockBuffer(tree)
    pending = []
    for node in nodes.values():
        local = node.process.tree
        for tip in local.tips():
            for block_id in local.path(tip):
                pending.append(local.get(block_id))
    for block in sorted(pending, key=lambda b: b.view):
        buffer.offer(block)

    trace = Trace(
        n=config.n,
        tree=tree,
        meta={
            "protocol": config.protocol,
            "eta": config.eta if config.protocol == "resilient" else 0,
            "delta_s": config.delta_s,
            "deployment": True,
        },
    )
    for r in range(config.rounds):
        awake = (
            config.schedule.awake(r) if config.schedule is not None else frozenset(range(config.n))
        )
        trace.rounds.append(
            RoundRecord(
                round=r,
                awake=awake,
                honest=awake,
                byzantine=frozenset(),
                asynchronous=r in async_rounds,
                votes_sent=0,
                proposes_sent=0,
                other_sent=0,
            )
        )
    for node in nodes.values():
        trace.decisions.extend(node.decisions)
    trace.decisions.sort(key=lambda d: (d.round, d.pid))
    return trace
