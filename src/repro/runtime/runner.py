"""Deployment runner: n nodes, a gossip overlay, a shared round clock.

This is the "real" execution substrate: the same protocol classes that
run in the deterministic round simulator are driven here by wall-clock
rounds (Δ = 3δ) over an asyncio gossip network with seeded latencies.
A :class:`~repro.net.transport.SurgeWindow` models an asynchronous
period — latency spikes past δ, so round-``r`` messages arrive rounds
late (but are never lost).

This module is a thin adapter over the unified execution engine: a
:class:`DeploymentConfig` splits into a substrate-independent
:class:`~repro.engine.spec.RunSpec` plus the physical knobs of
:class:`~repro.engine.deploy_backend.DeploymentBackend`.  Through the
engine, deployments now take the full workload surface the simulator
does — protocol registry dispatch, sleep schedules, transaction
streams, and (send-power) adversaries.

The runner produces an ordinary :class:`~repro.sleepy.trace.Trace`, so
every checker and metric in :mod:`repro.analysis` applies unchanged.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from fractions import Fraction

from repro.chain.transactions import Transaction
from repro.engine.conditions import NetworkConditions
from repro.protocols.graded_agreement import DEFAULT_BETA
from repro.runtime.node import DeployedNode
from repro.sleepy.adversary import Adversary
from repro.sleepy.schedule import SleepSchedule
from repro.sleepy.trace import Trace


@dataclass
class DeploymentConfig:
    """Declarative description of one real-time deployment run."""

    n: int
    rounds: int
    delta_s: float = 0.02
    protocol: str = "resilient"
    eta: int = 2
    beta: Fraction = DEFAULT_BETA
    gossip_degree: int = 4
    schedule: SleepSchedule | None = None
    #: Asynchronous period as rounds ``(ra, pi, factor)``: latencies are
    #: multiplied by ``factor`` during rounds ``[ra+1, ra+pi]``.
    surge: tuple[int, int, float] | None = None
    #: Maximum absolute clock offset per node, in seconds.  The paper
    #: assumes synchronized clocks; in practice δ must absorb small
    #: skews, which this knob injects (each node's phase boundaries are
    #: shifted by a seeded offset in ``[-clock_skew_s, +clock_skew_s]``).
    clock_skew_s: float = 0.0
    seed: int = 0
    receive_fraction: float = 0.9
    #: Round → transactions arriving at every awake node's mempool at
    #: the beginning of that round (same shape as the simulator's).
    transactions: Mapping[int, Sequence[Transaction]] = field(default_factory=dict)
    #: Corruption + Byzantine send power (delivery control is realised
    #: physically by the surge; see the deployment backend's docs).
    adversary: Adversary | None = None

    # ------------------------------------------------------------------
    # Engine mapping
    # ------------------------------------------------------------------
    def to_spec(self):
        """The substrate-independent :class:`~repro.engine.spec.RunSpec`."""
        from repro.engine.spec import RunSpec

        conditions = None
        if self.surge is not None:
            ra, pi, factor = self.surge
            conditions = NetworkConditions.window(ra, pi, surge_factor=factor)
        return RunSpec(
            n=self.n,
            rounds=self.rounds,
            protocol=self.protocol,
            eta=self.eta,
            beta=self.beta,
            schedule=self.schedule,
            adversary=self.adversary,
            transactions=self.transactions,
            seed=self.seed,
            conditions=conditions,
        )

    def to_backend(self):
        """The physical substrate knobs as a backend instance."""
        from repro.engine.deploy_backend import DeploymentBackend

        return DeploymentBackend(
            delta_s=self.delta_s,
            gossip_degree=self.gossip_degree,
            clock_skew_s=self.clock_skew_s,
            receive_fraction=self.receive_fraction,
        )


@dataclass
class DeploymentResult:
    """Trace plus deployment-level measurements."""

    trace: Trace
    wall_seconds: float
    messages_sent: int
    nodes: dict[int, DeployedNode] = field(repr=False, default_factory=dict)


def _to_result(engine_result) -> DeploymentResult:
    return DeploymentResult(
        trace=engine_result.trace,
        wall_seconds=engine_result.wall_seconds,
        messages_sent=engine_result.messages_sent,
        nodes=engine_result.extras.get("nodes", {}),
    )


async def run_deployment_async(config: DeploymentConfig) -> DeploymentResult:
    """Run one deployment inside a running event loop."""
    backend = config.to_backend()
    return _to_result(await backend.execute_async(config.to_spec()))


def run_deployment(config: DeploymentConfig) -> DeploymentResult:
    """Synchronous entry point (creates its own event loop)."""
    backend = config.to_backend()
    return _to_result(backend.execute(config.to_spec()))
