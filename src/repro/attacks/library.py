"""The canonical attack scripts the grid, CLI, and CI sweep.

Each entry is a module-level builder ``(n) -> AttackScript`` (module
level so scripts stay picklable through sweeps), sized relative to the
run's ``n``.  ``delay_only(script)`` tells which scripts use nothing but
partitions and surges — those are the scripts whose effect is pure
message *delay*, so the round simulator pins them bit-identically run to
run and the deployment substrates replay them with the proxy transport
on any process count (equivocation needs signing power, which the
multi-process deployment does not grant the coordinator).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.attacks.script import (
    AttackScript,
    CorruptOp,
    DropOp,
    EquivocateOp,
    corrupt,
    drop,
    equivocate,
    heal,
    partition,
    phase,
    sleep,
    surge,
    wake,
)


def _halves(n: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
    return tuple(range(n // 2)), tuple(range(n // 2, n))


def partition_heal(n: int) -> AttackScript:
    """Split the network in two halves, then heal."""
    left, right = _halves(n)
    return AttackScript(
        name="partition-heal",
        phases=(
            phase(4),
            phase(4, partition(left, right)),
            phase(8, heal()),
        ),
    )


def surge_recover(n: int) -> AttackScript:
    """A global latency surge, then recovery."""
    return AttackScript(
        name="surge-recover",
        phases=(
            phase(4),
            phase(4, surge()),
            phase(8, heal()),
        ),
    )


def partition_surge(n: int) -> AttackScript:
    """The acceptance scenario: partition → heal → surge → heal."""
    left, right = _halves(n)
    return AttackScript(
        name="partition-surge",
        phases=(
            phase(4),
            phase(3, partition(left, right)),
            phase(5, heal()),
            phase(3, surge()),
            phase(9, heal()),
        ),
    )


def lossy_links(n: int) -> AttackScript:
    """Probabilistic loss on every link for a window, then heal."""
    return AttackScript(
        name="lossy-links",
        phases=(
            phase(4),
            phase(4, drop(None, None, 0.3)),
            phase(8, heal()),
        ),
    )


def equivocation_storm(n: int) -> AttackScript:
    """Corrupt a fifth of the processes; they equivocate behind a partition."""
    left, right = _halves(n)
    byz = tuple(range(n - max(1, n // 5), n))
    return AttackScript(
        name="equivocation-storm",
        phases=(
            phase(4, corrupt(*byz)),
            phase(4, partition(left, right), equivocate()),
            phase(8, heal()),
        ),
    )


def sleep_storm(n: int) -> AttackScript:
    """A third of the honest processes sleeps through a surge, then wakes."""
    sleepers = tuple(range(max(1, n // 3)))
    return AttackScript(
        name="sleep-storm",
        phases=(
            phase(4, sleep(*sleepers)),
            phase(4, surge()),
            phase(8, heal(), wake(*sleepers)),
        ),
    )


ATTACKS: dict[str, Callable[[int], AttackScript]] = {
    "partition-heal": partition_heal,
    "surge-recover": surge_recover,
    "partition-surge": partition_surge,
    "lossy-links": lossy_links,
    "equivocation-storm": equivocation_storm,
    "sleep-storm": sleep_storm,
}


def get_script(name: str, n: int) -> AttackScript:
    """Build the named script for an ``n``-process run."""
    try:
        builder = ATTACKS[name]
    except KeyError:
        known = ", ".join(sorted(ATTACKS))
        raise ValueError(f"unknown attack script {name!r} (known: {known})") from None
    return builder(n)


def delay_only(script: AttackScript) -> bool:
    """Whether the script's only fabric faults are delays (partition/surge).

    Sleep/wake ops do not disqualify a script: they ride the
    participation schedule, not the fabric.  Delay-only scripts run
    unchanged on every substrate, including
    multi-process deployments; ``drop`` really discards frames there,
    and ``corrupt``/``equivocate`` need in-process signing power.
    """
    return not any(
        isinstance(op, (DropOp, CorruptOp, EquivocateOp))
        for p in script.phases
        for op in p.ops
    )
