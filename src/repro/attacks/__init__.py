"""Scheduled attacks as data: a declarative fault-injection DSL.

An :class:`~repro.attacks.script.AttackScript` is a list of *phases* —
``phase(rounds, *ops)`` records — whose composable ops (``partition``,
``heal``, ``surge``, ``drop``, ``corrupt``, ``equivocate``, ``sleep``,
``wake``) describe what the adversary and the network do to the run,
round by round.  Scripts are plain frozen dataclasses: picklable,
:func:`~repro.engine.spec.stable_digest`-able, and executable on every
substrate —

* the round simulator interprets a script through
  :class:`~repro.attacks.adversary.ScriptedAdversary` (the existing
  ``Adversary``/``AdversaryContext`` seam), and
* the asyncio deployment realises the same script physically through the
  :class:`~repro.net.proxy_transport.ProxyTransport` per-link
  delay/drop/partition layer, on one process or many
  (``DeploymentBackend(processes=k)`` broadcasts phase transitions over
  the worker control channel).

:func:`~repro.attacks.script.apply_script` composes a script onto a
:class:`~repro.engine.spec.RunSpec`; :data:`~repro.attacks.library.ATTACKS`
names the canonical scripts the attack grid and CI sweep.
"""

from repro.attacks.adversary import ScriptedAdversary, ScriptSchedule
from repro.attacks.library import ATTACKS, delay_only, get_script
from repro.attacks.script import (
    AttackScript,
    Phase,
    ScriptTimeline,
    apply_script,
    corrupt,
    drop,
    equivocate,
    heal,
    partition,
    phase,
    sleep,
    surge,
    wake,
)

__all__ = [
    "ATTACKS",
    "AttackScript",
    "Phase",
    "ScriptSchedule",
    "ScriptTimeline",
    "ScriptedAdversary",
    "apply_script",
    "corrupt",
    "delay_only",
    "drop",
    "equivocate",
    "get_script",
    "heal",
    "partition",
    "phase",
    "sleep",
    "surge",
    "wake",
]
