"""The scheduled-attack DSL: fault injection as data.

A script is a sequence of phases::

    script = AttackScript(
        name="partition-heal",
        phases=(
            phase(4),                                   # benign warm-up
            phase(3, partition((0, 1, 2), (3, 4, 5))),  # split brain
            phase(5, heal()),                           # recover
        ),
    )

Each :func:`phase` lasts a fixed number of rounds and applies its ops on
entry.  Ops compose a small state machine:

* **Delivery ops** — :func:`partition`, :func:`surge`, :func:`drop` —
  degrade the network and *persist until* :func:`heal`.  Rounds in which
  any delivery op is active are the script's asynchronous rounds: the
  round simulator consults the adversary's delivery choice there
  (:class:`~repro.attacks.adversary.ScriptedAdversary`), and the
  deployment's :class:`~repro.net.proxy_transport.ProxyTransport`
  delays, drops, or holds the affected frames physically.
* **Behaviour ops** — :func:`corrupt` (cumulative: the growing-adversary
  model), :func:`equivocate` (corrupted processes fork and double-vote
  until heal), :func:`sleep`/:func:`wake` (honest participation).
  Corruption and sleepiness persist beyond the script's end; delivery
  effects and equivocation end with the last phase (an implicit heal).

Everything is a frozen dataclass: scripts pickle across process
boundaries unchanged and :func:`~repro.engine.spec.stable_digest`
derives one content digest per script, so attacks ride the sweep
journal like any other grid axis.

The model constraint the DSL enforces up front: an asynchronous period
starts no earlier than round 1 (``ra ≥ 0`` in the paper's ``[ra+1,
ra+π]``), so the first phase of a script must be benign in its delivery
behaviour — give the run at least one synchronous warm-up round.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from collections.abc import Sequence
from dataclasses import dataclass, replace

from repro.engine.conditions import AsyncPeriod, NetworkConditions

#: Latency multiplier a surge applies on the deployment substrate (the
#: round simulator withholds surged links outright — the worst case the
#: multiplier physically induces).
DEFAULT_SURGE_FACTOR = 25.0


# ----------------------------------------------------------------------
# Ops (frozen records; the lowercase constructors below are the grammar)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PartitionOp:
    """Split the network: messages cross group boundaries only on heal."""

    groups: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for group in self.groups:
            for pid in group:
                if pid in seen:
                    raise ValueError(f"partition groups overlap on pid {pid}")
                seen.add(pid)
        if len(self.groups) < 2:
            raise ValueError("a partition needs at least two groups")


@dataclass(frozen=True)
class HealOp:
    """Clear every delivery effect (partition, surge, drop) and equivocation."""


@dataclass(frozen=True)
class SurgeOp:
    """Delay traffic: all links, or only the ``(src, dst)`` pairs listed."""

    factor: float = DEFAULT_SURGE_FACTOR
    links: tuple[tuple[int, int], ...] | None = None

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("surge factor must be >= 1 (a surge slows the network)")


@dataclass(frozen=True)
class DropOp:
    """Drop each frame on matching links with probability ``p``.

    ``None`` for ``src``/``dst`` is a wildcard.  The deployment's proxy
    really discards matching frames (gossip's redundant paths are what
    keeps dissemination alive); the round simulator — whose bus *is* the
    dissemination abstraction — re-flips the coin each asynchronous
    round, so a dropped delivery is delayed, never lost, exactly the
    model's assumption.
    """

    src: int | None
    dst: int | None
    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError("drop probability must be in [0, 1]")


@dataclass(frozen=True)
class CorruptOp:
    """Hand the listed pids to the adversary (cumulative: never undone)."""

    pids: tuple[int, ...]


@dataclass(frozen=True)
class EquivocateOp:
    """Corrupted processes fork and double-vote each round until heal."""


@dataclass(frozen=True)
class SleepOp:
    """Put the listed pids to sleep (until a later ``wake``)."""

    pids: tuple[int, ...]


@dataclass(frozen=True)
class WakeOp:
    """Wake the listed pids (undoes ``sleep``)."""

    pids: tuple[int, ...]


Op = PartitionOp | HealOp | SurgeOp | DropOp | CorruptOp | EquivocateOp | SleepOp | WakeOp


def partition(*groups: Sequence[int]) -> PartitionOp:
    """``partition((0,1,2), (3,4,5))`` — pids absent from every group form one implicit group."""
    return PartitionOp(groups=tuple(tuple(group) for group in groups))


def heal() -> HealOp:
    """Restore normal delivery (and stop equivocating)."""
    return HealOp()


def surge(
    factor: float = DEFAULT_SURGE_FACTOR, links: Sequence[tuple[int, int]] | None = None
) -> SurgeOp:
    """Latency surge on every link, or per-link with ``links=[(src, dst), ...]``."""
    resolved = tuple((s, d) for s, d in links) if links is not None else None
    return SurgeOp(factor=factor, links=resolved)


def drop(src: int | None, dst: int | None, p: float) -> DropOp:
    """Probabilistic loss on one link (``None`` = any sender/receiver)."""
    return DropOp(src=src, dst=dst, p=p)


def corrupt(*pids: int) -> CorruptOp:
    """Corrupt processes (growing adversary: corruption accumulates)."""
    return CorruptOp(pids=tuple(pids))


def equivocate() -> EquivocateOp:
    """Have the corrupted processes equivocate until the next heal."""
    return EquivocateOp()


def sleep(*pids: int) -> SleepOp:
    """Send honest processes to sleep."""
    return SleepOp(pids=tuple(pids))


def wake(*pids: int) -> WakeOp:
    """Wake previously slept processes."""
    return WakeOp(pids=tuple(pids))


# ----------------------------------------------------------------------
# Phases and scripts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Phase:
    """``rounds`` rounds during which the state set by ``ops`` holds."""

    rounds: int
    ops: tuple[Op, ...] = ()

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError("a phase must last at least one round")


def phase(rounds: int, *ops: Op) -> Phase:
    """One phase record: ``phase(3, partition((0, 1), (2, 3)))``."""
    return Phase(rounds=rounds, ops=tuple(ops))


@dataclass(frozen=True)
class AttackScript:
    """A named, declarative attack schedule (a tuple of phases)."""

    name: str
    phases: tuple[Phase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a script needs at least one phase")
        first = self.phases[0]
        if any(isinstance(op, (PartitionOp, SurgeOp, DropOp)) for op in first.ops):
            raise ValueError(
                "the first phase must be benign in delivery (asynchronous "
                "periods start at round 1 at the earliest — add a warm-up phase)"
            )

    @property
    def total_rounds(self) -> int:
        """Rounds covered by the script's phases."""
        return sum(p.rounds for p in self.phases)

    def digest(self) -> str:
        """The script's stable content digest (sweep-journal key material)."""
        from repro.engine.spec import stable_digest

        return stable_digest(self)

    def timeline(self) -> ScriptTimeline:
        """Resolve the phase records into per-round network/behaviour state."""
        return ScriptTimeline(self)

    def has_delivery_ops(self) -> bool:
        """Whether any phase degrades delivery (partition/surge/drop)."""
        return any(
            isinstance(op, (PartitionOp, SurgeOp, DropOp))
            for p in self.phases
            for op in p.ops
        )

    def has_equivocation(self) -> bool:
        """Whether any phase turns on equivocation (needs signing power)."""
        return any(isinstance(op, EquivocateOp) for p in self.phases for op in p.ops)

    def conditions(self) -> NetworkConditions:
        """The script's asynchronous periods as substrate-neutral conditions.

        Surge factors are fixed at 1.0 here on purpose: the *scripted*
        realisation of asynchrony (adversarial delivery on the
        simulator, the proxy transport on deployments) replaces the
        generic physical surge, so the built-in transport must not
        degrade the same rounds twice.
        """
        timeline = self.timeline()
        periods: list[AsyncPeriod] = []
        run_start: int | None = None
        for r in range(self.total_rounds + 1):
            active = r < self.total_rounds and timeline.state_at(r).delivery_active
            if active and run_start is None:
                run_start = r
            elif not active and run_start is not None:
                periods.append(AsyncPeriod(ra=run_start - 1, pi=r - run_start, surge_factor=1.0))
                run_start = None
        return NetworkConditions(periods=tuple(periods))


# ----------------------------------------------------------------------
# Timeline: the resolved state machine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseState:
    """The network/behaviour state holding during one phase."""

    index: int
    start: int
    #: pid → partition group (pids absent from every declared group share
    #: the implicit group ``-1``); ``None`` = no partition.
    group_of: dict[int, int] | None
    surge_factor: float
    #: Links the surge covers; ``None`` = every link (when surging).
    surge_links: frozenset[tuple[int, int]] | None
    drops: tuple[DropOp, ...]
    corrupted: frozenset[int]
    sleeping: frozenset[int]
    equivocating: bool

    @property
    def delivery_active(self) -> bool:
        return self.group_of is not None or self.surge_factor > 1.0 or bool(self.drops)

    def blocks(self, src: int, dst: int) -> bool:
        """Whether the current partition separates ``src`` from ``dst``."""
        if self.group_of is None:
            return False
        return self.group_of.get(src, -1) != self.group_of.get(dst, -1)

    def surged(self, src: int, dst: int) -> bool:
        """Whether the ``src → dst`` link is currently surged."""
        if self.surge_factor <= 1.0:
            return False
        return self.surge_links is None or (src, dst) in self.surge_links

    def drop_probability(self, src: int, dst: int) -> float:
        """Combined loss probability on ``src → dst`` (independent rules)."""
        keep = 1.0
        for rule in self.drops:
            if (rule.src is None or rule.src == src) and (rule.dst is None or rule.dst == dst):
                keep *= 1.0 - rule.p
        return 1.0 - keep


_QUIESCENT = {
    "group_of": None,
    "surge_factor": 1.0,
    "surge_links": None,
    "drops": (),
    "equivocating": False,
}


class ScriptTimeline:
    """Per-round resolution of an :class:`AttackScript`.

    One :class:`PhaseState` per phase, plus a trailing quiescent state
    for rounds past the script's end: delivery effects and equivocation
    cease (an implicit heal), corruption and sleepiness persist.
    """

    def __init__(self, script: AttackScript) -> None:
        self.script = script
        states: list[PhaseState] = []
        start = 0
        state = PhaseState(
            index=0,
            start=0,
            corrupted=frozenset(),
            sleeping=frozenset(),
            **_QUIESCENT,
        )
        for index, phase_record in enumerate(script.phases):
            state = self._apply(state, phase_record.ops, index=index, start=start)
            states.append(state)
            start += phase_record.rounds
        # The implicit trailing heal (index == len(phases)).
        states.append(
            replace(state, index=len(script.phases), start=start, **_QUIESCENT)
        )
        self._states = tuple(states)
        self._starts = tuple(s.start for s in states)
        self.total_rounds = script.total_rounds

    @staticmethod
    def _apply(state: PhaseState, ops: tuple[Op, ...], index: int, start: int) -> PhaseState:
        updates: dict = {"index": index, "start": start}
        for op in ops:
            if isinstance(op, HealOp):
                updates.update(_QUIESCENT)
            elif isinstance(op, PartitionOp):
                updates["group_of"] = {
                    pid: g for g, group in enumerate(op.groups) for pid in group
                }
            elif isinstance(op, SurgeOp):
                updates["surge_factor"] = op.factor
                updates["surge_links"] = (
                    frozenset(op.links) if op.links is not None else None
                )
            elif isinstance(op, DropOp):
                updates["drops"] = updates.get("drops", state.drops) + (op,)
            elif isinstance(op, CorruptOp):
                updates["corrupted"] = (
                    updates.get("corrupted", state.corrupted) | frozenset(op.pids)
                )
            elif isinstance(op, EquivocateOp):
                updates["equivocating"] = True
            elif isinstance(op, SleepOp):
                updates["sleeping"] = (
                    updates.get("sleeping", state.sleeping) | frozenset(op.pids)
                )
            elif isinstance(op, WakeOp):
                updates["sleeping"] = (
                    updates.get("sleeping", state.sleeping) - frozenset(op.pids)
                )
            else:  # pragma: no cover - the Op union is closed
                raise TypeError(f"unknown op {op!r}")
        return replace(state, **updates)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def states(self) -> tuple[PhaseState, ...]:
        """All phase states, trailing quiescent state included."""
        return self._states

    def state_at(self, round_number: int) -> PhaseState:
        """The state holding during ``round_number`` (clamped past the end)."""
        if round_number < 0:
            raise ValueError("rounds are non-negative")
        return self._states[bisect_right(self._starts, round_number) - 1]

    def corrupted_at(self, round_number: int) -> frozenset[int]:
        return self.state_at(round_number).corrupted

    def sleeping_at(self, round_number: int) -> frozenset[int]:
        return self.state_at(round_number).sleeping

    def phase_starts(self) -> tuple[int, ...]:
        """First round of each phase (trailing quiescent phase included)."""
        return self._starts


def drop_rng(seed: int, round_number: int, receiver: int) -> random.Random:
    """The seeded coin stream for one receiver's deliveries in one round.

    Fresh per ``(seed, round, receiver)`` so delivery randomness never
    depends on global draw order — two runs of the same script flip
    identical coins, which is what makes scripted attacks journalable.
    """
    return random.Random(f"attack-drop:{seed}:{round_number}:{receiver}")


def apply_script(spec, script: AttackScript):
    """Compose ``script`` onto a benign :class:`~repro.engine.spec.RunSpec`.

    Returns a new spec with the scripted adversary installed, the
    script's asynchronous periods merged into the conditions, and —
    when the script sleeps processes — the participation schedule
    wrapped.  The base spec must not already carry an adversary (the
    script owns that seam) nor a simulator-only ``network`` model.
    """
    import dataclasses

    from repro.attacks.adversary import ScriptedAdversary, ScriptSchedule

    if spec.adversary is not None:
        raise ValueError("apply_script needs a spec without an adversary (the script is one)")
    if spec.network is not None:
        raise ValueError("describe the base spec with conditions, not a network model")
    base_periods = spec.conditions.periods if spec.conditions is not None else ()
    conditions = NetworkConditions(periods=base_periods + script.conditions().periods)
    schedule = spec.schedule
    if any(isinstance(op, (SleepOp, WakeOp)) for p in script.phases for op in p.ops):
        schedule = ScriptSchedule(spec.n, spec.resolved_schedule(), script)
    return dataclasses.replace(
        spec,
        adversary=ScriptedAdversary(script, seed=spec.seed),
        conditions=conditions,
        schedule=schedule,
        meta={**spec.meta, "attack": script.name},
    )
