"""The script interpreter for the round simulator.

:class:`ScriptedAdversary` turns an
:class:`~repro.attacks.script.AttackScript` into the three powers of the
model's adversary (:mod:`repro.sleepy.adversary`):

* **corruption** — the timeline's cumulative ``corrupt`` sets (monotone,
  i.e. the growing-adversary model);
* **arbitrary messages** — while ``equivocate`` is active, the corrupted
  processes fork the deepest tip and double-vote each round (the
  :class:`~repro.sleepy.adversary.EquivocatingVoteAdversary` move);
  otherwise corrupted processes stay silent — crash faults;
* **delivery control** — during the script's asynchronous rounds the
  adversary withholds messages crossing a partition or a surged link
  (they flow again when the effect lifts — delayed, never forged) and
  flips seeded per-link coins for ``drop`` rules.

:class:`ScriptSchedule` applies the script's ``sleep``/``wake`` ops on
top of the run's base participation schedule.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.attacks.script import AttackScript, drop_rng
from repro.chain.block import Block
from repro.sleepy.adversary import Adversary, AdversaryContext
from repro.sleepy.messages import Message
from repro.sleepy.schedule import SleepSchedule


class ScriptedAdversary(Adversary):
    """Interpret an :class:`~repro.attacks.script.AttackScript` on the simulator."""

    growing = True

    def __init__(self, script: AttackScript, seed: int = 0) -> None:
        self.script = script
        self.seed = seed
        self.timeline = script.timeline()
        self._forks: dict[int, tuple[Block, Block]] = {}

    def byzantine(self, round_number: int) -> frozenset[int]:
        return self.timeline.corrupted_at(round_number)

    def send(self, round_number: int, ctx: AdversaryContext) -> Sequence[Message]:
        state = self.timeline.state_at(round_number)
        if not state.equivocating or not state.corrupted:
            return ()
        fork = self._forks.get(round_number)
        if fork is None:
            leader = min(state.corrupted)
            parent = ctx.deepest_tip()
            fork = (
                ctx.craft_block(leader, view=round_number + 1, parent=parent, salt=1),
                ctx.craft_block(leader, view=round_number + 1, parent=parent, salt=2),
            )
            self._forks[round_number] = fork
        left, right = fork
        messages: list[Message] = []
        for pid in sorted(state.corrupted):
            messages.append(ctx.craft_propose(pid, round_number, round_number + 1, left))
            messages.append(ctx.craft_propose(pid, round_number, round_number + 1, right))
            messages.append(ctx.craft_vote(pid, round_number, left.block_id))
            messages.append(ctx.craft_vote(pid, round_number, right.block_id))
        return messages

    def deliver(
        self,
        round_number: int,
        receiver: int,
        deliverable: Sequence[Message],
        ctx: AdversaryContext,
    ) -> Sequence[Message]:
        state = self.timeline.state_at(round_number)
        if not state.delivery_active:
            return deliverable
        rng = drop_rng(self.seed, round_number, receiver)
        kept: list[Message] = []
        for message in deliverable:
            if state.blocks(message.sender, receiver):
                continue
            if state.surged(message.sender, receiver):
                continue
            p = state.drop_probability(message.sender, receiver)
            if p > 0.0 and rng.random() < p:
                # Withheld this round only: the bus keeps the message
                # pending and the coin is re-flipped next round — in the
                # round model a drop is a delay, exactly the asynchrony
                # assumption (contrast the proxy transport, which really
                # discards frames and leans on gossip redundancy).
                continue
            kept.append(message)
        return kept


class ScriptSchedule(SleepSchedule):
    """The base participation schedule minus the script's sleepers."""

    def __init__(self, n: int, base: SleepSchedule, script: AttackScript) -> None:
        super().__init__(n)
        self.base = base
        self.script = script
        self.timeline = script.timeline()

    def awake(self, round_number: int) -> frozenset[int]:
        return self.base.awake(round_number) - self.timeline.sleeping_at(round_number)
