"""The block tree: ancestry, prefixes, and vote accumulation support.

Logs (paper Definition 1) form a tree under the prefix relation: a log is
identified by its tip block, ``Λ ⪯ Λ'`` iff the tip of ``Λ`` is an
ancestor of the tip of ``Λ'`` (the empty log, tip ``None``, is a prefix
of everything).  The tree also memoises per-tip transaction membership,
which proposers use to avoid re-including transactions.

Ancestry queries are indexed: :meth:`BlockTree.add` maintains a
binary-lifting skip-pointer table (``up[b][k]`` is the ``2^k``-th
ancestor of ``b``), so :meth:`~BlockTree.ancestor_at_depth`,
:meth:`~BlockTree.is_prefix`, :meth:`~BlockTree.compatible`, and
:meth:`~BlockTree.common_prefix` cost O(log d) on a depth-``d`` chain
instead of the O(d) parent walks they replaced, and the leaf set is
maintained incrementally so :meth:`~BlockTree.tips` stops scanning
every block.  Every query is pinned against naive walk-based reference
implementations by ``tests/chain/test_tree_index.py``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.chain.block import GENESIS_TIP, Block, BlockId
from repro.chain.log import Log


class UnknownBlockError(KeyError):
    """Raised when a block id is not present in the tree."""


class MissingParentError(ValueError):
    """Raised when adding a block whose parent is not in the tree."""


class BlockTree:
    """A rooted tree of blocks with ancestry queries.

    The (virtual) root is :data:`GENESIS_TIP` (``None``), representing
    the empty log; every block whose ``parent`` is ``None`` is a child of
    the virtual root.  Depth of the empty log is 0 and depth of a block
    is ``1 + depth(parent)`` — i.e. the length of the log it identifies.
    """

    def __init__(self, blocks: Iterable[Block] = ()) -> None:
        self._blocks: dict[BlockId, Block] = {}
        self._depth: dict[BlockId | None, int] = {GENESIS_TIP: 0}
        self._children: dict[BlockId | None, list[BlockId]] = {GENESIS_TIP: []}
        self._payload_ids: dict[BlockId | None, frozenset[str]] = {GENESIS_TIP: frozenset()}
        # Binary-lifting skip pointers: _up[b][k] is the 2^k-th ancestor
        # of b (GENESIS_TIP when the jump lands exactly on the virtual
        # root); entry k exists iff depth(b) >= 2^k, so every stored
        # jump is valid by construction.
        self._up: dict[BlockId, list[BlockId | None]] = {}
        # Insertion-ordered leaf set (dict-as-ordered-set): a block is
        # inserted when added and evicted when it gains its first child,
        # so iteration order matches the old full-scan tips() exactly.
        self._leaves: dict[BlockId, None] = {}
        # Add-listeners (e.g. SharedChain's intern indexer); a tuple so
        # the empty common case costs one truth test per add.
        self._listeners: tuple = ()
        for block in blocks:
            self.add(block)

    def add_listener(self, listener) -> None:
        """Call ``listener(block)`` after every successful :meth:`add`.

        Listeners fire once per *new* block (idempotent re-adds do not
        notify) and must not mutate the tree.  Used by
        :class:`repro.chain.shared.SharedChain` to keep its intern index
        in lock-step with every insertion path, including direct adds.
        """
        self._listeners = (*self._listeners, listener)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, block: Block) -> BlockId:
        """Insert ``block``; the parent must already be present.

        Idempotent: re-adding a known block is a no-op.  Returns the
        block id.  Raises :class:`MissingParentError` if the parent is
        unknown (callers that receive blocks out of order should buffer
        them with :class:`repro.chain.store.BlockBuffer`).
        """
        if block.block_id in self._blocks:
            return block.block_id
        if block.parent is not None and block.parent not in self._blocks:
            raise MissingParentError(f"parent {block.parent[:8]} of {block.block_id[:8]} unknown")
        self._blocks[block.block_id] = block
        self._depth[block.block_id] = self._depth[block.parent] + 1
        self._children[block.block_id] = []
        self._children[block.parent].append(block.block_id)
        self._payload_ids[block.block_id] = self._payload_ids[block.parent] | frozenset(
            tx.tx_id for tx in block.payload
        )
        # Skip pointers: up[k] = up[up[k-1]][k-1], stopping once a jump
        # reaches the virtual root (no jump can go past it).
        up: list[BlockId | None] = [block.parent]
        k = 0
        while up[k] is not None:
            above = self._up[up[k]]
            if len(above) <= k:
                break
            up.append(above[k])
            k += 1
        self._up[block.block_id] = up
        self._leaves.pop(block.parent, None)  # parent just stopped being a leaf
        self._leaves[block.block_id] = None
        if self._listeners:
            for listener in self._listeners:
                listener(block)
        return block.block_id

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, tip: BlockId | None) -> bool:
        return tip is GENESIS_TIP or tip in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, block_id: BlockId) -> Block:
        """The block with id ``block_id``."""
        try:
            return self._blocks[block_id]
        except KeyError:
            raise UnknownBlockError(block_id) from None

    def depth(self, tip: BlockId | None) -> int:
        """Length of the log identified by ``tip`` (0 for the empty log)."""
        try:
            return self._depth[tip]
        except KeyError:
            raise UnknownBlockError(tip) from None

    def parent(self, tip: BlockId) -> BlockId | None:
        """Parent tip of a block (``None`` if the block is a root)."""
        return self.get(tip).parent

    def children(self, tip: BlockId | None) -> tuple[BlockId, ...]:
        """Ids of the direct children of ``tip``."""
        if tip not in self:
            raise UnknownBlockError(tip)
        return tuple(self._children[tip])

    def tips(self) -> tuple[BlockId, ...]:
        """All leaves of the tree (blocks without children)."""
        return tuple(self._leaves)

    def ancestor_at_depth(self, tip: BlockId | None, depth: int) -> BlockId | None:
        """The prefix of ``tip``'s log that has length ``depth`` (O(log d))."""
        current_depth = self.depth(tip)
        if depth < 0 or depth > current_depth:
            raise ValueError(f"no ancestor of {tip!r} at depth {depth}")
        steps = current_depth - depth
        node = tip
        k = 0
        while steps:
            if steps & 1:
                assert node is not None
                node = self._up[node][k]
            steps >>= 1
            k += 1
        return node

    def is_prefix(self, a: BlockId | None, b: BlockId | None) -> bool:
        """Whether log ``a`` is a prefix of log ``b`` (``Λ_a ⪯ Λ_b``).

        Reflexive: every log is a prefix of itself; the empty log is a
        prefix of every log.
        """
        depth_a = self.depth(a)
        if depth_a > self.depth(b):
            return False
        return self.ancestor_at_depth(b, depth_a) == a

    def compatible(self, a: BlockId | None, b: BlockId | None) -> bool:
        """Whether one of the two logs is a prefix of the other."""
        return self.is_prefix(a, b) or self.is_prefix(b, a)

    def conflict(self, a: BlockId | None, b: BlockId | None) -> bool:
        """Whether the two logs conflict (neither is a prefix of the other)."""
        return not self.compatible(a, b)

    def common_prefix(self, tips: Iterable[BlockId | None]) -> BlockId | None:
        """Tip of the longest common prefix of the given logs.

        With no tips, the empty log.  Each pairwise step is an O(log d)
        LCA query over the skip-pointer index.
        """
        result: BlockId | None = GENESIS_TIP
        first = True
        for tip in tips:
            if first:
                result = tip
                first = False
                continue
            result = self._lca(result, tip)
        return result

    def _lca(self, a: BlockId | None, b: BlockId | None) -> BlockId | None:
        """Lowest common ancestor of two tips via binary lifting."""
        depth = min(self.depth(a), self.depth(b))
        a = self.ancestor_at_depth(a, depth)
        b = self.ancestor_at_depth(b, depth)
        if a == b:
            return a
        # Equal depth >= 1 and distinct, so both are real blocks with
        # identically sized skip tables; descend the largest jumps that
        # keep them apart.  Differing 2^k ancestors are never the
        # virtual root (a jump of exactly depth lands both on it).
        assert a is not None and b is not None
        for k in range(len(self._up[a]) - 1, -1, -1):
            table_a = self._up[a]
            if k >= len(table_a):  # tables shrink as the nodes move up
                continue
            if table_a[k] != self._up[b][k]:
                a = table_a[k]
                b = self._up[b][k]
                assert a is not None and b is not None
        return self._blocks[a].parent

    def path(self, tip: BlockId | None) -> tuple[BlockId, ...]:
        """Block ids of the log identified by ``tip``, root first."""
        ids: list[BlockId] = []
        node = tip
        while node is not None:
            ids.append(node)
            node = self._blocks[node].parent
        ids.reverse()
        return tuple(ids)

    def log(self, tip: BlockId | None) -> Log:
        """Materialise the log identified by ``tip``."""
        return Log(tuple(self._blocks[bid] for bid in self.path(tip)))

    def payload_ids(self, tip: BlockId | None) -> frozenset[str]:
        """Ids of every transaction in the log identified by ``tip``."""
        try:
            return self._payload_ids[tip]
        except KeyError:
            raise UnknownBlockError(tip) from None

    def longest(self, tips: Iterable[BlockId | None]) -> BlockId | None:
        """The deepest tip among ``tips``; ties broken by tip id.

        The deterministic tie-break keeps all well-behaved processes'
        choices identical when the paper leaves the choice open (e.g. the
        longest grade-0 output ``L_v`` in Algorithm 1).
        """
        best: BlockId | None = GENESIS_TIP
        best_key = (-1, "")
        found = False
        for tip in tips:
            key = (self.depth(tip), tip if tip is not None else "")
            if key > best_key:
                best, best_key = tip, key
            found = True
        if not found:
            raise ValueError("longest() of no tips")
        return best
