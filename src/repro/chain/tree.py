"""The block tree: ancestry, prefixes, and vote accumulation support.

Logs (paper Definition 1) form a tree under the prefix relation: a log is
identified by its tip block, ``Λ ⪯ Λ'`` iff the tip of ``Λ`` is an
ancestor of the tip of ``Λ'`` (the empty log, tip ``None``, is a prefix
of everything).  The tree also memoises per-tip transaction membership,
which proposers use to avoid re-including transactions.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.chain.block import GENESIS_TIP, Block, BlockId
from repro.chain.log import Log


class UnknownBlockError(KeyError):
    """Raised when a block id is not present in the tree."""


class MissingParentError(ValueError):
    """Raised when adding a block whose parent is not in the tree."""


class BlockTree:
    """A rooted tree of blocks with ancestry queries.

    The (virtual) root is :data:`GENESIS_TIP` (``None``), representing
    the empty log; every block whose ``parent`` is ``None`` is a child of
    the virtual root.  Depth of the empty log is 0 and depth of a block
    is ``1 + depth(parent)`` — i.e. the length of the log it identifies.
    """

    def __init__(self, blocks: Iterable[Block] = ()) -> None:
        self._blocks: dict[BlockId, Block] = {}
        self._depth: dict[BlockId | None, int] = {GENESIS_TIP: 0}
        self._children: dict[BlockId | None, list[BlockId]] = {GENESIS_TIP: []}
        self._payload_ids: dict[BlockId | None, frozenset[str]] = {GENESIS_TIP: frozenset()}
        for block in blocks:
            self.add(block)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, block: Block) -> BlockId:
        """Insert ``block``; the parent must already be present.

        Idempotent: re-adding a known block is a no-op.  Returns the
        block id.  Raises :class:`MissingParentError` if the parent is
        unknown (callers that receive blocks out of order should buffer
        them with :class:`repro.chain.store.BlockBuffer`).
        """
        if block.block_id in self._blocks:
            return block.block_id
        if block.parent is not None and block.parent not in self._blocks:
            raise MissingParentError(f"parent {block.parent[:8]} of {block.block_id[:8]} unknown")
        self._blocks[block.block_id] = block
        self._depth[block.block_id] = self._depth[block.parent] + 1
        self._children[block.block_id] = []
        self._children[block.parent].append(block.block_id)
        self._payload_ids[block.block_id] = self._payload_ids[block.parent] | frozenset(
            tx.tx_id for tx in block.payload
        )
        return block.block_id

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, tip: BlockId | None) -> bool:
        return tip is GENESIS_TIP or tip in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, block_id: BlockId) -> Block:
        """The block with id ``block_id``."""
        try:
            return self._blocks[block_id]
        except KeyError:
            raise UnknownBlockError(block_id) from None

    def depth(self, tip: BlockId | None) -> int:
        """Length of the log identified by ``tip`` (0 for the empty log)."""
        try:
            return self._depth[tip]
        except KeyError:
            raise UnknownBlockError(tip) from None

    def parent(self, tip: BlockId) -> BlockId | None:
        """Parent tip of a block (``None`` if the block is a root)."""
        return self.get(tip).parent

    def children(self, tip: BlockId | None) -> tuple[BlockId, ...]:
        """Ids of the direct children of ``tip``."""
        if tip not in self:
            raise UnknownBlockError(tip)
        return tuple(self._children[tip])

    def tips(self) -> tuple[BlockId, ...]:
        """All leaves of the tree (blocks without children)."""
        return tuple(bid for bid in self._blocks if not self._children[bid])

    def ancestor_at_depth(self, tip: BlockId | None, depth: int) -> BlockId | None:
        """The prefix of ``tip``'s log that has length ``depth``."""
        current_depth = self.depth(tip)
        if depth < 0 or depth > current_depth:
            raise ValueError(f"no ancestor of {tip!r} at depth {depth}")
        node = tip
        while current_depth > depth:
            assert node is not None
            node = self._blocks[node].parent
            current_depth -= 1
        return node

    def is_prefix(self, a: BlockId | None, b: BlockId | None) -> bool:
        """Whether log ``a`` is a prefix of log ``b`` (``Λ_a ⪯ Λ_b``).

        Reflexive: every log is a prefix of itself; the empty log is a
        prefix of every log.
        """
        depth_a = self.depth(a)
        if depth_a > self.depth(b):
            return False
        return self.ancestor_at_depth(b, depth_a) == a

    def compatible(self, a: BlockId | None, b: BlockId | None) -> bool:
        """Whether one of the two logs is a prefix of the other."""
        return self.is_prefix(a, b) or self.is_prefix(b, a)

    def conflict(self, a: BlockId | None, b: BlockId | None) -> bool:
        """Whether the two logs conflict (neither is a prefix of the other)."""
        return not self.compatible(a, b)

    def common_prefix(self, tips: Iterable[BlockId | None]) -> BlockId | None:
        """Tip of the longest common prefix of the given logs.

        With no tips, the empty log.
        """
        result: BlockId | None = GENESIS_TIP
        first = True
        for tip in tips:
            if first:
                result = tip
                first = False
                continue
            depth = min(self.depth(result), self.depth(tip))
            a = self.ancestor_at_depth(result, depth)
            b = self.ancestor_at_depth(tip, depth)
            while a != b:
                assert a is not None and b is not None
                a = self._blocks[a].parent
                b = self._blocks[b].parent
            result = a
        return result

    def path(self, tip: BlockId | None) -> tuple[BlockId, ...]:
        """Block ids of the log identified by ``tip``, root first."""
        ids: list[BlockId] = []
        node = tip
        while node is not None:
            ids.append(node)
            node = self._blocks[node].parent
        ids.reverse()
        return tuple(ids)

    def log(self, tip: BlockId | None) -> Log:
        """Materialise the log identified by ``tip``."""
        return Log(tuple(self._blocks[bid] for bid in self.path(tip)))

    def payload_ids(self, tip: BlockId | None) -> frozenset[str]:
        """Ids of every transaction in the log identified by ``tip``."""
        try:
            return self._payload_ids[tip]
        except KeyError:
            raise UnknownBlockError(tip) from None

    def longest(self, tips: Iterable[BlockId | None]) -> BlockId | None:
        """The deepest tip among ``tips``; ties broken by tip id.

        The deterministic tie-break keeps all well-behaved processes'
        choices identical when the paper leaves the choice open (e.g. the
        longest grade-0 output ``L_v`` in Algorithm 1).
        """
        best: BlockId | None = GENESIS_TIP
        best_key = (-1, "")
        found = False
        for tip in tips:
            key = (self.depth(tip), tip if tip is not None else "")
            if key > best_key:
                best, best_key = tip, key
            found = True
        if not found:
            raise ValueError("longest() of no tips")
        return best
