"""The :class:`Log` value object (paper Definition 1).

A log is a finite sequence of blocks ``Λ = [b1, ..., bk]`` where each
block references the previous one.  Protocol internals manipulate logs
by tip id inside a :class:`repro.chain.tree.BlockTree`; :class:`Log` is
the materialised form used at API boundaries (delivered logs, examples,
tests) where the sequence itself is what callers want.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.chain.block import Block, BlockId


@dataclass(frozen=True)
class Log:
    """An immutable sequence of blocks forming a chain.

    The constructor validates the chain structure: each block's parent
    must be the id of the block before it (the first block must be a
    root).  Use ``Log(())`` for the empty log.
    """

    blocks: tuple["Block", ...] = ()

    def __post_init__(self) -> None:
        previous: BlockId | None = None
        for block in self.blocks:
            if block.parent != previous:
                raise ValueError("blocks do not form a chain")
            previous = block.block_id

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator["Block"]:
        return iter(self.blocks)

    def __getitem__(self, index: int) -> "Block":
        return self.blocks[index]

    @property
    def tip(self) -> "BlockId | None":
        """Id of the last block, or ``None`` for the empty log."""
        return self.blocks[-1].block_id if self.blocks else None

    def is_prefix_of(self, other: "Log") -> bool:
        """``self ⪯ other`` (Definition 1)."""
        if len(self) > len(other):
            return False
        return all(a.block_id == b.block_id for a, b in zip(self.blocks, other.blocks))

    def extends(self, other: "Log") -> bool:
        """``other ⪯ self``."""
        return other.is_prefix_of(self)

    def compatible(self, other: "Log") -> bool:
        """One of the two logs is a prefix of the other."""
        return self.is_prefix_of(other) or other.is_prefix_of(self)

    def conflicts(self, other: "Log") -> bool:
        """Neither log is a prefix of the other."""
        return not self.compatible(other)

    def transactions(self) -> tuple:
        """All transactions in the log, in order."""
        return tuple(tx for block in self.blocks for tx in block.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tips = ",".join(b.block_id[:6] for b in self.blocks[-3:])
        return f"Log(len={len(self)}, ...{tips})"
