"""The incremental prefix-count tally behind every GA grading.

The paper's tally (Figure 2) counts a vote for ``Λ'`` toward every
prefix ``Λ ⪯ Λ'`` — on the block tree that is exactly a subtree-count
query: ``count(b)`` is the number of tallied votes whose tip lies in
``b``'s subtree.  Every protocol in the repository (the original MMR
TOB, the extended GA of Figure 3, the η-expiration TOB, and the
finality gadget's quorum accounting) needs this same quantity; they
differ only in *which* votes they feed it.

:class:`PrefixTally` maintains the per-node prefix counts incrementally
under vote churn instead of re-walking every vote's ancestor chain per
query:

* :meth:`~PrefixTally.add_vote` / :meth:`~PrefixTally.remove_vote`
  adjust counts along one root path — O(depth of the tip);
* :meth:`~PrefixTally.move_vote` adjusts counts only along the path
  *between* the old and new tip, found via the tree's O(log d) LCA
  query — O(distance between the tips), which for the protocol's
  steady state (a sender's next vote extends its last by a block or
  two) is O(1) walk plus an O(log d) LCA, regardless of chain depth;
* block insertion needs no maintenance at all: a fresh block starts
  with count 0 until a vote reaches its subtree.

:meth:`~PrefixTally.grade` reproduces the Figure 2 grading with exact
integer arithmetic, bit-identical to the historical ``tally_votes``
recount (which is now a thin wrapper over this class).  The golden
traces and ``tests/chain/test_tree_index.py``'s randomized
naive-recount oracle pin that equivalence.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping
from dataclasses import dataclass
from fractions import Fraction
from types import MappingProxyType

from repro.chain.block import GENESIS_TIP, BlockId
from repro.chain.shared import TreeLike
from repro.chain.tree import UnknownBlockError

#: The paper's default failure ratio (1/3-resilient MMR).
DEFAULT_BETA = Fraction(1, 3)

_MISSING = object()


@dataclass(frozen=True)
class GAOutput:
    """Result of one graded-agreement tally.

    Attributes:
        grade1: tips of logs output with grade 1, sorted by depth.
        grade0: tips of logs output with grade 0 (``> β·m`` but
            ``≤ (1 − β)·m``), sorted by depth.
        m: perceived participation — number of distinct processes whose
            vote entered the tally.
    """

    grade1: tuple[BlockId | None, ...]
    grade0: tuple[BlockId | None, ...]
    m: int

    def all_output(self) -> tuple[BlockId | None, ...]:
        """Tips output with *any* grade (``(Λ, ∗)`` in the paper)."""
        return self.grade1 + self.grade0

    def has_grade1(self, tip: BlockId | None) -> bool:
        """Whether ``tip``'s log was output with grade 1."""
        return tip in self.grade1


def check_beta(beta: Fraction) -> None:
    """Reject failure ratios outside the protocols' (0, 1/2] range."""
    if not Fraction(0) < beta <= Fraction(1, 2):
        # β ≤ 1/2 in every protocol this repository covers; reject junk early.
        raise ValueError(f"failure ratio β must be in (0, 1/2], got {beta}")


class PrefixTally:
    """Per-node prefix-vote counts, maintained incrementally.

    Holds one vote per sender (the caller resolves equivocations and
    window membership — e.g. via
    :class:`~repro.core.expiration.LatestVoteStore`); every vote's tip
    must be present in the tree.  Counts stay exact under any sequence
    of :meth:`set_vote`/:meth:`remove_vote`/:meth:`set_votes` calls and
    under tree growth.
    """

    def __init__(
        self, tree: TreeLike, votes: Mapping[int, BlockId | None] | None = None
    ) -> None:
        self._tree = tree
        self._votes: dict[int, BlockId | None] = {}
        # node -> number of tallied votes for tips in its subtree; only
        # nodes with a non-zero count are present (GENESIS_TIP carries
        # the total while any vote is tallied).
        self._counts: dict[BlockId | None, int] = {}
        # The same counted nodes bucketed by count value (count -> node
        # set, dict-as-set), kept in lock-step with _counts.  grade()
        # scans *buckets*: one threshold comparison per distinct count
        # instead of per node, and buckets below the grade-0 threshold
        # are skipped without touching their nodes — for very wide vote
        # windows (large η, scattered stale votes) most counted nodes
        # are low-count and never visited at all.
        self._by_count: dict[int, dict[BlockId | None, None]] = {}
        if votes:
            self.set_votes(votes)

    def __len__(self) -> int:
        return len(self._votes)

    @property
    def votes(self) -> Mapping[int, BlockId | None]:
        """Read-only view of the tallied vote per sender."""
        return MappingProxyType(self._votes)

    def count(self, tip: BlockId | None) -> int:
        """Votes for logs extending ``tip`` (the paper's prefix count)."""
        if tip not in self._tree:
            raise UnknownBlockError(tip)
        return self._counts.get(tip, 0)

    # ------------------------------------------------------------------
    # Vote churn
    # ------------------------------------------------------------------
    def set_vote(self, sender: int, tip: BlockId | None) -> None:
        """Upsert ``sender``'s vote (add when new, move when changed)."""
        existing = self._votes.get(sender, _MISSING)
        if existing is _MISSING:
            self.add_vote(sender, tip)
        elif existing != tip:
            self.move_vote(sender, tip)

    def add_vote(self, sender: int, tip: BlockId | None) -> None:
        """Tally a new sender's vote — O(depth) count updates."""
        if sender in self._votes:
            raise ValueError(f"sender {sender} already has a tallied vote")
        if tip not in self._tree:
            raise UnknownBlockError(tip)
        self._votes[sender] = tip
        self._adjust_path(tip, GENESIS_TIP, +1)
        total = self._counts.get(GENESIS_TIP, 0)
        self._set_count(GENESIS_TIP, total, total + 1)

    def move_vote(self, sender: int, tip: BlockId | None) -> None:
        """Re-point ``sender``'s vote, adjusting counts only between the
        old and new tip (their LCA path) — not along the whole chain."""
        old = self._votes.get(sender, _MISSING)
        if old is _MISSING:
            raise ValueError(f"sender {sender} has no tallied vote to move")
        if tip not in self._tree:
            raise UnknownBlockError(tip)
        if old == tip:
            return
        self._votes[sender] = tip
        fork = self._tree.common_prefix([old, tip])
        self._adjust_path(tip, fork, +1)
        self._adjust_path(old, fork, -1)

    def remove_vote(self, sender: int) -> None:
        """Untally ``sender``'s vote — O(depth) count updates."""
        old = self._votes.pop(sender, _MISSING)
        if old is _MISSING:
            raise ValueError(f"sender {sender} has no tallied vote to remove")
        self._adjust_path(old, GENESIS_TIP, -1)
        total = self._counts[GENESIS_TIP]
        self._set_count(GENESIS_TIP, total, total - 1)

    def set_votes(self, votes: Mapping[int, BlockId | None]) -> None:
        """Make the tallied set equal ``votes``, by incremental diff.

        The cost is one dict scan plus count updates proportional to
        how much the vote set actually changed — the protocol's
        steady-state access pattern (per-round windows over a vote set
        that barely moves) pays for its churn, not for its depth.
        Building from empty (the one-shot :func:`~repro.protocols.
        graded_agreement.tally_votes` path) walks once per *distinct*
        tip with its vote weight, not once per voter, so converged vote
        sets cost O(distinct tips · depth) exactly as the historical
        recount did.
        """
        if not self._votes:
            self._bulk_add(votes)
            return
        for sender in [s for s in self._votes if s not in votes]:
            self.remove_vote(sender)
        for sender, tip in votes.items():
            self.set_vote(sender, tip)

    def _bulk_add(self, votes: Mapping[int, BlockId | None]) -> None:
        """Tally ``votes`` into an empty tally, weight-grouped by tip."""
        assert not self._votes
        counts = self._counts
        tree = self._tree
        direct = Counter(votes.values())
        for tip in direct:  # validate before mutating any count
            if tip not in tree:
                raise UnknownBlockError(tip)
        for tip, weight in direct.items():
            node = tip
            while node is not GENESIS_TIP:
                old = counts.get(node, 0)
                self._set_count(node, old, old + weight)
                node = tree.parent(node)
        if votes:
            total = counts.get(GENESIS_TIP, 0)
            self._set_count(GENESIS_TIP, total, total + len(votes))
            self._votes.update(votes)

    def _set_count(self, node: BlockId | None, old: int, new: int) -> None:
        """Move ``node`` from count ``old`` to ``new`` (count + bucket)."""
        buckets = self._by_count
        if new:
            self._counts[node] = new
            buckets.setdefault(new, {})[node] = None
        else:
            del self._counts[node]
        if old:
            bucket = buckets[old]
            del bucket[node]
            if not bucket:
                del buckets[old]

    def _adjust_path(self, tip: BlockId | None, stop: BlockId | None, delta: int) -> None:
        """Apply ``delta`` to every node from ``tip`` up to, excluding, ``stop``."""
        counts = self._counts
        node = tip
        while node != stop:
            assert node is not None
            old = counts.get(node, 0)
            self._set_count(node, old, old + delta)
            node = self._tree.parent(node)

    # ------------------------------------------------------------------
    # Grading (Figure 2 thresholds, exact integers)
    # ------------------------------------------------------------------
    def grade(self, beta: Fraction = DEFAULT_BETA, m: int | None = None) -> GAOutput:
        """Grade every counted log against the β thresholds.

        ``m`` defaults to the number of tallied votes (the GA's
        perceived participation); callers with a fixed denominator
        (e.g. a static quorum over all ``n`` processes) may override it.

        The scan is batched by count value: ``count·den > threshold``
        depends only on the count, so each bucket is classified with
        one integer comparison (exact — ``count > ⌊t/den⌋`` iff
        ``count·den > t`` for integer counts) and whole sub-threshold
        buckets are skipped without visiting their nodes.
        """
        check_beta(beta)
        if m is None:
            m = len(self._votes)
        if m == 0:
            return GAOutput(grade1=(), grade0=(), m=0)

        num, den = beta.numerator, beta.denominator
        threshold1 = ((den - num) * m) // den
        threshold0 = (num * m) // den
        grade1: list[BlockId | None] = []
        grade0: list[BlockId | None] = []
        for count, nodes in self._by_count.items():
            if count > threshold1:
                grade1.extend(nodes)
            elif count > threshold0:
                grade0.extend(nodes)

        depth = self._tree.depth

        def sort_key(tip: BlockId | None) -> tuple[int, str]:
            return (depth(tip), tip if tip is not None else "")

        return GAOutput(
            grade1=tuple(sorted(grade1, key=sort_key)),
            grade0=tuple(sorted(grade0, key=sort_key)),
            m=m,
        )
