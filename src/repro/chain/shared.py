"""One interned block tree per run, with per-receiver visibility views.

Every receiver in a simulation used to own a private
:class:`~repro.chain.tree.BlockTree`: n copies of the same blocks, the
same depth tables, the same binary-lifting skip pointers.  Memory and
tree maintenance scaled O(n × chain), which priced n ≥ 1000 runs — the
regime where the paper's sleepy model is actually interesting — out of
reach.

This module interns the structure once:

* :class:`SharedChain` owns the **canonical** tree of a run.  Blocks
  are content-addressed (:class:`~repro.chain.block.Block` ids are
  hashes), so each block is inserted — and its skip-pointer row built —
  exactly once, no matter how many receivers learn it.  Every block
  also gets a dense integer **intern index** in insertion order.
* :class:`ChainView` is one receiver's lens: the canonical tree
  filtered by a visible set over intern indices.  It exposes the full
  :class:`~repro.chain.tree.BlockTree` query surface (``add``,
  membership, ``depth``, ``longest``, ``is_prefix``, ``conflict``,
  ``common_prefix``, ``payload_ids``, ``tips``, ``path``, ``log``, …)
  with *exactly* the semantics of a private tree holding only the
  blocks this receiver has accepted — so protocol state machines,
  :class:`~repro.chain.tally.PrefixTally`,
  :class:`~repro.chain.store.BlockBuffer`, and the finality gadget run
  on a view unchanged, bit for bit.

The visible set is watermark-compressed: under synchrony every
receiver learns blocks in (nearly) intern order, so visibility is "all
indices below a watermark" plus a small overflow set that drains as the
contiguous prefix closes.  A caught-up view therefore costs O(1) steady
memory instead of O(chain), and a freshly woken process catches up by
advancing an integer.

Views never share mutable state with each other — only with the
canonical tree, which is append-only — so they are safe to drive from
any single-threaded scheduler.  They do assume one shared address
space: the asyncio deployment backend keeps per-process trees (real
nodes cannot intern each other's memory), which is why
:class:`~repro.sleepy.process.ProcessFactory` treats the shared chain
as an optional capability rather than a requirement.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.chain.block import GENESIS_TIP, Block, BlockId, genesis_block
from repro.chain.log import Log
from repro.chain.tree import BlockTree, MissingParentError, UnknownBlockError

#: Cached id of the canonical genesis block (hashing it once, not per view).
_GENESIS_ID = genesis_block().block_id

__all__ = ["ChainView", "SharedChain", "TreeLike"]


class SharedChain:
    """The canonical interned tree of one run, plus its view factory.

    The chain always contains the genesis block (index 0): every view
    starts with exactly the genesis visible, mirroring how private
    per-process trees were seeded.  All insertion paths are indexed —
    including blocks added to :attr:`tree` directly (e.g. by the
    simulator's omniscient trace buffer) — via a tree add-listener.
    """

    def __init__(self, blocks: Iterable[Block] = ()) -> None:
        self._index: dict[BlockId, int] = {}
        self._scratch: dict[str, dict] = {}
        #: The canonical, append-only tree (also the run's omniscient
        #: trace tree in the simulator).
        self.tree = BlockTree()
        self.tree.add_listener(self._on_add)
        self.tree.add(genesis_block())
        for block in blocks:
            self.tree.add(block)

    def _on_add(self, block: Block) -> None:
        self._index[block.block_id] = len(self._index)

    def __len__(self) -> int:
        return len(self.tree)

    def index(self, block_id: BlockId) -> int:
        """The dense intern index of a canonical block (insertion order)."""
        return self._index[block_id]

    def view(self) -> ChainView:
        """A fresh receiver view with only the genesis block visible."""
        return ChainView(self)

    def scratch(self, key: str) -> dict:
        """A run-shared memo dict for ``key``, created on first request.

        For structures that are *content-derived* from verified message
        fields — identical no matter which receiver computes them (e.g.
        the per-view max-VRF proposal order) — so n receivers can intern
        one copy instead of each maintaining its own.  Callers must only
        store data every receiver would reconstruct identically; nothing
        receiver-local belongs here.
        """
        return self._scratch.setdefault(key, {})


class ChainView:
    """One receiver's visibility-filtered lens over a :class:`SharedChain`.

    Drop-in for the :class:`~repro.chain.tree.BlockTree` query surface:
    a block is "in the tree" iff this view has accepted it via
    :meth:`add`, and every query answers exactly as a private tree
    holding those blocks would.  (Ancestors of a visible block are
    always visible — :meth:`add` requires the parent, like
    ``BlockTree.add`` — so structural queries can delegate to the
    canonical index once the arguments pass the visibility check.)
    """

    __slots__ = ("_chain", "_tree", "_floor", "_extra", "_count", "_leaves")

    def __init__(self, chain: SharedChain) -> None:
        self._chain = chain
        self._tree = chain.tree
        # Visible iff index < _floor or index in _extra.  Genesis is
        # index 0, visible from birth in every view.
        self._floor = 1
        self._extra: set[int] = set()
        self._count = 1
        # Insertion-ordered visible-leaf set, mirroring BlockTree._leaves.
        self._leaves: dict[BlockId, None] = {_GENESIS_ID: None}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, block: Block) -> BlockId:
        """Accept ``block`` into this view (interning it if it is new).

        Same contract as :meth:`repro.chain.tree.BlockTree.add`:
        idempotent, parent must already be visible, returns the block
        id.  The canonical insertion (and its index build) happens at
        most once per run regardless of how many views accept the block.
        """
        block_id = block.block_id
        if self._visible(block_id):
            return block_id
        if block.parent is not None and not self._visible(block.parent):
            raise MissingParentError(f"parent {block.parent[:8]} of {block_id[:8]} unknown")
        self._tree.add(block)  # no-op when another view interned it first
        index = self._chain.index(block_id)
        if index == self._floor:
            self._floor += 1
            extra = self._extra
            while self._floor in extra:
                extra.remove(self._floor)
                self._floor += 1
        elif index > self._floor:
            self._extra.add(index)
        self._count += 1
        if block.parent is not None:
            self._leaves.pop(block.parent, None)
        self._leaves[block_id] = None
        return block_id

    def _visible(self, block_id: BlockId) -> bool:
        index = self._chain._index.get(block_id)
        if index is None:
            return False
        return index < self._floor or index in self._extra

    # ------------------------------------------------------------------
    # Queries (the BlockTree surface, visibility-filtered)
    # ------------------------------------------------------------------
    def __contains__(self, tip: BlockId | None) -> bool:
        return tip is GENESIS_TIP or self._visible(tip)

    def __len__(self) -> int:
        return self._count

    def get(self, block_id: BlockId) -> Block:
        """The (visible) block with id ``block_id``."""
        if not self._visible(block_id):
            raise UnknownBlockError(block_id)
        return self._tree.get(block_id)

    def depth(self, tip: BlockId | None) -> int:
        """Length of the log identified by ``tip`` (0 for the empty log)."""
        if tip not in self:
            raise UnknownBlockError(tip)
        return self._tree.depth(tip)

    def parent(self, tip: BlockId) -> BlockId | None:
        """Parent tip of a visible block (``None`` if it is a root)."""
        return self.get(tip).parent

    def children(self, tip: BlockId | None) -> tuple[BlockId, ...]:
        """Visible direct children of ``tip`` (canonical intern order)."""
        if tip not in self:
            raise UnknownBlockError(tip)
        return tuple(c for c in self._tree.children(tip) if self._visible(c))

    def tips(self) -> tuple[BlockId, ...]:
        """Visible leaves (no visible children), in acceptance order."""
        return tuple(self._leaves)

    def ancestor_at_depth(self, tip: BlockId | None, depth: int) -> BlockId | None:
        """The prefix of ``tip``'s log with length ``depth`` (O(log d))."""
        if tip not in self:
            raise UnknownBlockError(tip)
        return self._tree.ancestor_at_depth(tip, depth)

    def is_prefix(self, a: BlockId | None, b: BlockId | None) -> bool:
        """Whether log ``a`` is a prefix of log ``b`` (``Λ_a ⪯ Λ_b``)."""
        if a not in self:
            raise UnknownBlockError(a)
        if b not in self:
            raise UnknownBlockError(b)
        return self._tree.is_prefix(a, b)

    def compatible(self, a: BlockId | None, b: BlockId | None) -> bool:
        """Whether one of the two logs is a prefix of the other."""
        return self.is_prefix(a, b) or self.is_prefix(b, a)

    def conflict(self, a: BlockId | None, b: BlockId | None) -> bool:
        """Whether the two logs conflict (neither a prefix of the other)."""
        return not self.compatible(a, b)

    def common_prefix(self, tips: Iterable[BlockId | None]) -> BlockId | None:
        """Tip of the longest common prefix of the given visible logs."""
        checked = []
        for tip in tips:
            if tip not in self:
                raise UnknownBlockError(tip)
            checked.append(tip)
        return self._tree.common_prefix(checked)

    def path(self, tip: BlockId | None) -> tuple[BlockId, ...]:
        """Block ids of the log identified by ``tip``, root first."""
        if tip not in self:
            raise UnknownBlockError(tip)
        return self._tree.path(tip)

    def log(self, tip: BlockId | None) -> Log:
        """Materialise the log identified by ``tip``."""
        if tip not in self:
            raise UnknownBlockError(tip)
        return self._tree.log(tip)

    def payload_ids(self, tip: BlockId | None) -> frozenset[str]:
        """Ids of every transaction in the log identified by ``tip``."""
        if tip not in self:
            raise UnknownBlockError(tip)
        return self._tree.payload_ids(tip)

    def longest(self, tips: Iterable[BlockId | None]) -> BlockId | None:
        """The deepest visible tip among ``tips``; ties broken by tip id."""
        best: BlockId | None = GENESIS_TIP
        best_key = (-1, "")
        found = False
        for tip in tips:
            key = (self.depth(tip), tip if tip is not None else "")
            if key > best_key:
                best, best_key = tip, key
            found = True
        if not found:
            raise ValueError("longest() of no tips")
        return best


#: Anything exposing the :class:`~repro.chain.tree.BlockTree` query
#: surface: the canonical tree itself or a per-receiver view.
TreeLike = BlockTree | ChainView
