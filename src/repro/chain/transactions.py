"""Transactions, the global validity predicate, and a mempool.

The paper (Definition 2, footnote 3) assumes transactions are valid
according to a global, efficiently computable predicate ``P`` known to
all processes.  We instantiate ``P`` concretely: a transaction is valid
iff its checksum equals the hash of its other fields.  This gives the
test suite something real to exercise — invalid transactions must never
appear in a delivered log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import hash_fields


@dataclass(frozen=True)
class Transaction:
    """An immutable transaction.

    Build transactions with :meth:`Transaction.create`, which computes
    the checksum that the global validity predicate
    (:func:`is_valid_transaction`) verifies.
    """

    sender: int
    nonce: int
    payload: bytes
    checksum: str

    @staticmethod
    def create(sender: int, nonce: int, payload: bytes = b"") -> "Transaction":
        """Create a valid transaction (checksum computed from contents)."""
        return Transaction(sender, nonce, payload, _checksum(sender, nonce, payload))

    @property
    def tx_id(self) -> str:
        """Unique transaction identifier (valid txs: equals checksum)."""
        return hash_fields("tx", self.sender, self.nonce, self.payload, self.checksum)


def _checksum(sender: int, nonce: int, payload: bytes) -> str:
    return hash_fields("tx-checksum", sender, nonce, payload)


def is_valid_transaction(tx: Transaction) -> bool:
    """The global validity predicate ``P`` (paper Definition 2, fn. 3)."""
    return tx.checksum == _checksum(tx.sender, tx.nonce, tx.payload)


class Mempool:
    """A FIFO pool of pending transactions held by one process.

    Invalid transactions are rejected on entry (well-behaved processes
    never propose them).  ``take`` returns up to ``limit`` transactions
    that are not in the supplied exclusion set, preserving arrival order
    and leaving the pool unchanged — transactions are only removed once
    observed on-chain via :meth:`mark_included`.

    ``capacity`` bounds occupancy for long-running services: once full,
    new *transactions* are shed (and counted in ``shed_count``) rather
    than queued without bound.  Shedding user load is the mempool's
    explicit backpressure contract — transactions are client-retryable,
    unlike protocol messages, which are never shed anywhere in the
    stack.  The default (``capacity=None``) keeps the historical
    unbounded behaviour for bounded experiments.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("mempool capacity must be positive")
        self.capacity = capacity
        self._pending: dict[str, Transaction] = {}
        #: Valid, novel transactions rejected because the pool was full.
        self.shed_count = 0
        #: Transactions accepted into the pool over its lifetime.
        self.admitted_count = 0

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, tx: Transaction) -> bool:
        """Add ``tx`` if valid, unseen, and within capacity.

        Returns True if added; a valid-but-shed transaction bumps
        ``shed_count`` so overload is always audited, never silent.
        """
        if not is_valid_transaction(tx):
            return False
        if tx.tx_id in self._pending:
            return False
        if self.capacity is not None and len(self._pending) >= self.capacity:
            self.shed_count += 1
            return False
        self._pending[tx.tx_id] = tx
        self.admitted_count += 1
        return True

    def take(self, limit: int, exclude: frozenset[str] = frozenset()) -> tuple[Transaction, ...]:
        """Up to ``limit`` pending transactions whose ids are not in ``exclude``."""
        selected: list[Transaction] = []
        for tx_id, tx in self._pending.items():
            if len(selected) >= limit:
                break
            if tx_id not in exclude:
                selected.append(tx)
        return tuple(selected)

    def mark_included(self, tx_ids: frozenset[str]) -> None:
        """Drop transactions that have been observed in a delivered log."""
        for tx_id in tx_ids:
            self._pending.pop(tx_id, None)

    def pending_ids(self) -> frozenset[str]:
        """Ids of all transactions currently pending."""
        return frozenset(self._pending)
