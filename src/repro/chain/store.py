"""Orphan-block buffering for incrementally built local trees.

Processes learn blocks from ``propose`` messages.  Under asynchrony (and
in the gossip runtime) a block can arrive before its parent; a
well-behaved process buffers such orphans and inserts them once the
parent is known, mirroring how production blockchain clients handle
out-of-order block arrival.
"""

from __future__ import annotations

from collections import defaultdict

from repro.chain.block import Block, BlockId
from repro.chain.tree import BlockTree


class BlockBuffer:
    """Feeds received blocks into a :class:`BlockTree`, buffering orphans.

    ``offer`` inserts a block if its parent is known, then cascades any
    buffered descendants that become insertable.  Returns the list of
    block ids actually inserted (empty if the block was buffered or
    already known).
    """

    def __init__(self, tree: BlockTree) -> None:
        self._tree = tree
        self._orphans: dict[BlockId, Block] = {}
        self._waiting_on: dict[BlockId, list[BlockId]] = defaultdict(list)

    def __len__(self) -> int:
        return len(self._orphans)

    def offer(self, block: Block) -> list[BlockId]:
        """Insert ``block`` (and any unblocked orphans) into the tree."""
        if block.block_id in self._tree or block.block_id in self._orphans:
            return []
        if block.parent is not None and block.parent not in self._tree:
            self._orphans[block.block_id] = block
            self._waiting_on[block.parent].append(block.block_id)
            return []
        inserted = [self._tree.add(block)]
        # Cascade: children of each newly inserted block may now be insertable.
        frontier = [block.block_id]
        while frontier:
            parent_id = frontier.pop()
            for child_id in self._waiting_on.pop(parent_id, ()):
                child = self._orphans.pop(child_id)
                inserted.append(self._tree.add(child))
                frontier.append(child_id)
        return inserted

    def orphan_ids(self) -> frozenset[BlockId]:
        """Ids of blocks still waiting for an ancestor."""
        return frozenset(self._orphans)
