"""Orphan-block buffering for incrementally built local trees.

Processes learn blocks from ``propose`` messages.  Under asynchrony (and
in the gossip runtime) a block can arrive before its parent; a
well-behaved process buffers such orphans and inserts them once the
parent is known, mirroring how production blockchain clients handle
out-of-order block arrival.

The buffer is **bounded per source**: an adversary can multicast blocks
claiming parents that will never be delivered, and an unbounded buffer
would grow by one entry per such block forever.  Callers pass the
*verified sender* of the message that carried the block as ``source``
(signature verification upstream means a Byzantine process can only
speak as itself), and each source may **vouch** for at most
``max_orphans_per_source`` buffered orphans; exceeding the quota drops
that source's own oldest vouch.  A buffered block re-offered by a
second source gains that source's vouch too, and a block is only
evicted when its *last* voucher drops it — so a Byzantine sender
front-running an honest block (offering it first to get it charged to
its own bucket, then flooding) cannot evict it once the honest carrier
arrives.  Chaff from one identity therefore sheds only that identity's
entries, total orphan memory is bounded by ``quota × senders``, and an
honest sender — with at most a handful of blocks in flight — never
hits the quota.  Observer/merge trees whose input is already validated
opt out with ``max_orphans_per_source=None``.
"""

from __future__ import annotations

from collections import defaultdict

from repro.chain.block import Block, BlockId
from repro.chain.shared import TreeLike

#: Default per-source orphan quota — far above the block or two an
#: honest proposer ever has awaiting a parent, far below what unbounded
#: adversarial chaff would accumulate over a long run.
DEFAULT_ORPHANS_PER_SOURCE = 32


class BlockBuffer:
    """Feeds received blocks into a :class:`BlockTree`, buffering orphans.

    ``offer`` inserts a block if its parent is known, then cascades any
    buffered descendants that become insertable.  Returns the list of
    block ids actually inserted (empty if the block was buffered or
    already known).

    Each ``source`` (the verified sender of the carrying message;
    ``None`` is one shared bucket) may vouch for at most
    ``max_orphans_per_source`` buffered blocks at once (``None`` for
    unbounded); exceeding the quota drops that source's oldest vouch,
    and a block leaves the buffer only when its last voucher is gone.
    Eviction therefore only ever sheds a flooding source's own backlog,
    and a block evicted in error is insertable again on redelivery.
    """

    def __init__(
        self,
        tree: TreeLike,
        max_orphans_per_source: int | None = DEFAULT_ORPHANS_PER_SOURCE,
    ) -> None:
        if max_orphans_per_source is not None and max_orphans_per_source <= 0:
            raise ValueError("max_orphans_per_source must be positive (or None for unbounded)")
        self._tree = tree
        self._quota = max_orphans_per_source
        self._orphans: dict[BlockId, Block] = {}
        self._waiting_on: dict[BlockId, list[BlockId]] = defaultdict(list)
        # source -> the orphans it vouches for, oldest vouch first
        # (dict-as-ordered-set), and the reverse map.
        self._by_source: dict[object, dict[BlockId, None]] = {}
        self._sources_of: dict[BlockId, set[object]] = {}

    def __len__(self) -> int:
        return len(self._orphans)

    def offer(self, block: Block, source: object = None) -> list[BlockId]:
        """Insert ``block`` (and any unblocked orphans) into the tree."""
        if block.block_id in self._tree:
            return []
        if block.block_id in self._orphans:
            # Already buffered: an independent delivery adds this
            # source's vouch, so one voucher's eviction pressure cannot
            # drop a block another delivery path still stands behind.
            self._vouch(block.block_id, source)
            return []
        if block.parent is not None and block.parent not in self._tree:
            self._orphans[block.block_id] = block
            self._waiting_on[block.parent].append(block.block_id)
            self._sources_of[block.block_id] = set()
            self._vouch(block.block_id, source)
            return []
        inserted = [self._tree.add(block)]
        # Cascade: children of each newly inserted block may now be insertable.
        frontier = [block.block_id]
        while frontier:
            parent_id = frontier.pop()
            for child_id in self._waiting_on.pop(parent_id, ()):
                child = self._orphans.pop(child_id)
                self._forget(child_id)
                inserted.append(self._tree.add(child))
                frontier.append(child_id)
        return inserted

    def _vouch(self, block_id: BlockId, source: object) -> None:
        sources = self._sources_of[block_id]
        if source in sources:
            return
        sources.add(source)
        bucket = self._by_source.setdefault(source, {})
        bucket[block_id] = None
        if self._quota is not None and len(bucket) > self._quota:
            self._drop_oldest_vouch(source, bucket)

    def _forget(self, block_id: BlockId) -> None:
        """Clear every vouch for a block leaving the buffer."""
        for source in self._sources_of.pop(block_id):
            bucket = self._by_source[source]
            del bucket[block_id]
            if not bucket:
                del self._by_source[source]

    def _drop_oldest_vouch(self, source: object, bucket: dict[BlockId, None]) -> None:
        """Shed ``source``'s longest-standing vouch (its quota is full);
        the block itself is evicted only if no other voucher remains."""
        victim_id = next(iter(bucket))
        del bucket[victim_id]
        if not bucket:
            del self._by_source[source]
        sources = self._sources_of[victim_id]
        sources.discard(source)
        if sources:
            return  # another delivery path still vouches for the block
        victim = self._orphans.pop(victim_id)
        del self._sources_of[victim_id]
        waiters = self._waiting_on.get(victim.parent)
        if waiters is not None:
            try:
                waiters.remove(victim_id)
            except ValueError:
                pass
            if not waiters:
                del self._waiting_on[victim.parent]

    def orphan_ids(self) -> frozenset[BlockId]:
        """Ids of blocks still waiting for an ancestor."""
        return frozenset(self._orphans)
