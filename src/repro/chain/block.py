"""Blocks and block identifiers (paper Definition 1).

A *block* is a batch of transactions plus a reference to its parent
block.  Logs (Definition 1) are finite sequences of blocks; in this
repository a log is identified by the id of its last block (its *tip*)
inside a :class:`repro.chain.tree.BlockTree`.  The empty log is
identified by :data:`GENESIS_TIP` (``None``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.transactions import Transaction
from repro.crypto.hashing import hash_fields

#: Identifier of a block: the SHA-256 hex digest of its canonical encoding.
BlockId = str

#: Tip of the empty log.  ``None`` is the (virtual) parent of every root
#: block, so every log is an extension of the empty log.
GENESIS_TIP: BlockId | None = None


@dataclass(frozen=True)
class Block:
    """An immutable block.

    Attributes:
        parent: id of the parent block, or ``None`` for a root block
            (a block whose log is ``[block]``).
        proposer: id of the process that created the block.  The genesis
            block uses ``-1`` (no proposer).
        view: the view in which the block was proposed (paper
            Algorithm 1; view 0 for the genesis block).
        payload: the batch of transactions carried by the block.
        salt: disambiguator for otherwise-identical blocks.  Well-behaved
            proposers always use 0; equivocating adversaries use it to
            mint conflicting sibling blocks with identical payloads.
        block_id: the unique identifier, derived from all other fields.
            Computed automatically; never pass it explicitly.
    """

    parent: BlockId | None
    proposer: int
    view: int
    payload: tuple[Transaction, ...] = ()
    salt: int = 0
    block_id: BlockId = field(default="", compare=False)

    def __post_init__(self) -> None:
        computed = hash_fields(
            "block",
            self.parent,
            self.proposer,
            self.view,
            self.salt,
            tuple(tx.tx_id for tx in self.payload),
        )
        if self.block_id and self.block_id != computed:
            raise ValueError("block_id does not match block contents")
        object.__setattr__(self, "block_id", computed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parent = self.parent[:8] if self.parent else "root"
        return (
            f"Block(id={self.block_id[:8]}, parent={parent}, "
            f"proposer={self.proposer}, view={self.view}, txs={len(self.payload)})"
        )


def genesis_block() -> Block:
    """The canonical genesis block ``b0`` proposed in view 0.

    Every run of every protocol in this repository shares this block:
    paper Algorithm 1 has all view-0 processes propose ``Λ := [b0]``.
    """
    return Block(parent=None, proposer=-1, view=0, payload=())
