"""Blocks, logs, and the block tree (paper Definition 1).

This package implements the chain substrate that every protocol in the
repository builds on:

* :mod:`repro.chain.block` — immutable blocks and block identifiers.
* :mod:`repro.chain.tree` — the block tree, prefix/ancestor queries, and
  log materialisation.
* :mod:`repro.chain.log` — the :class:`Log` value object (a finite
  sequence of blocks) with the paper's prefix/compatible/conflict
  relations.
* :mod:`repro.chain.transactions` — transactions, the global validity
  predicate, and a simple mempool.
* :mod:`repro.chain.store` — a bounded orphan-block buffer used by
  processes whose view of the tree is built incrementally from
  received messages.
* :mod:`repro.chain.tally` — the incremental prefix-count tally
  (:class:`PrefixTally`) and the exact-integer :class:`GAOutput`
  grading that every protocol's GA instances share.
* :mod:`repro.chain.shared` — the run-shared interned tree
  (:class:`SharedChain`) and per-receiver visibility views
  (:class:`ChainView`) behind the simulator's large-n lane.
"""

from repro.chain.block import Block, BlockId, GENESIS_TIP, genesis_block
from repro.chain.log import Log
from repro.chain.shared import ChainView, SharedChain, TreeLike
from repro.chain.store import BlockBuffer
from repro.chain.tally import GAOutput, PrefixTally
from repro.chain.transactions import Mempool, Transaction, is_valid_transaction
from repro.chain.tree import BlockTree

__all__ = [
    "Block",
    "BlockBuffer",
    "BlockId",
    "BlockTree",
    "ChainView",
    "GAOutput",
    "GENESIS_TIP",
    "Log",
    "Mempool",
    "PrefixTally",
    "SharedChain",
    "Transaction",
    "TreeLike",
    "genesis_block",
    "is_valid_transaction",
]
