"""Simulated cryptography (paper §2.1).

The paper assumes (a) unforgeable message signatures and (b) a
verifiable random function (VRF).  Both are simulated with keyed hashes:

* :mod:`repro.crypto.signatures` — a key registry hands each process a
  secret key; signatures are keyed SHA-256 tags verified against the
  registry.  The proofs only need *unforgeability* and
  *attributability*, which hold here by construction because adversary
  code is handed only the keys of corrupted processes.
* :mod:`repro.crypto.vrf` — deterministic keyed-hash VRF whose output is
  mapped to a rational in ``[0, 1)``; anyone can verify an evaluation
  against the claimed process and input.

See DESIGN.md §2 ("Substitutions") for why this preserves the behaviour
the paper relies on.
"""

from repro.crypto.hashing import encode_fields, hash_fields, sha256_hex
from repro.crypto.signatures import KeyRegistry, SecretKey, Signature
from repro.crypto.vrf import VRFOutput, evaluate_vrf, verify_vrf

__all__ = [
    "KeyRegistry",
    "SecretKey",
    "Signature",
    "VRFOutput",
    "encode_fields",
    "evaluate_vrf",
    "hash_fields",
    "sha256_hex",
    "verify_vrf",
]
