"""Simulated unforgeable signatures (paper §2.1, "Processes").

Messages sent by processes come with an unforgeable signature; messages
without a valid signature are discarded.  We simulate this with HMAC-like
keyed SHA-256 tags:

* a :class:`KeyRegistry` deterministically derives one :class:`SecretKey`
  per process from a run seed (so whole runs are reproducible);
* ``sign`` produces a tag over the canonical encoding of the message;
* ``verify`` recomputes the tag from the registry.

Unforgeability holds *by construction* inside a run: the only way to
produce a valid tag for process ``p`` is to hold ``p``'s
:class:`SecretKey` object, and the simulator hands adversary code only
the keys of corrupted processes.  (The registry can verify anything —
that models the PKI every BFT protocol assumes.)
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass

from repro.crypto.hashing import encode_fields, sha256_hex

#: A signature is a 64-character hex tag.
Signature = str


@dataclass(frozen=True)
class SecretKey:
    """Secret signing key of one process.  Hold it, and you are the process."""

    pid: int
    seed: bytes

    def __repr__(self) -> str:  # pragma: no cover - avoid leaking seeds in logs
        return f"SecretKey(pid={self.pid})"


class KeyRegistry:
    """Derives, stores, and verifies against every process's key.

    The registry plays the role of the PKI: everyone can *verify* any
    process's signatures and VRF evaluations through it, but signing
    requires the :class:`SecretKey` object itself.
    """

    def __init__(self, n: int, run_seed: int = 0) -> None:
        if n <= 0:
            raise ValueError("need at least one process")
        self._n = n
        self._seeds: dict[int, bytes] = {
            pid: encode_fields("key-seed", run_seed, pid) for pid in range(n)
        }

    @property
    def n(self) -> int:
        """Number of registered processes."""
        return self._n

    def secret_key(self, pid: int) -> SecretKey:
        """The secret key of ``pid``.

        The simulator calls this when constructing honest processes and
        when handing corrupted processes' keys to the adversary; nothing
        else should.
        """
        try:
            return SecretKey(pid, self._seeds[pid])
        except KeyError:
            raise ValueError(f"unknown process id {pid}") from None

    def sign(self, key: SecretKey, *fields) -> Signature:
        """Sign the canonical encoding of ``fields`` with ``key``."""
        return _tag(key.seed, encode_fields(*fields))

    def verify(self, pid: int, signature: Signature, *fields) -> bool:
        """Check that ``pid`` signed ``fields``."""
        seed = self._seeds.get(pid)
        if seed is None:
            return False
        return hmac.compare_digest(_tag(seed, encode_fields(*fields)), signature)


def _tag(seed: bytes, message: bytes) -> Signature:
    # Standard HMAC construction over SHA-256 (inner/outer keyed hashes).
    return sha256_hex(
        encode_fields(b"outer", seed, bytes.fromhex(sha256_hex(encode_fields(b"inner", seed, message))))
    )
