"""Simulated unforgeable signatures (paper §2.1, "Processes").

Messages sent by processes come with an unforgeable signature; messages
without a valid signature are discarded.  We simulate this with HMAC-like
keyed SHA-256 tags:

* a :class:`KeyRegistry` deterministically derives one :class:`SecretKey`
  per process from a run seed (so whole runs are reproducible);
* ``sign`` produces a tag over the canonical encoding of the message;
* ``verify`` recomputes the tag from the registry.

Unforgeability holds *by construction* inside a run: the only way to
produce a valid tag for process ``p`` is to hold ``p``'s
:class:`SecretKey` object, and the simulator hands adversary code only
the keys of corrupted processes.  (The registry can verify anything —
that models the PKI every BFT protocol assumes.)
"""

from __future__ import annotations

import hmac
from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass

from repro.crypto.hashing import encode_fields, sha256_hex

#: A signature is a 64-character hex tag.
Signature = str

#: Default capacity of a :class:`VerificationCache` (per run; one entry
#: per *logical* message, so this comfortably covers n·rounds of votes
#: and proposals for the experiment scales this repository targets).
DEFAULT_VERIFICATION_CACHE_CAPACITY = 1 << 17


@dataclass(frozen=True)
class SecretKey:
    """Secret signing key of one process.  Hold it, and you are the process."""

    pid: int
    seed: bytes

    def __repr__(self) -> str:  # pragma: no cover - avoid leaking seeds in logs
        return f"SecretKey(pid={self.pid})"


class KeyRegistry:
    """Derives, stores, and verifies against every process's key.

    The registry plays the role of the PKI: everyone can *verify* any
    process's signatures and VRF evaluations through it, but signing
    requires the :class:`SecretKey` object itself.
    """

    def __init__(self, n: int, run_seed: int = 0) -> None:
        if n <= 0:
            raise ValueError("need at least one process")
        self._n = n
        self._seeds: dict[int, bytes] = {
            pid: encode_fields("key-seed", run_seed, pid) for pid in range(n)
        }

    @property
    def n(self) -> int:
        """Number of registered processes."""
        return self._n

    def secret_key(self, pid: int) -> SecretKey:
        """The secret key of ``pid``.

        The simulator calls this when constructing honest processes and
        when handing corrupted processes' keys to the adversary; nothing
        else should.
        """
        try:
            return SecretKey(pid, self._seeds[pid])
        except KeyError:
            raise ValueError(f"unknown process id {pid}") from None

    def sign(self, key: SecretKey, *fields) -> Signature:
        """Sign the canonical encoding of ``fields`` with ``key``."""
        return _tag(key.seed, encode_fields(*fields))

    def verify(self, pid: int, signature: Signature, *fields) -> bool:
        """Check that ``pid`` signed ``fields``."""
        seed = self._seeds.get(pid)
        if seed is None:
            return False
        return hmac.compare_digest(_tag(seed, encode_fields(*fields)), signature)

    def verify_batch(
        self, items: Sequence[tuple[int, Signature, tuple]]
    ) -> list[bool]:
        """Verify many ``(pid, signature, fields)`` claims in one call.

        Returns one verdict per item, in order.  This is the batch seam
        the shared ingest pipeline feeds: a multicast message reaches
        every recipient, but its tag only needs to be recomputed once —
        callers deduplicate by digest (see :class:`VerificationCache`)
        and push only the distinct misses through here.
        """
        seeds = self._seeds
        verdicts: list[bool] = []
        for pid, signature, fields in items:
            seed = seeds.get(pid)
            if seed is None:
                verdicts.append(False)
            else:
                verdicts.append(
                    hmac.compare_digest(_tag(seed, encode_fields(*fields)), signature)
                )
        return verdicts


class VerificationCache:
    """Run-shared LRU of verification verdicts, keyed by message digest.

    The digest is computed *by the verifier* from a message's canonical
    content (kind, claimed sender, signed fields, signature) — never
    taken from the message object itself, whose memoised ``message_id``
    is attacker-supplied state (see the transplanted-signature
    regression test).  In a multicast model every process verifies the
    same messages, so one shared cache turns n·messages verifications
    into one per logical message.

    Bounded: the least-recently-used verdict is evicted past
    ``capacity``, so adversarial message floods cannot grow the cache
    without bound (an evicted verdict is merely re-verified on next
    sight).
    """

    def __init__(self, capacity: int = DEFAULT_VERIFICATION_CACHE_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self._capacity = capacity
        self._verdicts: OrderedDict[str, bool] = OrderedDict()
        #: Hit/miss/eviction accounting (consumed by benches and tests).
        self.stats = {"hits": 0, "misses": 0, "evictions": 0}

    def __len__(self) -> int:
        return len(self._verdicts)

    @property
    def capacity(self) -> int:
        """Maximum number of cached verdicts."""
        return self._capacity

    def get(self, digest: str) -> bool | None:
        """The cached verdict for ``digest``, or ``None`` if unknown."""
        verdict = self._verdicts.get(digest)
        if verdict is None:
            self.stats["misses"] += 1
            return None
        self._verdicts.move_to_end(digest)
        self.stats["hits"] += 1
        return verdict

    def put(self, digest: str, verdict: bool) -> None:
        """Record ``verdict`` for ``digest`` (evicting the LRU entry if full)."""
        verdicts = self._verdicts
        if digest in verdicts:
            verdicts.move_to_end(digest)
        verdicts[digest] = verdict
        while len(verdicts) > self._capacity:
            verdicts.popitem(last=False)
            self.stats["evictions"] += 1


def _tag(seed: bytes, message: bytes) -> Signature:
    # Standard HMAC construction over SHA-256 (inner/outer keyed hashes).
    return sha256_hex(
        encode_fields(b"outer", seed, bytes.fromhex(sha256_hex(encode_fields(b"inner", seed, message))))
    )
