"""Simulated verifiable random function (paper §2.1, "Cryptography").

Each process ``p`` can evaluate ``(ρ, π) ← VRF_p(µ)``: a deterministic
pseudorandom value ``ρ`` plus a proof ``π`` that anyone can verify
against ``p``'s public identity.  Algorithm 1 uses ``VRF_p(v)`` to rank
proposals in view ``v``.

The simulation derives ``ρ`` from a keyed hash of the input and maps it
into ``[0, 1)`` with 256 bits of precision; the proof is a second keyed
tag.  Determinism, uniqueness per ``(process, input)``, uniformity (in
the random-oracle sense) and public verifiability — the only properties
the protocol uses — all hold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.signatures import KeyRegistry, SecretKey

_PRECISION = 1 << 256


@dataclass(frozen=True)
class VRFOutput:
    """A VRF evaluation: pseudorandom ``value`` in [0, 1) plus ``proof``."""

    value_num: int
    proof: str

    @property
    def value(self) -> float:
        """The pseudorandom value as a float in [0, 1) (display only).

        Comparisons inside the protocol use ``value_num`` (exact 256-bit
        integer) so proposal ranking never depends on float rounding.
        """
        return self.value_num / _PRECISION


def evaluate_vrf(registry: KeyRegistry, key: SecretKey, view: int) -> VRFOutput:
    """Evaluate ``VRF_key(view)``.

    Only the holder of the secret key can produce a verifiable output.
    """
    raw = registry.sign(key, "vrf-value", view)
    proof = registry.sign(key, "vrf-proof", view)
    return VRFOutput(value_num=int(raw, 16) % _PRECISION, proof=proof)


def verify_vrf(registry: KeyRegistry, pid: int, view: int, output: VRFOutput) -> bool:
    """Verify that ``output`` is the correct evaluation of ``VRF_pid(view)``."""
    if not registry.verify(pid, output.proof, "vrf-proof", view):
        return False
    # Recompute the value from the registry (public verifiability): the
    # claimed value must match the canonical evaluation exactly.
    seed_key = registry.secret_key(pid)
    raw = registry.sign(seed_key, "vrf-value", view)
    return output.value_num == int(raw, 16) % _PRECISION


def sortition_value(output: VRFOutput) -> int:
    """Exact integer ranking key for proposer sortition (larger wins)."""
    return output.value_num
