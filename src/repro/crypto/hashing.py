"""Canonical hashing helpers shared by the whole repository.

All identifiers (block ids, message ids, signatures, VRF outputs) are
derived from SHA-256 over a *canonical encoding* of heterogeneous fields.
The encoding is injective: every field is length-prefixed and tagged with
its type, so distinct field tuples can never produce the same byte
string.  This matters because the simulated signatures and VRFs inherit
their unforgeability argument from the injectivity of this encoding.
"""

from __future__ import annotations

import hashlib

_TAG_NONE = b"N"
_TAG_INT = b"I"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_TUPLE = b"T"

Encodable = None | int | str | bytes | tuple


def encode_fields(*fields: Encodable) -> bytes:
    """Return the canonical, injective byte encoding of ``fields``.

    Supports ``None``, ``int`` (arbitrary size, signed), ``str``,
    ``bytes`` and arbitrarily nested tuples of these.
    """
    out = bytearray()
    out += _TAG_TUPLE
    out += len(fields).to_bytes(4, "big")
    for field in fields:
        out += _encode_one(field)
    return bytes(out)


def _encode_one(field: Encodable) -> bytes:
    if field is None:
        return _TAG_NONE
    if isinstance(field, bool):
        # Reject silently-int-like bools: they are almost always a bug in
        # a caller that meant to encode a real field.
        raise TypeError("bool is not encodable; encode an explicit int or str")
    if isinstance(field, int):
        length = max(1, (field.bit_length() + 8) // 8)
        payload = field.to_bytes(length, "big", signed=True)
        return _TAG_INT + len(payload).to_bytes(4, "big") + payload
    if isinstance(field, str):
        payload = field.encode("utf-8")
        return _TAG_STR + len(payload).to_bytes(4, "big") + payload
    if isinstance(field, bytes):
        return _TAG_BYTES + len(field).to_bytes(4, "big") + field
    if isinstance(field, tuple):
        inner = bytearray()
        inner += _TAG_TUPLE
        inner += len(field).to_bytes(4, "big")
        for item in field:
            inner += _encode_one(item)
        return bytes(inner)
    raise TypeError(f"unsupported field type for canonical encoding: {type(field)!r}")


def sha256_hex(data: bytes) -> str:
    """SHA-256 of ``data`` as a 64-character hex string."""
    return hashlib.sha256(data).hexdigest()


def hash_fields(*fields: Encodable) -> str:
    """Hash a tuple of fields under the canonical encoding."""
    return sha256_hex(encode_fields(*fields))
