"""Multi-process deployment substrate: sharding, equivalence, backpressure."""

import pytest

from repro.engine.deploy_backend import DeploymentBackend
from repro.engine.spec import RunSpec
from repro.net.socket_transport import supports_unix_sockets
from repro.runtime.worker import shard_pids

pytestmark = pytest.mark.skipif(
    not supports_unix_sockets(), reason="multi-process substrate tests need AF_UNIX"
)


def test_shard_pids_contiguous_and_exhaustive():
    assert shard_pids(5, 2) == ((0, 1, 2), (3, 4))
    assert shard_pids(4, 4) == ((0,), (1,), (2,), (3,))
    assert shard_pids(6, 1) == ((0, 1, 2, 3, 4, 5),)
    with pytest.raises(ValueError):
        shard_pids(2, 3)
    with pytest.raises(ValueError):
        shard_pids(2, 0)


def test_multiprocess_decides_the_same_chain_as_single_process():
    """The deploy-smoke equivalence: sharding across processes changes
    where nodes run, not what they decide."""
    spec = RunSpec(n=4, rounds=6, protocol="resilient", eta=2, seed=0)
    single = DeploymentBackend(delta_s=0.01).execute(spec)
    multi = DeploymentBackend(delta_s=0.01, processes=2).execute(spec)

    def decision_set(result):
        return sorted((d.pid, d.round, d.view, d.tip) for d in result.trace.decisions)

    assert decision_set(multi) == decision_set(single)
    assert sorted(multi.trace.tree.tips()) == sorted(single.trace.tree.tips())
    assert multi.extras["processes"] == 2
    assert multi.extras["transport"]["misrouted"] == 0
    # Frames crossed real sockets (the run was actually sharded).
    assert multi.extras["transport"]["frames_sent"] > 0


def test_multiprocess_rejects_adversaries_and_bad_process_counts():
    from repro.sleepy.adversary import NullAdversary

    spec = RunSpec(n=4, rounds=4, adversary=NullAdversary())
    with pytest.raises(ValueError, match="adversar"):
        DeploymentBackend(delta_s=0.01, processes=2).execute(spec)
    with pytest.raises(ValueError, match="processes"):
        DeploymentBackend(delta_s=0.01, processes=0).execute(RunSpec(n=4, rounds=4))


def test_multiprocess_run_with_workload_churn_and_telemetry():
    """A miniature soak: sharded run under churn with client traffic,
    bounded mempools, bounded gossip memory, and merged telemetry."""
    from repro.analysis import check_safety
    from repro.workloads import SubmissionRateWorkload, churn_walk

    spec = RunSpec(
        n=6,
        rounds=10,
        protocol="resilient",
        eta=2,
        seed=1,
        schedule=churn_walk(6, 2, 0.1, seed=1),
        transactions=SubmissionRateWorkload(rate_per_round=4, seed=1),
    )
    backend = DeploymentBackend(
        delta_s=0.01,
        processes=2,
        mempool_capacity=64,
        gossip_seen_horizon=10,
    )
    result = backend.execute(spec)
    assert check_safety(result.trace).ok
    assert result.trace.decisions
    assert result.extras["mempool"]["admitted"] > 0
    wire = result.extras["transport"]
    assert wire["misrouted"] == 0
    # The sharded run rode the batched wire path: frames coalesced into
    # batch writes and fan-out payloads were pickled once, then reused.
    assert 0 < wire["batches_sent"] <= wire["frames_sent"]
    assert wire["batches_received"] > 0
    assert wire["payload_reuses"] > 0
    assert wire["bytes_sent"] > 0
    metrics = result.extras["metrics"]
    assert metrics["counters"]["decisions"] == len(result.trace.decisions)
    assert metrics["histograms"]["decision_latency_s"]["count"] > 0


def test_worker_death_fails_the_run_instead_of_hanging():
    """Kill one worker mid-run: the coordinator must surface a
    RuntimeError (which ``repro soak`` turns into exit code 1), not
    hang on the control channel or report a partial result as success."""
    import asyncio
    import multiprocessing

    spec = RunSpec(n=4, rounds=120, protocol="resilient", eta=2, seed=0)
    backend = DeploymentBackend(delta_s=0.05, processes=2)

    async def scenario():
        before = set(multiprocessing.active_children())
        run = asyncio.ensure_future(backend.execute_async(spec))
        for _ in range(200):
            workers = [p for p in multiprocessing.active_children() if p not in before]
            if len(workers) == 2 and all(p.pid for p in workers):
                break
            await asyncio.sleep(0.05)
        else:
            run.cancel()
            pytest.fail("workers never spawned")
        workers[0].kill()
        with pytest.raises(RuntimeError, match="exited"):
            await run

    asyncio.run(scenario())


def test_single_process_metrics_collector_receives_snapshots():
    from repro.runtime.metrics import SourcedMetrics

    spec = RunSpec(n=4, rounds=6, protocol="resilient", eta=2, seed=0)
    backend = DeploymentBackend(delta_s=0.01)
    collector = SourcedMetrics()
    backend.attach_metrics(collector)
    result = backend.execute(spec)
    merged = collector.merged()
    assert merged["counters"]["decisions"] == len(result.trace.decisions)
    assert "metrics" in result.extras
