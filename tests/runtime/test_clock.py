"""Round clock arithmetic and sleeping."""

import asyncio

import pytest

from repro.runtime.clock import ROUND_FACTOR, RoundClock


def test_round_duration_is_three_delta():
    clock = RoundClock(delta_s=0.05)
    assert ROUND_FACTOR == 3
    assert clock.round_s == pytest.approx(0.15)
    assert clock.start_of(4) == pytest.approx(0.6)


def test_delta_must_be_positive():
    with pytest.raises(ValueError):
        RoundClock(0)


def test_unstarted_clock_rejects_queries():
    clock = RoundClock(0.01)
    assert not clock.started
    with pytest.raises(RuntimeError, match="not started"):
        clock.current_round()


def test_clock_advances_through_rounds():
    async def scenario():
        clock = RoundClock(delta_s=0.01)  # 30 ms rounds
        clock.start()
        first = clock.current_round()
        await clock.sleep_until_round(2)
        second = clock.current_round()
        await clock.sleep_until_receive_phase(2, fraction=0.9)
        return first, second, clock.current_round()

    first, second, third = asyncio.run(scenario())
    assert first == 0
    assert second == 2
    assert third == 2  # still inside round 2, late phase


def test_sleep_until_past_time_returns_immediately():
    async def scenario():
        clock = RoundClock(delta_s=0.01)
        clock.start()
        await clock.sleep_until_round(1)
        start = asyncio.get_running_loop().time()
        await clock.sleep_until_round(0)  # already past
        return asyncio.get_running_loop().time() - start

    assert asyncio.run(scenario()) < 0.01
