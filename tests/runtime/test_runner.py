"""End-to-end deployments on the asyncio substrate."""

import pytest

from repro.analysis.checkers import check_safety
from repro.analysis.metrics import decision_rounds
from repro.runtime.runner import DeploymentConfig, run_deployment
from repro.sleepy.schedule import TableSchedule


def test_deployment_reaches_steady_state_decisions():
    result = run_deployment(
        DeploymentConfig(n=5, rounds=12, delta_s=0.02, protocol="resilient", eta=2, seed=1)
    )
    trace = result.trace
    assert check_safety(trace).ok
    rounds = decision_rounds(trace)
    assert rounds and rounds[0] == 3
    # Steady state: a decision every view (2 rounds).
    assert all(b - a == 2 for a, b in zip(rounds, rounds[1:]))
    assert result.messages_sent > 0
    assert result.wall_seconds < 5.0


def test_deployment_mmr_matches_round_simulator_decisions():
    """Same protocol, same seeds: the deployment's decided logs must
    agree (prefix-wise) with the round simulator's."""
    from repro.harness import TOBRunConfig, run_tob

    deployed = run_deployment(
        DeploymentConfig(n=5, rounds=10, delta_s=0.02, protocol="mmr", seed=0)
    ).trace
    simulated = run_tob(TOBRunConfig(n=5, rounds=10, protocol="mmr", seed=0))
    # Block ids differ only if content differs; with empty payloads and
    # the same keys, the decided chains must be identical.
    deep_d = max((d.tip for d in deployed.decisions), key=deployed.tree.depth)
    deep_s = max((d.tip for d in simulated.decisions), key=simulated.tree.depth)
    path_d = [deployed.tree.get(b).view for b in deployed.tree.path(deep_d)]
    path_s = [simulated.tree.get(b).view for b in simulated.tree.path(deep_s)]
    common = min(len(path_d), len(path_s))
    assert common >= 3
    assert path_d[:common] == path_s[:common]
    assert deployed.tree.path(deep_d)[:common] == simulated.tree.path(deep_s)[:common]


def test_deployment_with_sleep_schedule():
    schedule = TableSchedule(5, {r: {0, 1, 2} for r in range(4, 8)}, default=set(range(5)))
    result = run_deployment(
        DeploymentConfig(
            n=5, rounds=14, delta_s=0.02, protocol="resilient", eta=3, schedule=schedule, seed=2
        )
    )
    trace = result.trace
    assert check_safety(trace).ok
    sleeper = result.nodes[4]
    assert 5 not in sleeper.rounds_participated
    assert 9 in sleeper.rounds_participated


@pytest.mark.slow
def test_deployment_latency_surge_preserves_safety_with_eta():
    """A latency surge (real asynchrony) during two rounds: the resilient
    protocol must come out safe and decide again afterwards."""
    result = run_deployment(
        DeploymentConfig(
            n=5,
            rounds=16,
            delta_s=0.02,
            protocol="resilient",
            eta=4,
            surge=(7, 2, 25.0),
            seed=3,
        )
    )
    trace = result.trace
    assert check_safety(trace).ok
    assert any(d.round > 11 for d in trace.decisions)


def test_deployment_rejects_unknown_protocol():
    with pytest.raises(ValueError, match="unknown protocol"):
        run_deployment(DeploymentConfig(n=3, rounds=2, protocol="tendermint"))


def test_deployment_tolerates_small_clock_skew():
    """Skew well inside the δ budget: full cadence, full safety.

    Rounds are Δ = 3δ wide precisely so that one δ of slack absorbs
    clock offsets plus propagation — a skew of δ/4 must be invisible.
    """
    delta = 0.02
    result = run_deployment(
        DeploymentConfig(
            n=5,
            rounds=12,
            delta_s=delta,
            protocol="resilient",
            eta=3,
            clock_skew_s=delta / 4,
            seed=4,
        )
    )
    trace = result.trace
    assert check_safety(trace).ok
    rounds = decision_rounds(trace)
    assert rounds and rounds[0] == 3
    assert all(b - a == 2 for a, b in zip(rounds, rounds[1:]))
