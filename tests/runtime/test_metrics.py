"""Telemetry: hub counters/gauges/histograms, merging, HTTP scrape."""

import asyncio
import json
import urllib.error
import urllib.request

from repro.runtime.metrics import Histogram, MetricsHub, MetricsServer, SourcedMetrics


def test_hub_counters_gauges_histograms():
    hub = MetricsHub()
    hub.inc("sent")
    hub.inc("sent", 4)
    hub.gauge("depth", 7)
    hub.observe("latency", 0.010)
    hub.observe("latency", 0.020)
    snapshot = hub.snapshot()
    assert snapshot["counters"]["sent"] == 5
    assert snapshot["gauges"]["depth"] == 7
    latency = snapshot["histograms"]["latency"]
    assert latency["count"] == 2
    assert latency["min"] == 0.010 and latency["max"] == 0.020
    assert latency["sum"] == 0.030
    assert json.dumps(snapshot)  # JSON-safe by construction


def test_histogram_merge_is_exact():
    a, b = Histogram(), Histogram()
    for value in (0.001, 0.002, 0.5):
        a.observe(value)
    for value in (0.004, 8.0):
        b.observe(value)
    merged = Histogram()
    merged.merge_summary(a.summary())
    merged.merge_summary(b.summary())
    direct = Histogram()
    for value in (0.001, 0.002, 0.5, 0.004, 8.0):
        direct.observe(value)
    assert merged.summary() == direct.summary()


def test_hub_merge_sums_counters_and_namespaces_gauges():
    worker = MetricsHub()
    worker.inc("decisions", 3)
    worker.gauge("queue", 2)
    hub = MetricsHub()
    hub.merge_snapshot(worker.snapshot(), source="worker0")
    hub.merge_snapshot(worker.snapshot(), source="worker1")
    snapshot = hub.snapshot()
    assert snapshot["counters"]["decisions"] == 6
    assert snapshot["gauges"]["worker0.queue"] == 2
    assert snapshot["gauges"]["worker1.queue"] == 2
    assert snapshot["gauges"]["queue"] == 4  # service-wide sum


def test_sourced_metrics_replaces_per_source():
    sourced = SourcedMetrics()
    hub = MetricsHub()
    hub.inc("decisions", 3)
    sourced.push("worker0", hub.snapshot())
    hub.inc("decisions", 2)  # cumulative snapshot re-pushed
    sourced.push("worker0", hub.snapshot())
    merged = sourced.merged()
    assert merged["counters"]["decisions"] == 5  # replaced, not doubled


def test_metrics_server_serves_snapshot_over_http():
    async def scenario():
        hub = MetricsHub()
        hub.inc("decisions", 9)
        server = MetricsServer(hub)
        await server.start()
        url = server.url
        loop = asyncio.get_running_loop()

        def scrape(path):
            with urllib.request.urlopen(f"http://127.0.0.1:{server.port}{path}", timeout=5) as r:
                return json.loads(r.read().decode("utf-8"))

        body = await loop.run_in_executor(None, scrape, "/metrics")
        root = await loop.run_in_executor(None, scrape, "/")

        def missing():
            try:
                scrape("/nope")
            except urllib.error.HTTPError as exc:
                return exc.code
            return None

        status = await loop.run_in_executor(None, missing)
        await server.stop()
        return url, body, root, status

    url, body, root, status = asyncio.run(scenario())
    assert url.endswith("/metrics")
    assert body["counters"]["decisions"] == 9
    assert root == body
    assert status == 404


def test_metrics_server_provider_override():
    async def scenario():
        sourced = SourcedMetrics()
        hub = MetricsHub()
        hub.inc("x", 1)
        sourced.push("worker0", hub.snapshot())
        server = MetricsServer(MetricsHub(), provider=sourced.merged)
        await server.start()
        loop = asyncio.get_running_loop()

        def scrape():
            with urllib.request.urlopen(server.url, timeout=5) as r:
                return json.loads(r.read().decode("utf-8"))

        body = await loop.run_in_executor(None, scrape)
        await server.stop()
        return body

    assert asyncio.run(scenario())["counters"]["x"] == 1
