"""Every shipped example must run clean from a subprocess."""

import subprocess
import sys
from pathlib import Path

import pytest

from tests.conftest import subprocess_env

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

ENV = subprocess_env()


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(path):
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=180,
        env=ENV,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate their run"
