"""Long-horizon soak: hundreds of rounds of everything at once.

Churn, growing corruption, equivocation, two separated asynchronous
windows with the split-vote attack in the second — safety, resilience,
healing, memory bounds, and assumption accounting all checked on one
500-round run.
"""

from fractions import Fraction

import pytest

from repro.analysis import (
    chain_growth_rate,
    check_asynchrony_resilience,
    check_eta_sleepiness,
    check_healing,
    check_safety,
    max_reorg_depth,
)
from repro.harness import TOBRunConfig, build_simulation, run_simulation
from repro.sleepy.adversary import Adversary, EquivocatingVoteAdversary, SplitVoteAttack
from repro.sleepy.network import MultiWindowAsynchrony
from repro.sleepy.schedule import RandomChurnSchedule

N = 24
ROUNDS = 500
ETA = 4
WINDOW_1 = (99, 2)  # blackout-ish window (attack passive here)
WINDOW_2 = (299, 3)  # split-vote attack window, target round 302


class SoakAdversary(Adversary):
    """Equivocates throughout; corruption grows at round 250; runs the
    split-vote attack inside the second asynchronous window."""

    def __init__(self):
        self._equivocator = EquivocatingVoteAdversary([23])
        self._attack = SplitVoteAttack([21, 22, 23], target_round=302)

    def byzantine(self, r):
        base = frozenset({23})
        if r >= 250:
            base |= {21, 22}
        return base

    def send(self, r, ctx):
        messages = list(self._equivocator.send(r, ctx))
        if r >= 250:
            messages += list(self._attack.send(r, ctx))
        return messages

    def deliver(self, r, receiver, deliverable, ctx):
        if 300 <= r <= 302:
            return self._attack.deliver(r, receiver, deliverable, ctx)
        return deliverable


@pytest.fixture(scope="module")
def soak():
    config = TOBRunConfig(
        n=N,
        rounds=ROUNDS,
        protocol="resilient",
        eta=ETA,
        schedule=RandomChurnSchedule(N, churn_per_round=0.03, seed=13, min_awake=18),
        adversary=SoakAdversary(),
        network=MultiWindowAsynchrony([WINDOW_1, WINDOW_2]),
    )
    sim = build_simulation(config)
    trace = run_simulation(sim, config)
    return sim, trace


def test_soak_safety_end_to_end(soak):
    _, trace = soak
    assert check_safety(trace).ok
    assert max_reorg_depth(trace) == 0


def test_soak_resilience_at_both_windows(soak):
    _, trace = soak
    assert check_asynchrony_resilience(trace, ra=WINDOW_1[0], pi=WINDOW_1[1]).ok
    assert check_asynchrony_resilience(trace, ra=WINDOW_2[0], pi=WINDOW_2[1]).ok


def test_soak_heals_after_each_window(soak):
    _, trace = soak
    assert check_healing(trace, last_async_round=sum(WINDOW_1), k=1).ok
    assert check_healing(trace, last_async_round=sum(WINDOW_2), k=1).ok


def test_soak_sustained_throughput(soak):
    _, trace = soak
    assert chain_growth_rate(trace, start=10) > 0.4
    # Decisions still happening at the very end of the run.
    assert any(d.round >= ROUNDS - 4 for d in trace.decisions)


def test_soak_assumptions_hold_modulo_windows(soak):
    _, trace = soak
    report = check_eta_sleepiness(trace, eta=ETA, beta=Fraction(1, 3))
    assert report.ok, report.failures[:3]


def test_soak_memory_stays_bounded(soak):
    sim, _ = soak
    for process in sim.processes.values():
        assert len(process._votes) <= N * (ETA + 2)
        assert len(process._proposals) <= 4


def test_soak_equivocator_caught(soak):
    sim, trace = soak
    # Within the unexpired window at the end of the run the equivocator
    # kept double-voting; every honest process has current evidence.
    honest_final = trace.rounds[-1].honest
    for pid in honest_final:
        assert 23 in sim.processes[pid].detected_equivocators()
