"""Assumption-driven validation: when Equations 1–5 hold on a trace, the
theorem conclusions must hold on the same trace.

This is the paper's logical structure executed end-to-end: experiments
first *validate* the model assumptions on the executed run, then check
the theorem's conclusion — so a failure pinpoints whether the model or
the protocol broke.
"""

from fractions import Fraction

import pytest

from repro.analysis.assumptions import (
    check_asynchrony_conditions,
    check_churn,
    check_eta_sleepiness,
    check_reduced_failure_ratio,
)
from repro.analysis.checkers import check_asynchrony_resilience, check_healing, check_safety
from repro.harness import run_tob
from repro.workloads.scenarios import blackout_scenario, split_vote_attack_scenario

THIRD = Fraction(1, 3)


@pytest.mark.parametrize("pi,eta", [(1, 2), (2, 4), (3, 4)])
def test_theorem2_pipeline_attack(pi, eta):
    config = split_vote_attack_scenario("resilient", eta=eta, pi=pi, n=20)
    trace = run_tob(config)
    ra = config.meta["ra"]

    # Model assumptions on the executed trace (full participation, so
    # churn is zero and γ = 0 ⇒ β̃ = β).
    assert check_reduced_failure_ratio(trace, THIRD, Fraction(0)).ok
    assert check_churn(trace, eta=eta, gamma=Fraction(0)).ok
    assert check_eta_sleepiness(trace, eta=eta, beta=THIRD).ok
    assert check_asynchrony_conditions(trace, ra=ra, pi=pi, eta=eta, beta=THIRD).ok

    # Theorem conclusions.
    assert check_safety(trace).ok
    assert check_asynchrony_resilience(trace, ra=ra, pi=pi).ok


@pytest.mark.parametrize("pi,eta", [(1, 2), (3, 4)])
def test_theorem3_pipeline_blackout(pi, eta):
    config = blackout_scenario("resilient", eta=eta, pi=pi, ra=9, rounds=32)
    trace = run_tob(config)
    assert check_asynchrony_conditions(trace, ra=9, pi=pi, eta=eta, beta=THIRD).ok
    assert check_safety(trace).ok
    assert check_healing(trace, last_async_round=9 + pi, k=1).ok


def test_assumption_validators_flag_oversized_adversary():
    """Sanity: the pipeline is not vacuous — an oversized adversary is
    caught by the Equation 2 validator."""
    config = split_vote_attack_scenario("resilient", eta=4, pi=1, n=10)
    # n=10 gives 2 Byzantine (ok); rebuild with 4 of 10 corrupted.
    from repro.sleepy.adversary import SplitVoteAttack
    from repro.sleepy.network import WindowedAsynchrony

    config.adversary = SplitVoteAttack(list(range(6, 10)), target_round=10)
    config.network = WindowedAsynchrony(ra=9, pi=1)
    trace = run_tob(config)
    assert not check_reduced_failure_ratio(trace, THIRD, Fraction(0)).ok
