"""Randomized theorem checks: assumptions on the trace ⇒ conclusions.

A fuzzing harness in the paper's logical shape.  Each trial draws a
random schedule, a random asynchronous window, and a fully randomized
adversary (silence, random votes, equivocation, random forks,
back-dated tags, random delivery subsets), runs the η-expiration
protocol, then *validates the paper's assumptions on the executed
trace*.  Whenever they hold, the theorem conclusions must too:

* Equations 1–3 hold on a fully synchronous run       ⇒ safety;
* Equations 4–5 hold around the asynchronous window   ⇒ Definition 5
  resilience and Definition 6 healing.

Trials whose random draw violates the assumptions are *counted* but
assert nothing (the theorems promise nothing there) — except safety
under synchrony with a below-threshold adversary, which has no churn
caveat and must always hold.
"""

import random

from fractions import Fraction

from repro.analysis import (
    check_asynchrony_conditions,
    check_asynchrony_resilience,
    check_eta_sleepiness,
    check_healing,
    check_reduced_failure_ratio,
    check_safety,
)
from repro.harness import TOBRunConfig, run_tob
from repro.sleepy.adversary import RandomAdversary
from repro.sleepy.network import WindowedAsynchrony
from repro.sleepy.schedule import RandomChurnSchedule

THIRD = Fraction(1, 3)


def random_trial(seed: int) -> dict:
    rng = random.Random(seed)
    n = rng.randrange(12, 25)
    eta = rng.randrange(2, 6)
    byz_count = rng.randrange(0, max(1, n // 5))
    rounds = 40
    pi = rng.randrange(1, eta)  # within the Theorem 2 boundary
    ra = rng.randrange(8, 16)
    if ra % 2 == 1:
        ra += 1  # even ra keeps the window ending before a decision round

    config = TOBRunConfig(
        n=n,
        rounds=rounds,
        protocol="resilient",
        eta=eta,
        schedule=RandomChurnSchedule(
            n,
            churn_per_round=rng.choice([0.0, 0.03, 0.08]),
            seed=seed,
            min_awake=max(2, int(0.7 * n)),
        ),
        adversary=RandomAdversary(
            list(range(n - byz_count, n)), seed=seed, drop_probability=rng.random()
        ),
        network=WindowedAsynchrony(ra=ra, pi=pi),
        seed=seed,
    )
    trace = run_tob(config)

    failure_ok = check_reduced_failure_ratio(trace, THIRD, Fraction(0)).ok
    sleepiness_ok = check_eta_sleepiness(trace, eta=eta, beta=THIRD).ok
    async_ok = check_asynchrony_conditions(trace, ra=ra, pi=pi, eta=eta, beta=THIRD).ok
    return {
        "trace": trace,
        "ra": ra,
        "pi": pi,
        "assumptions": failure_ok and sleepiness_ok,
        "async_assumptions": failure_ok and sleepiness_ok and async_ok,
    }


def test_randomized_theorem_conclusions():
    admitted = async_admitted = 0
    for seed in range(25):
        trial = random_trial(seed)
        trace = trial["trace"]
        if trial["assumptions"]:
            admitted += 1
            report = check_safety(trace)
            assert report.ok, (seed, report.conflicts[:2])
        if trial["async_assumptions"]:
            async_admitted += 1
            assert check_asynchrony_resilience(trace, ra=trial["ra"], pi=trial["pi"]).ok, seed
            healing = check_healing(
                trace, last_async_round=trial["ra"] + trial["pi"], k=1, liveness_margin=10
            )
            assert healing.safety_ok, seed
    # The harness is not vacuous: most random draws satisfy the bounds.
    assert admitted >= 15, admitted
    assert async_admitted >= 10, async_admitted


def test_random_adversary_is_deterministic_per_seed():
    a = random_trial(3)["trace"]
    b = random_trial(3)["trace"]
    assert [(d.pid, d.round, d.tip) for d in a.decisions] == [
        (d.pid, d.round, d.tip) for d in b.decisions
    ]
