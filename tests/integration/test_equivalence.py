"""η = 0 is the original protocol: trace-for-trace equivalence.

The strongest implementation oracle in the suite: the resilient
protocol's only deviation from MMR is the vote window, so with η = 0
the two independent code paths must produce *identical* executions
under every workload, adversary, and network condition.
"""

import pytest

from repro.harness import TOBRunConfig, run_tob
from repro.sleepy.adversary import CrashAdversary, EquivocatingVoteAdversary, SplitVoteAttack
from repro.sleepy.network import WindowedAsynchrony
from repro.sleepy.schedule import DiurnalSchedule, RandomChurnSchedule, SpikeSchedule


def decision_tuples(trace):
    return [(d.pid, d.round, d.view, d.tip) for d in trace.decisions]


SCENARIOS = {
    "steady": lambda: {},
    "crash": lambda: {"adversary": CrashAdversary([8, 9])},
    "equivocation": lambda: {"adversary": EquivocatingVoteAdversary([9])},
    "spike": lambda: {"schedule": SpikeSchedule(10, 0.5, start=8, duration=6)},
    "churn": lambda: {"schedule": RandomChurnSchedule(10, 0.1, seed=4, min_awake=6)},
    "diurnal": lambda: {"schedule": DiurnalSchedule(10, period=10, min_fraction=0.6)},
    "attack": lambda: {
        "adversary": SplitVoteAttack([8, 9], target_round=10),
        "network": WindowedAsynchrony(ra=9, pi=1),
    },
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_eta_zero_trace_equals_mmr(name):
    make = SCENARIOS[name]
    base = run_tob(TOBRunConfig(n=10, rounds=24, protocol="mmr", **make()))
    modified = run_tob(TOBRunConfig(n=10, rounds=24, protocol="resilient", eta=0, **make()))
    assert decision_tuples(base) == decision_tuples(modified), name
    # Message activity must match too, not just outcomes.
    base_counts = [(r.votes_sent, r.proposes_sent) for r in base.rounds]
    mod_counts = [(r.votes_sent, r.proposes_sent) for r in modified.rounds]
    assert base_counts == mod_counts, name
