"""Seed-grid regression: safety and liveness across a parameter lattice.

A wide, shallow sweep that would catch any nondeterminism or
seed-sensitive regression: protocols × η × workloads × seeds, asserting
the invariants that must hold at *every* grid point.
"""

import pytest

from repro.analysis import chain_growth_rate, check_safety
from repro.harness import TOBRunConfig, run_tob
from repro.sleepy.adversary import CrashAdversary, EquivocatingVoteAdversary
from repro.sleepy.schedule import RandomChurnSchedule

GRID = [
    (protocol, eta)
    for protocol, etas in (("mmr", [0]), ("resilient", [1, 4]))
    for eta in etas
]


@pytest.mark.parametrize("protocol,eta", GRID)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_grid_point_safety_and_progress(protocol, eta, seed):
    n = 15
    trace = run_tob(
        TOBRunConfig(
            n=n,
            rounds=30,
            protocol=protocol,
            eta=eta,
            schedule=RandomChurnSchedule(n, churn_per_round=0.05, seed=seed, min_awake=10),
            adversary=(
                CrashAdversary([n - 1]) if seed % 2 == 0 else EquivocatingVoteAdversary([n - 1])
            ),
            seed=seed,
        )
    )
    assert check_safety(trace).ok
    assert chain_growth_rate(trace, start=6) > 0.3


@pytest.mark.parametrize("seed", [0, 7, 23])
def test_runs_are_deterministic(seed):
    def run():
        n = 12
        return run_tob(
            TOBRunConfig(
                n=n,
                rounds=20,
                protocol="resilient",
                eta=3,
                schedule=RandomChurnSchedule(n, churn_per_round=0.08, seed=seed, min_awake=8),
                seed=seed,
            )
        )

    a, b = run(), run()
    assert [(d.pid, d.round, d.tip) for d in a.decisions] == [
        (d.pid, d.round, d.tip) for d in b.decisions
    ]
    assert [r.awake for r in a.rounds] == [r.awake for r in b.rounds]
    assert [(r.votes_sent, r.proposes_sent) for r in a.rounds] == [
        (r.votes_sent, r.proposes_sent) for r in b.rounds
    ]
