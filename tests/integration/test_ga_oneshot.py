"""One-shot GA instances driven through the round simulator.

Runs Figure 2's primitive exactly as the paper states it — one send
phase, one receive phase, participation changing between the two — and
checks Definition 4 on the outputs.
"""

import random

from repro.analysis.ga_properties import check_ga_properties
from repro.chain.block import GENESIS_TIP, Block, genesis_block
from repro.chain.tree import BlockTree
from repro.crypto.signatures import KeyRegistry
from repro.protocols.graded_agreement import GAVoteProcess
from repro.sleepy.adversary import NullAdversary, StaticVoteAdversary
from repro.sleepy.network import SynchronousNetwork
from repro.sleepy.schedule import TableSchedule
from repro.sleepy.simulator import Simulation


def shared_tree() -> tuple[BlockTree, list]:
    tree = BlockTree([genesis_block()])
    tips = [genesis_block().block_id]
    parent = genesis_block().block_id
    for i in range(3):
        block = Block(parent=parent, proposer=0, view=i + 1)
        tree.add(block)
        tips.append(block.block_id)
        parent = block.block_id
    fork = Block(parent=genesis_block().block_id, proposer=1, view=1, salt=7)
    tree.add(fork)
    tips.append(fork.block_id)
    return tree, tips


def run_ga_instance(n, inputs, awake_send, awake_receive, adversary=None, seed=0):
    """One GA at round 0: senders awake at round 0, receivers at round 1."""
    tree, _ = shared_tree()
    registry = KeyRegistry(n, run_seed=seed)
    schedule = TableSchedule(n, {0: awake_send, 1: awake_receive}, default=set(range(n)))

    def factory(pid, key, verifier):
        return GAVoteProcess(pid, key, verifier, tree, inputs.get(pid, GENESIS_TIP), ga_round=0)

    sim = Simulation(
        registry, schedule, adversary or NullAdversary(), SynchronousNetwork(), factory
    )
    sim.run(2)
    outputs = {
        pid: process.output
        for pid, process in sim.processes.items()
        if process.output is not None and pid in awake_receive
    }
    return tree, outputs


def test_ga_definition4_with_changing_participation():
    tree, tips = shared_tree()
    rng = random.Random(1)
    for trial in range(20):
        n = rng.randrange(4, 10)
        inputs = {pid: rng.choice(tips) for pid in range(n)}
        awake_send = set(range(n))
        # Up to a third of senders go to sleep before the receive phase;
        # everyone else (including a late waker) receives.
        sleepers = set(rng.sample(sorted(awake_send), rng.randrange(0, n // 3 + 1)))
        awake_receive = awake_send - sleepers
        tree_t, outputs = run_ga_instance(n, inputs, awake_send, awake_receive, seed=trial)
        honest_inputs = {pid: inputs[pid] for pid in awake_send}
        report = check_ga_properties(tree_t, honest_inputs, outputs)
        assert report.ok, (trial, report.failures)


def test_ga_definition4_with_byzantine_voters():
    tree, tips = shared_tree()
    rng = random.Random(2)
    for trial in range(20):
        n = rng.randrange(6, 12)
        byz_count = (n - 1) // 3
        byz = set(range(n - byz_count, n))
        inputs = {pid: rng.choice(tips) for pid in range(n)}
        target = rng.choice(tips)
        adversary = StaticVoteAdversary(sorted(byz), choose_tip=lambda r, ctx: target)
        awake = set(range(n))
        tree_t, outputs = run_ga_instance(
            n, inputs, awake, awake, adversary=adversary, seed=100 + trial
        )
        honest_inputs = {pid: inputs[pid] for pid in awake - byz}
        honest_outputs = {pid: out for pid, out in outputs.items() if pid not in byz}
        report = check_ga_properties(tree_t, honest_inputs, honest_outputs)
        assert report.ok, (trial, report.failures)


def test_ga_m_counts_match_participation():
    tree, tips = shared_tree()
    n = 7
    inputs = {pid: tips[1] for pid in range(n)}
    _, outputs = run_ga_instance(n, inputs, set(range(n)), set(range(n)))
    assert all(out.m == n for out in outputs.values())
    _, outputs = run_ga_instance(n, inputs, set(range(4)), set(range(n)))
    assert all(out.m == 4 for out in outputs.values())
