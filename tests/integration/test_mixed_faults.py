"""Failure-injection runs: everything at once, safety throughout."""

from fractions import Fraction

import pytest

from repro.analysis.assumptions import check_eta_sleepiness
from repro.analysis.checkers import check_healing, check_safety, check_transaction_liveness
from repro.chain.transactions import Transaction
from repro.harness import TOBRunConfig, run_tob
from repro.sleepy.adversary import (
    Adversary,
    CrashAdversary,
    EquivocatingVoteAdversary,
    SplitVoteAttack,
)
from repro.sleepy.network import MultiWindowAsynchrony, WindowedAsynchrony
from repro.sleepy.schedule import RandomChurnSchedule, SpikeSchedule


def test_churn_plus_crash_plus_equivocation_stays_safe_and_live():
    n, eta = 24, 4

    class MixedAdversary(Adversary):
        """Two crashed processes and one equivocator, growing at round 12."""

        def __init__(self):
            self._equivocator = EquivocatingVoteAdversary([23])

        def byzantine(self, r):
            grown = frozenset({21, 22}) if r >= 12 else frozenset()
            return frozenset({23}) | grown

        def send(self, r, ctx):
            return self._equivocator.send(r, ctx)

    tx = Transaction.create(5, 1)
    trace = run_tob(
        TOBRunConfig(
            n=n,
            rounds=50,
            protocol="resilient",
            eta=eta,
            schedule=RandomChurnSchedule(n, churn_per_round=0.04, seed=9, min_awake=18),
            adversary=MixedAdversary(),
            transactions={6: [tx]},
        )
    )
    assert check_safety(trace).ok
    assert check_transaction_liveness(trace, tx.tx_id).ok


def test_attack_during_spike_with_equivocation():
    """Participation spike + asynchronous split-vote attack simultaneously."""
    n = 30
    trace = run_tob(
        TOBRunConfig(
            n=n,
            rounds=30,
            protocol="resilient",
            eta=4,
            schedule=SpikeSchedule(n, drop_fraction=0.3, start=8, duration=8),
            adversary=SplitVoteAttack([27, 28, 29], target_round=12),
            network=WindowedAsynchrony(ra=11, pi=1),
        )
    )
    assert check_safety(trace).ok


def test_repeated_outages_with_healing_between():
    """Two separate asynchronous windows (beyond the paper's single-period
    model, flagged as an extension): heal after each."""
    trace = run_tob(
        TOBRunConfig(
            n=12,
            rounds=44,
            protocol="resilient",
            eta=4,
            adversary=CrashAdversary([11]),
            network=MultiWindowAsynchrony([(9, 2), (25, 3)]),
        )
    )
    assert check_safety(trace).ok
    assert check_healing(trace, last_async_round=11, k=1).ok
    assert check_healing(trace, last_async_round=28, k=1).ok


def test_growing_corruption_mid_run_preserves_safety():
    class GrowingCrash(Adversary):
        def byzantine(self, r):
            if r < 10:
                return frozenset()
            if r < 20:
                return frozenset({10, 11})
            return frozenset({9, 10, 11})

    trace = run_tob(
        TOBRunConfig(n=12, rounds=36, protocol="resilient", eta=3, adversary=GrowingCrash())
    )
    assert check_safety(trace).ok
    assert any(d.round > 24 for d in trace.decisions)


@pytest.mark.parametrize("protocol,eta", [("mmr", 0), ("resilient", 4)])
def test_eta_sleepiness_holds_on_benign_runs(protocol, eta):
    trace = run_tob(TOBRunConfig(n=12, rounds=24, protocol=protocol, eta=eta))
    assert check_eta_sleepiness(trace, eta=eta, beta=Fraction(1, 3)).ok
