"""Digest-keyed publish dedup: the bus never trusts ``message_id``.

Companion to the ingest-layer transplant regression in
``test_ingest.py``: the memoised ``_message_id`` slot on a message is
attacker-supplied state (adversary code constructs the objects it
multicasts), so the dissemination layer recomputes its dedup key from
message *content*.  A transplanted id must neither suppress a distinct
message at publish nor impersonate an honest pending message at
adversarial delivery.
"""

import pytest

from repro.engine.bus import MessageBus
from repro.engine.errors import UndeliverableMessageError
from repro.sleepy.messages import VoteMessage, make_vote


def poisoned(message, stolen_id):
    object.__setattr__(message, "_message_id", stolen_id)
    return message


# ----------------------------------------------------------------------
# Publish-side: transplanted and forged ids
# ----------------------------------------------------------------------
def test_transplanted_id_cannot_suppress_a_distinct_message(registry, genesis):
    """A Byzantine message wearing an honest message's id is *content*
    distinct, so it must still be published (it is junk for the ingest
    layer to reject, not a duplicate for the bus to swallow)."""
    bus = MessageBus(2)
    bus.begin_round(0)
    honest = make_vote(registry, registry.secret_key(0), 0, genesis.block_id)
    other = make_vote(registry, registry.secret_key(1), 0, genesis.block_id)
    poisoned(other, honest.message_id)
    assert other.message_id == honest.message_id  # the lie is in place
    assert bus.publish(honest)
    assert bus.publish(other)  # distinct content: not a duplicate
    assert len(bus) == 2
    assert bus.stats["duplicates"] == 0


def test_forged_fresh_id_cannot_republish_seen_content(registry, genesis):
    """The reverse lie — same content, fabricated 'fresh' id — must
    still be deduplicated."""
    bus = MessageBus(1)
    bus.begin_round(0)
    vote = make_vote(registry, registry.secret_key(0), 0, genesis.block_id)
    clone = VoteMessage(sender=0, round=0, signature=vote.signature, tip=genesis.block_id)
    poisoned(clone, "totally-new-id")
    assert bus.publish(vote)
    assert not bus.publish(clone)
    assert len(bus) == 1
    assert bus.stats["duplicates"] == 1


def test_honest_republish_still_deduplicated(registry, genesis):
    bus = MessageBus(1)
    bus.begin_round(0)
    vote = make_vote(registry, registry.secret_key(0), 0, genesis.block_id)
    assert bus.publish(vote)
    assert not bus.publish(vote)
    assert bus.stats["duplicates"] == 1


# ----------------------------------------------------------------------
# Delivery-side: the same key discipline guards deliver_chosen
# ----------------------------------------------------------------------
def test_transplanted_id_cannot_void_honest_delivery(registry, genesis):
    """If the adversary publishes a message wearing an honest id and
    then 'chooses' it during an asynchronous round, the honest message
    must stay pending — id-keyed matching would have dropped it."""
    bus = MessageBus(1)
    bus.begin_round(0)
    honest = make_vote(registry, registry.secret_key(0), 0, genesis.block_id)
    byz = make_vote(registry, registry.secret_key(1), 0, genesis.block_id)
    poisoned(byz, honest.message_id)
    assert bus.publish(honest)
    assert bus.publish(byz)

    bus.deliver_chosen(0, [byz])
    # The honest vote was not delivered, so it must remain deliverable.
    assert [m.sender for m in bus.deliverable(0)] == [0]
    assert bus.deliver_all(0)[0] is honest


def test_delivery_choice_outside_pending_content_rejected(registry, genesis):
    bus = MessageBus(1)
    bus.begin_round(0)
    vote = make_vote(registry, registry.secret_key(0), 0, genesis.block_id)
    assert bus.publish(vote)
    outsider = make_vote(registry, registry.secret_key(1), 0, genesis.block_id)
    poisoned(outsider, vote.message_id)  # wears a deliverable id...
    with pytest.raises(UndeliverableMessageError):
        bus.deliver_chosen(0, [outsider])  # ...but its content is not pending
    # A failed choice must not corrupt delivery state.
    assert [m.sender for m in bus.deliverable(0)] == [0]


def test_equal_content_distinct_instance_is_choosable(registry, genesis):
    """Choosing by value (a re-built but content-identical instance)
    keeps working — the key is content, not object identity."""
    bus = MessageBus(1)
    bus.begin_round(0)
    vote = make_vote(registry, registry.secret_key(0), 0, genesis.block_id)
    assert bus.publish(vote)
    clone = VoteMessage(sender=0, round=0, signature=vote.signature, tip=genesis.block_id)
    bus.deliver_chosen(0, [clone])
    assert bus.pending_count(0) == 0
