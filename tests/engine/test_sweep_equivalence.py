"""Streamed grids equal the pre-sweep serial loops, cell for cell.

Each converted experiment grid (ISSUE 3) must be proven run-for-run
identical to the serial ``run_tob`` loop it replaced.  This suite
re-states the *pre-PR* loops verbatim (shrunken to n=6 / tiny scale so
the suite stays fast) and pins that :func:`stream_sweep` over the named
grids from :mod:`repro.analysis.batch` produces identical per-cell
verdicts, summary rows, and formatted tables — on the serial path and
across the process pool alike.
"""

from fractions import Fraction

import pytest

from repro.analysis import chain_growth_rate, check_asynchrony_resilience, check_safety
from repro.analysis.batch import (
    figure1_grid,
    figure1_table,
    pi_eta_grid,
    pi_eta_table,
    reduce_figure1,
    reduce_pi_eta,
)
from repro.core.bounds import beta_tilde
from repro.engine.sweep import stream_sweep, sweep_rows
from repro.harness import run_tob
from repro.workloads import churn_scenario, split_vote_attack_scenario

N = 6  # the actual bench grids, shrunken
THIRD = Fraction(1, 3)


# ----------------------------------------------------------------------
# The pre-PR serial loops, verbatim (modulo scale)
# ----------------------------------------------------------------------
def serial_pi_eta_cells(n: int) -> list[dict]:
    """The old ``bench_pi_eta_sweep`` experiment loop, as it was."""
    cells = []
    for eta in (2, 4, 6):
        for pi in range(1, eta + 3):
            target = 10 + pi  # keep the attacked round's pre-window identical
            config = split_vote_attack_scenario(
                "resilient",
                eta=eta,
                pi=pi,
                n=n,
                target_round=target if target % 2 == 0 else target + 1,
            )
            trace = run_tob(config)
            cells.append(
                {
                    "eta": eta,
                    "pi": pi,
                    "guaranteed": pi < eta,
                    "safe": check_safety(trace).ok,
                    "resilient": check_asynchrony_resilience(
                        trace, ra=config.meta["ra"], pi=pi
                    ).ok,
                }
            )
    return cells


def serial_figure1_outcomes(n: int, eta: int, rounds: int, gammas) -> list[dict]:
    """The old ``bench_figure1`` empirical probe loop, as it was."""
    outcomes = []
    for gamma_f in gammas:
        gamma = Fraction(gamma_f).limit_denominator(100)
        allowed = beta_tilde(THIRD, gamma)
        byz = max(0, int(allowed * n) - 1)  # strictly below β̃·|O_r|
        config = churn_scenario(
            "resilient", eta=eta, gamma=float(gamma), n=n, rounds=rounds, byzantine=byz, seed=3
        )
        trace = run_tob(config)
        outcomes.append(
            {
                "gamma": gamma_f,
                "allowed": allowed,
                "byz": byz,
                "growth": chain_growth_rate(trace, start=8),
                "safe": check_safety(trace).ok,
            }
        )
    return outcomes


# ----------------------------------------------------------------------
# Equivalence pins
# ----------------------------------------------------------------------
def test_pi_eta_grid_matches_serial_loop_cell_for_cell():
    serial = serial_pi_eta_cells(N)
    streamed = sweep_rows(pi_eta_grid(n=N), reduce_pi_eta, max_workers=0)
    assert streamed == serial
    # The rendered table is byte-identical too.
    assert pi_eta_table(streamed, n=N) == pi_eta_table(serial, n=N)


@pytest.mark.slow
def test_pi_eta_grid_is_pool_invariant():
    """The process pool changes wall-clock, never verdicts: streamed
    outcomes arrive in grid order with identical rows and params."""
    serial = list(stream_sweep(pi_eta_grid(n=N), reducer=reduce_pi_eta, max_workers=0))
    pooled = list(
        stream_sweep(pi_eta_grid(n=N), reducer=reduce_pi_eta, max_workers=2, window=7, chunksize=2)
    )
    assert [o.row for o in pooled] == [o.row for o in serial]
    assert [o.index for o in pooled] == list(range(len(serial)))
    assert [(o.params["eta"], o.params["pi"]) for o in pooled] == [
        (o.params["eta"], o.params["pi"]) for o in serial
    ]


def test_figure1_grid_matches_serial_loop_at_tiny_scale():
    n, eta, rounds, gammas = 12, 4, 24, (0.0, 0.10)  # the CI smoke scale
    serial = serial_figure1_outcomes(n, eta, rounds, gammas)
    streamed = sweep_rows(
        figure1_grid(n=n, eta=eta, rounds=rounds, gammas=gammas), reduce_figure1, max_workers=0
    )
    assert streamed == serial
    assert figure1_table(streamed, n=n) == figure1_table(serial, n=n)


@pytest.mark.slow
def test_figure1_grid_is_pool_invariant():
    n, eta, rounds, gammas = 12, 4, 24, (0.0, 0.10)
    serial = serial_figure1_outcomes(n, eta, rounds, gammas)
    pooled = sweep_rows(
        figure1_grid(n=n, eta=eta, rounds=rounds, gammas=gammas), reduce_figure1, max_workers=2
    )
    assert pooled == serial
