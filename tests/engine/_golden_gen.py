"""Regenerates ``golden_traces.json`` (run manually, never from pytest).

The golden file was produced by the *pre-engine* simulator (flat message
pool, per-pid cursors) so that ``test_equivalence_refactor.py`` can
assert the refactored engine reproduces the exact same seeded
executions.  Re-running this script against the current code overwrites
the fixture with the current behaviour — only do that deliberately,
when a semantic change is intended and reviewed.

Usage::

    PYTHONPATH=src python tests/engine/_golden_gen.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).parent / "golden_traces.json"


def golden_scenarios():
    """name -> TOBRunConfig for every pinned seeded execution."""
    from repro.harness import TOBRunConfig
    from repro.sleepy.adversary import (
        CrashAdversary,
        EquivocatingVoteAdversary,
        RandomAdversary,
        SplitVoteAttack,
        WithholdingAdversary,
    )
    from repro.sleepy.network import WindowedAsynchrony
    from repro.sleepy.schedule import RandomChurnSchedule, SpikeSchedule
    from repro.workloads.transactions import constant_rate_stream

    return {
        "steady-resilient": TOBRunConfig(n=10, rounds=24, protocol="resilient", eta=2, seed=0),
        "steady-mmr": TOBRunConfig(n=10, rounds=24, protocol="mmr", seed=1),
        "crash": TOBRunConfig(
            n=10, rounds=24, protocol="resilient", eta=2, adversary=CrashAdversary([8, 9]), seed=2
        ),
        "equivocation": TOBRunConfig(
            n=10,
            rounds=24,
            protocol="resilient",
            eta=2,
            adversary=EquivocatingVoteAdversary([9]),
            seed=3,
        ),
        "split-vote-attack-mmr": TOBRunConfig(
            n=10,
            rounds=24,
            protocol="mmr",
            adversary=SplitVoteAttack([8, 9], target_round=10),
            network=WindowedAsynchrony(ra=9, pi=1),
            seed=0,
        ),
        "split-vote-attack-resilient": TOBRunConfig(
            n=10,
            rounds=24,
            protocol="resilient",
            eta=4,
            adversary=SplitVoteAttack([8, 9], target_round=10),
            network=WindowedAsynchrony(ra=9, pi=1),
            seed=0,
        ),
        "blackout": TOBRunConfig(
            n=8,
            rounds=20,
            protocol="resilient",
            eta=3,
            adversary=WithholdingAdversary(),
            network=WindowedAsynchrony(ra=6, pi=3),
            seed=4,
        ),
        "random-adversary-async": TOBRunConfig(
            n=12,
            rounds=30,
            protocol="resilient",
            eta=3,
            adversary=RandomAdversary([10, 11], seed=5),
            network=WindowedAsynchrony(ra=10, pi=4),
            seed=5,
        ),
        "churn-spike": TOBRunConfig(
            n=12,
            rounds=30,
            protocol="resilient",
            eta=3,
            schedule=RandomChurnSchedule(12, 0.1, seed=6, min_awake=7),
            seed=6,
        ),
        "sleep-spike-mmr": TOBRunConfig(
            n=10,
            rounds=24,
            protocol="mmr",
            schedule=SpikeSchedule(10, 0.5, start=8, duration=6),
            seed=7,
        ),
        "transactions": TOBRunConfig(
            n=8,
            rounds=20,
            protocol="resilient",
            eta=2,
            transactions=constant_rate_stream(rate_per_round=3, rounds=20, seed=8),
            seed=8,
        ),
    }


def trace_digest(trace) -> dict:
    """A canonical, JSON-stable digest of one trace."""
    decisions = [[d.pid, d.round, d.view, d.tip] for d in trace.decisions]
    rounds = [
        [
            rec.round,
            sorted(rec.awake),
            sorted(rec.honest),
            sorted(rec.byzantine),
            rec.asynchronous,
            rec.votes_sent,
            rec.proposes_sent,
            rec.other_sent,
        ]
        for rec in trace.rounds
    ]
    rounds_blob = json.dumps(rounds, separators=(",", ":")).encode()
    return {
        "decisions": decisions,
        "rounds_sha256": hashlib.sha256(rounds_blob).hexdigest(),
        "horizon": trace.horizon,
        "n_blocks": len(trace.tree),
    }


def main() -> None:
    from repro.harness import run_tob

    golden = {name: trace_digest(run_tob(config)) for name, config in golden_scenarios().items()}
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(golden)} scenarios)")


if __name__ == "__main__":
    main()
