"""Every module must be importable first, in a fresh interpreter.

The engine and sleepy packages reference each other (the simulator sits
on the engine's bus; the engine's spec speaks sleepy's vocabulary), and
the cycle is kept latent by lazy imports (``repro.sleepy.Simulation``,
``repro.engine`` backends).  A regression — e.g. an eager import added
on either side — only shows up for particular import *entry points*, so
each candidate entry point is probed in its own subprocess.
"""

import subprocess
import sys

import pytest

from tests.conftest import subprocess_env

ENTRY_POINTS = [
    "repro",
    "repro.engine",
    "repro.engine.bus",
    "repro.engine.backend",
    "repro.engine.registry",
    "repro.engine.deploy_backend",
    "repro.engine.ingest",
    "repro.engine.sweep",
    "repro.harness",
    "repro.analysis.batch",
    "repro.sleepy",
    "repro.sleepy.simulator",
    "repro.protocols.tob_base",
    "repro.protocols.graded_agreement",
    "repro.core.resilient_tob",
    "repro.core.expiration",
    "repro.finality",
    "repro.runtime",
    "repro.workloads",
    "repro.cli",
]


@pytest.mark.parametrize("module", ENTRY_POINTS)
def test_module_imports_first(module):
    result = subprocess.run(
        [sys.executable, "-c", f"import {module}"],
        capture_output=True,
        text=True,
        timeout=60,
        env=subprocess_env(),
    )
    assert result.returncode == 0, f"import {module} failed:\n{result.stderr[-2000:]}"


def test_lazy_simulation_export_resolves():
    result = subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.sleepy import Simulation; print(Simulation.__name__)",
        ],
        capture_output=True,
        text=True,
        timeout=60,
        env=subprocess_env(),
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip() == "Simulation"
