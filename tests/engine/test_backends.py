"""One spec, two substrates: the ExecutionBackend contract.

These tests exercise what the unified engine opened up: transaction
workloads and adversaries on the deployment substrate, asynchronous
periods described once and realised on both, and protocol dispatch
through the registry everywhere.
"""

import pytest

from repro.analysis.checkers import check_safety
from repro.engine.backend import run_spec
from repro.engine.conditions import NetworkConditions, conditions_from_network
from repro.engine.deploy_backend import DeploymentBackend
from repro.engine.sim_backend import SimulationBackend
from repro.engine.spec import RunSpec
from repro.sleepy.adversary import CrashAdversary, EquivocatingVoteAdversary
from repro.sleepy.network import (
    MultiWindowAsynchrony,
    SynchronousNetwork,
    WindowedAsynchrony,
)
from repro.workloads import surge_scenario, throughput_scenario

FAST_DEPLOY = DeploymentBackend(delta_s=0.02)


def decided_payload_count(trace) -> int:
    deepest = max((d.tip for d in trace.decisions), key=trace.tree.depth, default=None)
    if deepest is None:
        return 0
    return sum(len(trace.tree.get(b).payload) for b in trace.tree.path(deepest))


def test_run_spec_defaults_to_the_simulator():
    result = run_spec(RunSpec(n=4, rounds=8))
    assert result.backend == "simulator"
    assert result.trace.decisions
    assert result.messages_sent > 0
    assert result.wall_seconds >= 0.0


def test_throughput_scenario_runs_on_both_substrates():
    spec = throughput_scenario(n=5, rounds=12, rate_per_round=4, seed=3)
    sim = run_spec(spec, SimulationBackend())
    deploy = run_spec(spec, FAST_DEPLOY)
    for result in (sim, deploy):
        assert check_safety(result.trace).ok
        # The client load actually lands in decided blocks.
        assert decided_payload_count(result.trace) > 0
    assert deploy.backend == "deployment"
    assert deploy.trace.meta["deployment"] is True


def test_surge_scenario_realised_on_both_substrates():
    spec = surge_scenario(n=5, rounds=14, ra=5, pi=2, eta=4, seed=2)
    sim = run_spec(spec, SimulationBackend())
    deploy = run_spec(spec, FAST_DEPLOY)
    for result in (sim, deploy):
        trace = result.trace
        assert check_safety(trace).ok
        assert [r.round for r in trace.rounds if r.asynchronous] == [6, 7]
        # Healing: decisions resume after the period ends.
        assert any(d.round > 7 for d in trace.decisions)


def test_crash_adversary_carves_corrupted_nodes_out_of_deployments():
    spec = RunSpec(n=5, rounds=12, protocol="resilient", eta=2, adversary=CrashAdversary([4]), seed=1)
    result = run_spec(spec, FAST_DEPLOY)
    trace = result.trace
    assert check_safety(trace).ok
    assert trace.decisions
    for rec in trace.rounds:
        assert rec.byzantine == frozenset({4})
        assert 4 not in rec.honest and 4 in rec.awake
    # The corrupted node never executed the honest protocol.
    assert result.extras["nodes"][4].rounds_participated == []
    assert all(d.pid != 4 for d in trace.decisions)


def test_non_growing_adversary_releases_nodes_mid_deployment():
    """A node corrupted for a prefix of the run must resume the honest
    protocol — including the receive phase of its last corrupted round
    (receivers are ``O_{r+1} \\ B_{r+1}``, exactly as in the simulator)."""

    class TemporaryCrash(CrashAdversary):
        growing = False

        def byzantine(self, round_number):
            return frozenset({4}) if round_number < 5 else frozenset()

    spec = RunSpec(n=5, rounds=14, protocol="resilient", eta=2, adversary=TemporaryCrash([4]), seed=6)
    result = run_spec(spec, FAST_DEPLOY)
    trace = result.trace
    assert check_safety(trace).ok
    assert all(rec.byzantine == (frozenset({4}) if rec.round < 5 else frozenset()) for rec in trace.rounds)
    node = result.extras["nodes"][4]
    # Honest again from round 5 on: sends every round, and its round-4
    # receive phase (it is in O_5 \ B_5) caught it up on the backlog.
    assert node.rounds_participated == list(range(5, 14))
    assert any(d.pid == 4 for d in trace.decisions)


def test_equivocating_adversary_sends_through_the_deployment():
    spec = RunSpec(
        n=6, rounds=12, protocol="resilient", eta=2, adversary=EquivocatingVoteAdversary([5]), seed=4
    )
    result = run_spec(spec, FAST_DEPLOY)
    trace = result.trace
    assert check_safety(trace).ok
    assert trace.decisions
    # The adversary's equivocating proposals were actually multicast:
    # round records count two proposes from pid 5 on top of the honest ones.
    even_rounds = [r for r in trace.rounds if r.round >= 2 and r.round % 2 == 0]
    assert any(rec.proposes_sent > len(rec.honest) for rec in even_rounds)


def test_conditions_translate_simulator_network_models():
    assert conditions_from_network(SynchronousNetwork()).periods == ()
    (p,) = conditions_from_network(WindowedAsynchrony(ra=3, pi=2)).periods
    assert (p.ra, p.pi) == (3, 2)
    multi = conditions_from_network(MultiWindowAsynchrony([(2, 1), (8, 2)]))
    assert [(p.ra, p.pi) for p in multi.periods] == [(2, 1), (8, 2)]
    with pytest.raises(ValueError, match="NetworkConditions"):
        conditions_from_network(object())  # type: ignore[arg-type]


def test_conditions_round_trip_through_network_model():
    conditions = NetworkConditions.window(ra=4, pi=3)
    model = conditions.network_model()
    horizon = 12
    assert {r for r in range(horizon) if model.is_asynchronous(r)} == set(
        conditions.async_rounds(horizon)
    )


def test_spec_rejects_both_network_and_conditions():
    with pytest.raises(ValueError, match="not both"):
        RunSpec(n=2, rounds=2, network=SynchronousNetwork(), conditions=NetworkConditions())
