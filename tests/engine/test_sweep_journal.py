"""The sweep checkpoint journal: crash/resume equivalence and digests.

The contract under test (ISSUE 4): a sweep interrupted after k cells
and resumed via its journal yields rows bit-identical to an
uninterrupted run, with no cell executed twice; a changed grid, seed,
param, or backend identity invalidates stale rows; and a torn final
JSONL line is discarded, never fatal.  Both substrates are covered —
the round simulator (serial and pooled) and the real-time deployment
(serial lane).
"""

import itertools
import json
from fractions import Fraction

import pytest

from repro.engine.backend import ExecutionBackend
from repro.engine.sim_backend import SimulationBackend
from repro.engine.spec import RunSpec, canonical_form, stable_digest
from repro.engine.sweep import (
    SweepJournal,
    SweepJournalMismatch,
    SweepSpec,
    stream_sweep,
    sweep_rows,
)


# ----------------------------------------------------------------------
# A tiny grid + reducer (module-level: process pools import these)
# ----------------------------------------------------------------------
def _spec(*, protocol, seed, n, rounds, **_):
    return RunSpec(n=n, rounds=rounds, protocol=protocol, seed=seed)


def _reduce(result, params):
    # Exercises every journaled type: scalars, Fraction, set, tuple.
    return {
        "protocol": params["protocol"],
        "seed": params["seed"],
        "decisions": len(result.trace.decisions),
        "growth": Fraction(len(result.trace.decisions), max(1, result.trace.horizon)),
        "decided_rounds": {d.round for d in result.trace.decisions},
        "shape": (result.trace.n, result.trace.horizon),
    }


def tiny_grid(n=4, rounds=8, seeds=(0, 1)):
    return SweepSpec(
        axes={"protocol": ("mmr", "resilient"), "seed": tuple(seeds)},
        base={"n": n, "rounds": rounds},
        factory=_spec,
    )


class CountingBackend(ExecutionBackend):
    """Counts executions; optionally crashes after ``fail_after`` cells.

    Instrumentation only, so its journal identity delegates to the
    wrapped backend — rows journaled through the wrapper stay valid for
    the bare backend and vice versa (and a crash-configured wrapper
    keys identically to a fresh one).
    """

    name = "counting"

    def __init__(self, inner=None, fail_after=None):
        self.inner = inner if inner is not None else SimulationBackend()
        self.poolable = self.inner.poolable
        self.fail_after = fail_after
        self.calls = 0

    def execute(self, spec):
        if self.fail_after is not None and self.calls >= self.fail_after:
            raise RuntimeError("simulated crash")
        self.calls += 1
        return self.inner.execute(spec)

    def identity(self):
        return self.inner.identity()


class TaggedBackend(CountingBackend):
    """A backend whose journal identity is an explicit tag (tests only)."""

    def __init__(self, tag):
        super().__init__()
        self.tag = tag

    def identity(self):
        return ["tagged", self.tag]


def journal_entries(path):
    entries = []
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # torn fragments are isolated lines, skipped like load()
    return entries


def journal_keys(path):
    return [entry["key"] for entry in journal_entries(path) if "key" in entry]


# ----------------------------------------------------------------------
# Crash → resume equivalence (the tentpole contract)
# ----------------------------------------------------------------------
def test_crash_mid_sweep_resume_is_bit_identical_and_runs_each_cell_once(tmp_path):
    grid = tiny_grid()
    reference = sweep_rows(grid, _reduce, max_workers=0)
    total = len(grid.cells())

    path = tmp_path / "sweep.jsonl"
    crashing = CountingBackend(fail_after=2)
    survived = []
    with pytest.raises(RuntimeError, match="simulated crash"):
        for outcome in stream_sweep(
            grid,
            reducer=_reduce,
            backend=crashing,
            max_workers=0,
            journal=SweepJournal(path, grid="tiny"),
        ):
            survived.append(outcome.row)
    assert len(survived) == 2 and crashing.calls == 2
    # The journal survived the crash with exactly the finished cells.
    assert len(journal_keys(path)) == 2

    resumed_backend = CountingBackend()
    resumed = sweep_rows(
        grid,
        _reduce,
        backend=resumed_backend,
        max_workers=0,
        journal=SweepJournal(path, grid="tiny"),
        resume=True,
    )
    assert resumed == reference  # bit-identical rows, Fractions/sets included
    assert resumed_backend.calls == total - 2  # no cell executed twice
    keys = journal_keys(path)
    assert len(keys) == total and len(set(keys)) == total


def test_resumed_outcomes_preserve_cell_order_params_and_indices(tmp_path):
    grid = tiny_grid()
    path = tmp_path / "sweep.jsonl"
    # Journal the first two cells, then abandon the generator mid-sweep.
    stream = stream_sweep(
        grid, reducer=_reduce, max_workers=0, journal=SweepJournal(path, grid="tiny")
    )
    list(itertools.islice(stream, 2))
    stream.close()  # flushes and closes the journal

    serial = list(stream_sweep(grid, reducer=_reduce, max_workers=0))
    resumed = list(
        stream_sweep(
            grid,
            reducer=_reduce,
            max_workers=0,
            journal=SweepJournal(path, grid="tiny"),
            resume=True,
        )
    )
    assert [o.index for o in resumed] == [o.index for o in serial]
    assert [o.params for o in resumed] == [o.params for o in serial]
    assert [o.row for o in resumed] == [o.row for o in serial]
    assert all(o.result is None for o in resumed)


@pytest.mark.slow
def test_pooled_resume_matches_uninterrupted_pooled_run(tmp_path):
    grid = tiny_grid(n=6, rounds=12)
    reference = sweep_rows(grid, _reduce, max_workers=0)
    path = tmp_path / "sweep.jsonl"

    interrupted = stream_sweep(
        grid,
        reducer=_reduce,
        max_workers=2,
        window=2,
        journal=SweepJournal(path, grid="tiny"),
    )
    list(itertools.islice(interrupted, 2))
    interrupted.close()
    journaled_before = len(journal_keys(path))
    assert journaled_before >= 2

    resumed = sweep_rows(
        grid,
        _reduce,
        max_workers=2,
        window=2,
        journal=SweepJournal(path, grid="tiny"),
        resume=True,
    )
    assert resumed == reference
    # Cached keys are never re-journaled: every key appears exactly once.
    keys = journal_keys(path)
    assert len(keys) == len(set(keys)) == len(grid.cells())


# ----------------------------------------------------------------------
# Digest invalidation: changed content must re-run, not reuse
# ----------------------------------------------------------------------
def test_changed_seed_invalidates_journaled_rows(tmp_path):
    path = tmp_path / "sweep.jsonl"
    sweep_rows(tiny_grid(seeds=(0, 1)), _reduce, max_workers=0, journal=SweepJournal(path, grid="g"))
    backend = CountingBackend()
    sweep_rows(
        tiny_grid(seeds=(2, 3)),
        _reduce,
        backend=backend,
        max_workers=0,
        journal=SweepJournal(path, grid="g"),
        resume=True,
    )
    assert backend.calls == 4  # every cell is a cache miss


def test_changed_params_invalidate_and_overlap_is_reused(tmp_path):
    path = tmp_path / "sweep.jsonl"
    sweep_rows(tiny_grid(rounds=8), _reduce, max_workers=0, journal=SweepJournal(path, grid="g"))
    backend = CountingBackend()
    rows = sweep_rows(
        tiny_grid(rounds=10),  # rounds changed: every spec digest changes
        _reduce,
        backend=backend,
        max_workers=0,
        journal=SweepJournal(path, grid="g"),
        resume=True,
    )
    assert backend.calls == 4
    assert rows == sweep_rows(tiny_grid(rounds=10), _reduce, max_workers=0)


def test_mismatched_backend_or_grid_name_rejects_the_resume(tmp_path):
    """A journal written for one grid/backend must never be resumed by
    another — the manifest header rejects the mix outright."""
    path = tmp_path / "sweep.jsonl"
    grid = tiny_grid()
    sweep_rows(
        grid,
        _reduce,
        backend=TaggedBackend("a"),
        max_workers=0,
        journal=SweepJournal(path, grid="g"),
    )
    before = path.read_text()
    # Same grid, different backend identity: rejected, file untouched.
    other = TaggedBackend("b")
    with pytest.raises(SweepJournalMismatch, match="backend"):
        sweep_rows(
            grid, _reduce, backend=other, max_workers=0,
            journal=SweepJournal(path, grid="g"), resume=True,
        )
    assert other.calls == 0 and path.read_text() == before
    # Same backend identity, different grid name: rejected, file untouched.
    renamed = TaggedBackend("a")
    with pytest.raises(SweepJournalMismatch, match="grid"):
        sweep_rows(
            grid, _reduce, backend=renamed, max_workers=0,
            journal=SweepJournal(path, grid="other"), resume=True,
        )
    assert renamed.calls == 0 and path.read_text() == before
    # Identical identity + grid name: everything is reused.
    cached = TaggedBackend("a")
    sweep_rows(
        grid, _reduce, backend=cached, max_workers=0,
        journal=SweepJournal(path, grid="g"), resume=True,
    )
    assert cached.calls == 0


# ----------------------------------------------------------------------
# The manifest header
# ----------------------------------------------------------------------
def test_manifest_is_the_first_line_and_records_grid_backend_version(tmp_path):
    import repro
    from repro.engine.spec import stable_digest

    path = tmp_path / "sweep.jsonl"
    backend = TaggedBackend("a")
    sweep_rows(tiny_grid(), _reduce, backend=backend, max_workers=0,
               journal=SweepJournal(path, grid="g"))
    first = journal_entries(path)[0]
    assert first == {
        "manifest": {
            "grid": "g",
            "backend": stable_digest(backend.identity()),
            "version": repro.__version__,
        }
    }
    assert SweepJournal(path, grid="g").load_manifest() == first["manifest"]


def test_changed_code_version_rejects_the_resume(tmp_path, monkeypatch):
    path = tmp_path / "sweep.jsonl"
    sweep_rows(tiny_grid(), _reduce, max_workers=0, journal=SweepJournal(path, grid="g"))
    import repro

    monkeypatch.setattr(repro, "__version__", "0.0.0-other")
    with pytest.raises(SweepJournalMismatch, match="version"):
        sweep_rows(
            tiny_grid(), _reduce, max_workers=0,
            journal=SweepJournal(path, grid="g"), resume=True,
        )


def test_rows_without_a_manifest_reject_the_resume(tmp_path):
    """Pre-manifest journals (rows of unknown provenance) must re-run
    explicitly, not resume silently."""
    path = tmp_path / "sweep.jsonl"
    grid = tiny_grid()
    sweep_rows(grid, _reduce, max_workers=0, journal=SweepJournal(path, grid="g"))
    # Strip the manifest header, keeping the rows.
    lines = [line for line in path.read_text().splitlines() if "manifest" not in line]
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(SweepJournalMismatch, match="manifest"):
        sweep_rows(
            grid, _reduce, max_workers=0,
            journal=SweepJournal(path, grid="g"), resume=True,
        )


def test_resume_auto_restarts_a_stale_journal_instead_of_failing(tmp_path):
    """The always-resume bench lane: a journal from another grid (or
    backend, or version) is truncated and rebuilt, not a crash."""
    path = tmp_path / "sweep.jsonl"
    grid = tiny_grid()
    sweep_rows(grid, _reduce, max_workers=0, journal=SweepJournal(path, grid="old-grid"))
    backend = CountingBackend()
    rows = sweep_rows(
        grid, _reduce, backend=backend, max_workers=0,
        journal=SweepJournal(path, grid="new-grid"), resume="auto",
    )
    assert rows == sweep_rows(grid, _reduce, max_workers=0)
    assert backend.calls == len(grid.cells())  # full fresh run
    # The rebuilt journal carries the new grid's manifest and rows only.
    assert SweepJournal(path, grid="new-grid").load_manifest()["grid"] == "new-grid"
    assert len(journal_keys(path)) == len(grid.cells())
    # And a matching journal still resumes with zero re-execution.
    cached = CountingBackend()
    sweep_rows(
        grid, _reduce, backend=cached, max_workers=0,
        journal=SweepJournal(path, grid="new-grid"), resume="auto",
    )
    assert cached.calls == 0


def test_torn_manifest_with_no_rows_resumes_as_a_fresh_journal(tmp_path):
    """A crash mid-header (partial manifest bytes, zero rows) must not
    strand the resume flow: nothing is reusable, so the file restarts
    clean with a fresh first-line manifest."""
    path = tmp_path / "sweep.jsonl"
    path.write_text('{"manifest": {"grid": "g", "ba')  # torn mid-flush
    grid = tiny_grid()
    rows = sweep_rows(
        grid, _reduce, max_workers=0,
        journal=SweepJournal(path, grid="g"), resume=True,
    )
    assert rows == sweep_rows(grid, _reduce, max_workers=0)
    entries = journal_entries(path)  # every line readable again
    assert "manifest" in entries[0]
    assert len(journal_keys(path)) == len(grid.cells())


def test_empty_or_missing_journal_resumes_as_a_fresh_run(tmp_path):
    grid = tiny_grid()
    reference = sweep_rows(grid, _reduce, max_workers=0)
    missing = sweep_rows(
        grid, _reduce, max_workers=0,
        journal=SweepJournal(tmp_path / "missing.jsonl", grid="g"), resume=True,
    )
    empty_path = tmp_path / "empty.jsonl"
    empty_path.touch()  # the CI kill-before-first-open case
    empty = sweep_rows(
        grid, _reduce, max_workers=0,
        journal=SweepJournal(empty_path, grid="g"), resume=True,
    )
    assert missing == reference and empty == reference
    # Both journals gained a manifest plus every row.
    for path in (tmp_path / "missing.jsonl", empty_path):
        assert "manifest" in journal_entries(path)[0]
        assert len(journal_keys(path)) == len(grid.cells())


# ----------------------------------------------------------------------
# Journal-file robustness
# ----------------------------------------------------------------------
def test_torn_final_line_is_discarded_and_only_that_cell_reruns(tmp_path):
    path = tmp_path / "sweep.jsonl"
    grid = tiny_grid()
    reference = sweep_rows(grid, _reduce, max_workers=0, journal=SweepJournal(path, grid="g"))
    # Tear the last line mid-JSON, as a crash between write and fsync would.
    text = path.read_text()
    path.write_text(text[: len(text) - 20])

    backend = CountingBackend()
    rows = sweep_rows(
        grid, _reduce, backend=backend, max_workers=0,
        journal=SweepJournal(path, grid="g"), resume=True,
    )
    assert backend.calls == 1  # exactly the torn cell
    assert rows == reference
    # Appending closed the torn fragment on its own line instead of
    # merging the fresh row into it: the repaired journal is fully
    # readable and a second resume re-executes nothing.
    assert len(journal_keys(path)) == len(grid.cells())
    again = CountingBackend()
    assert reference == sweep_rows(
        grid, _reduce, backend=again, max_workers=0,
        journal=SweepJournal(path, grid="g"), resume=True,
    )
    assert again.calls == 0


def test_foreign_garbage_lines_are_skipped(tmp_path):
    path = tmp_path / "sweep.jsonl"
    grid = tiny_grid()
    reference = sweep_rows(grid, _reduce, max_workers=0, journal=SweepJournal(path, grid="g"))
    with path.open("a") as fh:
        fh.write("not json at all\n")
        fh.write('{"row": "no key field"}\n')
        fh.write('{"key": "zzz", "row": {"__unknown_tag__": 1}}\n')
    backend = CountingBackend()
    rows = sweep_rows(
        grid, _reduce, backend=backend, max_workers=0,
        journal=SweepJournal(path, grid="g"), resume=True,
    )
    assert backend.calls == 0
    assert rows == reference


def test_without_resume_an_existing_journal_is_truncated(tmp_path):
    path = tmp_path / "sweep.jsonl"
    grid = tiny_grid()
    sweep_rows(grid, _reduce, max_workers=0, journal=SweepJournal(path, grid="g"))
    backend = CountingBackend()
    sweep_rows(
        grid, _reduce, backend=backend, max_workers=0, journal=SweepJournal(path, grid="g")
    )
    assert backend.calls == 4  # resume=False: a fresh journal, a fresh run
    assert len(journal_keys(path)) == 4


def test_journal_requires_a_reducer():
    with pytest.raises(ValueError, match="reducer"):
        list(stream_sweep(tiny_grid(), journal="unused.jsonl"))


def test_resume_without_journal_is_ignored():
    rows = sweep_rows(tiny_grid(), _reduce, max_workers=0, resume=True)
    assert rows == sweep_rows(tiny_grid(), _reduce, max_workers=0)


def test_rows_the_journal_cannot_replay_fail_loudly(tmp_path):
    def bad_reducer(result, params):
        return {"simulation": object()}

    with pytest.raises(TypeError, match="journal"):
        list(
            stream_sweep(
                tiny_grid(),
                reducer=bad_reducer,
                max_workers=0,
                journal=SweepJournal(tmp_path / "j.jsonl", grid="g"),
            )
        )


# ----------------------------------------------------------------------
# The deployment substrate: serial lane, journaled the same way
# ----------------------------------------------------------------------
def deployment_grid():
    from repro.analysis.batch import deploy_smoke_grid

    return deploy_smoke_grid(n=4, rounds=6, etas=(2, 3))


def deployment_backend():
    from repro.engine.deploy_backend import DeploymentBackend

    return DeploymentBackend(delta_s=0.008)


def deployment_reduce(result, params):
    from repro.analysis.batch import reduce_deploy_smoke

    return reduce_deploy_smoke(result, params)


@pytest.mark.slow
def test_deployment_backend_sweeps_run_the_serial_lane():
    """A non-poolable backend streams serially even when workers are
    requested — real asyncio deployments never cross a process pool."""
    backend = CountingBackend(inner=deployment_backend())
    assert backend.poolable is False
    outcomes = list(
        stream_sweep(deployment_grid(), reducer=deployment_reduce, backend=backend, max_workers=4)
    )
    assert backend.calls == 2
    assert [o.row["eta"] for o in outcomes] == [2, 3]
    assert all(o.row["safe"] for o in outcomes)


@pytest.mark.slow
def test_deployment_sweep_resumes_bit_identically(tmp_path):
    grid = deployment_grid()
    reference = sweep_rows(grid, deployment_reduce, backend=deployment_backend(), max_workers=0)

    path = tmp_path / "deploy.jsonl"
    crashing = CountingBackend(inner=deployment_backend(), fail_after=1)
    with pytest.raises(RuntimeError, match="simulated crash"):
        list(
            stream_sweep(
                grid,
                reducer=deployment_reduce,
                backend=crashing,
                journal=SweepJournal(path, grid="deploy-smoke"),
            )
        )
    assert len(journal_keys(path)) == 1

    resumed_backend = CountingBackend(inner=deployment_backend())
    resumed = sweep_rows(
        grid,
        deployment_reduce,
        backend=resumed_backend,
        journal=SweepJournal(path, grid="deploy-smoke"),
        resume=True,
    )
    assert resumed == reference
    assert resumed_backend.calls == 1  # only the unfinished cell re-ran


# ----------------------------------------------------------------------
# Stable digests (the keys under all of the above)
# ----------------------------------------------------------------------
def test_run_spec_digest_is_content_derived():
    from repro.sleepy.adversary import CrashAdversary
    from repro.sleepy.schedule import RandomChurnSchedule

    def build(seed):
        return RunSpec(
            n=6,
            rounds=10,
            eta=3,
            beta=Fraction(1, 3),
            adversary=CrashAdversary([4, 5]),
            schedule=RandomChurnSchedule(6, 0.1, seed=7),
            seed=seed,
        )

    assert build(0).digest() == build(0).digest()  # fresh objects, equal content
    assert build(0).digest() != build(1).digest()
    base = build(0)
    assert base.digest() != RunSpec(n=6, rounds=10, eta=4, seed=0).digest()


def test_canonical_form_is_order_and_hash_seed_insensitive():
    # Sets and dicts canonicalise by content, not iteration order.
    assert canonical_form({"b": 1, "a": 2}) == canonical_form(dict([("a", 2), ("b", 1)]))
    assert stable_digest({3, 1, 2}) == stable_digest({2, 3, 1})
    assert stable_digest(frozenset("ab")) == stable_digest(frozenset("ba"))
    # Distinct value types never collide via string coercion.
    assert stable_digest(1) != stable_digest("1")
    assert stable_digest(1.0) != stable_digest(1) != stable_digest(Fraction(1))


def test_canonical_form_rejects_address_identity():
    class Slotted:
        __slots__ = ()

    with pytest.raises(TypeError, match="stable digest"):
        canonical_form(Slotted())
