"""The shared ingest pipeline: caching, interning, batch sharing, safety."""

import pytest

from repro.chain.block import Block
from repro.crypto.signatures import VerificationCache
from repro.engine.ingest import IngestPipeline
from repro.sleepy.messages import (
    EQUIVOCATED_VOTE,
    CachedVerifier,
    VoteMessage,
    make_ack,
    make_propose,
    make_vote,
)


@pytest.fixture
def pipeline(registry):
    return IngestPipeline(registry)


def signed_votes(registry, round_number, tip, pids):
    return [
        make_vote(registry, registry.secret_key(pid), round_number, tip) for pid in pids
    ]


# ----------------------------------------------------------------------
# Verified-once guarantee
# ----------------------------------------------------------------------
def test_multicast_verified_once_across_receivers(registry, pipeline, genesis):
    batch = tuple(signed_votes(registry, 1, genesis.block_id, range(5)))
    results = [pipeline.batch(batch) for _ in range(10)]  # ten "receivers"
    assert pipeline.stats["crypto_verifications"] == 5
    assert pipeline.stats["batches_built"] == 1
    assert pipeline.stats["batch_memo_hits"] == 9
    assert all(r is results[0] for r in results)  # one shared batch object


def test_list_deliveries_reuse_interned_instances(registry, pipeline, genesis):
    messages = signed_votes(registry, 1, genesis.block_id, range(4))
    first = pipeline.batch(tuple(messages))
    # A later list delivery (deployment inbox, backlog catch-up) of the
    # same instances re-verifies nothing.
    again = pipeline.batch(list(messages))
    assert pipeline.stats["crypto_verifications"] == 4
    assert again.votes == first.votes


def test_equal_but_distinct_instances_collapse_to_canonical(registry, pipeline, genesis):
    vote = make_vote(registry, registry.secret_key(0), 1, genesis.block_id)
    clone = VoteMessage(sender=0, round=1, signature=vote.signature, tip=genesis.block_id)
    assert pipeline.batch((vote,)).votes == (vote,)
    batch = pipeline.batch((clone,))
    assert batch.votes[0] is vote  # interned: one object per logical message
    assert pipeline.stats["crypto_verifications"] == 1


def test_invalid_messages_rejected_and_counted(registry, pipeline, genesis):
    good = make_vote(registry, registry.secret_key(0), 1, genesis.block_id)
    forged = VoteMessage(sender=1, round=1, signature=good.signature, tip=genesis.block_id)
    batch = pipeline.batch((good, forged, forged))
    assert batch.votes == (good,)
    assert batch.rejected == 2
    # The False verdict is cached: no re-verification of known junk.
    assert pipeline.stats["crypto_verifications"] == 2


# ----------------------------------------------------------------------
# Classification
# ----------------------------------------------------------------------
def test_batch_classifies_kinds_in_delivery_order(registry, pipeline, genesis):
    key = registry.secret_key(3)
    block = Block(parent=genesis.block_id, proposer=3, view=1)
    vote = make_vote(registry, key, 2, genesis.block_id)
    propose = make_propose(registry, key, 2, view=1, block=block)
    ack = make_ack(registry, key, 2, genesis.block_id)
    batch = pipeline.batch((ack, vote, propose))
    assert batch.messages == (ack, vote, propose)
    assert batch.votes == (vote,)
    assert batch.proposes == (propose,)
    assert batch.acks == (ack,)
    assert list(batch.ack_records()) == [(3, 2, genesis.block_id)]


def test_vote_table_resolves_within_batch_equivocation(registry, pipeline, genesis):
    key = registry.secret_key(1)
    block = Block(parent=genesis.block_id, proposer=0, view=1)
    a = make_vote(registry, key, 4, genesis.block_id)
    b = make_vote(registry, key, 4, block.block_id)
    honest = make_vote(registry, registry.secret_key(2), 4, genesis.block_id)
    table = pipeline.batch((a, b, honest)).vote_table()
    assert table[4][1] is EQUIVOCATED_VOTE
    assert table[4][2] == genesis.block_id


# ----------------------------------------------------------------------
# Cache safety (the transplanted-signature class of attacks)
# ----------------------------------------------------------------------
def test_poisoned_message_id_cannot_inherit_cached_verdict(registry, genesis):
    """A transplanted signature with a poisoned memoised ``message_id``
    must not inherit the victim's cached True verdict — the digest is
    recomputed by the verifier from the claimed sender and content."""
    for verifier in (CachedVerifier(registry), IngestPipeline(registry)):
        good = make_vote(registry, registry.secret_key(9), 3, genesis.block_id)
        assert verifier.verify(good)
        forged = VoteMessage(sender=0, round=3, signature=good.signature, tip=genesis.block_id)
        object.__setattr__(forged, "_message_id", good.message_id)
        assert forged.message_id == good.message_id  # the lie is in place
        assert not verifier.verify(forged), type(verifier).__name__


def test_poisoned_id_in_batch_path_rejected(registry, pipeline, genesis):
    good = make_vote(registry, registry.secret_key(9), 3, genesis.block_id)
    forged = VoteMessage(sender=0, round=3, signature=good.signature, tip=genesis.block_id)
    object.__setattr__(forged, "_message_id", good.message_id)
    batch = pipeline.batch((good, forged))
    assert batch.votes == (good,)
    assert batch.rejected == 1


# ----------------------------------------------------------------------
# Bounded caches
# ----------------------------------------------------------------------
def test_verification_cache_is_lru_bounded(registry, genesis):
    cache = VerificationCache(capacity=4)
    verifier = CachedVerifier(registry, cache=cache)
    votes = signed_votes(registry, 1, genesis.block_id, range(8))
    for vote in votes:
        assert verifier.verify(vote)
    assert len(cache) == 4
    assert cache.stats["evictions"] == 4


def test_batch_memo_eviction_keeps_identity_keys_sound(registry, genesis):
    pipeline = IngestPipeline(registry, batch_memo_capacity=2)
    batches = [
        tuple(signed_votes(registry, r, genesis.block_id, range(3))) for r in range(5)
    ]
    outputs = [pipeline.batch(b) for b in batches]
    # Oldest entries evicted; re-presenting an evicted tuple rebuilds
    # (cheaply, via interner hits) rather than returning a stale batch.
    rebuilt = pipeline.batch(batches[0])
    assert rebuilt.votes == outputs[0].votes
    assert pipeline.stats["crypto_verifications"] == 15  # never re-verified


def test_interner_is_lru_bounded_and_eviction_is_sound(registry, genesis):
    """A Byzantine flood of distinct valid messages cannot grow the
    canonical table without bound, and an evicted instance loses its
    identity fast path (no stale-id false positives) but stays valid."""
    from repro.sleepy.messages import MessageInterner

    interner = MessageInterner(capacity=3)
    pipeline = IngestPipeline(registry)
    pipeline._interner = interner
    votes = signed_votes(registry, 1, genesis.block_id, range(6))
    for vote in votes:
        assert pipeline.verify(vote)
    assert len(interner) == 3
    evicted = votes[0]
    assert not interner.is_canonical(evicted)
    # Re-presenting the evicted message re-verifies via the digest path
    # (cached verdict — no fresh crypto) and re-interns it.
    crypto_before = pipeline.stats["crypto_verifications"]
    assert pipeline.verify(evicted)
    assert pipeline.stats["crypto_verifications"] == crypto_before
    assert interner.is_canonical(evicted)


def test_registry_verify_batch_matches_single_verify(registry, genesis):
    key = registry.secret_key(5)
    vote = make_vote(registry, key, 2, genesis.block_id)
    items = [
        (vote.sender, vote.signature, vote._signed_fields()),
        (6, vote.signature, vote._signed_fields()),  # wrong claimed signer
        (9999, vote.signature, vote._signed_fields()),  # unregistered
    ]
    assert registry.verify_batch(items) == [True, False, False]
