"""MessageBus semantics: it must be the flat pool, only indexed.

The reference model (``FlatPool``) reimplements the simulator's
original delivery state — one global list, a per-pid cursor, and a
per-pid set of ids delivered ahead of the cursor — and a seeded fuzz
drives both implementations through identical publish/deliver schedules
to prove they agree message for message.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.engine.bus import MessageBus
from repro.engine.errors import UndeliverableMessageError


@dataclass(frozen=True)
class FakeMessage:
    """The bus only reads ``message_id``; everything else is payload."""

    message_id: str
    round: int = 0


class FlatPool:
    """The pre-refactor delivery state, verbatim as the oracle."""

    def __init__(self, n: int) -> None:
        self._pool: list[FakeMessage] = []
        self._ids: set[str] = set()
        self._cursor = {pid: 0 for pid in range(n)}
        self._extras: dict[int, set[str]] = {pid: set() for pid in range(n)}

    def publish(self, message: FakeMessage) -> bool:
        if message.message_id in self._ids:
            return False
        self._ids.add(message.message_id)
        self._pool.append(message)
        return True

    def deliverable(self, pid: int) -> list[FakeMessage]:
        return [
            m for m in self._pool[self._cursor[pid] :] if m.message_id not in self._extras[pid]
        ]

    def deliver_all(self, pid: int) -> list[FakeMessage]:
        batch = self.deliverable(pid)
        self._cursor[pid] = len(self._pool)
        self._extras[pid].clear()
        return batch

    def deliver_chosen(self, pid: int, chosen: list[FakeMessage]) -> None:
        self._extras[pid].update(m.message_id for m in chosen)


def ids(messages) -> list[str]:
    return [m.message_id for m in messages]


# ----------------------------------------------------------------------
# Directed cases
# ----------------------------------------------------------------------
def test_catch_up_on_wake_equals_flat_pool():
    """A sleeper's first delivery after a gap is the entire backlog, in
    publish order — exactly what the flat pool's lagging cursor gave."""
    bus, pool = MessageBus(2), FlatPool(2)
    for r in range(3):
        bus.begin_round(r)
        for s in range(3):
            message = FakeMessage(f"r{r}s{s}", r)
            bus.publish(message)
            pool.publish(message)
        # pid 0 receives every round; pid 1 sleeps throughout.
        assert ids(bus.deliver_all(0)) == ids(pool.deliver_all(0))
    assert ids(bus.deliver_all(1)) == ids(pool.deliver_all(1)) == [
        f"r{r}s{s}" for r in range(3) for s in range(3)
    ]
    assert bus.pending_count(1) == 0


def test_duplicate_message_id_suppressed():
    bus = MessageBus(1)
    bus.begin_round(0)
    assert bus.publish(FakeMessage("a"))
    assert not bus.publish(FakeMessage("a"))
    assert len(bus) == 1
    assert bus.stats["duplicates"] == 1
    assert ids(bus.round_messages(0)) == ["a"]
    assert "a" in bus and "b" not in bus


def test_adversarial_delivery_stays_within_deliverable_set():
    bus = MessageBus(1)
    bus.begin_round(0)
    bus.publish(FakeMessage("a"))
    with pytest.raises(UndeliverableMessageError):
        bus.deliver_chosen(0, [FakeMessage("forged")])
    # A failed choice must not corrupt delivery state.
    assert ids(bus.deliverable(0)) == ["a"]
    # Already-delivered messages are no longer deliverable either.
    bus.deliver_chosen(0, [FakeMessage("a")])
    with pytest.raises(UndeliverableMessageError):
        bus.deliver_chosen(0, [FakeMessage("a")])


def test_partial_delivery_parks_backlog_in_publish_order():
    bus = MessageBus(1)
    bus.begin_round(0)
    for name in "abcde":
        bus.publish(FakeMessage(name))
    bus.deliver_chosen(0, [FakeMessage("b"), FakeMessage("d")])
    assert bus.backlog_size(0) == 3
    assert ids(bus.deliverable(0)) == ["a", "c", "e"]
    bus.begin_round(1)
    bus.publish(FakeMessage("f"))
    # Catch-up: withheld messages first (publish order), then the new tail.
    assert ids(bus.deliver_all(0)) == ["a", "c", "e", "f"]
    assert bus.pending_count(0) == 0


def test_synchronous_tail_is_shared_between_caught_up_receivers():
    """The receive phase must not rebuild the same batch per process."""
    n = 8
    bus = MessageBus(n)
    for r in range(3):
        bus.begin_round(r)
        for s in range(n):
            bus.publish(FakeMessage(f"r{r}s{s}", r))
        batches = [bus.deliver_all(pid) for pid in range(n)]
        assert all(batch is batches[0] for batch in batches)
    assert bus.stats["tail_builds"] == 3
    assert bus.stats["tail_reuses"] == 3 * (n - 1)


def test_round_buckets_span_send_phases():
    bus = MessageBus(1)
    bus.begin_round(0)
    bus.publish(FakeMessage("a0"))
    bus.begin_round(1)
    bus.publish(FakeMessage("a1"))
    bus.publish(FakeMessage("b1"))
    assert ids(bus.round_messages(0)) == ["a0"]
    assert ids(bus.round_messages(1)) == ["a1", "b1"]
    assert ids(bus.round_messages(7)) == []


# ----------------------------------------------------------------------
# Fuzz: the bus IS the flat pool
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(5))
def test_fuzzed_schedule_matches_flat_pool(seed):
    rng = random.Random(seed)
    n = 4
    bus, pool = MessageBus(n), FlatPool(n)
    counter = 0
    for r in range(40):
        bus.begin_round(r)
        for _ in range(rng.randrange(0, 6)):
            # Occasionally replay an old id to exercise dedup.
            if counter and rng.random() < 0.1:
                name = f"m{rng.randrange(counter)}"
            else:
                name = f"m{counter}"
                counter += 1
            message = FakeMessage(name, r)
            assert bus.publish(message) == pool.publish(message)
        for pid in range(n):
            mode = rng.random()
            assert ids(bus.deliverable(pid)) == ids(pool.deliverable(pid))
            if mode < 0.4:  # synchronous receiver
                assert ids(bus.deliver_all(pid)) == ids(pool.deliver_all(pid))
            elif mode < 0.8:  # asynchronous receiver: random subset
                pending = pool.deliverable(pid)
                chosen = [m for m in pending if rng.random() < 0.5]
                bus.deliver_chosen(pid, chosen)
                pool.deliver_chosen(pid, chosen)
            # else: asleep — not consulted at all.
    for pid in range(n):
        assert ids(bus.deliverable(pid)) == ids(pool.deliverable(pid))
