"""The sweep harness: grids, streaming, reducers, pool fan-out.

Pool fan-out must equal the serial loop; :class:`SweepSpec` must expand
in nested-for-loop order; :func:`stream_sweep` must stay lazy (bounded
memory) and yield identical outcomes on every path.
"""

import pytest

from repro.engine.backend import ExecutionBackend
from repro.engine.sim_backend import SimulationBackend
from repro.engine.spec import RunSpec
from repro.engine.sweep import (
    ParallelSweepBackend,
    SweepSpec,
    default_worker_count,
    run_sweep,
    stream_sweep,
    sweep_rows,
)
from repro.sleepy.adversary import CrashAdversary
from repro.sleepy.schedule import SpikeSchedule


def sweep_specs():
    return [
        RunSpec(n=6, rounds=12, protocol="resilient", eta=2, seed=0),
        RunSpec(n=6, rounds=12, protocol="mmr", seed=1),
        RunSpec(
            n=8,
            rounds=14,
            protocol="resilient",
            eta=3,
            adversary=CrashAdversary([6, 7]),
            seed=2,
        ),
        RunSpec(
            n=8,
            rounds=14,
            protocol="resilient",
            eta=2,
            schedule=SpikeSchedule(8, 0.5, start=4, duration=4),
            seed=3,
        ),
    ]


def digest(result):
    return (
        [(d.pid, d.round, d.view, d.tip) for d in result.trace.decisions],
        result.trace.horizon,
        len(result.trace.tree),
        result.messages_sent,
    )


@pytest.mark.slow
def test_parallel_sweep_equals_serial_run_for_run():
    specs = sweep_specs()
    serial = run_sweep(specs, max_workers=0)
    parallel = run_sweep(specs, max_workers=2)
    assert [digest(r) for r in parallel] == [digest(r) for r in serial]


def test_serial_fallback_path_preserves_order_and_strips_extras():
    specs = sweep_specs()[:2]
    results = run_sweep(specs, max_workers=0)
    assert [r.trace.meta["protocol"] for r in results] == ["resilient", "mmr"]
    assert all(r.extras == {} for r in results)
    assert all(r.backend == "simulator" for r in results)


def test_single_spec_skips_the_pool():
    (result,) = run_sweep(sweep_specs()[:1], max_workers=4)
    assert result.trace.decisions
    assert result.extras == {}


def test_execute_delegates_to_inner_backend():
    backend = ParallelSweepBackend(max_workers=0)
    result = backend.execute(RunSpec(n=4, rounds=8, seed=0))
    assert result.backend == "simulator"
    # The single-run seam keeps substrate handles (sweeps strip them).
    assert "simulation" in result.extras


def test_worker_count_and_chunksize_validation():
    assert default_worker_count() >= 1
    with pytest.raises(ValueError, match="chunksize"):
        ParallelSweepBackend(chunksize=0)
    with pytest.raises(ValueError, match="chunksize"):
        list(stream_sweep(sweep_specs()[:1], chunksize=0))
    with pytest.raises(ValueError, match="window"):
        list(stream_sweep(sweep_specs()[:1], window=0))


# ----------------------------------------------------------------------
# SweepSpec grids
# ----------------------------------------------------------------------
def _grid_spec(*, n, rounds, protocol, seed, **_):
    return RunSpec(n=n, rounds=rounds, protocol=protocol, seed=seed)


def _rounds_axis(params):
    # A dependent axis: later axes may read the ones before them.
    return range(10, 10 + 2 * params["seed"] + 1, 2)


def test_grid_expands_in_nested_loop_order():
    grid = SweepSpec(
        axes={"protocol": ("mmr", "resilient"), "seed": (0, 1)},
        base={"n": 4, "rounds": 8},
    )
    cells = grid.cells()
    assert [(c.params["protocol"], c.params["seed"]) for c in cells] == [
        ("mmr", 0), ("mmr", 1), ("resilient", 0), ("resilient", 1)
    ]
    assert [c.index for c in cells] == [0, 1, 2, 3]
    # Default factory: params are RunSpec fields verbatim.
    assert [c.spec.protocol for c in cells] == ["mmr", "mmr", "resilient", "resilient"]


def test_grid_dependent_axis_and_keep_filter():
    grid = SweepSpec(
        axes={"seed": (0, 1, 2), "rounds": _rounds_axis},
        base={"n": 4, "protocol": "mmr"},
        factory=_grid_spec,
        keep=lambda params: params["rounds"] != 12,
    )
    cells = grid.cells()
    assert [(c.params["seed"], c.params["rounds"]) for c in cells] == [
        (0, 10), (1, 10), (2, 10), (2, 14)
    ]
    assert [c.index for c in cells] == [0, 1, 2, 3]  # dense over kept cells
    assert grid.specs()[3].rounds == 14


# ----------------------------------------------------------------------
# stream_sweep
# ----------------------------------------------------------------------
class CountingBackend(ExecutionBackend):
    """Counts executions (serial in-process path only)."""

    name = "counting"

    def __init__(self):
        self.inner = SimulationBackend()
        self.calls = 0

    def execute(self, spec):
        self.calls += 1
        return self.inner.execute(spec)


def test_serial_stream_is_lazy():
    """The serial path executes one cell per next() — the memory bound
    for grids that do not fit in memory."""
    backend = CountingBackend()
    stream = stream_sweep(sweep_specs(), backend=backend, max_workers=0)
    assert backend.calls == 0  # generator: nothing runs before iteration
    first = next(stream)
    assert backend.calls == 1
    assert first.index == 0 and first.result.backend == "simulator"
    next(stream)
    assert backend.calls == 2


def _pick_protocol(result, params):
    return (params.get("tag"), result.trace.meta["protocol"], len(result.trace.decisions))


def test_reducer_rows_replace_results():
    grid = SweepSpec(
        axes={"protocol": ("mmr", "resilient")},
        base={"n": 4, "rounds": 8, "tag": "t"},
        factory=_grid_spec_with_tag,
    )
    outcomes = list(stream_sweep(grid, reducer=_pick_protocol, max_workers=0))
    assert [o.result for o in outcomes] == [None, None]
    assert [o.row[1] for o in outcomes] == ["mmr", "resilient"]
    assert sweep_rows(grid, _pick_protocol, max_workers=0) == [o.row for o in outcomes]


def _grid_spec_with_tag(*, protocol, n, rounds, tag, **_):
    return RunSpec(n=n, rounds=rounds, protocol=protocol, seed=0)


@pytest.mark.slow
def test_streamed_pool_equals_serial_across_windows():
    specs = sweep_specs()
    serial = list(stream_sweep(specs, max_workers=0))
    pooled = list(stream_sweep(specs, max_workers=2, window=2))  # 2 windows
    assert [digest(o.result) for o in pooled] == [digest(o.result) for o in serial]
    assert [o.index for o in pooled] == [0, 1, 2, 3]


@pytest.mark.slow
def test_streamed_reducer_rows_cross_the_pool():
    grid = SweepSpec(
        axes={"protocol": ("mmr", "resilient"), "tag": ("a", "b")},
        base={"n": 4, "rounds": 8},
        factory=_grid_spec_with_tag,
    )
    serial = sweep_rows(grid, _pick_protocol, max_workers=0)
    pooled = sweep_rows(grid, _pick_protocol, max_workers=2, window=3, chunksize=2)
    assert pooled == serial
    assert [row[0] for row in pooled] == ["a", "b", "a", "b"]
