"""Parallel sweep backend: pool fan-out equals the serial loop."""

import pytest

from repro.engine.spec import RunSpec
from repro.engine.sweep import ParallelSweepBackend, default_worker_count, run_sweep
from repro.sleepy.adversary import CrashAdversary
from repro.sleepy.schedule import SpikeSchedule


def sweep_specs():
    return [
        RunSpec(n=6, rounds=12, protocol="resilient", eta=2, seed=0),
        RunSpec(n=6, rounds=12, protocol="mmr", seed=1),
        RunSpec(
            n=8,
            rounds=14,
            protocol="resilient",
            eta=3,
            adversary=CrashAdversary([6, 7]),
            seed=2,
        ),
        RunSpec(
            n=8,
            rounds=14,
            protocol="resilient",
            eta=2,
            schedule=SpikeSchedule(8, 0.5, start=4, duration=4),
            seed=3,
        ),
    ]


def digest(result):
    return (
        [(d.pid, d.round, d.view, d.tip) for d in result.trace.decisions],
        result.trace.horizon,
        len(result.trace.tree),
        result.messages_sent,
    )


@pytest.mark.slow
def test_parallel_sweep_equals_serial_run_for_run():
    specs = sweep_specs()
    serial = run_sweep(specs, max_workers=0)
    parallel = run_sweep(specs, max_workers=2)
    assert [digest(r) for r in parallel] == [digest(r) for r in serial]


def test_serial_fallback_path_preserves_order_and_strips_extras():
    specs = sweep_specs()[:2]
    results = run_sweep(specs, max_workers=0)
    assert [r.trace.meta["protocol"] for r in results] == ["resilient", "mmr"]
    assert all(r.extras == {} for r in results)
    assert all(r.backend == "simulator" for r in results)


def test_single_spec_skips_the_pool():
    (result,) = run_sweep(sweep_specs()[:1], max_workers=4)
    assert result.trace.decisions
    assert result.extras == {}


def test_execute_delegates_to_inner_backend():
    backend = ParallelSweepBackend(max_workers=0)
    result = backend.execute(RunSpec(n=4, rounds=8, seed=0))
    assert result.backend == "simulator"
    # The single-run seam keeps substrate handles (sweeps strip them).
    assert "simulation" in result.extras


def test_worker_count_and_chunksize_validation():
    assert default_worker_count() >= 1
    with pytest.raises(ValueError, match="chunksize"):
        ParallelSweepBackend(chunksize=0)
