"""Shared-chain runs vs per-process-tree runs: byte-identical traces.

The shared chain (:mod:`repro.chain.shared`) is a memory optimisation,
not a semantic change: a full simulation where every receiver holds a
visibility view over one interned tree must reproduce the exact
execution of the same seeded run with ``share_chain=False`` (a private
:class:`~repro.chain.tree.BlockTree` per process, the historical
layout).  The scenarios stress the paths where sharing could plausibly
leak state between receivers: sleep/wake churn (stale views catching
up), equivocation (conflicting sibling blocks), and asynchronous
delivery (orphan buffering and eviction in front of the view).
"""

import pytest

from repro.crypto.signatures import KeyRegistry
from repro.engine.registry import PROTOCOLS
from repro.engine.sim_backend import SimulationBackend
from repro.finality.process import ebb_and_flow_factory
from repro.harness import TOBRunConfig
from repro.sleepy.adversary import (
    EquivocatingVoteAdversary,
    RandomAdversary,
    SplitVoteAttack,
)
from repro.sleepy.network import WindowedAsynchrony
from repro.sleepy.schedule import RandomChurnSchedule, SpikeSchedule
from repro.sleepy.simulator import Simulation

from tests.engine._golden_gen import trace_digest


def _scenario(name: str) -> TOBRunConfig:
    """A fresh config per call — adversaries and schedules are stateful."""
    if name == "churn-equivocation":
        return TOBRunConfig(
            n=10,
            rounds=22,
            protocol="resilient",
            eta=3,
            adversary=EquivocatingVoteAdversary([9]),
            schedule=RandomChurnSchedule(10, 0.15, seed=11, min_awake=6),
            seed=11,
        )
    if name == "async-split-vote-mmr":
        return TOBRunConfig(
            n=10,
            rounds=24,
            protocol="mmr",
            adversary=SplitVoteAttack([8, 9], target_round=10),
            network=WindowedAsynchrony(ra=8, pi=2),
            seed=12,
        )
    if name == "spike-random-adversary":
        return TOBRunConfig(
            n=12,
            rounds=26,
            protocol="resilient",
            eta=2,
            adversary=RandomAdversary([10, 11], seed=13),
            schedule=SpikeSchedule(12, 0.5, start=9, duration=5),
            network=WindowedAsynchrony(ra=12, pi=3),
            seed=13,
        )
    if name == "ebb-and-flow-churn":
        return TOBRunConfig(
            n=9,
            rounds=20,
            protocol="ebb-and-flow",
            eta=2,
            schedule=RandomChurnSchedule(9, 0.2, seed=14, min_awake=6),
            seed=14,
        )
    raise KeyError(name)


SCENARIOS = (
    "churn-equivocation",
    "async-split-vote-mmr",
    "spike-random-adversary",
    "ebb-and-flow-churn",
)


def _run(name: str, share_chain: bool) -> Simulation:
    config = _scenario(name)
    if config.protocol == "ebb-and-flow":
        factory = ebb_and_flow_factory("resilient", eta=config.eta, n=config.n)
    else:
        factory = PROTOCOLS.factory(
            config.protocol,
            eta=config.eta,
            beta=config.beta,
            record_telemetry=config.record_telemetry,
        )
    simulation = Simulation(
        KeyRegistry(config.n, run_seed=config.seed),
        config.resolved_schedule(),
        config.resolved_adversary(),
        config.resolved_network(),
        factory,
        share_chain=share_chain,
    )
    SimulationBackend.drive(simulation, config)
    return simulation


@pytest.mark.parametrize("name", SCENARIOS)
def test_shared_run_replays_private_tree_run_bit_for_bit(name):
    shared = _run(name, share_chain=True)
    private = _run(name, share_chain=False)
    assert trace_digest(shared.trace) == trace_digest(private.trace)
    # Beyond the digest: every receiver's local tree answers the same.
    def local_tree(process):
        return process.tree if hasattr(process, "tree") else process.inner.tree

    for pid, process in shared.processes.items():
        mine = local_tree(process)
        twin = local_tree(private.processes[pid])
        assert len(mine) == len(twin)
        assert mine.tips() == twin.tips()
        tips = list(mine.tips())
        assert mine.longest(tips) == twin.longest(tips)


def test_shared_run_actually_interns_one_tree():
    """The capability wiring: views over one chain, not private trees."""
    shared = _run("churn-equivocation", share_chain=True)
    for process in shared.processes.values():
        assert process.tree._tree is shared.chain.tree
    private = _run("churn-equivocation", share_chain=False)
    trees = {id(process.tree) for process in private.processes.values()}
    assert len(trees) == private.registry.n
