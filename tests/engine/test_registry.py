"""Protocol registry: one dispatch point for every backend."""

from fractions import Fraction

import pytest

from repro.engine.registry import PROTOCOLS, ProtocolRegistry, ProtocolSpec
from repro.harness import TOBRunConfig, run_tob
from repro.protocols.mmr_tob import MMRProcess, mmr_factory
from repro.core.resilient_tob import ResilientTOBProcess
from repro.crypto.signatures import KeyRegistry
from repro.sleepy.messages import CachedVerifier


def test_default_registry_serves_both_paper_protocols():
    assert set(PROTOCOLS.names()) >= {"mmr", "resilient"}
    assert not PROTOCOLS.get("mmr").uses_eta
    assert PROTOCOLS.get("resilient").uses_eta


def test_factory_builds_parameterised_processes():
    registry = KeyRegistry(2, run_seed=0)
    verifier = CachedVerifier(registry)
    beta = Fraction(1, 4)
    mmr = PROTOCOLS.factory("mmr", eta=7, beta=beta)(0, registry.secret_key(0), verifier)
    assert isinstance(mmr, MMRProcess)
    assert mmr.vote_window(10) == (10, 10)  # eta ignored by design
    res = PROTOCOLS.factory("resilient", eta=3)(1, registry.secret_key(1), verifier)
    assert isinstance(res, ResilientTOBProcess)
    assert res.vote_window(10) == (7, 10)


def test_unknown_protocol_rejected_with_known_names():
    with pytest.raises(ValueError, match="unknown protocol 'pbft'"):
        PROTOCOLS.get("pbft")
    with pytest.raises(ValueError, match="'mmr'"):
        PROTOCOLS.factory("pbft")


def test_effective_eta_reflects_protocol_semantics():
    assert PROTOCOLS.effective_eta("mmr", 5) == 0
    assert PROTOCOLS.effective_eta("resilient", 5) == 5


def test_duplicate_registration_refused_unless_replace():
    registry = ProtocolRegistry()
    spec = ProtocolSpec(name="x", build=mmr_factory)
    registry.register(spec)
    with pytest.raises(ValueError, match="already registered"):
        registry.register(spec)
    registry.register(spec, replace=True)
    assert "x" in registry


def test_registered_extension_runs_through_the_engine():
    """A new protocol name becomes runnable end to end at registration."""
    name = "mmr-alias-for-test"
    PROTOCOLS.register(ProtocolSpec(name=name, build=mmr_factory, uses_eta=False))
    try:
        trace = run_tob(TOBRunConfig(n=4, rounds=8, protocol=name))
        assert trace.decisions
        assert trace.meta["protocol"] == name
        assert trace.meta["eta"] == 0
    finally:
        PROTOCOLS._specs.pop(name)  # keep the shared registry clean
