"""The bench trend checker on synthetic BENCH_*.json pairs."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_trend", Path(__file__).resolve().parents[1] / "benchmarks" / "check_trend.py"
)
check_trend = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_trend)


def write_bench(
    directory: Path,
    bench: str,
    medians: dict[str, float],
    config: dict | None = None,
    p95s: dict[str, float] | None = None,
    mems: dict[str, int] | None = None,
) -> None:
    payload = {
        "bench": bench,
        "results": {
            test: {
                "median_s": median,
                "p95_s": (p95s or {}).get(test, median),
                "samples_s": [median],
                "config": config or {},
                **(
                    {"peak_mem_bytes": mems[test]}
                    if mems is not None and test in mems
                    else {}
                ),
            }
            for test, median in medians.items()
        },
    }
    (directory / f"BENCH_{bench}.json").write_text(json.dumps(payload))


@pytest.fixture
def dirs(tmp_path):
    baseline, fresh = tmp_path / "baseline", tmp_path / "fresh"
    baseline.mkdir()
    fresh.mkdir()
    return baseline, fresh


def test_regression_beyond_factor_fails(dirs, capsys):
    baseline, fresh = dirs
    write_bench(baseline, "sweep", {"test_grid": 0.10})
    write_bench(fresh, "sweep", {"test_grid": 0.25})  # 2.5x > 2x
    assert check_trend.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "sweep::test_grid" in out and "FAIL" in out


def test_within_factor_and_improvements_pass(dirs, capsys):
    baseline, fresh = dirs
    write_bench(baseline, "sweep", {"steady": 0.10, "faster": 0.40})
    write_bench(fresh, "sweep", {"steady": 0.18, "faster": 0.05})  # 1.8x, 0.125x
    assert check_trend.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0
    out = capsys.readouterr().out
    assert "improved" in out and "OK" in out


def test_custom_factor_is_respected(dirs):
    baseline, fresh = dirs
    write_bench(baseline, "bus", {"t": 0.10})
    write_bench(fresh, "bus", {"t": 0.18})
    args = ["--baseline", str(baseline), "--fresh", str(fresh)]
    assert check_trend.main(args + ["--factor", "1.5"]) == 1
    assert check_trend.main(args + ["--factor", "2.0"]) == 0


def test_noise_floor_skips_tiny_medians(dirs, capsys):
    baseline, fresh = dirs
    write_bench(baseline, "micro", {"t": 0.0004})
    write_bench(fresh, "micro", {"t": 0.004})  # 10x — but both tiny
    assert check_trend.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0
    assert "tiny" in capsys.readouterr().out


def test_one_sided_entries_are_reported_not_failed(dirs, capsys):
    baseline, fresh = dirs
    write_bench(baseline, "old_bench", {"t": 0.5})
    write_bench(fresh, "new_bench", {"t": 0.5})
    assert check_trend.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0
    out = capsys.readouterr().out
    assert "gone" in out and "new" in out


def test_config_change_is_skipped_not_failed(dirs, capsys):
    """A bench rerun at a different scale (tiny CI mode vs full) is a
    different experiment — never a regression."""
    baseline, fresh = dirs
    write_bench(baseline, "figure1", {"t": 0.06}, config={"tiny": True})
    write_bench(fresh, "figure1", {"t": 1.5}, config={"tiny": False})  # 25x, but...
    assert check_trend.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0
    assert "config" in capsys.readouterr().out


def test_malformed_json_is_ignored(dirs):
    baseline, fresh = dirs
    (baseline / "BENCH_broken.json").write_text("{not json")
    write_bench(baseline, "ok", {"t": 0.1})
    (fresh / "BENCH_ok.json").write_text(json.dumps({"bench": "ok", "results": "nope"}))
    write_bench(fresh, "other", {"t": 0.1})
    assert check_trend.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0


def test_load_medians_shape(dirs):
    baseline, _ = dirs
    write_bench(
        baseline,
        "sweep",
        {"a": 0.1, "b": 0.2},
        config={"n": 6},
        p95s={"a": 0.15},
        mems={"a": 1024},
    )
    assert check_trend.load_medians(baseline) == {
        ("sweep", "a"): (0.1, 0.15, 1024.0, {"n": 6}),
        ("sweep", "b"): (0.2, 0.2, None, {"n": 6}),
    }


# ----------------------------------------------------------------------
# p95 tracking: warns, never gates
# ----------------------------------------------------------------------
def test_p95_regression_warns_without_failing(dirs, capsys):
    baseline, fresh = dirs
    write_bench(baseline, "sweep", {"t": 0.10}, p95s={"t": 0.12})
    write_bench(fresh, "sweep", {"t": 0.11}, p95s={"t": 0.30})  # p95 2.5x, median steady
    assert check_trend.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0
    out = capsys.readouterr().out
    assert "p95 WARN" in out and "sweep::t" in out
    assert "OK" in out and "1 p95/mem warning" in out


def test_p95_within_factor_stays_silent(dirs, capsys):
    baseline, fresh = dirs
    write_bench(baseline, "sweep", {"t": 0.10}, p95s={"t": 0.12})
    write_bench(fresh, "sweep", {"t": 0.11}, p95s={"t": 0.20})  # 1.67x < 2x
    assert check_trend.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0
    assert "p95" not in capsys.readouterr().out


def test_p95_warns_even_when_medians_sit_below_the_floor(dirs, capsys):
    """A spiky bench: tiny medians are skipped by the median gate, but
    an above-floor p95 regression still warns — the tail has its own
    noise floor, not the median's verdict."""
    baseline, fresh = dirs
    write_bench(baseline, "spiky", {"t": 0.004}, p95s={"t": 0.010})
    write_bench(fresh, "spiky", {"t": 0.004}, p95s={"t": 0.100})  # 10x tail
    assert check_trend.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0
    out = capsys.readouterr().out
    assert "p95 WARN" in out and "tiny" in out


def test_p95_warning_respects_noise_floor_and_missing_entries(dirs, capsys):
    baseline, fresh = dirs
    # Both p95s below the 5 ms floor: 10x tail jitter is not a signal.
    write_bench(baseline, "micro", {"t": 0.10}, p95s={"t": 0.0003})
    write_bench(fresh, "micro", {"t": 0.10}, p95s={"t": 0.003})
    # A baseline written before p95 tracking (no p95_s key) never warns.
    legacy = {
        "bench": "legacy",
        "results": {"t": {"median_s": 0.1, "config": {}}},
    }
    (baseline / "BENCH_legacy.json").write_text(json.dumps(legacy))
    write_bench(fresh, "legacy", {"t": 0.1}, p95s={"t": 9.9})
    assert check_trend.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0
    assert "p95" not in capsys.readouterr().out


def test_median_regression_still_fails_with_p95_warning(dirs, capsys):
    """The satellite contract: p95 warns, the median stays the gate."""
    baseline, fresh = dirs
    write_bench(baseline, "sweep", {"t": 0.10}, p95s={"t": 0.10})
    write_bench(fresh, "sweep", {"t": 0.25}, p95s={"t": 0.40})
    assert check_trend.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "p95 WARN" in out and "FAIL" in out


# ----------------------------------------------------------------------
# peak-memory tracking: warns, never gates
# ----------------------------------------------------------------------

def test_mem_growth_warns_without_failing(dirs, capsys):
    baseline, fresh = dirs
    write_bench(baseline, "sweep", {"t": 0.10}, mems={"t": 10 << 20})
    write_bench(fresh, "sweep", {"t": 0.11}, mems={"t": 30 << 20})  # 3x peak
    assert check_trend.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0
    out = capsys.readouterr().out
    assert "mem WARN" in out and "sweep::t" in out
    assert "OK" in out and "10.0MiB -> 30.0MiB" in out


def test_mem_within_factor_stays_silent(dirs, capsys):
    baseline, fresh = dirs
    write_bench(baseline, "sweep", {"t": 0.10}, mems={"t": 10 << 20})
    write_bench(fresh, "sweep", {"t": 0.11}, mems={"t": 18 << 20})  # 1.8x < 2x
    assert check_trend.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0
    assert "mem WARN" not in capsys.readouterr().out


def test_mem_warning_respects_byte_floor_and_missing_entries(dirs, capsys):
    baseline, fresh = dirs
    # Both peaks below the 1 MiB floor: interpreter noise, not a leak.
    write_bench(baseline, "micro", {"t": 0.10}, mems={"t": 10_000})
    write_bench(fresh, "micro", {"t": 0.10}, mems={"t": 500_000})
    # A baseline written before memory tracking never warns.
    write_bench(baseline, "legacy", {"t": 0.1})
    write_bench(fresh, "legacy", {"t": 0.1}, mems={"t": 1 << 30})
    assert check_trend.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0
    assert "mem WARN" not in capsys.readouterr().out


def test_mem_warning_ignores_the_median_noise_floor(dirs, capsys):
    """A sub-millisecond bench that balloons its allocations still warns."""
    baseline, fresh = dirs
    write_bench(baseline, "tiny", {"t": 0.0004}, mems={"t": 2 << 20})
    write_bench(fresh, "tiny", {"t": 0.0004}, mems={"t": 64 << 20})
    assert check_trend.main(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0
    out = capsys.readouterr().out
    assert "mem WARN" in out and "tiny" in out
