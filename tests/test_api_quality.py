"""Meta-tests: public-API quality gates.

A library release should not ship undocumented public callables or a
broken top-level namespace; these tests make that a regression.
"""

import importlib
import inspect
import pkgutil

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.chain",
    "repro.core",
    "repro.crypto",
    "repro.finality",
    "repro.net",
    "repro.protocols",
    "repro.runtime",
    "repro.sleepy",
    "repro.workloads",
]


def iter_public_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__, prefix=f"{package_name}."):
            if not info.name.rsplit(".", 1)[-1].startswith("_"):
                yield importlib.import_module(info.name)


_MISSING = object()


def test_all_exports_resolve():
    for module in iter_public_modules():
        for name in getattr(module, "__all__", []):
            # Note: sentinel, not None — GENESIS_TIP is a legitimate None.
            assert getattr(module, name, _MISSING) is not _MISSING, f"{module.__name__}.{name}"


def test_every_module_has_a_docstring():
    for module in iter_public_modules():
        assert module.__doc__ and module.__doc__.strip(), module.__name__


def test_every_public_callable_is_documented():
    undocumented = []
    for module in iter_public_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isfunction(obj) or inspect.isclass(obj)):
                continue
            if getattr(obj, "__module__", "") != module.__name__:
                continue  # re-export; documented at home
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(f"{module.__name__}.{name}")
            if inspect.isclass(obj):
                for method_name, method in vars(obj).items():
                    if method_name.startswith("_") or not inspect.isfunction(method):
                        continue
                    if not _documented_in_mro(obj, method_name):
                        undocumented.append(f"{module.__name__}.{name}.{method_name}")
    assert not undocumented, f"undocumented public callables: {undocumented}"


def _documented_in_mro(cls, method_name: str) -> bool:
    # Overrides of a documented base method (send/receive/awake/...)
    # inherit the contract; requiring repeated docstrings would invite
    # copy-paste rot.
    for base in cls.__mro__:
        method = vars(base).get(method_name)
        if method is not None and getattr(method, "__doc__", None):
            if method.__doc__.strip():
                return True
    return False


def test_top_level_namespace_is_curated():
    # Everything advertised in repro.__all__ imports and is distinct.
    assert len(repro.__all__) == len(set(repro.__all__))
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version_is_exposed():
    assert repro.__version__
