"""Sleep schedules: shapes, bounds, determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sleepy.schedule import (
    DiurnalSchedule,
    FullParticipation,
    RandomChurnSchedule,
    SpikeSchedule,
    TableSchedule,
)


def test_full_participation():
    schedule = FullParticipation(5)
    assert schedule.awake(0) == frozenset(range(5))
    assert schedule.awake(100) == frozenset(range(5))
    assert schedule.awake_union(0, 10) == frozenset(range(5))


def test_table_schedule_with_default():
    schedule = TableSchedule(4, {2: {0, 1}}, default={0, 1, 2, 3})
    assert schedule.awake(0) == frozenset({0, 1, 2, 3})
    assert schedule.awake(2) == frozenset({0, 1})
    assert schedule.awake_union(1, 3) == frozenset({0, 1, 2, 3})


def test_table_schedule_rejects_unknown_pids():
    with pytest.raises(ValueError, match="unknown process"):
        TableSchedule(2, {0: {5}})


def test_awake_union_ignores_negative_rounds():
    schedule = TableSchedule(3, {0: {0}}, default={1})
    assert schedule.awake_union(-5, 0) == frozenset({0})


def test_spike_schedule_drops_and_recovers():
    schedule = SpikeSchedule(10, drop_fraction=0.6, start=5, duration=3)
    assert len(schedule.awake(4)) == 10
    assert len(schedule.awake(5)) == 4
    assert len(schedule.awake(7)) == 4
    assert len(schedule.awake(8)) == 10


def test_spike_validation():
    with pytest.raises(ValueError):
        SpikeSchedule(10, drop_fraction=1.5, start=0, duration=1)
    with pytest.raises(ValueError):
        SpikeSchedule(10, drop_fraction=0.5, start=0, duration=-1)


def test_diurnal_oscillates_between_bounds():
    schedule = DiurnalSchedule(20, period=10, min_fraction=0.3, max_fraction=1.0)
    sizes = [len(schedule.awake(r)) for r in range(20)]
    assert max(sizes) == 20  # peak at phase 0
    assert min(sizes) >= 6  # floor at min_fraction
    assert min(sizes) <= 7  # trough reaches the configured floor


def test_diurnal_window_drifts():
    schedule = DiurnalSchedule(10, period=8, min_fraction=0.5, max_fraction=0.5, drift=1)
    assert schedule.awake(0) != schedule.awake(3)


def test_random_churn_is_deterministic_and_bounded():
    a = RandomChurnSchedule(20, churn_per_round=0.1, seed=3)
    b = RandomChurnSchedule(20, churn_per_round=0.1, seed=3)
    for r in range(30):
        assert a.awake(r) == b.awake(r)
    c = RandomChurnSchedule(20, churn_per_round=0.1, seed=4)
    assert any(a.awake(r) != c.awake(r) for r in range(30))


@given(
    n=st.integers(min_value=2, max_value=40),
    churn=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=40, deadline=None)
def test_random_churn_respects_per_round_sleep_bound(n, churn, seed):
    schedule = RandomChurnSchedule(n, churn_per_round=churn, seed=seed, min_awake=1)
    for r in range(15):
        now = schedule.awake(r)
        nxt = schedule.awake(r + 1)
        slept = len(now - nxt)
        assert slept <= int(churn * len(now))
        assert len(nxt) >= 1


def test_random_churn_respects_min_awake():
    schedule = RandomChurnSchedule(10, churn_per_round=1.0, wake_probability=0.0, min_awake=4, seed=0)
    for r in range(20):
        assert len(schedule.awake(r)) >= 4


def test_random_churn_validation():
    with pytest.raises(ValueError):
        RandomChurnSchedule(5, churn_per_round=2.0)
    with pytest.raises(ValueError):
        RandomChurnSchedule(5, churn_per_round=0.1, min_awake=9)
    with pytest.raises(ValueError):
        RandomChurnSchedule(5, churn_per_round=0.1, initial_awake=frozenset())


def test_schedules_require_processes():
    with pytest.raises(ValueError):
        FullParticipation(0)
