"""Property-based simulator invariants under random schedules/adversaries.

These pin down the execution model itself (§2.1), independent of any
protocol: delivery causality, exactly-once delivery, sleepers receiving
nothing, and eventual delivery of everything once synchrony holds.
"""

from collections.abc import Sequence

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.signatures import KeyRegistry
from repro.sleepy.adversary import NullAdversary
from repro.sleepy.messages import Message, make_vote
from repro.sleepy.network import MultiWindowAsynchrony, SynchronousNetwork
from repro.sleepy.process import Process
from repro.sleepy.schedule import TableSchedule
from repro.sleepy.simulator import Simulation


class LedgerProcess(Process):
    """Sends one vote per round; ledgers every send/receive with rounds."""

    def __init__(self, pid, key, verifier):
        super().__init__(pid)
        self._key = key
        self._verifier = verifier
        self.sent: list[Message] = []
        self.deliveries: list[tuple[int, Message]] = []

    def send(self, round_number):
        vote = make_vote(self._verifier.registry, self._key, round_number, None)
        self.sent.append(vote)
        return [vote]

    def receive(self, round_number, messages: Sequence[Message]):
        self.deliveries.extend((round_number, m) for m in messages)


class SubsetAdversary(NullAdversary):
    """Delivers a pseudorandom subset during asynchronous rounds."""

    def __init__(self, pattern: list[bool]):
        self._pattern = pattern
        self._i = 0

    def deliver(self, round_number, receiver, deliverable, ctx):
        chosen = []
        for message in deliverable:
            keep = self._pattern[self._i % len(self._pattern)] if self._pattern else True
            self._i += 1
            if keep:
                chosen.append(message)
        return chosen


schedule_tables = st.lists(
    st.sets(st.integers(min_value=0, max_value=4), min_size=1, max_size=5),
    min_size=6,
    max_size=12,
)
async_windows = st.lists(
    st.tuples(st.integers(min_value=0, max_value=6), st.integers(min_value=1, max_value=3)),
    max_size=2,
)
subset_patterns = st.lists(st.booleans(), min_size=1, max_size=7)


def build(table, windows, pattern, tail_rounds=4):
    n = 5
    rounds = len(table)
    # Terminate with full participation + synchrony so "eventual
    # delivery" is checkable.
    full_table = {r: awake for r, awake in enumerate(table)}
    for r in range(rounds, rounds + tail_rounds):
        full_table[r] = set(range(n))
    schedule = TableSchedule(n, full_table, default=set(range(n)))
    # Clamp windows inside the pre-tail region and drop overlaps.
    clean = []
    occupied: set[int] = set()
    for ra, pi in windows:
        span = set(range(ra + 1, ra + pi + 1))
        if span and not span & occupied and max(span) < rounds:
            clean.append((ra, pi))
            occupied |= span
    network = MultiWindowAsynchrony(clean) if clean else SynchronousNetwork()
    registry = KeyRegistry(n, run_seed=1)
    sim = Simulation(
        registry,
        schedule,
        SubsetAdversary(pattern),
        network,
        lambda pid, key, verifier: LedgerProcess(pid, key, verifier),
    )
    sim.run(rounds + tail_rounds)
    return sim, rounds + tail_rounds


@given(schedule_tables, async_windows, subset_patterns)
@settings(max_examples=60, deadline=None)
def test_no_delivery_before_send_and_exactly_once(table, windows, pattern):
    sim, _ = build(table, windows, pattern)
    for process in sim.processes.values():
        seen: set[str] = set()
        for deliver_round, message in process.deliveries:
            assert message.round <= deliver_round  # causality
            assert message.message_id not in seen  # exactly-once
            seen.add(message.message_id)


@given(schedule_tables, async_windows, subset_patterns)
@settings(max_examples=60, deadline=None)
def test_sleepers_receive_nothing(table, windows, pattern):
    sim, horizon = build(table, windows, pattern)
    for pid, process in sim.processes.items():
        awake_receive_rounds = {
            r for r in range(horizon) if pid in sim.schedule.awake(r + 1)
        }
        for deliver_round, _ in process.deliveries:
            assert deliver_round in awake_receive_rounds


@given(schedule_tables, async_windows, subset_patterns)
@settings(max_examples=60, deadline=None)
def test_everything_is_delivered_once_synchrony_returns(table, windows, pattern):
    """Messages survive asynchrony: after the synchronous tail, every
    process has received every message ever sent (paper §2.1)."""
    sim, _ = build(table, windows, pattern)
    all_sent = {m.message_id for p in sim.processes.values() for m in p.sent}
    for process in sim.processes.values():
        received = {m.message_id for _, m in process.deliveries}
        assert received == all_sent


@given(schedule_tables, async_windows, subset_patterns)
@settings(max_examples=40, deadline=None)
def test_send_phases_match_schedule(table, windows, pattern):
    sim, horizon = build(table, windows, pattern)
    for pid, process in sim.processes.items():
        sent_rounds = [m.round for m in process.sent]
        expected = [r for r in range(horizon) if pid in sim.schedule.awake(r)]
        assert sent_rounds == expected
