"""Network models: window arithmetic."""

import pytest

from repro.sleepy.network import MultiWindowAsynchrony, SynchronousNetwork, WindowedAsynchrony


def test_synchronous_network():
    network = SynchronousNetwork()
    assert not any(network.is_asynchronous(r) for r in range(100))
    assert network.asynchronous_rounds(100) == ()


def test_windowed_asynchrony_covers_exactly_the_paper_interval():
    # Period [ra+1, ra+pi] per §2.1.
    network = WindowedAsynchrony(ra=5, pi=3)
    assert not network.is_asynchronous(5)
    assert network.is_asynchronous(6)
    assert network.is_asynchronous(8)
    assert not network.is_asynchronous(9)
    assert network.asynchronous_rounds(20) == (6, 7, 8)


def test_zero_length_window_is_synchrony():
    network = WindowedAsynchrony(ra=5, pi=0)
    assert network.asynchronous_rounds(20) == ()


def test_window_validation():
    with pytest.raises(ValueError):
        WindowedAsynchrony(ra=-1, pi=1)
    with pytest.raises(ValueError):
        WindowedAsynchrony(ra=0, pi=-1)


def test_multi_window():
    network = MultiWindowAsynchrony([(2, 2), (10, 1)])
    assert network.asynchronous_rounds(20) == (3, 4, 11)


def test_multi_window_rejects_overlap():
    with pytest.raises(ValueError, match="overlap"):
        MultiWindowAsynchrony([(2, 3), (4, 2)])
    # Adjacent-but-disjoint windows are fine.
    MultiWindowAsynchrony([(2, 2), (4, 2)])
