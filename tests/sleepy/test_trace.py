"""Trace accessors: participation unions and decision queries."""

import pytest

from repro.chain.block import genesis_block
from repro.chain.tree import BlockTree
from repro.sleepy.trace import DecisionEvent, RoundRecord, Trace

from tests.conftest import extend


def make_trace() -> Trace:
    tree = BlockTree([genesis_block()])
    trace = Trace(n=4, tree=tree)
    honest_sets = [frozenset({0, 1, 2}), frozenset({0, 1}), frozenset({1, 2, 3})]
    for r, honest in enumerate(honest_sets):
        trace.rounds.append(
            RoundRecord(
                round=r,
                awake=honest | {3},
                honest=honest,
                byzantine=frozenset({3}) - honest,
                asynchronous=False,
                votes_sent=0,
                proposes_sent=0,
                other_sent=0,
            )
        )
    return trace


def test_unions_follow_paper_notation():
    trace = make_trace()
    assert trace.honest_union(0, 1) == {0, 1, 2}
    assert trace.honest_union(1, 2) == {0, 1, 2, 3}
    # Below-zero rounds contribute the empty set.
    assert trace.honest_union(-5, 0) == {0, 1, 2}
    assert trace.awake_union(0, 0) == {0, 1, 2, 3}


def test_record_access_and_horizon():
    trace = make_trace()
    assert trace.horizon == 3
    assert trace.record(1).honest == {0, 1}
    with pytest.raises(IndexError):
        trace.record(10)


def test_decision_queries():
    trace = make_trace()
    chain = extend(trace.tree, genesis_block().block_id, 3)
    trace.decisions.extend(
        [
            DecisionEvent(pid=0, round=0, view=0, tip=chain[0].block_id),
            DecisionEvent(pid=1, round=1, view=1, tip=chain[1].block_id),
            DecisionEvent(pid=0, round=2, view=1, tip=chain[2].block_id),
        ]
    )
    assert trace.decided_tips_up_to(0) == {chain[0].block_id}
    assert trace.decided_tips_up_to(2) == {c.block_id for c in chain}
    assert trace.decisions_by(0) == [trace.decisions[0], trace.decisions[2]]
    assert trace.delivered_tip(0, 1) == chain[0].block_id
    assert trace.delivered_tip(0, 2) == chain[2].block_id
    assert trace.delivered_tip(3, 2) is None
    assert trace.deciders() == {0, 1}
    assert trace.last_decision_round() == 2


def test_empty_trace_defaults():
    trace = Trace(n=2)
    assert trace.horizon == 0
    assert trace.last_decision_round() is None
    assert trace.decided_tips_up_to(10) == frozenset()
