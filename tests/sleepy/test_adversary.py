"""Adversary strategies and context permissions."""

import pytest

from repro.chain.block import genesis_block
from repro.chain.tree import BlockTree
from repro.sleepy.adversary import (
    AdversaryContext,
    CrashAdversary,
    EquivocatingVoteAdversary,
    NullAdversary,
    SplitVoteAttack,
    StaticVoteAdversary,
    WithholdingAdversary,
)
from repro.sleepy.messages import ProposeMessage, VoteMessage, verify_message


@pytest.fixture
def ctx(registry):
    context = AdversaryContext(registry, BlockTree([genesis_block()]))
    context.grant_key(0)
    context.grant_key(1)
    return context


def test_context_denies_honest_keys(ctx):
    with pytest.raises(PermissionError):
        ctx.key_of(5)


def test_crafted_messages_verify(ctx, registry):
    vote = ctx.craft_vote(0, 3, None)
    assert verify_message(registry, vote)
    block = ctx.craft_block(1, view=2, parent=genesis_block().block_id)
    propose = ctx.craft_propose(1, 3, 2, block)
    assert verify_message(registry, propose)
    assert block.block_id in ctx.tree


def test_deepest_tip_tracks_tree(ctx):
    assert ctx.deepest_tip() == genesis_block().block_id
    block = ctx.craft_block(0, view=1, parent=genesis_block().block_id)
    assert ctx.deepest_tip() == block.block_id


def test_null_and_crash_adversaries():
    assert NullAdversary().byzantine(5) == frozenset()
    crash = CrashAdversary([1, 2], from_round=3)
    assert crash.byzantine(2) == frozenset()
    assert crash.byzantine(3) == frozenset({1, 2})
    assert crash.send(3, None) == ()


def test_static_vote_adversary_votes_every_round(ctx):
    adversary = StaticVoteAdversary([0, 1])
    messages = adversary.send(4, ctx)
    assert len(messages) == 2
    assert all(isinstance(m, VoteMessage) and m.round == 4 for m in messages)
    assert {m.sender for m in messages} == {0, 1}


def test_equivocating_adversary_sends_two_conflicting_votes(ctx):
    adversary = EquivocatingVoteAdversary([0, 1])
    messages = adversary.send(2, ctx)
    votes = [m for m in messages if isinstance(m, VoteMessage)]
    proposes = [m for m in messages if isinstance(m, ProposeMessage)]
    assert len(votes) == 4 and len(proposes) == 4
    by_sender = {}
    for vote in votes:
        by_sender.setdefault(vote.sender, set()).add(vote.tip)
    for tips in by_sender.values():
        assert len(tips) == 2
        a, b = tips
        assert ctx.tree.conflict(a, b)


def test_withholding_adversary_blacks_out(ctx):
    adversary = WithholdingAdversary()
    assert adversary.deliver(3, 0, ["anything"], ctx) == ()


def test_split_vote_attack_requires_decision_round():
    with pytest.raises(ValueError):
        SplitVoteAttack([0], target_round=3)  # odd round
    with pytest.raises(ValueError):
        SplitVoteAttack([0], target_round=0)


def test_split_vote_attack_partitions_delivery(ctx):
    adversary = SplitVoteAttack([0, 1], target_round=4)
    assert adversary.send(2, ctx) == ()  # silent outside the attack round
    messages = list(adversary.send(4, ctx))
    votes = [m for m in messages if isinstance(m, VoteMessage)]
    tips = {v.tip for v in votes}
    assert len(tips) == 2

    group0 = adversary.deliver(4, receiver=2, deliverable=messages, ctx=ctx)
    group1 = adversary.deliver(4, receiver=3, deliverable=messages, ctx=ctx)
    tips0 = {m.tip for m in group0 if isinstance(m, VoteMessage)}
    tips1 = {m.tip for m in group1 if isinstance(m, VoteMessage)}
    assert len(tips0) == 1 and len(tips1) == 1
    assert tips0 != tips1
    # Each group also gets the propose carrying its block.
    assert any(isinstance(m, ProposeMessage) for m in group0)
    # Outside the attack round delivery is unrestricted.
    assert adversary.deliver(6, receiver=2, deliverable=messages, ctx=ctx) == messages
