"""Signed messages: identity, verification, adversarial tampering."""

from repro.chain.block import Block, genesis_block
from repro.sleepy.messages import (
    CachedVerifier,
    ProposeMessage,
    VoteMessage,
    make_propose,
    make_vote,
    verify_message,
)


def test_vote_roundtrip(registry, genesis):
    key = registry.secret_key(2)
    vote = make_vote(registry, key, 5, genesis.block_id)
    assert vote.sender == 2
    assert vote.round == 5
    assert vote.tip == genesis.block_id
    assert verify_message(registry, vote)


def test_vote_for_empty_log(registry):
    vote = make_vote(registry, registry.secret_key(0), 1, None)
    assert vote.tip is None
    assert verify_message(registry, vote)


def test_tampered_vote_rejected(registry, genesis):
    key = registry.secret_key(2)
    vote = make_vote(registry, key, 5, genesis.block_id)
    other = Block(parent=genesis.block_id, proposer=9, view=1)
    tampered = VoteMessage(sender=2, round=5, signature=vote.signature, tip=other.block_id)
    assert not verify_message(registry, tampered)
    resender = VoteMessage(sender=3, round=5, signature=vote.signature, tip=vote.tip)
    assert not verify_message(registry, resender)
    replayed = VoteMessage(sender=2, round=6, signature=vote.signature, tip=vote.tip)
    assert not verify_message(registry, replayed)


def test_propose_roundtrip(registry, genesis):
    key = registry.secret_key(4)
    block = Block(parent=genesis.block_id, proposer=4, view=3)
    propose = make_propose(registry, key, 4, view=3, block=block)
    assert propose.tip == block.block_id
    assert verify_message(registry, propose)


def test_propose_with_wrong_vrf_rejected(registry, genesis):
    key4, key5 = registry.secret_key(4), registry.secret_key(5)
    block = Block(parent=genesis.block_id, proposer=4, view=3)
    honest = make_propose(registry, key4, 4, view=3, block=block)
    stolen = make_propose(registry, key5, 4, view=3, block=block)
    # Graft pid 5's (valid) VRF onto pid 4's proposal: signature breaks.
    grafted = ProposeMessage(
        sender=4,
        round=4,
        signature=honest.signature,
        view=3,
        block=block,
        vrf=stolen.vrf,
    )
    assert not verify_message(registry, grafted)


def test_propose_requires_block_and_vrf(registry):
    bogus = ProposeMessage(sender=0, round=0, signature="00", view=1, block=None, vrf=None)
    assert not verify_message(registry, bogus)


def test_message_ids_unique(registry, genesis):
    key = registry.secret_key(1)
    a = make_vote(registry, key, 1, genesis.block_id)
    b = make_vote(registry, key, 2, genesis.block_id)
    c = make_vote(registry, key, 1, None)
    assert len({a.message_id, b.message_id, c.message_id}) == 3
    assert a.message_id == make_vote(registry, key, 1, genesis.block_id).message_id


def test_cached_verifier_matches_uncached(registry, genesis):
    verifier = CachedVerifier(registry)
    vote = make_vote(registry, registry.secret_key(0), 1, genesis.block_id)
    bad = VoteMessage(sender=1, round=1, signature=vote.signature, tip=vote.tip)
    for _ in range(2):  # second pass exercises the memo
        assert verifier.verify(vote) is True
        assert verifier.verify(bad) is False


def test_genesis_propose_verifies(registry):
    # View-0 behaviour of Algorithm 1: propose [b0] with VRF(1).
    propose = make_propose(registry, registry.secret_key(0), 0, view=1, block=genesis_block())
    assert verify_message(registry, propose)
