"""Signed messages: identity, verification, adversarial tampering."""

from repro.chain.block import Block, genesis_block
from repro.sleepy.messages import (
    CachedVerifier,
    ProposeMessage,
    VoteMessage,
    make_propose,
    make_vote,
    verify_message,
)


def test_vote_roundtrip(registry, genesis):
    key = registry.secret_key(2)
    vote = make_vote(registry, key, 5, genesis.block_id)
    assert vote.sender == 2
    assert vote.round == 5
    assert vote.tip == genesis.block_id
    assert verify_message(registry, vote)


def test_vote_for_empty_log(registry):
    vote = make_vote(registry, registry.secret_key(0), 1, None)
    assert vote.tip is None
    assert verify_message(registry, vote)


def test_tampered_vote_rejected(registry, genesis):
    key = registry.secret_key(2)
    vote = make_vote(registry, key, 5, genesis.block_id)
    other = Block(parent=genesis.block_id, proposer=9, view=1)
    tampered = VoteMessage(sender=2, round=5, signature=vote.signature, tip=other.block_id)
    assert not verify_message(registry, tampered)
    resender = VoteMessage(sender=3, round=5, signature=vote.signature, tip=vote.tip)
    assert not verify_message(registry, resender)
    replayed = VoteMessage(sender=2, round=6, signature=vote.signature, tip=vote.tip)
    assert not verify_message(registry, replayed)


def test_propose_roundtrip(registry, genesis):
    key = registry.secret_key(4)
    block = Block(parent=genesis.block_id, proposer=4, view=3)
    propose = make_propose(registry, key, 4, view=3, block=block)
    assert propose.tip == block.block_id
    assert verify_message(registry, propose)


def test_propose_with_wrong_vrf_rejected(registry, genesis):
    key4, key5 = registry.secret_key(4), registry.secret_key(5)
    block = Block(parent=genesis.block_id, proposer=4, view=3)
    honest = make_propose(registry, key4, 4, view=3, block=block)
    stolen = make_propose(registry, key5, 4, view=3, block=block)
    # Graft pid 5's (valid) VRF onto pid 4's proposal: signature breaks.
    grafted = ProposeMessage(
        sender=4,
        round=4,
        signature=honest.signature,
        view=3,
        block=block,
        vrf=stolen.vrf,
    )
    assert not verify_message(registry, grafted)


def test_propose_requires_block_and_vrf(registry):
    bogus = ProposeMessage(sender=0, round=0, signature="00", view=1, block=None, vrf=None)
    assert not verify_message(registry, bogus)


def test_message_ids_unique(registry, genesis):
    key = registry.secret_key(1)
    a = make_vote(registry, key, 1, genesis.block_id)
    b = make_vote(registry, key, 2, genesis.block_id)
    c = make_vote(registry, key, 1, None)
    assert len({a.message_id, b.message_id, c.message_id}) == 3
    assert a.message_id == make_vote(registry, key, 1, genesis.block_id).message_id


def test_cached_verifier_matches_uncached(registry, genesis):
    verifier = CachedVerifier(registry)
    vote = make_vote(registry, registry.secret_key(0), 1, genesis.block_id)
    bad = VoteMessage(sender=1, round=1, signature=vote.signature, tip=vote.tip)
    for _ in range(2):  # second pass exercises the memo
        assert verifier.verify(vote) is True
        assert verifier.verify(bad) is False


def test_transplanted_signature_rejected_despite_poisoned_cache_key(registry, genesis):
    """Regression: a message whose ``sender`` does not match the key
    that produced its (otherwise valid) signature must be rejected even
    when its memoised ``message_id`` is transplanted from the victim —
    the verifier keys its cache by a digest it recomputes itself."""
    verifier = CachedVerifier(registry)
    victim = make_vote(registry, registry.secret_key(9), 3, genesis.block_id)
    assert verifier.verify(victim)  # the True verdict is now cached
    transplant = VoteMessage(
        sender=0, round=3, signature=victim.signature, tip=genesis.block_id
    )
    object.__setattr__(transplant, "_message_id", victim.message_id)
    assert transplant.message_id == victim.message_id
    assert not verifier.verify(transplant)
    # And the batch path agrees.
    batch = verifier.batch([victim, transplant])
    assert batch.votes == (victim,)
    assert batch.rejected == 1


def test_batch_matches_single_message_verification(registry, genesis):
    verifier = CachedVerifier(registry)
    key = registry.secret_key(4)
    block = Block(parent=genesis.block_id, proposer=4, view=1)
    good_vote = make_vote(registry, key, 2, genesis.block_id)
    good_propose = make_propose(registry, key, 2, view=1, block=block)
    bad = VoteMessage(sender=5, round=2, signature=good_vote.signature, tip=genesis.block_id)
    batch = verifier.batch([good_vote, bad, good_propose])
    assert batch.messages == (good_vote, good_propose)
    assert batch.votes == (good_vote,)
    assert batch.proposes == (good_propose,)
    assert batch.rejected == 1


def test_genesis_propose_verifies(registry):
    # View-0 behaviour of Algorithm 1: propose [b0] with VRF(1).
    propose = make_propose(registry, registry.secret_key(0), 0, view=1, block=genesis_block())
    assert verify_message(registry, propose)
