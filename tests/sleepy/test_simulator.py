"""Round simulator semantics: phases, delivery, model enforcement."""

from collections.abc import Sequence

import pytest

from repro.crypto.signatures import KeyRegistry
from repro.sleepy.adversary import NullAdversary
from repro.sleepy.messages import Message, make_vote
from repro.sleepy.network import SynchronousNetwork, WindowedAsynchrony
from repro.sleepy.process import Process
from repro.sleepy.schedule import FullParticipation, TableSchedule
from repro.sleepy.simulator import ModelViolationError, Simulation


class ProbeProcess(Process):
    """Votes for the empty log every round; records everything."""

    def __init__(self, pid, key, verifier):
        super().__init__(pid)
        self._key = key
        self._verifier = verifier
        self.send_rounds: list[int] = []
        self.received: list[tuple[int, tuple[str, ...]]] = []

    def send(self, round_number: int) -> Sequence[Message]:
        self.send_rounds.append(round_number)
        return [make_vote(self._verifier.registry, self._key, round_number, None)]

    def receive(self, round_number: int, messages: Sequence[Message]) -> None:
        self.received.append((round_number, tuple(m.message_id for m in messages)))

    def received_ids(self) -> set[str]:
        return {mid for _, ids in self.received for mid in ids}


def probe_factory(pid, key, verifier):
    return ProbeProcess(pid, key, verifier)


def make_sim(n=4, schedule=None, adversary=None, network=None):
    registry = KeyRegistry(n, run_seed=1)
    return Simulation(
        registry,
        schedule or FullParticipation(n),
        adversary or NullAdversary(),
        network or SynchronousNetwork(),
        probe_factory,
    )


def test_everyone_sends_and_receives_each_synchronous_round():
    sim = make_sim(n=3)
    sim.run(4)
    for process in sim.processes.values():
        assert process.send_rounds == [0, 1, 2, 3]
        # Each round: one vote from each of the 3 processes (self included).
        assert [len(ids) for _, ids in process.received] == [3, 3, 3, 3]


def test_no_duplicate_deliveries_under_synchrony():
    sim = make_sim(n=3)
    sim.run(5)
    for process in sim.processes.values():
        all_ids = [mid for _, ids in process.received for mid in ids]
        assert len(all_ids) == len(set(all_ids))


def test_sleeper_gets_backlog_on_wake():
    # Process 2 sleeps during rounds 1 and 2 (O_1, O_2), returns in O_3.
    schedule = TableSchedule(3, {1: {0, 1}, 2: {0, 1}}, default={0, 1, 2})
    sim = make_sim(n=3, schedule=schedule)
    sim.run(4)
    sleeper = sim.processes[2]
    assert sleeper.send_rounds == [0, 3]
    # Not in O_1 ⇒ missed even round 0's receive phase (receive phases
    # belong to O_{r+1}).  Awake again at the beginning of round 3 ⇒
    # participated in round 2's receive phase and picked up the entire
    # backlog of rounds 0–2 at once.
    receive_rounds = [r for r, _ in sleeper.received]
    assert receive_rounds == [2, 3]
    assert len(sleeper.received[0][1]) == 7  # 3 + 2 + 2 votes from rounds 0-2
    awake_ids = sim.processes[0].received_ids()
    assert sleeper.received_ids() == awake_ids


def test_asleep_process_not_consulted():
    schedule = TableSchedule(2, {1: {0}}, default={0, 1})
    sim = make_sim(n=2, schedule=schedule)
    sim.run(2)
    assert sim.processes[1].send_rounds == [0]


class SelectiveAdversary(NullAdversary):
    """Delivers only the lexicographically first deliverable message."""

    def deliver(self, round_number, receiver, deliverable, ctx):
        return sorted(deliverable, key=lambda m: m.message_id)[:1]


def test_asynchronous_round_delivery_is_adversary_controlled():
    sim = make_sim(n=3, adversary=SelectiveAdversary(), network=WindowedAsynchrony(ra=0, pi=1))
    sim.run(3)
    for process in sim.processes.values():
        by_round = dict(process.received)
        assert len(by_round[0]) == 3  # round 0: synchronous
        assert len(by_round[1]) == 1  # round 1: asynchronous, 1 delivered
        # Round 2 synchronous: the withheld round-1 votes arrive with round 2's.
        assert len(by_round[2]) == 5
        assert len(process.received_ids()) == 9


class InjectingAdversary(NullAdversary):
    """Tries to deliver a message that was never deliverable."""

    def __init__(self, registry):
        self._registry = registry

    def deliver(self, round_number, receiver, deliverable, ctx):
        forged = make_vote(self._registry, self._registry.secret_key(0), 99, None)
        return [forged]


def test_adversary_cannot_inject_through_delivery():
    registry = KeyRegistry(2, run_seed=0)
    sim = Simulation(
        registry,
        FullParticipation(2),
        InjectingAdversary(registry),
        WindowedAsynchrony(ra=0, pi=1),
        probe_factory,
    )
    sim.run(1)  # round 0 synchronous: fine
    with pytest.raises(ModelViolationError, match="outside the deliverable set"):
        sim.run(1)


class ShrinkingAdversary(NullAdversary):
    growing = True

    def byzantine(self, round_number):
        return frozenset({0}) if round_number == 0 else frozenset()


def test_growing_adversary_must_be_monotone():
    sim = make_sim(n=3, adversary=ShrinkingAdversary())
    with pytest.raises(ModelViolationError, match="shrank"):
        sim.run(2)


class MisattributingProcess(ProbeProcess):
    def send(self, round_number):
        wrong_key = self._verifier.registry.secret_key((self.pid + 1) % 2)
        return [make_vote(self._verifier.registry, wrong_key, round_number, None)]


def test_honest_process_cannot_send_as_another():
    registry = KeyRegistry(2, run_seed=0)
    sim = Simulation(
        registry,
        FullParticipation(2),
        NullAdversary(),
        SynchronousNetwork(),
        lambda pid, key, verifier: MisattributingProcess(pid, key, verifier),
    )
    with pytest.raises(ModelViolationError, match="signed as"):
        sim.run(1)


class ImpersonatingAdversary(NullAdversary):
    def __init__(self, registry):
        self._registry = registry

    def byzantine(self, round_number):
        return frozenset({1})

    def send(self, round_number, ctx):
        # Signs with an honest key it should not have.
        return [make_vote(self._registry, self._registry.secret_key(0), round_number, None)]


def test_adversary_cannot_send_as_honest_process():
    registry = KeyRegistry(3, run_seed=0)
    sim = Simulation(
        registry,
        FullParticipation(3),
        ImpersonatingAdversary(registry),
        SynchronousNetwork(),
        probe_factory,
    )
    with pytest.raises(ModelViolationError, match="not corrupted"):
        sim.run(1)


def test_byzantine_processes_never_sleep_and_never_receive():
    class ByzAdversary(NullAdversary):
        def byzantine(self, round_number):
            return frozenset({1})

    # Process 1 is scheduled asleep, but corruption keeps it in O_r.
    schedule = TableSchedule(3, {}, default={0, 2})
    sim = make_sim(n=3, schedule=schedule, adversary=ByzAdversary())
    trace = sim.run(3)
    for rec in trace.rounds:
        assert 1 in rec.awake
        assert 1 in rec.byzantine
        assert rec.honest == frozenset({0, 2})
    assert sim.processes[1].send_rounds == []
    assert sim.processes[1].received == []


def test_trace_round_records_message_counts():
    sim = make_sim(n=3)
    trace = sim.run(2)
    assert trace.rounds[0].votes_sent == 3
    assert trace.rounds[0].proposes_sent == 0
    assert trace.horizon == 2


def test_run_continues_from_previous_horizon():
    sim = make_sim(n=2)
    sim.run(2)
    trace = sim.run(3)
    assert [rec.round for rec in trace.rounds] == [0, 1, 2, 3, 4]


def test_schedule_registry_size_mismatch_rejected():
    registry = KeyRegistry(3, run_seed=0)
    with pytest.raises(ValueError, match="disagree"):
        Simulation(
            registry,
            FullParticipation(4),
            NullAdversary(),
            SynchronousNetwork(),
            probe_factory,
        )
