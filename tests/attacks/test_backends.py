"""One script, every substrate: simulator, in-process asyncio, sharded.

The acceptance spine of the attack subsystem: the same
:class:`~repro.attacks.script.AttackScript` must run on the round
simulator (via :class:`~repro.attacks.adversary.ScriptedAdversary`), the
single-process deployment, and a ``processes=2`` deployment (via
:class:`~repro.net.proxy_transport.ProxyTransport` with
coordinator-broadcast phase frames) — with the resilient protocol safe
in every case and the attack observably biting (audit counters).
"""

import pytest

from repro.analysis import check_safety
from repro.attacks import ATTACKS, apply_script, delay_only, get_script
from repro.engine.backend import run_spec
from repro.engine.deploy_backend import DeploymentBackend
from repro.engine.spec import RunSpec, stable_digest
from repro.net.socket_transport import supports_unix_sockets

#: Decision-set digests for the delay-only scripts on the simulator
#: (n=8, η=6, seed=0, 4 tail rounds).  Scripted delay is deterministic —
#: a changed digest means the attack semantics changed, not noise.
GOLDEN_DECISIONS = {
    "partition-heal": "94e8858fc7b706e2",
    "surge-recover": "cc43e1bf9fc0a271",
    "partition-surge": "5a3f091d600fda2f",
}


def _scripted_spec(name: str, n: int, protocol: str = "resilient", eta: int = 6) -> RunSpec:
    script = get_script(name, n)
    base = RunSpec(n=n, rounds=script.total_rounds + 4, protocol=protocol, eta=eta, seed=0)
    return apply_script(base, script)


def _decision_digest(trace) -> str:
    return stable_digest(sorted((d.pid, d.round, d.view, d.tip) for d in trace.decisions))[:16]


# ----------------------------------------------------------------------
# Simulator
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(ATTACKS))
def test_resilient_protocol_survives_every_library_script(name):
    result = run_spec(_scripted_spec(name, 10))
    assert check_safety(result.trace).ok
    assert result.trace.decisions


def test_mmr_splits_under_partition_surge():
    """The paper's headline, scripted: MMR without expiration forks."""
    result = run_spec(_scripted_spec("partition-surge", 10, protocol="mmr", eta=0))
    assert not check_safety(result.trace).ok


@pytest.mark.parametrize("name", sorted(GOLDEN_DECISIONS))
def test_delay_only_scripts_are_bit_identical_on_the_simulator(name):
    assert delay_only(get_script(name, 8))
    first = run_spec(_scripted_spec(name, 8))
    second = run_spec(_scripted_spec(name, 8))
    assert _decision_digest(first.trace) == _decision_digest(second.trace)
    assert _decision_digest(first.trace) == GOLDEN_DECISIONS[name]


# ----------------------------------------------------------------------
# Deployment substrates
# ----------------------------------------------------------------------
def test_acceptance_script_runs_on_all_three_substrates():
    spec = _scripted_spec("partition-surge", 6)

    sim = run_spec(spec)
    assert check_safety(sim.trace).ok and sim.trace.decisions

    single = DeploymentBackend(delta_s=0.01).execute(spec)
    assert check_safety(single.trace).ok and single.trace.decisions
    totals = single.extras["attack"]["totals"]
    assert totals["partitioned"] > 0 and totals["delayed"] > 0
    # Per-phase audit rows: interference lands only in its own phases.
    per_phase = single.extras["attack"]["per_phase"]
    assert per_phase[0] == {"partitioned": 0, "delayed": 0, "dropped": 0}
    assert per_phase[1]["partitioned"] > 0 and per_phase[1]["delayed"] == 0
    assert per_phase[3]["delayed"] > 0 and per_phase[3]["partitioned"] == 0

    if not supports_unix_sockets():
        pytest.skip("sharded deployment needs AF_UNIX")
    multi = DeploymentBackend(delta_s=0.01, processes=2).execute(spec)
    assert check_safety(multi.trace).ok and multi.trace.decisions
    totals = multi.extras["attack"]["totals"]
    assert totals["partitioned"] > 0 and totals["delayed"] > 0


def test_scripted_crash_faults_reach_the_deployment_trace():
    spec = _scripted_spec("equivocation-storm", 10)
    result = DeploymentBackend(delta_s=0.01).execute(spec)
    assert check_safety(result.trace).ok
    # The corrupted pids are recorded byzantine from the first phase on.
    assert set(result.trace.rounds[5].byzantine) == {8, 9}


@pytest.mark.skipif(not supports_unix_sockets(), reason="needs AF_UNIX")
def test_equivocation_scripts_are_rejected_on_sharded_deployments():
    spec = _scripted_spec("equivocation-storm", 10)
    with pytest.raises(ValueError, match="equivocation"):
        DeploymentBackend(delta_s=0.01, processes=2).execute(spec)
