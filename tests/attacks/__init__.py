"""Scheduled-attack DSL, scripted adversary, and substrate-equivalence tests."""
