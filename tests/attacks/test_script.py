"""The attack DSL: validation, timeline semantics, digests, composition."""

import pickle
import subprocess
import sys

import pytest

from repro.attacks import (
    ATTACKS,
    AttackScript,
    ScriptedAdversary,
    ScriptSchedule,
    apply_script,
    corrupt,
    delay_only,
    drop,
    equivocate,
    get_script,
    heal,
    partition,
    phase,
    sleep,
    surge,
    wake,
)
from repro.engine.spec import RunSpec


# ----------------------------------------------------------------------
# Grammar validation
# ----------------------------------------------------------------------
def test_partition_needs_two_disjoint_groups():
    with pytest.raises(ValueError, match="two groups"):
        partition((0, 1, 2))
    with pytest.raises(ValueError, match="overlap"):
        partition((0, 1), (1, 2))


def test_surge_and_drop_validate_parameters():
    with pytest.raises(ValueError, match="factor"):
        surge(0.5)
    with pytest.raises(ValueError, match="probability"):
        drop(0, 1, 1.5)


def test_phase_and_script_validate_shape():
    with pytest.raises(ValueError, match="at least one round"):
        phase(0)
    with pytest.raises(ValueError, match="at least one phase"):
        AttackScript(name="empty", phases=())


def test_first_phase_must_be_delivery_benign():
    for op in (partition((0,), (1,)), surge(), drop(None, None, 0.1)):
        with pytest.raises(ValueError, match="first phase"):
            AttackScript(name="x", phases=(phase(2, op),))
    # Behaviour ops are fine in the first phase.
    AttackScript(name="ok", phases=(phase(2, corrupt(0), sleep(1)),))


def test_get_script_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown attack script"):
        get_script("nope", 8)


# ----------------------------------------------------------------------
# Timeline semantics
# ----------------------------------------------------------------------
def _timeline(*phases_):
    return AttackScript(name="t", phases=tuple(phases_)).timeline()


def test_delivery_ops_persist_until_heal():
    timeline = _timeline(phase(2), phase(2, partition((0,), (1,))), phase(2), phase(2, heal()))
    assert not timeline.state_at(1).delivery_active
    assert timeline.state_at(2).blocks(0, 1)
    # The partition persists through the op-less third phase...
    assert timeline.state_at(5).blocks(0, 1)
    # ...and heal clears it.
    assert not timeline.state_at(6).delivery_active


def test_corruption_is_cumulative_and_outlives_the_script():
    timeline = _timeline(phase(2, corrupt(7)), phase(2, corrupt(6), heal()), phase(2))
    assert timeline.corrupted_at(0) == {7}
    assert timeline.corrupted_at(3) == {6, 7}
    # Past the script's end: delivery is quiescent, corruption persists.
    assert timeline.corrupted_at(1000) == {6, 7}
    assert not timeline.state_at(1000).delivery_active


def test_sleep_accumulates_and_wake_undoes_it():
    timeline = _timeline(phase(2, sleep(0, 1)), phase(2, sleep(2)), phase(2, wake(0, 2)))
    assert timeline.sleeping_at(0) == {0, 1}
    assert timeline.sleeping_at(2) == {0, 1, 2}
    assert timeline.sleeping_at(4) == {1}
    assert timeline.sleeping_at(1000) == {1}


def test_equivocation_ends_with_heal():
    timeline = _timeline(phase(2, corrupt(3)), phase(2, equivocate()), phase(2, heal()))
    assert not timeline.state_at(0).equivocating
    assert timeline.state_at(2).equivocating
    assert not timeline.state_at(4).equivocating


def test_drop_rules_combine_independently():
    timeline = _timeline(phase(1), phase(1, drop(None, 1, 0.5), drop(0, None, 0.5)))
    state = timeline.state_at(1)
    assert state.drop_probability(0, 1) == pytest.approx(0.75)
    assert state.drop_probability(0, 2) == pytest.approx(0.5)
    assert state.drop_probability(2, 3) == 0.0


def test_partition_groups_leave_an_implicit_remainder_group():
    timeline = _timeline(phase(1), phase(1, partition((0, 1), (2,))))
    state = timeline.state_at(1)
    # pids 3+ are not listed: they form one implicit group together.
    assert not state.blocks(3, 4)
    assert state.blocks(0, 3)
    assert state.blocks(2, 3)


def test_conditions_cover_exactly_the_delivery_active_rounds():
    script = get_script("partition-surge", 10)
    periods = script.conditions().periods
    assert [(p.ra, p.pi) for p in periods] == [(3, 3), (11, 3)]
    # The scripted realisation replaces the physical surge.
    assert all(p.surge_factor == 1.0 for p in periods)


# ----------------------------------------------------------------------
# Digests and pickling (scripts are sweep-journal key material)
# ----------------------------------------------------------------------
def test_digest_is_content_derived():
    assert get_script("partition-heal", 8).digest() == get_script("partition-heal", 8).digest()
    assert get_script("partition-heal", 8).digest() != get_script("partition-heal", 10).digest()
    assert get_script("partition-heal", 8).digest() != get_script("surge-recover", 8).digest()


def test_every_library_script_pickles_with_a_stable_digest():
    for name in ATTACKS:
        script = get_script(name, 10)
        clone = pickle.loads(pickle.dumps(script))
        assert clone == script
        assert clone.digest() == script.digest()


def test_digest_stable_across_processes():
    """The journal property: a fresh interpreter derives the same digest."""
    code = (
        "import sys; sys.path.insert(0, 'src')\n"
        "from repro.attacks import get_script\n"
        "print(get_script('partition-surge', 8).digest())"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
        cwd="/root/repo",
    )
    assert out.stdout.strip() == get_script("partition-surge", 8).digest()


def test_scripted_spec_digest_is_stable():
    script = get_script("lossy-links", 8)
    spec_a = apply_script(RunSpec(n=8, rounds=20, eta=6, seed=0), script)
    spec_b = apply_script(RunSpec(n=8, rounds=20, eta=6, seed=0), get_script("lossy-links", 8))
    assert spec_a.digest() == spec_b.digest()


# ----------------------------------------------------------------------
# apply_script composition
# ----------------------------------------------------------------------
def test_apply_script_wires_adversary_conditions_and_meta():
    script = get_script("partition-heal", 8)
    spec = apply_script(RunSpec(n=8, rounds=20, eta=6, seed=3), script)
    assert isinstance(spec.adversary, ScriptedAdversary)
    assert spec.adversary.seed == 3
    assert spec.meta["attack"] == "partition-heal"
    assert [(p.ra, p.pi) for p in spec.conditions.periods] == [(3, 4)]
    # No sleep ops: the schedule is untouched.
    assert not isinstance(spec.schedule, ScriptSchedule)


def test_apply_script_wraps_the_schedule_only_for_sleep_scripts():
    spec = apply_script(RunSpec(n=9, rounds=20, eta=6), get_script("sleep-storm", 9))
    assert isinstance(spec.schedule, ScriptSchedule)
    awake = spec.schedule.awake(5)  # surge phase: sleepers 0..2 are out
    assert awake == frozenset(range(3, 9))


def test_apply_script_rejects_conflicting_specs():
    from repro.sleepy.adversary import NullAdversary

    script = get_script("partition-heal", 8)
    with pytest.raises(ValueError, match="without an adversary"):
        apply_script(RunSpec(n=8, rounds=20, adversary=NullAdversary()), script)


def test_delay_only_classification():
    assert delay_only(get_script("partition-heal", 8))
    assert delay_only(get_script("surge-recover", 8))
    assert delay_only(get_script("partition-surge", 8))
    # Sleep rides the participation schedule, not the fabric, so a
    # sleep script still runs unchanged on every substrate.
    assert delay_only(get_script("sleep-storm", 9))
    assert not delay_only(get_script("lossy-links", 8))
    assert not delay_only(get_script("equivocation-storm", 10))
