"""The wire-throughput harness at toy scale: exact counters, both modes."""

import pytest

from repro.net.socket_transport import supports_unix_sockets
from repro.net.wire_bench import WireBenchConfig, run_wire_benchmark

pytestmark = pytest.mark.skipif(
    not supports_unix_sockets(), reason="wire bench workers need AF_UNIX"
)


def _tiny(batching):
    return WireBenchConfig(
        n=8,
        processes=2,
        transactions=32,
        rate_per_round=8,
        payload_bytes=16,
        seed=3,
        batching=batching,
        budget_s=60.0,
    )


def test_wire_bench_delivers_every_frame_in_both_modes():
    for batching in (True, False):
        report = run_wire_benchmark(_tiny(batching))
        totals = report["totals"]
        # 32 transactions, each delivered to the 7 non-origin pids; the
        # 4 pids sharing the origin's process receive in-process, the
        # remaining 4 over the socket.
        assert totals["submitted"] == 32
        assert totals["received"] == totals["expected"] == 32 * 7
        assert totals["sent"] == 32 * 7
        assert totals["frames_sent"] == totals["frames_received"] == 32 * 4
        assert totals["misrouted"] == 0
        assert report["wall_s"] > 0
        assert report["tx_per_s"] > 0
        if batching:
            assert totals["payload_encodes"] == 32
            assert totals["payload_reuses"] == 32 * 4 - 32
            assert 0 < totals["batches_sent"] == totals["batches_received"]
        else:
            assert totals["payload_encodes"] == 32 * 4
            assert totals["payload_reuses"] == 0
            assert totals["batches_sent"] == 0
        for worker in report["workers"]:
            assert worker["received"] == worker["expected"]
            assert (worker["timers_created"] is not None) == batching
