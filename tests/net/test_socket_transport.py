"""Socket transport: framing, mesh routing, local loopback, audit counters."""

import asyncio
import pickle

import pytest

from repro.net.socket_transport import (
    BATCH_VERSION,
    MAX_FRAME_BYTES,
    EncodedPayloadCache,
    SocketTransport,
    decode_batch,
    encode_batch,
    encode_frame,
    read_frame,
    supports_unix_sockets,
)


def test_frame_roundtrip():
    payload = {"a": 1, "b": (2, 3), "c": b"bytes"}
    frame = encode_frame(payload)
    assert frame[:4] == len(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)).to_bytes(4, "big")

    async def roundtrip():
        reader = asyncio.StreamReader()
        reader.feed_data(frame)
        reader.feed_eof()
        return await read_frame(reader)

    assert asyncio.run(roundtrip()) == payload


def test_oversized_length_prefix_rejected():
    async def poisoned():
        reader = asyncio.StreamReader()
        reader.feed_data((MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"junk")
        with pytest.raises(ValueError, match="exceeds"):
            await read_frame(reader)

    asyncio.run(poisoned())


def _mesh_pair(tmp_path):
    """Two workers (pids {0} and {1,2}) joined over UNIX sockets."""
    addresses = {0: str(tmp_path / "w0.sock"), 1: str(tmp_path / "w1.sock")}
    owner = {0: 0, 1: 1, 2: 1}
    common = dict(base_latency_s=0.001, jitter_s=0.0, seed=0)
    a = SocketTransport(
        3, local_pids=(0,), owner=owner, worker_id=0, addresses=addresses, **common
    )
    b = SocketTransport(
        3, local_pids=(1, 2), owner=owner, worker_id=1, addresses=addresses, **common
    )
    return a, b


@pytest.mark.skipif(not supports_unix_sockets(), reason="needs AF_UNIX")
def test_cross_worker_and_local_delivery(tmp_path):
    async def scenario():
        a, b = _mesh_pair(tmp_path)
        await a.start()
        await b.start()
        await a.connect()
        await b.connect()
        a.anchor()
        b.anchor()
        try:
            a.send(0, 1, "remote")  # crosses the socket to worker b
            b.send(1, 2, "local")  # loops back inside worker b
            b.send(2, 0, "back")  # crosses the socket to worker a
            assert await asyncio.wait_for(b.recv(1), timeout=2) == (0, "remote")
            assert await asyncio.wait_for(b.recv(2), timeout=2) == (1, "local")
            assert await asyncio.wait_for(a.recv(0), timeout=2) == (2, "back")
            # Local loopback never touches the socket mesh.
            assert a.frames_sent == 1 and b.frames_sent == 1
            assert a.frames_received == 1 and b.frames_received == 1
            assert a.misrouted_count == 0 and b.misrouted_count == 0
        finally:
            await a.close()
            await b.close()

    asyncio.run(scenario())


@pytest.mark.skipif(not supports_unix_sockets(), reason="needs AF_UNIX")
def test_modelled_latencies_match_sim_transport(tmp_path):
    """A sharded transport draws exactly the per-link latencies the
    single-process SimTransport would — the reproducibility contract
    that keeps multi-process runs equivalent."""
    from repro.net.transport import SimTransport

    async def scenario():
        a, _b = _mesh_pair(tmp_path)
        sim = SimTransport(3, base_latency_s=0.001, jitter_s=0.004, seed=0)
        socketed = SocketTransport(
            3,
            local_pids=(0,),
            owner={0: 0, 1: 1, 2: 1},
            worker_id=0,
            addresses={},
            base_latency_s=0.001,
            jitter_s=0.004,
            seed=0,
        )
        return [
            (sim.latency(src, dst, 0.0), socketed.latency(src, dst, 0.0))
            for src in range(3)
            for dst in range(3)
            if src != dst
            for _ in range(3)
        ]

    for sim_sample, socket_sample in asyncio.run(scenario()):
        assert sim_sample == socket_sample


@pytest.mark.skipif(not supports_unix_sockets(), reason="needs AF_UNIX")
def test_misrouted_frames_are_counted_not_dropped_silently(tmp_path):
    async def scenario():
        a, b = _mesh_pair(tmp_path)
        await a.start()
        await b.start()
        await a.connect()
        await b.connect()
        a.anchor()
        b.anchor()
        try:
            # Fault injection: worker a forgets it hosts pid 0 and
            # frames it to worker b, which does not host pid 0 either.
            a._local_pids = frozenset()
            a._owner[0] = 1
            a.send(1, 0, "lost?")
            await asyncio.sleep(0.1)
            assert b.misrouted_count == 1
        finally:
            await a.close()
            await b.close()

    asyncio.run(scenario())


def test_send_requires_anchor():
    transport = SocketTransport(
        2, local_pids=(0, 1), owner={0: 0, 1: 0}, worker_id=0, addresses={}
    )
    with pytest.raises(RuntimeError, match="not anchored"):
        transport.send(0, 1, "x")
    with pytest.raises(RuntimeError, match="not anchored"):
        transport.send_many(0, (1,), "x")


# ----------------------------------------------------------------------
# Frame v2 batches
# ----------------------------------------------------------------------
def _body(payload):
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def test_batch_roundtrip_shares_one_decoded_body():
    body = _body(["shared"])
    chunks = encode_batch([(0, dst, "key", body) for dst in range(1, 6)])
    assert len(chunks) == 1
    blob = chunks[0][4:]
    assert blob[0] == BATCH_VERSION
    frames = decode_batch(blob)
    assert frames == [(0, dst, ["shared"]) for dst in range(1, 6)]
    # One body on the wire, one unpickle: every frame shares the object.
    first = frames[0][2]
    assert all(payload is first for _, _, payload in frames)


def test_batch_splits_cleanly_at_the_byte_cap():
    body = _body(b"x" * 100)
    frames = [(0, dst, "key", body) for dst in range(10)]
    chunks = encode_batch(frames, max_bytes=180)
    assert len(chunks) > 1
    decoded = []
    for chunk in chunks:
        assert len(chunk) - 4 <= 180
        decoded.extend(decode_batch(chunk[4:]))
    # Bodies are re-emitted per chunk; no frame is lost or reordered.
    assert [(src, dst) for src, dst, _ in decoded] == [(0, dst) for dst in range(10)]
    assert all(payload == b"x" * 100 for _, _, payload in decoded)


def test_single_oversized_frame_rejected():
    with pytest.raises(ValueError, match="exceeds"):
        encode_batch([(0, 1, "key", _body(b"y" * 100))], max_bytes=50)


def test_torn_batch_blobs_raise_value_error():
    (chunk,) = encode_batch([(0, dst, "key", _body("p")) for dst in range(3)])
    blob = chunk[4:]
    # Truncations at any depth are a framing error, not a partial delivery.
    for cut in (1, 2, 5, len(blob) - 3):
        with pytest.raises(ValueError, match="torn batch"):
            decode_batch(blob[:cut])
    with pytest.raises(ValueError, match="torn batch"):
        decode_batch(blob + b"junk")
    with pytest.raises(ValueError, match="not a frame v2"):
        decode_batch(b"\x80rest")


def test_partial_batch_frame_at_eof_raises_incomplete_read():
    (chunk,) = encode_batch([(0, 1, "key", _body("p"))])

    async def torn_stream():
        reader = asyncio.StreamReader()
        reader.feed_data(chunk[: len(chunk) // 2])
        reader.feed_eof()
        with pytest.raises(asyncio.IncompleteReadError):
            await read_frame(reader)

    asyncio.run(torn_stream())


def test_encoded_payload_cache_reuses_bytes_and_interns_equal_bodies():
    cache = EncodedPayloadCache(capacity=2)
    payload = ["p"]
    key1, body1, fresh1 = cache.encode(payload)
    key2, body2, fresh2 = cache.encode(payload)
    assert fresh1 and not fresh2
    assert key1 == key2 and body1 is body2
    # A distinct but equal payload pickles again, yet interns to the
    # same batch key — one body on the wire for one logical payload.
    key3, _body3, fresh3 = cache.encode(["p"])
    assert fresh3 and key3 == key1
    # Eviction (capacity 2) stays correct: re-encoding is fresh again.
    cache.encode(["q"])
    cache.encode(["r"])
    _, _, fresh4 = cache.encode(payload)
    assert fresh4


def test_encoded_payload_cache_interns_messages_by_content_digest():
    from repro.crypto.signatures import KeyRegistry
    from repro.sleepy.messages import make_vote

    registry = KeyRegistry(1)
    key = registry.secret_key(0)
    # Two distinct instances of the same logical vote: equal content,
    # different identity.  They pickle separately but intern to one
    # wire body via the freshly computed verification digest.
    vote_a = make_vote(registry, key, 3, None)
    vote_b = make_vote(registry, key, 3, None)
    assert vote_a is not vote_b
    cache = EncodedPayloadCache()
    key_a, _, fresh_a = cache.encode(vote_a)
    key_b, _, fresh_b = cache.encode(vote_b)
    assert fresh_a and fresh_b
    assert key_a == key_b


@pytest.mark.skipif(not supports_unix_sockets(), reason="needs AF_UNIX")
def test_broadcast_pickles_once_and_rides_one_batch(tmp_path):
    async def scenario():
        a, b = _mesh_pair(tmp_path)
        await a.start()
        await b.start()
        await a.connect()
        await b.connect()
        a.anchor()
        b.anchor()
        try:
            payload = ["broadcast"]
            a.send(0, 1, payload)
            a.send(0, 2, payload)
            got_1 = await asyncio.wait_for(b.recv(1), timeout=2)
            got_2 = await asyncio.wait_for(b.recv(2), timeout=2)
            assert got_1 == (0, ["broadcast"]) and got_2 == (0, ["broadcast"])
            # The fan-out pickled once, reused once, and both frames
            # crossed the wire in a single batch write; the receiver
            # decoded one body that both pids share.
            assert a.payload_encodes == 1 and a.payload_reuses == 1
            assert a.batches_sent == 1 and b.batches_received == 1
            assert a.frames_sent == 2 and b.frames_received == 2
            assert got_1[1] is got_2[1]
        finally:
            await a.close()
            await b.close()

    asyncio.run(scenario())


@pytest.mark.skipif(not supports_unix_sockets(), reason="needs AF_UNIX")
def test_send_many_matches_per_send_counters(tmp_path):
    async def scenario():
        a, b = _mesh_pair(tmp_path)
        await a.start()
        await b.start()
        await a.connect()
        await b.connect()
        a.anchor()
        b.anchor()
        try:
            a.send_many(0, (1, 2), ["fanout"])
            got_1 = await asyncio.wait_for(b.recv(1), timeout=2)
            got_2 = await asyncio.wait_for(b.recv(2), timeout=2)
            assert got_1 == (0, ["fanout"]) and got_2 == (0, ["fanout"])
            assert a.sent_count == 2
            assert a.payload_encodes == 1 and a.payload_reuses == 1
        finally:
            await a.close()
            await b.close()

    asyncio.run(scenario())


@pytest.mark.skipif(not supports_unix_sockets(), reason="needs AF_UNIX")
def test_timer_budget_is_per_slot_not_per_message(tmp_path):
    async def scenario():
        a, b = _mesh_pair(tmp_path)
        await a.start()
        await b.start()
        await a.connect()
        await b.connect()
        a.anchor()
        b.anchor()
        try:
            # 40 frames burst into the same latency envelope: the wheel
            # arms O(slots) timers, not one per message (zero jitter at
            # base latency 1 ms → every delivery shares one slot or two).
            for i in range(20):
                a.send_many(0, (1, 2), i)
            for _ in range(20):
                await asyncio.wait_for(b.recv(1), timeout=2)
                await asyncio.wait_for(b.recv(2), timeout=2)
            # 40 frames crossed the wire, but the wheel parked them in
            # (slot, worker) buckets: a handful of loop timers total.
            assert a.frames_sent == 40
            assert a.wheel.timers_created <= 4
        finally:
            await a.close()
            await b.close()

    asyncio.run(scenario())


@pytest.mark.skipif(not supports_unix_sockets(), reason="needs AF_UNIX")
def test_unbatched_flag_keeps_the_v1_path(tmp_path):
    async def scenario():
        addresses = {0: str(tmp_path / "w0.sock"), 1: str(tmp_path / "w1.sock")}
        owner = {0: 0, 1: 1, 2: 1}
        common = dict(base_latency_s=0.001, jitter_s=0.0, seed=0, batching=False)
        a = SocketTransport(
            3, local_pids=(0,), owner=owner, worker_id=0, addresses=addresses, **common
        )
        b = SocketTransport(
            3, local_pids=(1, 2), owner=owner, worker_id=1, addresses=addresses, **common
        )
        await a.start()
        await b.start()
        await a.connect()
        await b.connect()
        a.anchor()
        b.anchor()
        try:
            assert a.wheel is None
            payload = ["legacy"]
            a.send(0, 1, payload)
            a.send(0, 2, payload)
            assert await asyncio.wait_for(b.recv(1), timeout=2) == (0, ["legacy"])
            assert await asyncio.wait_for(b.recv(2), timeout=2) == (0, ["legacy"])
            # One pickle, one write per destination — the historical cost.
            assert a.payload_encodes == 2 and a.payload_reuses == 0
            assert a.batches_sent == 0 and b.batches_received == 0
            assert a.frames_sent == 2 and b.frames_received == 2
        finally:
            await a.close()
            await b.close()

    asyncio.run(scenario())


@pytest.mark.skipif(not supports_unix_sockets(), reason="needs AF_UNIX")
def test_batched_and_unbatched_peers_interoperate(tmp_path):
    """v1 and v2 blobs share the stream: an unbatched peer's singles are
    accepted by a batched one and vice versa (first-byte dispatch)."""

    async def scenario():
        addresses = {0: str(tmp_path / "w0.sock"), 1: str(tmp_path / "w1.sock")}
        owner = {0: 0, 1: 1}
        common = dict(base_latency_s=0.001, jitter_s=0.0, seed=0)
        a = SocketTransport(
            2,
            local_pids=(0,),
            owner=owner,
            worker_id=0,
            addresses=addresses,
            batching=False,
            **common,
        )
        b = SocketTransport(
            2,
            local_pids=(1,),
            owner=owner,
            worker_id=1,
            addresses=addresses,
            batching=True,
            **common,
        )
        await a.start()
        await b.start()
        await a.connect()
        await b.connect()
        a.anchor()
        b.anchor()
        try:
            a.send(0, 1, "v1 single")
            b.send(1, 0, "v2 batch")
            assert await asyncio.wait_for(b.recv(1), timeout=2) == (0, "v1 single")
            assert await asyncio.wait_for(a.recv(0), timeout=2) == (1, "v2 batch")
            assert a.batches_sent == 0 and b.batches_received == 0
            assert b.batches_sent == 1 and a.batches_received == 1
        finally:
            await a.close()
            await b.close()

    asyncio.run(scenario())
